// WAL commit benchmark (ISSUE 4): append throughput and group-commit
// latency under each fsync policy, plus the end-to-end insert overhead of
// running with the WAL versus without it (the "WAL off is within noise"
// acceptance check). Emits BENCH_wal_commit.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "storage/catalog.h"
#include "util/stopwatch.h"
#include "wal/log_file.h"
#include "wal/manager.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace xia::bench {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/xia_bench_wal/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr int kWarmupInserts = 2000;
constexpr int kInserts = 10000;
constexpr int kRepetitions = 3;

/// End-to-end: executor inserts with the WAL as commit log (or without
/// any WAL when `policy` is null). Returns inserts per second.
double InsertThroughputOnce(const wal::FsyncPolicy* policy) {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  storage::Catalog catalog(&store, &statistics);
  engine::Executor executor(&store, &catalog);

  std::unique_ptr<wal::WalManager> manager;
  if (policy != nullptr) {
    wal::WalManagerOptions options;
    options.writer.policy = *policy;
    manager = std::make_unique<wal::WalManager>(
        FreshDir(std::string("insert_") + wal::FsyncPolicyName(*policy)),
        std::move(options));
    if (!manager->Open(&store, &catalog, &statistics).ok()) std::exit(1);
    executor.set_commit_log(manager.get());
  }
  if (!store.CreateCollection("BENCH").ok()) std::exit(1);
  if (manager != nullptr && !manager->LogCreateCollection("BENCH").ok()) {
    std::exit(1);
  }

  const auto insert = [&](int i) {
    auto st = engine::ParseStatement(
        "insert into BENCH <doc><k>" + std::to_string(i % 100) +
        "</k><v>payload-" + std::to_string(i) + "</v></doc>");
    if (!st.ok() || !executor.Execute(*st, optimizer::Plan()).ok()) {
      std::exit(1);
    }
  };
  const int warmup =
      policy != nullptr && *policy == wal::FsyncPolicy::kAlways
          ? kWarmupInserts / 20  // fsync-per-commit: keep warmup short
          : kWarmupInserts;
  for (int i = 0; i < warmup; ++i) insert(i);
  Stopwatch timer;
  for (int i = 0; i < kInserts; ++i) insert(i);
  const double seconds = timer.ElapsedSeconds();
  if (manager != nullptr) (void)manager->Close();
  return kInserts / seconds;
}

/// Best-of-N: peak rate is the stable statistic on a shared machine.
double InsertThroughput(const wal::FsyncPolicy* policy) {
  double best = 0;
  const int reps =
      policy != nullptr && *policy == wal::FsyncPolicy::kAlways
          ? 1  // ~1s per rep at fsync-per-commit rates; once is enough
          : kRepetitions;
  for (int r = 0; r < reps; ++r) {
    best = std::max(best, InsertThroughputOnce(policy));
  }
  return best;
}

constexpr int kQueryDocs = 500;
constexpr int kQueries = 2000;

/// Read path: FLWOR queries with the WAL attached as the executor's
/// commit log (or absent). Queries never reach the commit log, so this
/// is the "logging compiled in + WAL on, fsync=off, overhead within
/// noise" acceptance check for the executor bench.
double QueryThroughputOnce(const wal::FsyncPolicy* policy) {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  storage::Catalog catalog(&store, &statistics);
  engine::Executor executor(&store, &catalog);

  std::unique_ptr<wal::WalManager> manager;
  if (policy != nullptr) {
    wal::WalManagerOptions options;
    options.writer.policy = *policy;
    manager = std::make_unique<wal::WalManager>(
        FreshDir(std::string("query_") + wal::FsyncPolicyName(*policy)),
        std::move(options));
    if (!manager->Open(&store, &catalog, &statistics).ok()) std::exit(1);
    executor.set_commit_log(manager.get());
  }
  if (!store.CreateCollection("BENCH").ok()) std::exit(1);
  if (manager != nullptr && !manager->LogCreateCollection("BENCH").ok()) {
    std::exit(1);
  }
  for (int i = 0; i < kQueryDocs; ++i) {
    auto st = engine::ParseStatement(
        "insert into BENCH <doc><k>" + std::to_string(i % 100) +
        "</k><v>payload-" + std::to_string(i) + "</v></doc>");
    if (!st.ok() || !executor.Execute(*st, optimizer::Plan()).ok()) {
      std::exit(1);
    }
  }

  auto query = engine::ParseStatement(
      "for $d in c('BENCH')/doc[k = 7] return $d/v");
  if (!query.ok()) std::exit(1);
  for (int i = 0; i < kQueries / 10; ++i) {
    if (!executor.Execute(*query, optimizer::Plan()).ok()) std::exit(1);
  }
  Stopwatch timer;
  for (int i = 0; i < kQueries; ++i) {
    if (!executor.Execute(*query, optimizer::Plan()).ok()) std::exit(1);
  }
  const double seconds = timer.ElapsedSeconds();
  if (manager != nullptr) (void)manager->Close();
  return kQueries / seconds;
}

double QueryThroughput(const wal::FsyncPolicy* policy) {
  double best = 0;
  for (int r = 0; r < kRepetitions; ++r) {
    best = std::max(best, QueryThroughputOnce(policy));
  }
  return best;
}

struct LatencyStats {
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double commits_per_sec = 0;
  double avg_batch = 0;
};

/// Group commit: `threads` committers hammer one writer; per-commit
/// latency distribution plus achieved batch size (records per fsync for
/// kAlways; records per flush otherwise).
LatencyStats GroupCommitLatency(wal::FsyncPolicy policy, int threads,
                                int per_thread) {
  const std::string dir =
      FreshDir(std::string("commit_") + wal::FsyncPolicyName(policy));
  const std::string path = dir + "/wal.log";
  if (!wal::InitLogFile(path).ok()) std::exit(1);
  wal::WalWriterOptions options;
  options.policy = policy;
  wal::WalWriter writer(options);
  if (!writer.Open(path, 1).ok()) std::exit(1);

  std::vector<std::vector<double>> latencies(threads);
  Stopwatch total;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      latencies[t].reserve(per_thread);
      for (int i = 0; i < per_thread; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto lsn = writer.Append(wal::WalRecord::Insert(
            "BENCH", "<doc><k>1</k><v>latency-probe</v></doc>"));
        if (!lsn.ok() || !writer.Commit(*lsn).ok()) std::exit(1);
        latencies[t].push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    });
  }
  for (auto& th : pool) th.join();
  const double seconds = total.ElapsedSeconds();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencyStats stats;
  for (double v : all) stats.mean_us += v;
  stats.mean_us /= all.size();
  stats.p50_us = all[all.size() / 2];
  stats.p95_us = all[all.size() * 95 / 100];
  stats.p99_us = all[all.size() * 99 / 100];
  stats.commits_per_sec = all.size() / seconds;
  const uint64_t flushes =
      policy == wal::FsyncPolicy::kAlways ? writer.fsyncs() : 0;
  stats.avg_batch = flushes > 0
                        ? static_cast<double>(writer.appended_records()) /
                              static_cast<double>(flushes)
                        : 0;
  (void)writer.Close();
  return stats;
}

void Run() {
  BenchJsonWriter json("wal_commit");
  PrintHeader("WAL commit: end-to-end insert throughput");

  const double no_wal = InsertThroughput(nullptr);
  json.Checkpoint("insert_no_wal");
  std::printf("%-16s %12.0f inserts/s (baseline)\n", "no-wal", no_wal);
  for (const wal::FsyncPolicy policy :
       {wal::FsyncPolicy::kOff, wal::FsyncPolicy::kInterval,
        wal::FsyncPolicy::kAlways}) {
    const double rate = InsertThroughput(&policy);
    json.Checkpoint(std::string("insert_") + wal::FsyncPolicyName(policy));
    std::printf("%-16s %12.0f inserts/s (%+.1f%% vs no-wal)\n",
                wal::FsyncPolicyName(policy), rate,
                100.0 * (rate - no_wal) / no_wal);
  }

  PrintHeader("WAL attached, read path (queries never hit the commit log)");
  const double query_no_wal = QueryThroughput(nullptr);
  json.Checkpoint("query_no_wal");
  std::printf("%-16s %12.0f queries/s (baseline)\n", "no-wal", query_no_wal);
  const wal::FsyncPolicy off = wal::FsyncPolicy::kOff;
  const double query_off = QueryThroughput(&off);
  json.Checkpoint("query_wal_off");
  std::printf("%-16s %12.0f queries/s (%+.1f%% vs no-wal)\n", "wal fsync=off",
              query_off, 100.0 * (query_off - query_no_wal) / query_no_wal);

  PrintHeader("WAL commit: group-commit latency (8 threads)");
  std::printf("%-10s %10s %10s %10s %10s %12s %10s\n", "policy", "mean_us",
              "p50_us", "p95_us", "p99_us", "commits/s", "batch");
  for (const wal::FsyncPolicy policy :
       {wal::FsyncPolicy::kOff, wal::FsyncPolicy::kInterval,
        wal::FsyncPolicy::kAlways}) {
    const LatencyStats s = GroupCommitLatency(policy, 8, 500);
    json.Checkpoint(std::string("commit_") + wal::FsyncPolicyName(policy));
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f %12.0f %10.1f\n",
                wal::FsyncPolicyName(policy), s.mean_us, s.p50_us, s.p95_us,
                s.p99_us, s.commits_per_sec, s.avg_batch);
  }
}

}  // namespace
}  // namespace xia::bench

int main() {
  xia::bench::Run();
  return 0;
}
