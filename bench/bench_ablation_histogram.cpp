// Ablation: equi-depth histograms vs. the uniform range assumption
// (DESIGN.md design decision; DB2's cost model keeps quantile statistics,
// our substrate reproduces that and this bench shows why it matters).
//
// On the heavy-tailed /Security/Volume field, range predicates at several
// cut points are estimated with and without histograms and compared to
// the true qualifying fraction; then the advisor runs with both statistic
// flavours to show the effect on plan/recommendation quality.

#include "engine/executor.h"
#include "engine/query_parser.h"
#include "bench/bench_common.h"
#include "optimizer/selectivity.h"
#include "xpath/parser.h"

namespace {

using namespace xia;         // NOLINT
using namespace xia::bench;  // NOLINT

double TrueFraction(const storage::Collection& coll, double cut) {
  size_t above = 0;
  size_t total = 0;
  coll.ForEach([&](xml::DocId, const xml::Document& doc) {
    for (size_t i = 0; i < doc.size(); ++i) {
      const auto& n = doc.node(static_cast<xml::NodeIndex>(i));
      if (n.label == "Volume") {
        double v = 0;
        if (ParseDouble(n.value, &v)) {
          ++total;
          if (v > cut) ++above;
        }
      }
    }
  });
  return total == 0 ? 0 : static_cast<double>(above) /
                              static_cast<double>(total);
}

}  // namespace

int main() {
  xia::bench::BenchJsonWriter bench_json("ablation_histogram");
  auto ctx = MakeContext(/*securities=*/3000, /*orders=*/100, /*custaccs=*/50);
  auto coll = ctx->store.GetCollection(tpox::kSecurityCollection);
  if (!coll.ok()) return 1;

  // Statistics without histograms for the comparison.
  storage::StatisticsCatalog uniform_stats;
  storage::CollectionStatistics::CollectOptions no_hist;
  no_hist.histogram_buckets = 0;
  uniform_stats.RunStats(**coll, no_hist);

  const xpath::IndexPattern volume{*xpath::ParsePattern("/Security/Volume"),
                                   xpath::ValueType::kNumeric};
  const auto hist_is = Unwrap(ctx->statistics.Get(tpox::kSecurityCollection),
                              "stats")
                           ->DeriveIndexStats(volume,
                                              storage::DefaultCostConstants());
  const auto unif_is =
      Unwrap(uniform_stats.Get(tpox::kSecurityCollection), "stats")
          ->DeriveIndexStats(volume, storage::DefaultCostConstants());

  PrintHeader(
      "Histogram ablation: selectivity of /Security/Volume > cut");
  std::printf("%-12s %-10s %-12s %-12s\n", "cut", "true", "histogram",
              "uniform");
  double hist_err = 0;
  double unif_err = 0;
  for (double cut : {5e4, 2e5, 5e5, 1e6, 2e6}) {
    const double truth = TrueFraction(**coll, cut);
    const double est_h = optimizer::ValueSelectivity(
        hist_is, xpath::CompareOp::kGt, xpath::Literal::Number(cut));
    const double est_u = optimizer::ValueSelectivity(
        unif_is, xpath::CompareOp::kGt, xpath::Literal::Number(cut));
    hist_err += std::abs(est_h - truth);
    unif_err += std::abs(est_u - truth);
    std::printf("%-12.0f %-10.4f %-12.4f %-12.4f\n", cut, truth, est_h,
                est_u);
  }
  std::printf("\nsum |error|: histogram %.4f vs uniform %.4f (%.1fx better)\n",
              hist_err, unif_err,
              hist_err == 0 ? 999.0 : unif_err / hist_err);

  // Effect on plan choice: a tail query should use the index with
  // histograms (estimated selective) — the uniform estimator may think it
  // touches half the collection.
  PrintHeader("Effect on plan choice (Volume > 2,000,000 tail query)");
  const char* query_text =
      "for $s in c('SDOC')/Security[Volume > 2000000] return $s/Symbol";
  auto stmt = engine::ParseStatement(query_text);
  if (!stmt.ok()) return 1;
  for (bool use_hist : {true, false}) {
    storage::StatisticsCatalog& stats =
        use_hist ? ctx->statistics : uniform_stats;
    storage::Catalog catalog(&ctx->store, &stats);
    auto created =
        catalog.CreateIndex("vol", tpox::kSecurityCollection, volume);
    if (!created.ok()) return 1;
    optimizer::Optimizer opt(&ctx->store, &catalog, &stats);
    auto plan = Unwrap(opt.Optimize(*stmt), "optimize");
    engine::Executor executor(&ctx->store, &catalog);
    auto result = Unwrap(executor.Execute(*stmt, plan), "execute");
    std::printf("%-10s -> %s\n              executed: %llu docs examined, "
                "%llu results\n",
                use_hist ? "histogram" : "uniform", plan.Describe().c_str(),
                static_cast<unsigned long long>(result.docs_examined),
                static_cast<unsigned long long>(result.result_count));
  }
  std::printf("\nShape check: histogram estimates track the tail; uniform"
              " estimates misprice it.\n");
  return 0;
}
