// bench_repl_lag: replication apply lag and rejoin catch-up.
//
// Three measurements against an in-process leader/follower pair over
// real loopback TCP:
//   1. leader mutation throughput with a live follower attached, and the
//      per-mutation apply latency on the follower (commit on the leader
//      -> applied on the replica), reported as p50/p95;
//   2. drain time: how long the follower needs to flush the residual
//      stream backlog once the writers stop;
//   3. rejoin catch-up: the follower restarts against backlogs of
//      increasing depth and we report catch-up records/s (log replay
//      path, not snapshot, so the rate is the applier's).
// Rows land in BENCH_repl_lag.json for post-processing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"

namespace xia {
namespace {

namespace fs = std::filesystem;

constexpr int kLagMutations = 400;
constexpr const int kBacklogs[] = {100, 400, 1600};

std::string FreshDir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/xia_bench_repl/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

net::ServerOptions LeaderOptions(const std::string& data_dir) {
  net::ServerOptions options;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{200, 200, 50, 42};
  options.data_dir = data_dir;
  return options;
}

net::ServerOptions FollowerOptions(const std::string& data_dir,
                                   uint16_t leader_port) {
  net::ServerOptions options;
  options.data_dir = data_dir;
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  options.follower_id = "bench";
  return options;
}

std::string InsertStatement(int i) {
  return "insert into SDOC <Security><Symbol>LAG" + std::to_string(i) +
         "</Symbol><Yield>" + std::to_string(i % 10) + "</Yield></Security>";
}

uint64_t AppliedLsn(const net::Server& follower) {
  return follower.GetReplStatus().applier.applied_lsn;
}

void WaitForCaughtUp(const net::Server& leader, const net::Server& follower) {
  const uint64_t target = leader.GetReplStatus().durable_lsn;
  while (AppliedLsn(follower) < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

double Pct(std::vector<double>* sorted, size_t rank) {
  if (sorted->empty()) return 0;
  return (*sorted)[std::min(sorted->size() - 1, rank)] * 1e3;
}

}  // namespace
}  // namespace xia

int main() {
  using namespace xia;  // NOLINT

  bench::BenchJsonWriter json("repl_lag");
  json.set_threads(std::thread::hardware_concurrency());

  net::Server leader(LeaderOptions(FreshDir("leader")));
  if (Status s = leader.Start(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string follower_dir = FreshDir("follower");
  auto follower = std::make_unique<net::Server>(
      FollowerOptions(follower_dir, leader.port()));
  if (Status s = follower->Start(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  WaitForCaughtUp(leader, *follower);

  // --- 1. throughput + per-mutation apply latency ---------------------
  net::Client writer;
  if (!writer.Connect(leader.host(), leader.port()).ok()) {
    std::fprintf(stderr, "fatal: connect failed\n");
    return 1;
  }
  std::vector<double> lags;
  lags.reserve(kLagMutations);
  Stopwatch wall;
  int committed = 0;
  for (int i = 0; i < kLagMutations; ++i) {
    net::MutationRequest mutation;
    mutation.statement = InsertStatement(i);
    const auto reply = writer.Mutate(mutation);
    if (!reply.ok()) {
      std::fprintf(stderr, "fatal: %s\n", reply.status().ToString().c_str());
      return 1;
    }
    ++committed;
    // Lag for THIS commit: committed on the leader -> visible on the
    // replica. Spin-waiting per mutation serializes writer and stream,
    // which is exactly the single-client view of staleness.
    const uint64_t target = leader.GetReplStatus().durable_lsn;
    Stopwatch lag;
    while (AppliedLsn(*follower) < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    lags.push_back(lag.ElapsedSeconds());
  }
  const double seconds = wall.ElapsedSeconds();
  std::sort(lags.begin(), lags.end());
  const double p50 = Pct(&lags, lags.size() / 2);
  const double p95 = Pct(&lags, lags.size() * 95 / 100);
  std::printf("replicated throughput: %d mutations in %.2fs (%.0f/s)\n",
              committed, seconds, committed / seconds);
  std::printf("apply lag: p50 %.3f ms, p95 %.3f ms\n", p50, p95);
  json.AddResult(StringPrintf(
      "{\"phase\": \"live\", \"mutations\": %d, \"seconds\": %.4f, "
      "\"mut_per_s\": %.1f, \"lag_p50_ms\": %.4f, \"lag_p95_ms\": %.4f}",
      committed, seconds, committed / seconds, p50, p95));
  json.Checkpoint("live");

  // --- 2. drain after an unthrottled burst ----------------------------
  Stopwatch burst_wall;
  for (int i = 0; i < kLagMutations; ++i) {
    net::MutationRequest mutation;
    mutation.statement = InsertStatement(kLagMutations + i);
    if (!writer.Mutate(mutation).ok()) {
      std::fprintf(stderr, "fatal: burst mutation failed\n");
      return 1;
    }
  }
  const double burst_seconds = burst_wall.ElapsedSeconds();
  Stopwatch drain;
  WaitForCaughtUp(leader, *follower);
  const double drain_seconds = drain.ElapsedSeconds();
  std::printf("burst: %d mutations in %.2fs, drained in %.3fs\n",
              kLagMutations, burst_seconds, drain_seconds);
  json.AddResult(StringPrintf(
      "{\"phase\": \"drain\", \"mutations\": %d, \"burst_seconds\": %.4f, "
      "\"drain_seconds\": %.4f}",
      kLagMutations, burst_seconds, drain_seconds));
  json.Checkpoint("drain");

  // --- 3. rejoin catch-up vs backlog depth ----------------------------
  int next_symbol = 2 * kLagMutations;
  for (const int backlog : kBacklogs) {
    follower->Stop();
    follower.reset();
    for (int i = 0; i < backlog; ++i) {
      net::MutationRequest mutation;
      mutation.statement = InsertStatement(next_symbol++);
      if (!writer.Mutate(mutation).ok()) {
        std::fprintf(stderr, "fatal: backlog mutation failed\n");
        return 1;
      }
    }
    Stopwatch rejoin;
    follower = std::make_unique<net::Server>(
        FollowerOptions(follower_dir, leader.port()));
    if (Status s = follower->Start(); !s.ok()) {
      std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
      return 1;
    }
    WaitForCaughtUp(leader, *follower);
    const double rejoin_seconds = rejoin.ElapsedSeconds();
    std::printf("rejoin: backlog %4d caught up in %.3fs (%.0f rec/s)\n",
                backlog, rejoin_seconds, backlog / rejoin_seconds);
    json.AddResult(StringPrintf(
        "{\"phase\": \"rejoin\", \"backlog\": %d, \"seconds\": %.4f, "
        "\"records_per_s\": %.1f}",
        backlog, rejoin_seconds, backlog / rejoin_seconds));
    json.Checkpoint("rejoin_" + std::to_string(backlog));
  }

  follower->Stop();
  follower.reset();
  if (Status s = leader.Stop(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  json.Write();
  return 0;
}
