// Shared setup for the experiment harnesses.
//
// Each bench binary regenerates one table or figure of the paper
// (see DESIGN.md §3). The database is a TPoX-style instance scaled to
// laptop size; disk budgets are expressed relative to the All-Index
// configuration size so crossovers land where the paper's do (the paper's
// budgets 100 MB..2 GB bracket its 95 MB All-Index configuration).

#ifndef XIA_BENCH_BENCH_COMMON_H_
#define XIA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "engine/query_parser.h"
#include "obs/metrics.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/synthetic.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace xia::bench {

/// A TPoX database instance plus its advisor.
struct BenchContext {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  std::unique_ptr<advisor::IndexAdvisor> advisor;
};

/// Builds the standard bench database. Exits on failure (benches are
/// top-level binaries).
inline std::unique_ptr<BenchContext> MakeContext(size_t securities = 800,
                                                 size_t orders = 1200,
                                                 size_t custaccs = 300,
                                                 uint64_t seed = 42) {
  auto ctx = std::make_unique<BenchContext>();
  tpox::TpoxScale scale;
  scale.security_docs = securities;
  scale.order_docs = orders;
  scale.custacc_docs = custaccs;
  scale.seed = seed;
  if (Status s = tpox::BuildTpoxDatabase(scale, &ctx->store,
                                         &ctx->statistics);
      !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  ctx->advisor =
      std::make_unique<advisor::IndexAdvisor>(&ctx->store, &ctx->statistics);
  return ctx;
}

/// The 11-query TPoX workload; exits on failure.
inline engine::Workload QueryWorkload() {
  auto w = tpox::TpoxQueries();
  if (!w.ok()) {
    std::fprintf(stderr, "fatal: %s\n", w.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*w);
}

/// The 20-query mixed workload of §VII-C: the 11 TPoX queries followed by
/// 9 synthetic queries for diversity.
inline engine::Workload MixedWorkload(const BenchContext& ctx,
                                      uint64_t seed = 7) {
  engine::Workload w = QueryWorkload();
  Random rng(seed);
  auto synthetic = tpox::GenerateSyntheticWorkload(
      ctx.statistics,
      {tpox::kSecurityCollection, tpox::kOrderCollection,
       tpox::kCustAccCollection},
      9, &rng);
  if (!synthetic.ok()) {
    std::fprintf(stderr, "fatal: %s\n",
                 synthetic.status().ToString().c_str());
    std::exit(1);
  }
  for (auto& stmt : *synthetic) w.push_back(std::move(stmt));
  return w;
}

/// All five search algorithms in the paper's presentation order.
inline const std::vector<advisor::SearchAlgorithm>& AllAlgorithms() {
  static const std::vector<advisor::SearchAlgorithm> kAlgorithms = {
      advisor::SearchAlgorithm::kGreedy,
      advisor::SearchAlgorithm::kGreedyWithHeuristics,
      advisor::SearchAlgorithm::kTopDownLite,
      advisor::SearchAlgorithm::kTopDownFull,
      advisor::SearchAlgorithm::kDynamicProgramming,
  };
  return kAlgorithms;
}

/// Unwraps a Result or exits with its error.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "fatal (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Emits BENCH_<name>.json when destroyed (or on Write()): total wall
/// time, any recorded checkpoints (counter trajectory), and the final
/// process-wide metrics snapshot. Bench binaries construct one at the top
/// of main so every run leaves a machine-readable record next to the
/// human-readable table.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}
  ~BenchJsonWriter() { Write(); }

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  /// Records how many worker threads the bench ran with; lands in the
  /// JSON next to hardware_concurrency so speedup curves are
  /// reproducible on other machines.
  void set_threads(size_t threads) { threads_ = threads; }

  /// Records one structured result row (a JSON object literal) into the
  /// "results" array — the bench's headline numbers (qps, percentiles,
  /// speedups), readable without digging through the metrics snapshot.
  void AddResult(const std::string& json_object) {
    results_.push_back(json_object);
  }

  /// Records a named checkpoint: elapsed seconds plus the metric values at
  /// this point, so post-processing can plot counter trajectories.
  void Checkpoint(const std::string& label) {
    checkpoints_.push_back(StringPrintf(
        "{\"label\": \"%s\", \"elapsed_seconds\": %.6f, \"metrics\": %s}",
        label.c_str(), timer_.ElapsedSeconds(),
        obs::MetricsRegistry::Global().Snapshot().ToJson().c_str()));
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n";
    out << StringPrintf("  \"wall_seconds\": %.6f,\n",
                        timer_.ElapsedSeconds());
    out << StringPrintf("  \"threads\": %zu,\n", threads_);
    out << StringPrintf(
        "  \"hardware_concurrency\": %u,\n",
        std::thread::hardware_concurrency());
    out << "  \"results\": [";
    for (size_t i = 0; i < results_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << results_[i];
    }
    out << (results_.empty() ? "],\n" : "\n  ],\n");
    out << "  \"checkpoints\": [";
    for (size_t i = 0; i < checkpoints_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << checkpoints_[i];
    }
    out << (checkpoints_.empty() ? "],\n" : "\n  ],\n");
    out << "  \"metrics\": "
        << obs::MetricsRegistry::Global().Snapshot().ToJson() << "\n}\n";
    std::printf("\nmetrics: wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  Stopwatch timer_;
  std::vector<std::string> results_;
  std::vector<std::string> checkpoints_;
  size_t threads_ = 1;
  bool written_ = false;
};

}  // namespace xia::bench

#endif  // XIA_BENCH_BENCH_COMMON_H_
