// Virtual-index cost accuracy (§VII: "we have experimentally demonstrated
// the accuracy of our cost estimation using virtual indexes"; the table
// lives in tech report CS-2007-22).
//
// For each TPoX query and each of its candidate indexes, compare
//   (a) the plan cost estimated with the index *virtual* (derived stats),
//   (b) the plan cost estimated with the index *really built* (actual
//       B+-tree stats), and
//   (c) the measured work of executing that plan (documents fetched).
// (a) vs (b) validates the §III statistics derivation; (b) vs (c)
// sanity-checks the cost model's document estimates.

#include "engine/executor.h"
#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("virtual_accuracy");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = QueryWorkload();

  PrintHeader("Virtual-index cost accuracy");
  std::printf("%-30s %-12s %-12s %-10s %-12s\n", "query / index pattern",
              "virtual est", "real est", "err %", "exec docs");

  double worst_error = 0;
  for (const auto& stmt : workload) {
    auto candidates = Unwrap(
        [&] {
          storage::Catalog scratch(&ctx->store, &ctx->statistics);
          optimizer::Optimizer opt(&ctx->store, &scratch, &ctx->statistics);
          return opt.EnumerateIndexes(stmt);
        }(),
        "enumerate");
    for (const auto& pattern : candidates) {
      // (a) virtual.
      double virtual_cost = 0;
      {
        storage::Catalog catalog(&ctx->store, &ctx->statistics);
        optimizer::Optimizer opt(&ctx->store, &catalog, &ctx->statistics);
        auto created =
            catalog.CreateVirtualIndex("v", stmt.collection(), pattern);
        if (!created.ok()) continue;
        virtual_cost = Unwrap(opt.Optimize(stmt), "optimize v").est_cost;
      }
      // (b) real, and (c) executed.
      double real_cost = 0;
      uint64_t exec_docs = 0;
      {
        storage::Catalog catalog(&ctx->store, &ctx->statistics);
        optimizer::Optimizer opt(&ctx->store, &catalog, &ctx->statistics);
        auto created = catalog.CreateIndex("r", stmt.collection(), pattern);
        if (!created.ok()) continue;
        auto plan = Unwrap(opt.Optimize(stmt), "optimize r");
        real_cost = plan.est_cost;
        engine::Executor executor(&ctx->store, &catalog);
        exec_docs = Unwrap(executor.Execute(stmt, plan), "execute")
                        .docs_examined;
      }
      const double err =
          real_cost == 0 ? 0
                         : 100.0 * (virtual_cost - real_cost) / real_cost;
      worst_error = std::max(worst_error, std::abs(err));
      std::printf("%-30.30s %-12.1f %-12.1f %-+9.1f%% %-12llu\n",
                  (stmt.label.substr(0, 8) + " " + pattern.path.ToString())
                      .c_str(),
                  virtual_cost, real_cost, err,
                  static_cast<unsigned long long>(exec_docs));
    }
  }
  std::printf("\nworst virtual-vs-real estimation error: %.1f%%\n",
              worst_error);
  std::printf("Shape check: virtual and real estimates agree closely — the\n"
              "what-if derivation is faithful enough to rank candidates.\n");
  return 0;
}
