// Figure 3: advisor run time vs. disk budget per search algorithm.
//
// Expected shape: top-down full is the most expensive (up to several times
// greedy+heuristics) and gets cheaper as the budget grows, because fewer
// DAG replacements are needed before the configuration fits.

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("fig3_runtime");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = MixedWorkload(*ctx);
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index configuration");

  PrintHeader("Figure 3: advisor run time (seconds) vs disk budget");
  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0};

  std::printf("%-22s", "budget (xAllIndex)");
  for (double f : fractions) std::printf("%9.2f", f);
  std::printf("\n");

  // Also capture optimizer calls: runtime in this reimplementation is
  // dominated by Evaluate-mode probes, as in the paper.
  for (advisor::SearchAlgorithm algo : AllAlgorithms()) {
    std::printf("%-22s", advisor::SearchAlgorithmName(algo));
    for (double f : fractions) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = f * all_index.total_size_bytes;
      auto rec = Unwrap(ctx->advisor->Recommend(workload, options),
                        "recommend");
      std::printf("%9.4f", rec.advisor_seconds);
    }
    std::printf("\n");
    bench_json.Checkpoint(advisor::SearchAlgorithmName(algo));
  }

  std::printf("\n%-22s", "opt calls (topdown-f)");
  for (double f : fractions) {
    advisor::AdvisorOptions options;
    options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
    options.disk_budget_bytes = f * all_index.total_size_bytes;
    auto rec =
        Unwrap(ctx->advisor->Recommend(workload, options), "recommend");
    std::printf("%9llu", static_cast<unsigned long long>(rec.optimizer_calls));
  }
  std::printf("\n%-22s", "opt calls (heuristics)");
  for (double f : fractions) {
    advisor::AdvisorOptions options;
    options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
    options.disk_budget_bytes = f * all_index.total_size_bytes;
    auto rec =
        Unwrap(ctx->advisor->Recommend(workload, options), "recommend");
    std::printf("%9llu", static_cast<unsigned long long>(rec.optimizer_calls));
  }
  std::printf("\n\nPaper shape check: top-down full issues the most"
              " Evaluate-mode optimizer\ncalls (the paper's runtime"
              " currency). With SVI-C caching the counts are nearly\n"
              "budget-independent here; in the paper, where each call is"
              " a full DB2\noptimization, the same counts dominate the"
              " advisor's wall-clock.\n");
  return 0;
}
