// Figure 5: generalization to unseen queries — ACTUAL speedup.
//
// Same train/test sweep as Figure 4, but each recommended configuration is
// materialized as physical B+-tree indexes and the full test workload is
// *executed*; speedup is measured wall-clock time (no indexes / with
// indexes). Like the paper (which timed out two queries without indexes),
// unindexed execution is the expensive side here.
//
// Expected shape: the measured curves corroborate the estimated ones —
// top-down lite above greedy+heuristics at small n, both approaching the
// All-Index configuration.

#include "engine/executor.h"
#include "bench/bench_common.h"

namespace {

using namespace xia;         // NOLINT
using namespace xia::bench;  // NOLINT

// Best-of-N repetitions of the whole workload, to steady the clock at
// laptop scale.
double ExecuteWorkloadSeconds(BenchContext* ctx,
                              const engine::Workload& workload,
                              storage::Catalog* catalog, int reps = 3) {
  optimizer::Optimizer opt(&ctx->store, catalog, &ctx->statistics);
  engine::Executor executor(&ctx->store, catalog);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    double total = 0;
    for (const auto& stmt : workload) {
      auto result = executor.ExecuteBest(stmt, opt);
      if (!result.ok()) {
        std::fprintf(stderr, "fatal: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      total += result->wall_seconds;
    }
    best = std::min(best, total);
  }
  return best;
}

double MaterializedSpeedup(BenchContext* ctx,
                           const engine::Workload& test_workload,
                           const std::vector<advisor::RecommendedIndex>& rec,
                           double baseline_seconds) {
  storage::Catalog catalog(&ctx->store, &ctx->statistics);
  int i = 0;
  for (const auto& ri : rec) {
    auto created = catalog.CreateIndex(StringPrintf("b5_%d", i++),
                                       ri.collection, ri.pattern);
    if (!created.ok()) {
      std::fprintf(stderr, "fatal: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
  }
  const double with_indexes =
      ExecuteWorkloadSeconds(ctx, test_workload, &catalog);
  return with_indexes <= 0 ? baseline_seconds / 1e-9
                           : baseline_seconds / with_indexes;
}

}  // namespace

int main() {
  xia::bench::BenchJsonWriter bench_json("fig5_actual_speedup");
  auto ctx = MakeContext(/*securities=*/2500, /*orders=*/4000, /*custaccs=*/1000);
  const engine::Workload test_workload = MixedWorkload(*ctx);
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(test_workload),
                          "all-index");
  const double budget = 21.0 * all_index.total_size_bytes;

  // Baseline: no indexes; take the best of three runs to steady the clock.
  storage::Catalog empty_catalog(&ctx->store, &ctx->statistics);
  const double baseline =
      ExecuteWorkloadSeconds(ctx.get(), test_workload, &empty_catalog, 5);

  PrintHeader("Figure 5: generalization to unseen queries (actual)");
  std::printf("Test workload: %zu queries; baseline (no indexes): %.3fs\n\n",
              test_workload.size(), baseline);
  std::printf("%-8s %-14s %-14s %-14s\n", "train n", "topdn-lite",
              "heuristics", "all-index");

  const double all_index_speedup = MaterializedSpeedup(
      ctx.get(), test_workload, all_index.indexes, baseline);

  for (size_t n = 1; n <= test_workload.size(); n += 1) {
    engine::Workload training(test_workload.begin(),
                              test_workload.begin() + static_cast<long>(n));
    double lite = 0;
    double heur = 0;
    for (advisor::SearchAlgorithm algo :
         {advisor::SearchAlgorithm::kTopDownLite,
          advisor::SearchAlgorithm::kGreedyWithHeuristics}) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = budget;
      auto rec =
          Unwrap(ctx->advisor->Recommend(training, options), "recommend");
      const double speedup =
          MaterializedSpeedup(ctx.get(), test_workload, rec.indexes,
                              baseline);
      if (algo == advisor::SearchAlgorithm::kTopDownLite) {
        lite = speedup;
      } else {
        heur = speedup;
      }
    }
    std::printf("%-8zu %-14.2f %-14.2f %-14.2f\n", n, lite, heur,
                all_index_speedup);
  }
  std::printf("\nPaper shape check: measured speedups corroborate the"
              " estimated ones\n(Fig. 4): top-down generalizes to unseen"
              " queries, greedy+heuristics does not.\n");
  return 0;
}
