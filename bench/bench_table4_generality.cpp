// Table IV: number of general (G) and specific (S) indexes recommended at
// different disk budgets by top-down lite, top-down full, and
// greedy+heuristics.
//
// The paper's budgets 100 MB..2000 MB bracket its 95 MB All-Index size
// (about 1x..21x); we sweep the same multipliers. Expected shape:
// greedy+heuristics almost never recommends generals; top-down recommends
// more generals the more space it has, ending in an all-general
// configuration at the largest budget.

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("table4_generality");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = MixedWorkload(*ctx);
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index");

  PrintHeader("Table IV: general (G) and specific (S) indexes recommended");
  std::printf("All-Index size for the 20-query workload: %s\n\n",
              HumanBytes(all_index.total_size_bytes).c_str());
  std::printf("%-18s %-18s %-18s %-18s\n", "budget", "top-down lite",
              "top-down full", "heuristics");

  const advisor::SearchAlgorithm algos[] = {
      advisor::SearchAlgorithm::kTopDownLite,
      advisor::SearchAlgorithm::kTopDownFull,
      advisor::SearchAlgorithm::kGreedyWithHeuristics,
  };

  for (double multiple : {1.0, 1.5, 2.0, 3.0, 5.0, 21.0}) {
    std::printf("%-18s",
                StringPrintf("%.1fx AllIndex", multiple).c_str());
    for (advisor::SearchAlgorithm algo : algos) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = multiple * all_index.total_size_bytes;
      auto rec =
          Unwrap(ctx->advisor->Recommend(workload, options), "recommend");
      std::printf("%-18s",
                  StringPrintf("G: %d, S: %d", rec.general_count,
                               rec.specific_count)
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape check: top-down recommends more general indexes"
              " as the budget\ngrows; greedy+heuristics stays almost"
              " all-specific.\n");
  return 0;
}
