// Micro-benchmarks (google-benchmark): the B+-tree backing XML value
// indexes — inserts, point lookups, range scans, and mixed insert/erase.

#include <benchmark/benchmark.h>

#include "storage/btree.h"
#include "storage/index.h"
#include "util/random.h"

namespace {

using xia::Random;
using xia::storage::BTree;

void BM_BTreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    BTree<int64_t> tree;
    for (int64_t i = 0; i < state.range(0); ++i) tree.Insert(i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertSequential)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BTreeInsertRandom(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Random rng(42);
    std::vector<int64_t> keys;
    keys.reserve(static_cast<size_t>(state.range(0)));
    for (int64_t i = 0; i < state.range(0); ++i) {
      keys.push_back(static_cast<int64_t>(rng.Next()));
    }
    state.ResumeTiming();
    BTree<int64_t> tree;
    for (int64_t k : keys) tree.Insert(k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BTreePointLookup(benchmark::State& state) {
  BTree<int64_t> tree;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert(i * 2);
  Random rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Contains(static_cast<int64_t>(rng.Uniform(
            static_cast<uint64_t>(n * 2)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup)->Arg(16384)->Arg(131072);

void BM_BTreeRangeScan(benchmark::State& state) {
  BTree<int64_t> tree;
  const int64_t n = 131072;
  for (int64_t i = 0; i < n; ++i) tree.Insert(i);
  const int64_t width = state.range(0);
  Random rng(9);
  for (auto _ : state) {
    const int64_t lo =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n - width)));
    int64_t count = 0;
    tree.Scan(lo, lo + width - 1, [&](const int64_t&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BTreeRangeScan)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BTreeChurn(benchmark::State& state) {
  // Insert/erase mix at a steady size, exercising split/merge paths.
  BTree<int64_t> tree;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert(i);
  Random rng(11);
  for (auto _ : state) {
    const auto key =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(n)));
    tree.Erase(key);
    tree.Insert(key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_BTreeChurn)->Arg(16384)->Arg(131072);

void BM_IndexKeyCompare(benchmark::State& state) {
  xia::storage::IndexKey a;
  a.type = xia::xpath::ValueType::kString;
  a.str = "EnergySectorValueString";
  a.rid = {1, 2};
  xia::storage::IndexKey b = a;
  b.rid = {1, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
    benchmark::DoNotOptimize(b < a);
  }
}
BENCHMARK(BM_IndexKeyCompare);

}  // namespace

BENCHMARK_MAIN();
