// Parallel advising: advise-phase wall time and speedup vs worker-thread
// count, for the two most probe-heavy search algorithms.
//
// Expected shape: near-linear speedup while threads <= physical cores
// (the advise phases are what-if optimizer probes — pure CPU over
// per-worker scratch catalogs), flattening at the memory-bandwidth /
// core-count ceiling. On a single-core host every point degenerates to
// ~1.0x, but the recommendation-equality checks still run.

#include <thread>

#include "bench/bench_common.h"

namespace {

using namespace xia;         // NOLINT
using namespace xia::bench;  // NOLINT

bool SameRecommendation(const advisor::Recommendation& a,
                        const advisor::Recommendation& b) {
  if (a.indexes.size() != b.indexes.size()) return false;
  for (size_t i = 0; i < a.indexes.size(); ++i) {
    if (a.indexes[i].collection != b.indexes[i].collection ||
        a.indexes[i].pattern.ToString() != b.indexes[i].pattern.ToString()) {
      return false;
    }
  }
  return a.benefit == b.benefit && a.base_cost == b.base_cost &&
         a.optimizer_calls == b.optimizer_calls;
}

}  // namespace

int main() {
  BenchJsonWriter bench_json("parallel_advisor");

  auto ctx = MakeContext();
  const engine::Workload workload = MixedWorkload(*ctx);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<advisor::SearchAlgorithm> algorithms = {
      advisor::SearchAlgorithm::kGreedyWithHeuristics,
      advisor::SearchAlgorithm::kTopDownFull,
  };
  bench_json.set_threads(thread_counts.back());

  PrintHeader("Parallel advising: seconds (speedup) vs worker threads");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-22s", "algorithm");
  for (size_t t : thread_counts) std::printf("        j=%zu", t);
  std::printf("\n");

  bool all_equal = true;
  for (advisor::SearchAlgorithm algo : algorithms) {
    std::printf("%-22s", advisor::SearchAlgorithmName(algo));
    advisor::Recommendation serial;
    double serial_seconds = 0;
    for (size_t t : thread_counts) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = 10.0 * 1024 * 1024;
      options.threads = t;
      auto rec = Unwrap(ctx->advisor->Recommend(workload, options),
                        "recommend");
      if (t == 1) {
        serial = rec;
        serial_seconds = rec.advisor_seconds;
        std::printf("  %8.4fs ", rec.advisor_seconds);
      } else {
        all_equal = all_equal && SameRecommendation(serial, rec);
        std::printf("%6.3fs/%4.2fx",
                    rec.advisor_seconds,
                    rec.advisor_seconds > 0
                        ? serial_seconds / rec.advisor_seconds
                        : 0.0);
      }
      bench_json.Checkpoint(StringPrintf(
          "%s_j%zu", advisor::SearchAlgorithmName(algo), t));
    }
    std::printf("\n");
  }

  std::printf("\nrecommendations identical across thread counts: %s\n",
              all_equal ? "yes" : "NO (BUG)");
  return all_equal ? 0 : 1;
}
