// Figure 4: generalization to unseen queries — estimated speedup.
//
// The 20-query test workload is the 11 TPoX queries plus 9 synthetic
// queries. The advisor trains on the first n queries (n = 1..20) and the
// recommended configuration is evaluated on the *entire* test workload,
// with a budget large enough to hold general indexes (the paper uses 2 GB
// against a 95 MB All-Index; we use the same ~21x multiple).
//
// Expected shape: both curves rise toward the All-Index reference as n
// grows, but top-down lite sits clearly above greedy+heuristics at small
// n — general indexes cover unseen queries, specific ones do not.

#include "advisor/benefit.h"
#include "advisor/candidates.h"
#include "bench/bench_common.h"

namespace {

using namespace xia;         // NOLINT
using namespace xia::bench;  // NOLINT

// Estimated speedup of a recommendation on the full test workload:
// cost(no indexes) / cost(with the recommended patterns virtual).
double TestWorkloadSpeedup(BenchContext* ctx,
                           const engine::Workload& test_workload,
                           const advisor::Recommendation& rec) {
  // Build a one-candidate-per-recommended-index set so the evaluator can
  // score the configuration on the test workload.
  advisor::CandidateSet set;
  std::vector<int> config;
  for (const auto& ri : rec.indexes) {
    advisor::Candidate c;
    c.id = static_cast<int>(set.candidates.size());
    c.collection = ri.collection;
    c.pattern = ri.pattern;
    // Affected set: every test statement on the collection (correct and
    // conservative; the evaluator prunes by collection).
    for (size_t s = 0; s < test_workload.size(); ++s) {
      if (test_workload[s].collection() == ri.collection) {
        c.affected.push_back(s);
      }
    }
    c.covered_basics = {c.id};
    config.push_back(c.id);
    set.candidates.push_back(std::move(c));
  }
  set.basic_count = set.candidates.size();
  if (Status s = advisor::PopulateStatistics(&set, ctx->statistics,
                                             storage::DefaultCostConstants());
      !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  storage::Catalog catalog(&ctx->store, &ctx->statistics);
  advisor::BenefitEvaluator evaluator(&test_workload, &set, &catalog,
                                      &ctx->statistics, &ctx->store,
                                      advisor::BenefitEvaluator::Options{});
  if (Status s = evaluator.Initialize(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return Unwrap(evaluator.ConfigurationSpeedup(config), "speedup");
}

}  // namespace

int main() {
  xia::bench::BenchJsonWriter bench_json("fig4_generalization");
  auto ctx = MakeContext();
  const engine::Workload test_workload = MixedWorkload(*ctx);
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(test_workload),
                          "all-index");
  const double budget = 21.0 * all_index.total_size_bytes;

  PrintHeader("Figure 4: generalization to unseen queries (estimated)");
  std::printf("Test workload: %zu queries. Budget: %s (21x AllIndex).\n\n",
              test_workload.size(), HumanBytes(budget).c_str());
  std::printf("%-8s %-14s %-14s %-14s\n", "train n", "topdn-lite",
              "heuristics", "all-index");

  for (size_t n = 1; n <= test_workload.size(); ++n) {
    engine::Workload training(test_workload.begin(),
                              test_workload.begin() + static_cast<long>(n));
    double lite = 0;
    double heur = 0;
    for (advisor::SearchAlgorithm algo :
         {advisor::SearchAlgorithm::kTopDownLite,
          advisor::SearchAlgorithm::kGreedyWithHeuristics}) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = budget;
      auto rec =
          Unwrap(ctx->advisor->Recommend(training, options), "recommend");
      const double speedup = TestWorkloadSpeedup(ctx.get(), test_workload, rec);
      if (algo == advisor::SearchAlgorithm::kTopDownLite) {
        lite = speedup;
      } else {
        heur = speedup;
      }
    }
    std::printf("%-8zu %-14.2f %-14.2f %-14.2f\n", n, lite, heur,
                all_index.est_speedup);
  }
  std::printf("\nPaper shape check: top-down lite dominates"
              " greedy+heuristics at small n and\nboth approach the"
              " All-Index reference as the training set covers the test\n"
              "workload.\n");
  return 0;
}
