// Micro-benchmarks (google-benchmark): XPath parsing, evaluation over
// generated documents, and the containment test at the heart of index
// matching.

#include <benchmark/benchmark.h>

#include "tpox/tpox_data.h"
#include "util/random.h"
#include "xpath/containment.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace {

using namespace xia;  // NOLINT

void BM_XPathParse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = xpath::ParseQuery(
        "/Security[Yield > 4.5][SecInfo/*/Sector = \"Energy\"]/Name");
    benchmark::DoNotOptimize(q.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XPathParse);

void BM_XPathEvaluateLinear(benchmark::State& state) {
  Random rng(1);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(tpox::GenerateSecurityDocument(static_cast<size_t>(i),
                                                  &rng));
  }
  const auto pattern = *xpath::ParsePattern("/Security/SecInfo/*/Sector");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        xpath::EvaluateLinear(docs[i++ % docs.size()], pattern));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XPathEvaluateLinear);

void BM_XPathEvaluateDescendant(benchmark::State& state) {
  Random rng(2);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(tpox::GenerateCustAccDocument(static_cast<size_t>(i),
                                                 &rng));
  }
  const auto pattern = *xpath::ParsePattern("//Amount");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        xpath::EvaluateLinear(docs[i++ % docs.size()], pattern));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XPathEvaluateDescendant);

void BM_XPathEvaluateWithPredicates(benchmark::State& state) {
  Random rng(3);
  std::vector<xml::Document> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(tpox::GenerateSecurityDocument(static_cast<size_t>(i),
                                                  &rng));
  }
  const auto query = *xpath::ParseQuery(
      "/Security[Yield > 4.5][SecInfo/*/Sector = \"Energy\"]");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xpath::Evaluate(docs[i++ % docs.size()], query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XPathEvaluateWithPredicates);

void BM_ContainmentShallow(benchmark::State& state) {
  const auto index = *xpath::ParsePattern("/Security//*");
  const auto query = *xpath::ParsePattern("/Security/SecInfo/*/Sector");
  for (auto _ : state) {
    benchmark::DoNotOptimize(xpath::Covers(index, query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContainmentShallow);

void BM_ContainmentDeepGappy(benchmark::State& state) {
  // Worst-ish case: many descendant gaps force the subset-family closure.
  const auto index = *xpath::ParsePattern("//a//*//b//*//c//*");
  const auto query = *xpath::ParsePattern("/a/x/y/b/z/c//q//c/w");
  for (auto _ : state) {
    benchmark::DoNotOptimize(xpath::Covers(index, query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContainmentDeepGappy);

}  // namespace

BENCHMARK_MAIN();
