// Index-build and ingest fast-path benchmark. Emits BENCH_index_build.json.
//
// Three experiments:
//
//  1. bulk vs incremental index build — the same PathValueIndex built by
//     incremental B-tree insertion (the reference path), by bulk load
//     (extract -> sort -> bottom-up pack), and by bulk load with parallel
//     key extraction. All three must produce identical ContentDigests;
//     the bulk path is the raw-speed win (target: >= 3x at >= 100k
//     entries).
//
//  2. TPoX ingest — end-to-end ingest of serialized TPoX security
//     documents into a store carrying three value indexes. The "before"
//     pipeline is a faithful in-file replica of the seed's, end to end:
//     seed parser (char-at-a-time scanning, one heap std::string per
//     name, unconditional entity decoding, no reserves), seed document
//     representation (per-node label strings, per-parent children
//     vectors), seed store accounting (full-document byte scan on add),
//     seed extraction (fresh result vector per document per pattern),
//     and per-document incremental index insertion. The "after" pipeline
//     is this tree's fast path: memchr-scanning interning parser into
//     the intrusively-linked node arena, O(1)-accounted batch adds, and
//     one BuildBulk per index at the end. Both parsers emit nodes in the
//     same order and both stores assign ids 0..N-1, so the before-side
//     incremental indexes and the after-side bulk indexes must agree on
//     every content digest (target: >= 2x end-to-end docs/sec).
//
//  3. online build stall window — build an index online while a mutator
//     thread writes under the exclusive lock; report the write-stall
//     window (exclusive-lock time) as a fraction of the whole build
//     (target: <= 10%), and verify the online result is digest-identical
//     to an offline rebuild of the final state.
//
// `--smoke` shrinks every size for the CI smoke test (bench label); the
// speedup *targets* are asserted only at full size, where they are
// meaningful.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <shared_mutex>
#include <thread>

#include "bench/bench_common.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/online_build.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia::bench {
namespace {

xpath::IndexPattern SymbolPattern() {
  return xpath::IndexPattern{*xpath::ParsePattern("/Security/Symbol"),
                             xpath::ValueType::kString};
}

// One index entry per document, distinct keys. Symbols are
// hash-scrambled (odd-constant multiplication is a bijection on 2^64),
// so keys arrive in random order as real data does — ascending keys
// would hand the incremental path its best case (pure rightmost-leaf
// appends) and misstate the bulk-load win.
xml::Document EntryDoc(size_t seq) {
  xml::Document doc;
  const auto root = doc.AddRoot("Security");
  const uint64_t scrambled =
      static_cast<uint64_t>(seq) * 0x9E3779B97F4A7C15ull;
  doc.AddElement(root, "Symbol",
                 StringPrintf("SYM%016llx",
                              static_cast<unsigned long long>(scrambled)));
  doc.AddElement(root, "Yield", StringPrintf("%.1f", (seq % 97) / 10.0));
  return doc;
}

// ---------------------------------------------------------------------
// Experiment 1: bulk vs incremental build.

void BenchBuildPaths(BenchJsonWriter* json, size_t entries, bool full) {
  PrintHeader(StringPrintf("index build: %zu entries", entries));
  storage::DocumentStore store;
  storage::Collection* coll = *store.CreateCollection("C");
  for (size_t i = 0; i < entries; ++i) coll->Add(EntryDoc(i));

  const xpath::IndexPattern pattern = SymbolPattern();
  Stopwatch sw;
  storage::PathValueIndex incremental("inc", "C", pattern);
  incremental.Build(*coll);
  const double incremental_s = sw.ElapsedSeconds();

  sw.Restart();
  storage::PathValueIndex bulk_serial("bulk", "C", pattern);
  bulk_serial.BuildBulk(*coll);
  const double bulk_serial_s = sw.ElapsedSeconds();

  util::ThreadPool pool(util::ThreadPool::DefaultThreadCount());
  sw.Restart();
  storage::PathValueIndex bulk_parallel("bulkp", "C", pattern);
  bulk_parallel.BuildBulk(*coll, &pool);
  const double bulk_parallel_s = sw.ElapsedSeconds();

  const uint32_t digest = incremental.ContentDigest();
  if (bulk_serial.ContentDigest() != digest ||
      bulk_parallel.ContentDigest() != digest) {
    std::fprintf(stderr, "fatal: bulk build diverged from incremental\n");
    std::exit(1);
  }
  const double speedup = incremental_s / std::max(bulk_serial_s, 1e-9);
  const double speedup_p = incremental_s / std::max(bulk_parallel_s, 1e-9);
  std::printf("  incremental   %8.3fs\n", incremental_s);
  std::printf("  bulk (serial) %8.3fs  (%.2fx)\n", bulk_serial_s, speedup);
  std::printf("  bulk (pool)   %8.3fs  (%.2fx)\n", bulk_parallel_s,
              speedup_p);
  std::printf("  digests identical: 0x%08x\n", digest);
  json->AddResult(StringPrintf(
      "{\"experiment\": \"build\", \"entries\": %zu, "
      "\"incremental_seconds\": %.6f, \"bulk_serial_seconds\": %.6f, "
      "\"bulk_parallel_seconds\": %.6f, \"speedup_bulk\": %.2f, "
      "\"speedup_bulk_parallel\": %.2f}",
      entries, incremental_s, bulk_serial_s, bulk_parallel_s, speedup,
      speedup_p));
  if (full && speedup < 3.0) {
    std::fprintf(stderr,
                 "fatal: bulk build %.2fx < 3x target at %zu entries\n",
                 speedup, entries);
    std::exit(1);
  }
}

// ---------------------------------------------------------------------
// Experiment 2: end-to-end TPoX ingest, seed pipeline vs fast path.

// The seed's document representation: a heap std::string per label and
// value in every node (no interning), children vectors grown from zero,
// no arena pre-sizing. SeedDoc's mutators replicate the seed Document's
// allocation behavior exactly — including the double allocation in the
// "@name" attribute spelling.
struct SeedNode {
  std::string label;
  std::string value;
  int32_t parent = -1;
  std::vector<int32_t> children;
};

struct SeedDoc {
  std::vector<SeedNode> nodes;

  int32_t AddRoot(const std::string& label) {
    SeedNode n;
    n.label = label;
    nodes.push_back(std::move(n));
    return 0;
  }
  int32_t AddChild(int32_t parent, std::string label, std::string value) {
    SeedNode n;
    n.label = std::move(label);
    n.value = std::move(value);
    n.parent = parent;
    const int32_t idx = static_cast<int32_t>(nodes.size());
    nodes.push_back(std::move(n));
    nodes[static_cast<size_t>(parent)].children.push_back(idx);
    return idx;
  }
  int32_t AddAttribute(int32_t parent, const std::string& name,
                       const std::string& value) {
    return AddChild(parent, "@" + std::string(name), value);
  }
  void SetValue(int32_t node, std::string_view value) {
    nodes[static_cast<size_t>(node)].value = std::string(value);
  }
};

// A line-for-line port of the seed's ParserImpl (char-at-a-time scan
// loops, <cctype> classification, one heap std::string per parsed name,
// unconditional DecodeEntities string building, accumulate-then-trim-
// then-copy element values), retargeted at SeedDoc. It lives in this
// file so the "before" side of the comparison survives the production
// parser moving on.
class SeedParser {
 public:
  explicit SeedParser(std::string_view text) : text_(text) {}

  // Parses into `out`; false on malformed input (the bench feeds it only
  // documents the production serializer emitted).
  bool Run(SeedDoc* out) { return ParseElement(out, -1); }

 private:
  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }
  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }
  bool ParseName(std::string* out) {
    if (Eof() || !IsNameStart(Peek())) return false;
    const size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return true;
  }
  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out += raw[i++];
        continue;
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else {
        out.append(raw.substr(i, semi - i + 1));
      }
      i = semi + 1;
    }
    return out;
  }
  bool ParseAttributes(SeedDoc* doc, int32_t element) {
    for (;;) {
      SkipWhitespace();
      if (Eof()) return false;
      if (Peek() == '>' || Peek() == '/') return true;
      std::string name;
      if (!ParseName(&name)) return false;
      SkipWhitespace();
      if (!Consume('=')) return false;
      SkipWhitespace();
      const char quote = Eof() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') return false;
      ++pos_;
      const size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return false;
      const std::string value =
          DecodeEntities(text_.substr(start, pos_ - start));
      ++pos_;
      doc->AddAttribute(element, name, value);
    }
  }
  bool ParseElement(SeedDoc* doc, int32_t parent) {
    if (!Consume('<')) return false;
    std::string name;
    if (!ParseName(&name)) return false;
    const int32_t element = (parent < 0) ? doc->AddRoot(name)
                                         : doc->AddChild(parent, name, "");
    if (!ParseAttributes(doc, element)) return false;
    if (ConsumeLiteral("/>")) return true;
    if (!Consume('>')) return false;

    std::string text;
    for (;;) {
      if (Eof()) return false;
      if (Peek() == '<') {
        if (ConsumeLiteral("</")) {
          std::string close;
          if (!ParseName(&close)) return false;
          if (close != name) return false;
          SkipWhitespace();
          if (!Consume('>')) return false;
          break;
        }
        if (!ParseElement(doc, element)) return false;
      } else {
        const size_t start = pos_;
        while (!Eof() && Peek() != '<') ++pos_;
        text += DecodeEntities(text_.substr(start, pos_ - start));
      }
    }
    const std::string_view trimmed = Trim(text);
    if (!trimmed.empty()) doc->SetValue(element, trimmed);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// The seed's store accounting: documents retained behind a unique_ptr
// each, with a full-document byte scan on add (the seed's
// Collection::Add recomputed ApproximateByteSize per insert).
struct SeedStore {
  std::vector<std::unique_ptr<SeedDoc>> docs;
  size_t total_bytes = 0;

  int32_t Add(SeedDoc doc) {
    size_t bytes = 0;
    for (const SeedNode& n : doc.nodes) {
      bytes += 2 * n.label.size() + n.value.size() + 16;
    }
    total_bytes += bytes;
    docs.push_back(std::make_unique<SeedDoc>(std::move(doc)));
    return static_cast<int32_t>(docs.size() - 1);
  }
};

// The seed's linear-path evaluator over SeedDoc: recursive walk of the
// per-parent children vectors, one freshly allocated result vector per
// document per pattern (the seed's EvaluateLinear returned by value).
void SeedEvalSteps(const SeedDoc& doc, int32_t parent,
                   const std::vector<xpath::Step>& steps, size_t step_index,
                   std::vector<int32_t>* out) {
  const xpath::Step& step = steps[step_index];
  const bool descend = step.axis == xpath::Axis::kDescendant;
  for (int32_t c : doc.nodes[static_cast<size_t>(parent)].children) {
    const SeedNode& child = doc.nodes[static_cast<size_t>(c)];
    if (step.MatchesLabel(child.label)) {
      if (step_index + 1 == steps.size()) {
        out->push_back(c);
      } else {
        SeedEvalSteps(doc, c, steps, step_index + 1, out);
      }
    }
    if (descend && child.label[0] != '@') {
      SeedEvalSteps(doc, c, steps, step_index, out);
    }
  }
}

std::vector<int32_t> SeedEvaluateLinear(const SeedDoc& doc,
                                        const xpath::Path& path) {
  std::vector<int32_t> out;
  if (doc.nodes.empty() || path.empty()) return out;
  if (path.step(0).MatchesLabel(doc.nodes[0].label)) {
    if (path.size() == 1) {
      out.push_back(0);
    } else {
      SeedEvalSteps(doc, 0, path.steps(), 1, &out);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// The seed's per-document incremental maintenance: extract this pattern's
// entries seed-style and insert them one at a time. The keys land in the
// real PathValueIndex so the before-side result stays digest-comparable
// with the after-side bulk build (both parsers emit nodes in the same
// order, so the (doc, node) RIDs agree).
void SeedMaintain(const SeedDoc& doc, int32_t id,
                  storage::PathValueIndex* index) {
  const xpath::IndexPattern& pattern = index->pattern();
  for (int32_t n : SeedEvaluateLinear(doc, pattern.path)) {
    const std::string& value = doc.nodes[static_cast<size_t>(n)].value;
    if (value.empty()) continue;
    storage::IndexKey key;
    key.type = pattern.type;
    key.rid = {id, n};
    if (pattern.type == xpath::ValueType::kNumeric) {
      if (!ParseDouble(value, &key.num)) continue;
      key.str.clear();
    } else {
      key.str = value;
    }
    index->InsertKey(key);
  }
}

std::vector<xpath::IndexPattern> IngestPatterns() {
  return {
      xpath::IndexPattern{*xpath::ParsePattern("/Security/Symbol"),
                          xpath::ValueType::kString},
      xpath::IndexPattern{*xpath::ParsePattern("/Security/Yield"),
                          xpath::ValueType::kNumeric},
      xpath::IndexPattern{*xpath::ParsePattern("/Security/SecInfo/*/Sector"),
                          xpath::ValueType::kString},
  };
}

void BenchTpoxIngest(BenchJsonWriter* json, size_t docs, bool full) {
  PrintHeader(StringPrintf("tpox ingest: %zu documents, 3 indexes", docs));
  Random rng(42);
  std::vector<std::string> texts;
  texts.reserve(docs);
  size_t total_bytes = 0;
  for (size_t i = 0; i < docs; ++i) {
    texts.push_back(xml::Serialize(tpox::GenerateSecurityDocument(i, &rng)));
    total_bytes += texts.back().size();
  }
  const auto patterns = IngestPatterns();

  // Each pipeline runs twice — a warmup round whose stores are torn down
  // again, then the measured round. The measured round recycles allocator
  // chunks of its own pipeline's size classes (steady-state ingest), so
  // the comparison is CPU work rather than one-time heap-growth costs
  // that depend on which pipeline happened to run first in this process.

  // ---- Before: the seed pipeline, end to end, in one timed loop:
  // seed parse -> seed store -> seed extraction -> incremental insert.
  // Per-leg stopwatches split the total for the report (two clock reads
  // per document against ~10us of work).
  std::vector<std::unique_ptr<storage::PathValueIndex>> incr;
  size_t seed_nodes = 0;
  double seed_parse_s = 0;
  double incr_maint_s = 0;
  double before_s = 0;
  for (int round = 0; round < 2; ++round) {
    incr.clear();
    for (size_t p = 0; p < patterns.size(); ++p) {
      incr.push_back(std::make_unique<storage::PathValueIndex>(
          StringPrintf("incr%zu", p), "SDOC", patterns[p]));
    }
    SeedStore seed_store;
    seed_nodes = 0;
    seed_parse_s = 0;
    incr_maint_s = 0;
    Stopwatch total_sw;
    Stopwatch leg_sw;
    for (const std::string& text : texts) {
      leg_sw.Restart();
      SeedDoc doc;
      if (!SeedParser(text).Run(&doc)) {
        std::fprintf(stderr, "fatal: seed replica failed to parse\n");
        std::exit(1);
      }
      seed_parse_s += leg_sw.ElapsedSeconds();
      leg_sw.Restart();
      const int32_t id = seed_store.Add(std::move(doc));
      const SeedDoc& stored = *seed_store.docs[static_cast<size_t>(id)];
      seed_nodes += stored.nodes.size();
      for (auto& index : incr) SeedMaintain(stored, id, index.get());
      incr_maint_s += leg_sw.ElapsedSeconds();
    }
    before_s = total_sw.ElapsedSeconds();
    // seed_store is torn down here each round.
  }
  // Capture the before side's content identity as scalars and tear the
  // incremental indexes down too: keeping ~90k B-tree entries and their
  // statistics maps resident — allocated interleaved with the now-freed
  // seed documents — would fragment the heap the after side runs in.
  std::vector<uint32_t> incr_digests;
  std::vector<size_t> incr_counts;
  for (const auto& index : incr) {
    incr_digests.push_back(index->ContentDigest());
    incr_counts.push_back(index->entry_count());
  }
  incr.clear();

  // ---- After: fast parse + batched ingest (hot key extraction per
  // document, one bulk load per index at the end). ----
  std::unique_ptr<storage::DocumentStore> store_bulk;
  std::vector<std::unique_ptr<storage::PathValueIndex>> bulk;
  size_t fast_nodes = 0;
  double fast_parse_add_s = 0;
  double bulk_build_s = 0;
  for (int round = 0; round < 2; ++round) {
    store_bulk = std::make_unique<storage::DocumentStore>();
    storage::Collection* coll_bulk = *store_bulk->CreateCollection("SDOC");
    bulk.clear();
    std::vector<storage::PathValueIndex*> bulk_ptrs;
    for (size_t p = 0; p < patterns.size(); ++p) {
      bulk.push_back(std::make_unique<storage::PathValueIndex>(
          StringPrintf("bulk%zu", p), "SDOC", patterns[p]));
      bulk_ptrs.push_back(bulk.back().get());
    }
    storage::BulkIngestor ingestor(coll_bulk, bulk_ptrs);
    fast_nodes = 0;
    Stopwatch sw;
    for (const std::string& text : texts) {
      auto doc = xml::Parse(text);
      if (!doc.ok()) {
        std::fprintf(stderr, "fatal: %s\n", doc.status().ToString().c_str());
        std::exit(1);
      }
      fast_nodes += doc->size();
      ingestor.Add(*std::move(doc));
    }
    fast_parse_add_s = sw.ElapsedSeconds();
    sw.Restart();
    ingestor.Finish();
    bulk_build_s = sw.ElapsedSeconds();
  }
  const double after_s = fast_parse_add_s + bulk_build_s;
  if (seed_nodes != fast_nodes) {
    std::fprintf(stderr, "fatal: parser node counts diverge (%zu vs %zu)\n",
                 seed_nodes, fast_nodes);
    std::exit(1);
  }

  for (size_t p = 0; p < patterns.size(); ++p) {
    if (incr_digests[p] != bulk[p]->ContentDigest()) {
      std::fprintf(stderr, "fatal: ingest index %zu digests diverge\n", p);
      std::exit(1);
    }
    if (incr_counts[p] == 0) {
      std::fprintf(stderr, "fatal: ingest index %zu is empty\n", p);
      std::exit(1);
    }
  }

  const double speedup = before_s / std::max(after_s, 1e-9);
  std::printf("  before (seed parse + incremental)  %8.3fs"
              "  (parse %.3fs, store+index %.3fs)\n",
              before_s, seed_parse_s, incr_maint_s);
  std::printf("  after  (fast parse + bulk build)   %8.3fs"
              "  (parse+add %.3fs, bulk %.3fs)  (%.2fx)\n",
              after_s, fast_parse_add_s, bulk_build_s, speedup);
  std::printf("  seed parse %.0f docs/s -> fast parse+add %.0f docs/s;"
              " digests identical; tag pool %zu labels\n",
              docs / std::max(seed_parse_s, 1e-9),
              docs / std::max(fast_parse_add_s, 1e-9), xml::Tag::PoolSize());
  json->AddResult(StringPrintf(
      "{\"experiment\": \"ingest\", \"docs\": %zu, \"bytes\": %zu, "
      "\"before_seconds\": %.6f, \"seed_parse_seconds\": %.6f, "
      "\"incremental_index_seconds\": %.6f, \"after_seconds\": %.6f, "
      "\"fast_parse_add_seconds\": %.6f, \"bulk_build_seconds\": %.6f, "
      "\"speedup\": %.2f, \"tag_pool_size\": %zu}",
      docs, total_bytes, before_s, seed_parse_s, incr_maint_s, after_s,
      fast_parse_add_s, bulk_build_s, speedup, xml::Tag::PoolSize()));
  if (full && speedup < 2.0) {
    std::fprintf(stderr, "fatal: ingest %.2fx < 2x target\n", speedup);
    std::exit(1);
  }
}

// ---------------------------------------------------------------------
// Experiment 3: online build stall window under a write storm.

void BenchOnlineStall(BenchJsonWriter* json, size_t docs, bool full) {
  PrintHeader(StringPrintf("online build stall: %zu documents", docs));
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  storage::Catalog catalog(&store, &stats);
  std::shared_mutex db_mu;
  storage::Collection* coll = *store.CreateCollection("C");
  for (size_t i = 0; i < docs; ++i) coll->Add(EntryDoc(i));

  // Offline reference: the whole build time IS the write-stall window.
  Stopwatch sw;
  {
    std::unique_lock<std::shared_mutex> lock(db_mu);
    if (!catalog.CreateIndex("offline", "C", SymbolPattern()).ok()) {
      std::fprintf(stderr, "fatal: offline build failed\n");
      std::exit(1);
    }
  }
  const double offline_s = sw.ElapsedSeconds();

  std::atomic<bool> done{false};
  std::atomic<size_t> writes{0};
  std::thread mutator([&] {
    size_t seq = 10 * docs;
    while (!done.load(std::memory_order_acquire)) {
      std::unique_lock<std::shared_mutex> lock(db_mu);
      const xml::DocId id = coll->Add(EntryDoc(seq++));
      catalog.NotifyInsert("C", id, coll->Get(id));
      writes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  storage::OnlineBuildReport report;
  auto built = storage::BuildIndexOnline(&catalog, &db_mu, "online", "C",
                                         SymbolPattern(), {}, nullptr,
                                         &report);
  done.store(true, std::memory_order_release);
  mutator.join();
  if (!built.ok()) {
    std::fprintf(stderr, "fatal: %s\n", built.status().ToString().c_str());
    std::exit(1);
  }

  // The installed index must equal an offline rebuild of the final state.
  storage::PathValueIndex oracle("oracle", "C", SymbolPattern());
  oracle.Build(*coll);
  if ((*built)->physical->ContentDigest() != oracle.ContentDigest()) {
    std::fprintf(stderr, "fatal: online build diverged under writes\n");
    std::exit(1);
  }

  const double stall_frac =
      report.exclusive_seconds / std::max(report.total_seconds, 1e-9);
  std::printf("  offline build (lock held)  %8.3fs\n", offline_s);
  std::printf("  online total               %8.3fs\n", report.total_seconds);
  std::printf("  online write-stall window  %8.3fs  (%.1f%% of build)\n",
              report.exclusive_seconds, 100.0 * stall_frac);
  std::printf("  concurrent writes %zu, delta ops replayed %zu\n",
              writes.load(), report.delta_ops_applied);
  json->AddResult(StringPrintf(
      "{\"experiment\": \"online_stall\", \"docs\": %zu, "
      "\"offline_seconds\": %.6f, \"online_total_seconds\": %.6f, "
      "\"online_stall_seconds\": %.6f, \"stall_fraction\": %.4f, "
      "\"concurrent_writes\": %zu, \"delta_ops\": %zu}",
      docs, offline_s, report.total_seconds, report.exclusive_seconds,
      stall_frac, writes.load(), report.delta_ops_applied));
  if (full && stall_frac > 0.10) {
    std::fprintf(stderr, "fatal: stall window %.1f%% > 10%% target\n",
                 100.0 * stall_frac);
    std::exit(1);
  }
}

}  // namespace
}  // namespace xia::bench

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const bool full = !smoke;
  xia::bench::BenchJsonWriter json("index_build");
  json.set_threads(xia::util::ThreadPool::DefaultThreadCount());
  // Ingest runs first: it is the throughput experiment most sensitive to
  // allocator state, so it gets the process's pristine heap. The build
  // and stall experiments compare structures built within one experiment
  // and are insensitive to what ran before them.
  xia::bench::BenchTpoxIngest(&json, full ? 30000 : 300, full);
  xia::bench::BenchBuildPaths(&json, full ? 150000 : 3000, full);
  xia::bench::BenchOnlineStall(&json, full ? 120000 : 3000, full);
  json.Write();
  return 0;
}
