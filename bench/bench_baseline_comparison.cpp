// Tight coupling vs. decoupled baseline — the paper's §I/§II motivating
// claim, quantified.
//
// The decoupled baseline (modeled on [19]/[20]) enumerates every data path
// as a candidate and ranks them with an optimizer-independent heuristic.
// Both advisors get the same budget; both recommendations are then judged
// by the REAL system: estimated workload speedup under the actual
// optimizer, and the fraction of recommended indexes that appear in any
// best plan ("there is no guarantee that the optimizer will use the
// recommended indexes").

#include <set>

#include "advisor/baseline.h"
#include "bench/bench_common.h"
#include "engine/normalizer.h"

namespace {

using namespace xia;         // NOLINT
using namespace xia::bench;  // NOLINT

struct Judged {
  double est_speedup = 0;
  size_t recommended = 0;
  size_t used_in_plans = 0;
  double total_size = 0;
};

// Materializes `indexes` virtually and judges them with the real optimizer.
Judged Judge(BenchContext* ctx, const engine::Workload& workload,
             const std::vector<advisor::RecommendedIndex>& indexes) {
  Judged out;
  out.recommended = indexes.size();
  storage::Catalog catalog(&ctx->store, &ctx->statistics);
  int i = 0;
  for (const auto& ri : indexes) {
    auto created = catalog.CreateVirtualIndex(
        StringPrintf("judge_%d", i++), ri.collection, ri.pattern);
    if (!created.ok()) {
      std::fprintf(stderr, "fatal: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    out.total_size += static_cast<double>(ri.size_bytes);
  }
  optimizer::Optimizer opt(&ctx->store, &catalog, &ctx->statistics);
  double base_cost = 0;
  double with_cost = 0;
  std::set<std::string> used;
  for (const auto& stmt : workload) {
    base_cost += stmt.frequency *
                 Unwrap(opt.OptimizeWithoutIndexes(stmt), "base").est_cost;
    const optimizer::Plan plan = Unwrap(opt.Optimize(stmt), "plan");
    with_cost += stmt.frequency * plan.est_cost;
    for (const auto& leg : plan.legs) used.insert(leg.index_name);
  }
  out.used_in_plans = used.size();
  out.est_speedup = with_cost <= 0 ? 1.0 : base_cost / with_cost;
  return out;
}

}  // namespace

int main() {
  xia::bench::BenchJsonWriter bench_json("baseline_comparison");
  auto ctx = MakeContext();
  const engine::Workload workload = QueryWorkload();
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index");

  advisor::DecoupledAdvisor baseline(&ctx->store, &ctx->statistics);

  PrintHeader("Tight coupling vs decoupled baseline (SII comparison)");
  advisor::DecoupledOptions count_options;
  const size_t baseline_candidates =
      Unwrap(baseline.CountCandidates(workload, count_options), "count");
  std::printf("candidate sets: tight advisor %zu (optimizer-enumerated + "
              "generalized),\n                decoupled baseline %zu (every "
              "valued data path)\n\n",
              Unwrap(ctx->advisor->BuildCandidates(workload, true),
                     "candidates")
                  .size(),
              baseline_candidates);

  std::printf("%-10s %-22s %8s %8s %12s %10s\n", "budget", "advisor",
              "speedup", "#idx", "used-in-plan", "size");
  for (double multiple : {0.5, 1.0, 2.0}) {
    const double budget = multiple * all_index.total_size_bytes;
    // Tight advisor.
    advisor::AdvisorOptions tight_options;
    tight_options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
    tight_options.disk_budget_bytes = budget;
    auto tight = Unwrap(ctx->advisor->Recommend(workload, tight_options),
                        "tight");
    const Judged tj = Judge(ctx.get(), workload, tight.indexes);
    std::printf("%-10s %-22s %7.2fx %8zu %7zu/%-4zu %10s\n",
                StringPrintf("%.1fx", multiple).c_str(), "tight (heuristics)",
                tj.est_speedup, tj.recommended, tj.used_in_plans,
                tj.recommended, HumanBytes(tj.total_size).c_str());

    // Decoupled baseline.
    advisor::DecoupledOptions base_options;
    base_options.disk_budget_bytes = budget;
    auto rec = Unwrap(baseline.Recommend(workload, base_options), "baseline");
    const Judged bj = Judge(ctx.get(), workload, rec.indexes);
    std::printf("%-10s %-22s %7.2fx %8zu %7zu/%-4zu %10s\n", "",
                "decoupled (XIST-like)", bj.est_speedup, bj.recommended,
                bj.used_in_plans, bj.recommended,
                HumanBytes(bj.total_size).c_str());
  }
  std::printf(
      "\nShape check (SII): the decoupled baseline floods its budget with\n"
      "indexes the optimizer never uses and reaches a lower speedup at\n"
      "every budget; tight coupling guarantees recommended indexes are\n"
      "matched and costed exactly as the optimizer will use them.\n");
  return 0;
}
