// Beta sensitivity (§VI-A): the greedy-with-heuristics size-admission
// condition Size(x_general) <= (1 + beta) * sum Size(x_i) gates how freely
// general indexes enter the configuration. The paper reports "we have
// found beta = 10% to work well". This sweep documents what the knob does
// under this reproduction's cost model: the *benefit* admission condition
// IB(x_general) >= IB(x_1..x_n) already rejects generals on the TPoX
// workload (a general index scans more entries and one more level than the
// exact-match specifics it replaces), so the configuration is flat in
// beta — consistent with Table IV, where greedy+heuristics recommends G:0
// at every budget. Beta only binds when a general is benefit-competitive,
// which requires a cost model that prices general probes at par (as DB2's
// apparently did).

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("beta_sensitivity");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = MixedWorkload(*ctx);
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index");

  PrintHeader("Beta sensitivity (greedy + heuristics, SVI-A)");
  std::printf("budget = 0.6x AllIndex = %s (cannot fit every specific index)\n\n",
              HumanBytes(0.6 * all_index.total_size_bytes).c_str());
  std::printf("%-8s %10s %8s %8s %12s\n", "beta", "speedup", "#gen",
              "#spec", "size");

  for (double beta : {0.0, 0.05, 0.10, 0.25, 0.50, 1.0, 4.0}) {
    advisor::AdvisorOptions options;
    options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
    options.disk_budget_bytes = 0.6 * all_index.total_size_bytes;
    options.beta = beta;
    auto rec = Unwrap(ctx->advisor->Recommend(workload, options),
                      "recommend");
    std::printf("%-8.2f %9.2fx %8d %8d %12s\n", beta, rec.est_speedup,
                rec.general_count, rec.specific_count,
                HumanBytes(rec.total_size_bytes).c_str());
  }
  std::printf("\nShape check: the sweep is flat — the SVI-A *benefit*"
              " condition, not the size\ncondition, is what keeps"
              " greedy+heuristics all-specific here (Table IV's G:0\n"
              "rows). Any beta on the plateau, including the paper's 0.10,"
              " is equivalent for\nthis workload.\n");
  return 0;
}
