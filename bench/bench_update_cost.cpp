// Ablation for §III maintenance-cost accounting: as the workload's update
// share grows, an advisor that charges index maintenance recommends fewer
// and narrower indexes; one that ignores maintenance keeps recommending
// the full query-optimal configuration.
//
// The paper's extended report carries this experiment; the behaviour is
// also asserted qualitatively in §III ("takes into account the cost of
// updating indexes").

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("update_cost");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();

  PrintHeader("Maintenance-cost ablation: update share vs recommendation");
  std::printf("%-14s %-26s %-26s\n", "update freq",
              "with maintenance (n, size)", "ignoring maintenance (n, size)");

  // Query side: order lookups that want order indexes.
  engine::Workload base;
  for (const char* text :
       {"for $o in c('ODOC')/FIXML/Order where $o/@ID = \"100005\" "
        "return $o",
        "for $o in c('ODOC')/FIXML/Order where $o/Instrmt/Sym = "
        "\"SYM000002\" return $o/@ID",
        "for $o in c('ODOC')/FIXML/Order[OrdQty/@Qty >= 4900] "
        "return $o/Instrmt/Sym"}) {
    auto stmt = engine::ParseStatement(text);
    if (!stmt.ok()) {
      std::fprintf(stderr, "fatal: %s\n", stmt.status().ToString().c_str());
      return 1;
    }
    base.push_back(std::move(*stmt));
  }

  for (double update_freq : {0.0, 10.0, 50.0, 200.0, 1000.0}) {
    engine::Workload workload = base;
    if (update_freq > 0) {
      Random rng(3);
      auto updates = tpox::TpoxUpdates(/*inserts=*/5, /*deletes=*/5, 1200,
                                       &rng);
      if (!updates.ok()) {
        std::fprintf(stderr, "fatal: %s\n",
                     updates.status().ToString().c_str());
        return 1;
      }
      for (auto& u : *updates) {
        u.frequency = update_freq;
        workload.push_back(std::move(u));
      }
    }

    std::string cells[2];
    for (int charge = 1; charge >= 0; --charge) {
      advisor::AdvisorOptions options;
      options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
      options.disk_budget_bytes = 10e6;
      options.charge_maintenance = (charge == 1);
      auto rec =
          Unwrap(ctx->advisor->Recommend(workload, options), "recommend");
      cells[1 - charge] = StringPrintf(
          "%zu idx, %s", rec.indexes.size(),
          HumanBytes(rec.total_size_bytes).c_str());
    }
    std::printf("%-14.0f %-26s %-26s\n", update_freq, cells[0].c_str(),
                cells[1].c_str());
  }
  std::printf("\nShape check: with maintenance charged, the configuration"
              " shrinks as the\nupdate share grows; ignoring maintenance it"
              " stays at the query-optimal size.\n");
  return 0;
}
