// XMark secondary benchmark (the paper reports XMark results in its
// extended technical report CS-2007-22): the Figure-2 style budget sweep
// and the Table-III candidate counts, on the auction-site schema.
//
// Expected shape: same qualitative behaviour as TPoX — speedups approach
// the All-Index reference with budget, generalization expands the
// candidate set — on a structurally different schema (deeper nesting,
// attribute-heavy patterns).

#include "bench/bench_common.h"
#include "tpox/xmark.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("xmark");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::XmarkScale scale;
  scale.items = 900;
  scale.auctions = 900;
  scale.persons = 450;
  if (Status s = tpox::BuildXmarkDatabase(scale, &store, &statistics);
      !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  advisor::IndexAdvisor advisor(&store, &statistics);

  auto workload = Unwrap(tpox::XmarkQueries(), "xmark queries");
  auto all_index = Unwrap(advisor.AllIndexConfiguration(workload),
                          "all-index");

  PrintHeader("XMark: estimated speedup vs disk budget (Fig. 2 analogue)");
  std::printf("All-Index: %zu indexes, %s, speedup %.2fx\n\n",
              all_index.indexes.size(),
              HumanBytes(all_index.total_size_bytes).c_str(),
              all_index.est_speedup);

  const std::vector<double> fractions = {0.25, 0.5, 1.0, 2.0};
  std::printf("%-22s", "budget (xAllIndex)");
  for (double f : fractions) std::printf("%8.2f", f);
  std::printf("\n");
  for (advisor::SearchAlgorithm algo : AllAlgorithms()) {
    std::printf("%-22s", advisor::SearchAlgorithmName(algo));
    for (double f : fractions) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = f * all_index.total_size_bytes;
      auto rec = Unwrap(advisor.Recommend(workload, options), "recommend");
      std::printf("%8.2f", rec.est_speedup);
    }
    std::printf("\n");
  }

  PrintHeader("XMark: candidate counts (Table III analogue)");
  std::printf("%-10s %-14s %-14s\n", "queries", "basic cands.",
              "total cands.");
  for (size_t queries : {10, 20, 30}) {
    Random rng(500 + queries);
    auto synthetic = Unwrap(
        tpox::GenerateSyntheticWorkload(
            statistics,
            {tpox::kXmarkItemCollection, tpox::kXmarkAuctionCollection,
             tpox::kXmarkPersonCollection},
            queries, &rng),
        "synthetic");
    auto set = Unwrap(advisor.BuildCandidates(synthetic, true), "candidates");
    std::printf("%-10zu %-14zu %-14zu\n", queries, set.basic_count,
                set.size());
  }
  std::printf("\nShape check: same qualitative behaviour as TPoX on a second"
              " schema.\n");
  return 0;
}
