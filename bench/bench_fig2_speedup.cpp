// Figure 2: estimated workload speedup vs. disk space budget, for the five
// search algorithms plus the All-Index reference configuration.
//
// Budgets are fractions/multiples of the All-Index configuration size (the
// paper's 100 MB..2 GB range brackets its 95 MB All-Index configuration
// the same way). Expected shape: speedup rises with budget toward the
// All-Index plateau; plain greedy needs noticeably more space than the
// others to get there; top-down full is at or above greedy+heuristics and
// can beat interaction-blind dynamic programming.

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("fig2_speedup");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = QueryWorkload();

  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index configuration");
  PrintHeader("Figure 2: estimated speedup vs disk budget");
  std::printf("All-Index configuration: %zu indexes, size %s, speedup %.2fx\n",
              all_index.indexes.size(),
              HumanBytes(all_index.total_size_bytes).c_str(),
              all_index.est_speedup);

  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0};

  std::printf("\n%-22s", "budget (xAllIndex)");
  for (double f : fractions) std::printf("%8.2f", f);
  std::printf("\n%-22s", "budget (bytes)");
  for (double f : fractions) {
    std::printf("%8s",
                HumanBytes(f * all_index.total_size_bytes).c_str());
  }
  std::printf("\n");

  for (advisor::SearchAlgorithm algo : AllAlgorithms()) {
    std::printf("%-22s", advisor::SearchAlgorithmName(algo));
    for (double f : fractions) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = f * all_index.total_size_bytes;
      auto rec = Unwrap(ctx->advisor->Recommend(workload, options),
                        "recommend");
      std::printf("%8.2f", rec.est_speedup);
    }
    std::printf("\n");
  }
  std::printf("%-22s", "all-index (ref)");
  for (size_t i = 0; i < fractions.size(); ++i) {
    std::printf("%8.2f", all_index.est_speedup);
  }
  std::printf("\n\nPaper shape check: speedups grow with budget and approach"
              " the All-Index\nreference; plain greedy trails the other"
              " algorithms at equal budgets.\n");
  return 0;
}
