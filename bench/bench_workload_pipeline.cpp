// Workload-pipeline throughput: capture -> templatize -> save/load ->
// online advise, at a scale where the numbers mean something.
//
// Reports (a) raw publish/drain throughput of the concurrent capture
// sink, (b) templatizer compression over a repetitive traffic stream,
// (c) serialization round-trip cost, and (d) online advising passes and
// recommendation churn while producers keep publishing. The emitted
// BENCH_workload_pipeline.json carries the xia.workload.* metrics
// (capture counters, dedup ratio, advise runs/churn) via the standard
// metrics snapshot.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "workload/capture.h"
#include "workload/online_advisor.h"
#include "workload/templatizer.h"
#include "workload/workload_io.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("workload_pipeline");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload mixed = MixedWorkload(*ctx);

  PrintHeader("Workload pipeline: capture -> templatize -> online advise");

  // (a) Concurrent capture throughput: 4 producers replay the mixed
  // workload until ~200k publications have been accepted, a consumer
  // drains into the templatizer the whole time.
  constexpr int kProducers = 4;
  constexpr int kRoundsPerProducer = 2500;  // 4 * 2500 * 20 = 200k
  workload::WorkloadCapture capture(/*capacity=*/1 << 18);
  capture.set_enabled(true);
  workload::Templatizer templatizer;

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) || capture.pending() > 0) {
      templatizer.AddBatch(capture.Drain());
      std::this_thread::yield();
    }
  });
  Stopwatch capture_timer;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int r = 0; r < kRoundsPerProducer; ++r) {
        for (const auto& stmt : mixed) capture.Publish(stmt, 1e-4);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  const double capture_seconds = capture_timer.ElapsedSeconds();

  std::printf("%-28s %12llu\n", "published",
              static_cast<unsigned long long>(capture.published()));
  std::printf("%-28s %12llu\n", "dropped",
              static_cast<unsigned long long>(capture.dropped()));
  std::printf("%-28s %12.0f /s\n", "publish+drain throughput",
              static_cast<double>(capture.published()) / capture_seconds);
  std::printf("%-28s %12zu\n", "templates", templatizer.template_count());
  std::printf("%-28s %12.1fx\n", "dedup ratio", templatizer.DedupRatio());
  bench_json.Checkpoint("capture_templatize");

  // (b) Serialization round-trip of the templatized workload.
  const engine::Workload captured = templatizer.ToWorkload();
  Stopwatch io_timer;
  const std::string path = "/tmp/xia_bench_workload_pipeline.xq";
  if (Status s = workload::SaveWorkloadToFile(captured, path); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = Unwrap(workload::LoadWorkloadFromFile(path), "load");
  std::printf("%-28s %12.3f ms (%zu templates)\n", "save+load round-trip",
              io_timer.ElapsedSeconds() * 1e3, loaded.size());
  std::remove(path.c_str());
  bench_json.Checkpoint("serialize");

  // (c) Online advising under continuous traffic: one producer keeps
  // replaying the workload while the OnlineAdvisor drains and re-advises.
  workload::WorkloadCapture online_capture;
  workload::OnlineAdvisorOptions online_options;
  online_options.min_new_queries = 200;
  online_options.advise_interval_seconds = 0.05;
  online_options.poll_interval_seconds = 0.002;
  online_options.advisor.disk_budget_bytes = 10e6;
  workload::OnlineAdvisor online(&online_capture, ctx->advisor.get(),
                                 online_options);
  if (Status s = online.Start(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  Stopwatch online_timer;
  for (int r = 0; r < 100; ++r) {
    for (const auto& stmt : mixed) online_capture.Publish(stmt, 1e-4);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (Status s = online.AdviseNow(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  online.Stop();
  const double online_seconds = online_timer.ElapsedSeconds();
  const workload::OnlineAdvisorStatus status = online.Snapshot();

  std::printf("\n%-28s %12.2f s\n", "online phase wall time", online_seconds);
  std::printf("%-28s %12llu\n", "queries seen",
              static_cast<unsigned long long>(status.queries_seen));
  std::printf("%-28s %12llu\n", "advise passes",
              static_cast<unsigned long long>(status.advise_runs));
  std::printf("%-28s %12llu\n", "advise failures",
              static_cast<unsigned long long>(status.advise_failures));
  std::printf("%-28s %12.4f s\n", "last advise pass",
              status.last_advise_seconds);
  std::printf("%-28s %9zu / %zu\n", "final churn (in/out)",
              status.last_entered, status.last_left);
  std::printf("%-28s %12zu indexes, %.1f MB, est x%.2f\n", "recommendation",
              status.recommendation.indexes.size(),
              status.recommendation.total_size_bytes / 1e6,
              status.recommendation.est_speedup);
  bench_json.Checkpoint("online_advise");

  std::printf("\nShape check: dedup ratio ~ raw/templates; repeated advise"
              " passes over the\nsame traffic converge to zero churn.\n");
  return 0;
}
