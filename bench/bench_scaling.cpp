// Scaling study: why the paper's absolute speedups are ~1000x while a
// laptop-scale reproduction sees single digits.
//
// Index speedup over a scan grows with collection size: a scan is O(N)
// while an index probe is O(log N + answer). The paper's Fig. 2 y-axis is
// "Thousands" against a 1 GB TPoX database; this bench sweeps database
// scale and shows the All-Index and recommended-configuration speedups
// climbing with N while the advisor's *choices* (the recommended pattern
// set) stay stable — evidence that shape comparisons at small scale are
// meaningful.

#include <set>

#include "bench/bench_common.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("scaling");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  PrintHeader("Scaling: speedup grows with database size, choices stay put");
  std::printf("%-12s %12s %12s %12s %12s\n", "securities", "all-index",
              "heuristics", "Q1 speedup", "#idx");

  std::set<std::string> previous_patterns;
  bool choices_stable = true;
  for (size_t securities : {250, 500, 1000, 2000, 4000}) {
    auto ctx = MakeContext(securities, securities / 2, securities / 4);
    // Security-only workload keeps the comparison crisp.
    engine::Workload workload;
    for (const auto& stmt : QueryWorkload()) {
      if (stmt.collection() == tpox::kSecurityCollection) {
        workload.push_back(stmt);
      }
    }
    auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                            "all-index");
    advisor::AdvisorOptions options;
    options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
    options.disk_budget_bytes = all_index.total_size_bytes;
    auto rec = Unwrap(ctx->advisor->Recommend(workload, options),
                      "recommend");

    std::set<std::string> patterns;
    for (const auto& ri : rec.indexes) {
      patterns.insert(ri.pattern.path.ToString());
    }
    if (!previous_patterns.empty() && patterns != previous_patterns) {
      choices_stable = false;
    }
    previous_patterns = patterns;

    // The point-lookup query (get_security): unindexed cost grows with N,
    // indexed cost stays ~constant — the kind of query the paper reports
    // timing out unindexed. Its individual speedup scales with N.
    double q1_speedup = 0;
    {
      storage::Catalog catalog(&ctx->store, &ctx->statistics);
      int i = 0;
      for (const auto& ri : rec.indexes) {
        auto created = catalog.CreateVirtualIndex(
            StringPrintf("s%d", i++), ri.collection, ri.pattern);
        if (!created.ok()) std::exit(1);
      }
      optimizer::Optimizer opt(&ctx->store, &catalog, &ctx->statistics);
      const auto before =
          Unwrap(opt.OptimizeWithoutIndexes(workload[0]), "q1 before");
      const auto after = Unwrap(opt.Optimize(workload[0]), "q1 after");
      q1_speedup = after.est_cost <= 0 ? 0
                                       : before.est_cost / after.est_cost;
    }

    std::printf("%-12zu %11.2fx %11.2fx %11.1fx %12zu\n", securities,
                all_index.est_speedup, rec.est_speedup, q1_speedup,
                rec.indexes.size());
  }
  std::printf("\nShape check: the workload-level speedup grows with N and"
              " the point-lookup\nquery's speedup grows ~linearly in N —"
              " at the paper's 1 GB scale such\nqueries dominate its"
              " thousands-fold Fig. 2 numbers (two even timed out\n"
              "unindexed in Fig. 5). The recommended pattern set is %s\n"
              "across scales, so shape conclusions transfer.\n",
              choices_stable ? "IDENTICAL" : "nearly identical");
  return 0;
}
