// bench_server_qps: throughput and latency of the xia_server front door.
//
// Starts an in-process net::Server over the standard TPoX bench database
// and drives it over real loopback TCP at 1/8/32/64 concurrent
// connections, each sending point queries as fast as the server answers.
// Reports aggregate qps plus p50/p95/p99 request latency per connection
// count — the scaling curve of the shared-lock read path — into
// BENCH_server_qps.json ("results" rows) for post-processing.

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"

namespace xia {
namespace {

constexpr const char* kPointQuery =
    "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000017\" return $s";
constexpr size_t kRequestsPerConnection = 200;

struct LoadResult {
  size_t requests = 0;
  double seconds = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double qps() const { return seconds > 0 ? requests / seconds : 0; }
};

LoadResult RunLoad(const net::Server& server, size_t connections) {
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(connections * kRequestsPerConnection);

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&server, &mu, &latencies] {
      net::Client client;
      if (!client.Connect(server.host(), server.port()).ok()) return;
      net::QueryRequest request;
      request.statement = kPointQuery;
      std::vector<double> local;
      local.reserve(kRequestsPerConnection);
      for (size_t r = 0; r < kRequestsPerConnection; ++r) {
        Stopwatch timer;
        if (!client.Query(request).ok()) break;
        local.push_back(timer.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();

  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.requests = latencies.size();
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](size_t rank) {
    return latencies.empty()
               ? 0.0
               : latencies[std::min(latencies.size() - 1, rank)] * 1e3;
  };
  result.p50_ms = pct(latencies.size() / 2);
  result.p95_ms = pct(latencies.size() * 95 / 100);
  result.p99_ms = pct(latencies.size() * 99 / 100);
  return result;
}

}  // namespace
}  // namespace xia

int main() {
  using namespace xia;  // NOLINT

  bench::BenchJsonWriter json("server_qps");
  json.set_threads(std::thread::hardware_concurrency());

  net::ServerOptions options;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{800, 1200, 300, 42};
  options.max_connections = 128;
  net::Server server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("server on %s:%u, %zu point-query requests per connection\n",
              server.host().c_str(), server.port(), kRequestsPerConnection);
  std::printf("%6s %10s %10s %10s %10s %10s\n", "conns", "requests", "qps",
              "p50 ms", "p95 ms", "p99 ms");

  for (const size_t connections : {1, 8, 32, 64}) {
    // Warm up the connection path so accept/TLB costs don't skew conns=1.
    (void)RunLoad(server, std::min<size_t>(connections, 4));
    const LoadResult result = RunLoad(server, connections);
    const bool complete =
        result.requests == connections * kRequestsPerConnection;
    std::printf("%6zu %10zu %10.0f %10.3f %10.3f %10.3f%s\n", connections,
                result.requests, result.qps(), result.p50_ms, result.p95_ms,
                result.p99_ms, complete ? "" : "  [INCOMPLETE]");
    json.AddResult(StringPrintf(
        "{\"connections\": %zu, \"requests\": %zu, \"qps\": %.1f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"complete\": %s}",
        connections, result.requests, result.qps(), result.p50_ms,
        result.p95_ms, result.p99_ms, complete ? "true" : "false"));
    json.Checkpoint("conns_" + std::to_string(connections));
  }

  if (Status s = server.Stop(); !s.ok()) {
    std::fprintf(stderr, "fatal: %s\n", s.ToString().c_str());
    return 1;
  }
  json.Write();
  return 0;
}
