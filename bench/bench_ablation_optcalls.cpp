// Ablation for §VI-C: how much do affected-set pruning and
// sub-configuration caching cut Evaluate-mode optimizer calls?
//
// Runs the same searches with the optimizations on and off and reports
// optimizer-call counts and advisor runtime. Expected shape: both
// optimizations together reduce calls by a large factor, with identical
// recommendations (they are exactness-preserving).

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("ablation_optcalls");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  const engine::Workload workload = QueryWorkload();
  auto all_index = Unwrap(ctx->advisor->AllIndexConfiguration(workload),
                          "all-index");
  const double budget = all_index.total_size_bytes;  // mid-range budget

  PrintHeader("Ablation (SVI-C): optimizer calls per configuration search");
  std::printf("%-22s %-12s %-12s %-10s %-10s\n", "algorithm", "mode",
              "opt calls", "seconds", "speedup");

  struct Mode {
    const char* name;
    bool subconfig;
    bool affected;
  };
  const Mode modes[] = {
      {"naive", false, false},
      {"affected-only", false, true},
      {"full SVI-C", true, true},
  };

  for (advisor::SearchAlgorithm algo :
       {advisor::SearchAlgorithm::kGreedyWithHeuristics,
        advisor::SearchAlgorithm::kTopDownFull}) {
    for (const Mode& mode : modes) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = budget;
      options.use_subconfigurations = mode.subconfig;
      options.use_affected_sets = mode.affected;
      auto rec =
          Unwrap(ctx->advisor->Recommend(workload, options), "recommend");
      std::printf("%-22s %-12s %-12llu %-10.4f %-10.2f\n",
                  advisor::SearchAlgorithmName(algo), mode.name,
                  static_cast<unsigned long long>(rec.optimizer_calls),
                  rec.advisor_seconds, rec.est_speedup);
    }
  }
  std::printf("\nShape check: the full SVI-C mode needs the fewest optimizer"
              " calls and\nrecommends configurations of the same quality as"
              " the naive mode.\n");
  return 0;
}
