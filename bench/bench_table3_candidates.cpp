// Table III: number of basic vs. total (basic + generalized) candidate
// indexes for random synthetic workloads of 10..50 queries.
//
// Expected shape: basic candidates grow roughly with the query count
// (random queries rarely share identical patterns), and generalization
// expands the candidate set substantially (the paper reports up to +50%
// even for random workloads with little commonality).

#include "bench/bench_common.h"

int main() {
  xia::bench::BenchJsonWriter bench_json("table3_candidates");
  using namespace xia;           // NOLINT
  using namespace xia::bench;    // NOLINT

  auto ctx = MakeContext();
  PrintHeader("Table III: number of candidate indexes");
  std::printf("%-10s %-14s %-14s %-10s\n", "queries", "basic cands.",
              "total cands.", "expansion");

  for (size_t queries : {10, 20, 30, 40, 50}) {
    Random rng(1000 + queries);
    auto workload = Unwrap(
        tpox::GenerateSyntheticWorkload(
            ctx->statistics,
            {tpox::kSecurityCollection, tpox::kOrderCollection,
             tpox::kCustAccCollection},
            queries, &rng),
        "synthetic workload");
    auto set = Unwrap(
        ctx->advisor->BuildCandidates(workload, /*generalize=*/true),
        "candidates");
    const double expansion =
        set.basic_count == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(set.size() - set.basic_count) /
                   static_cast<double>(set.basic_count));
    std::printf("%-10zu %-14zu %-14zu +%.0f%%\n", queries, set.basic_count,
                set.size(), expansion);
  }
  std::printf("\nPaper shape check: total candidates exceed basic candidates"
              " by a healthy\nmargin (paper: up to ~50%% for random"
              " workloads).\n");
  return 0;
}
