// bench_failover: quorum-commit cost and failover downtime.
//
// Two measurements against in-process three-node clusters (one leader,
// two followers) over real loopback TCP:
//   1. quorum-ack latency: per-mutation client-observed commit latency
//      with sync_replicas K in {0, 1, 2} — K=0 is the async baseline,
//      each step up adds one follower round-trip to the commit path;
//      reported as p50/p95 plus throughput;
//   2. failover downtime: across several trials, stop the leader,
//      promote the most-caught-up follower (epoch bump + barrier), and
//      report time-to-promote plus the full write-unavailability window
//      (last successful write on the old leader -> first successful
//      write on the new one).
// Rows land in BENCH_failover.json for post-processing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/client.h"
#include "net/server.h"

namespace xia {
namespace {

namespace fs = std::filesystem;

constexpr int kQuorumMutations = 200;
constexpr int kFailoverTrials = 5;
constexpr int kWarmMutations = 50;

std::string FreshDir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/xia_bench_failover/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

net::ServerOptions LeaderOptions(const std::string& data_dir,
                                 size_t sync_replicas) {
  net::ServerOptions options;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{100, 100, 30, 42};
  options.data_dir = data_dir;
  options.sync_replicas = sync_replicas;
  options.quorum_timeout_ms = 10000;
  return options;
}

net::ServerOptions FollowerOptions(const std::string& data_dir,
                                   uint16_t leader_port,
                                   const std::string& id) {
  net::ServerOptions options;
  options.data_dir = data_dir;
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  options.follower_id = id;
  return options;
}

std::string InsertStatement(const std::string& tag, int i) {
  return "insert into SDOC <Security><Symbol>" + tag + std::to_string(i) +
         "</Symbol><Yield>" + std::to_string(i % 10) + "</Yield></Security>";
}

/// One leader plus two followers, all caught up before returning.
struct Cluster {
  std::unique_ptr<net::Server> leader;
  std::unique_ptr<net::Server> f1;
  std::unique_ptr<net::Server> f2;

  void Stop() {
    if (f2) f2->Stop();
    if (f1) f1->Stop();
    if (leader) leader->Stop();
  }
};

void MustStart(net::Server* server, const char* what) {
  if (Status s = server->Start(); !s.ok()) {
    std::fprintf(stderr, "fatal (%s): %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

Cluster BootCluster(const std::string& tag, size_t sync_replicas) {
  Cluster cluster;
  cluster.leader = std::make_unique<net::Server>(
      LeaderOptions(FreshDir(tag + "_leader"), sync_replicas));
  MustStart(cluster.leader.get(), "leader");
  cluster.f1 = std::make_unique<net::Server>(FollowerOptions(
      FreshDir(tag + "_f1"), cluster.leader->port(), tag + "f1"));
  cluster.f2 = std::make_unique<net::Server>(FollowerOptions(
      FreshDir(tag + "_f2"), cluster.leader->port(), tag + "f2"));
  MustStart(cluster.f1.get(), "follower 1");
  MustStart(cluster.f2.get(), "follower 2");
  // Both followers fully acked before measuring: the first mutation must
  // not pay snapshot-join costs.
  const uint64_t target = cluster.leader->GetReplStatus().durable_lsn;
  for (;;) {
    const auto repl = cluster.leader->GetReplStatus();
    size_t acked = 0;
    for (const auto& f : repl.followers) {
      if (f.acked_lsn >= target) ++acked;
    }
    if (acked >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cluster;
}

double Pct(std::vector<double>* sorted, size_t rank) {
  if (sorted->empty()) return 0;
  return (*sorted)[std::min(sorted->size() - 1, rank)] * 1e3;
}

}  // namespace
}  // namespace xia

int main() {
  using namespace xia;  // NOLINT

  bench::BenchJsonWriter json("failover");
  json.set_threads(std::thread::hardware_concurrency());

  // --- 1. quorum-ack latency at K in {0, 1, 2} ------------------------
  for (const size_t k : {size_t{0}, size_t{1}, size_t{2}}) {
    const std::string tag = "k" + std::to_string(k);
    Cluster cluster = BootCluster(tag, k);
    net::Client writer;
    if (!writer.Connect(cluster.leader->host(), cluster.leader->port())
             .ok()) {
      std::fprintf(stderr, "fatal: connect failed\n");
      return 1;
    }
    std::vector<double> latencies;
    latencies.reserve(kQuorumMutations);
    Stopwatch wall;
    for (int i = 0; i < kQuorumMutations; ++i) {
      net::MutationRequest mutation;
      mutation.statement = InsertStatement("QL", i);
      Stopwatch one;
      const auto reply = writer.Mutate(mutation);
      if (!reply.ok()) {
        std::fprintf(stderr, "fatal: %s\n",
                     reply.status().ToString().c_str());
        return 1;
      }
      latencies.push_back(one.ElapsedSeconds());
    }
    const double seconds = wall.ElapsedSeconds();
    std::sort(latencies.begin(), latencies.end());
    const double p50 = Pct(&latencies, latencies.size() / 2);
    const double p95 = Pct(&latencies, latencies.size() * 95 / 100);
    std::printf(
        "quorum K=%zu: %d mutations in %.2fs (%.0f/s), "
        "commit p50 %.3f ms, p95 %.3f ms\n",
        k, kQuorumMutations, seconds, kQuorumMutations / seconds, p50, p95);
    json.AddResult(StringPrintf(
        "{\"phase\": \"quorum_ack\", \"sync_replicas\": %zu, "
        "\"mutations\": %d, \"seconds\": %.4f, \"mut_per_s\": %.1f, "
        "\"commit_p50_ms\": %.4f, \"commit_p95_ms\": %.4f}",
        k, kQuorumMutations, seconds, kQuorumMutations / seconds, p50, p95));
    json.Checkpoint("quorum_k" + std::to_string(k));
    cluster.Stop();
  }

  // --- 2. time-to-promote and write-unavailability window -------------
  std::vector<double> promote_times;
  std::vector<double> windows;
  for (int trial = 0; trial < kFailoverTrials; ++trial) {
    const std::string tag = "fo" + std::to_string(trial);
    Cluster cluster = BootCluster(tag, 1);
    {
      net::Client writer;
      if (!writer.Connect(cluster.leader->host(), cluster.leader->port())
               .ok()) {
        std::fprintf(stderr, "fatal: connect failed\n");
        return 1;
      }
      for (int i = 0; i < kWarmMutations; ++i) {
        net::MutationRequest mutation;
        mutation.statement = InsertStatement("FO", i);
        if (!writer.Mutate(mutation).ok()) {
          std::fprintf(stderr, "fatal: warm mutation failed\n");
          return 1;
        }
      }
    }

    // The unavailability window opens when the leader goes away.
    Stopwatch window;
    cluster.leader->Stop();

    // Promote the most-caught-up follower, the xia_admin policy.
    net::Server* winner =
        cluster.f1->GetReplStatus().durable_lsn >=
                cluster.f2->GetReplStatus().durable_lsn
            ? cluster.f1.get()
            : cluster.f2.get();
    Stopwatch promote;
    uint64_t epoch = 0;
    uint64_t barrier = 0;
    if (Status s = winner->Promote(&epoch, &barrier); !s.ok()) {
      std::fprintf(stderr, "fatal: promote: %s\n", s.ToString().c_str());
      return 1;
    }
    promote_times.push_back(promote.ElapsedSeconds());

    // The window closes at the first accepted write on the new leader.
    net::Client writer;
    if (!writer.Connect(winner->host(), winner->port()).ok()) {
      std::fprintf(stderr, "fatal: connect to new leader failed\n");
      return 1;
    }
    for (;;) {
      net::MutationRequest mutation;
      mutation.statement = InsertStatement("POST", trial);
      if (writer.Mutate(mutation).ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    windows.push_back(window.ElapsedSeconds());
    std::printf(
        "failover trial %d: promote %.3f ms (epoch %llu), "
        "write unavailability %.3f ms\n",
        trial, promote_times.back() * 1e3,
        static_cast<unsigned long long>(epoch), windows.back() * 1e3);
    json.AddResult(StringPrintf(
        "{\"phase\": \"failover\", \"trial\": %d, "
        "\"promote_seconds\": %.6f, \"unavailability_seconds\": %.6f, "
        "\"epoch\": %llu}",
        trial, promote_times.back(), windows.back(),
        static_cast<unsigned long long>(epoch)));
    cluster.Stop();
  }
  std::sort(promote_times.begin(), promote_times.end());
  std::sort(windows.begin(), windows.end());
  std::printf(
      "failover: promote p50 %.3f ms, max %.3f ms; "
      "unavailability p50 %.3f ms, max %.3f ms\n",
      Pct(&promote_times, promote_times.size() / 2), promote_times.back() * 1e3,
      Pct(&windows, windows.size() / 2), windows.back() * 1e3);
  json.AddResult(StringPrintf(
      "{\"phase\": \"failover_summary\", \"trials\": %d, "
      "\"promote_p50_ms\": %.4f, \"promote_max_ms\": %.4f, "
      "\"unavailability_p50_ms\": %.4f, \"unavailability_max_ms\": %.4f}",
      kFailoverTrials, Pct(&promote_times, promote_times.size() / 2),
      promote_times.back() * 1e3, Pct(&windows, windows.size() / 2),
      windows.back() * 1e3));
  json.Checkpoint("failover");

  json.Write();
  return 0;
}
