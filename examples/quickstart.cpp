// Quickstart: the paper's running example end to end.
//
// Builds a TPoX-style database, runs queries Q1 and Q2 from §III of the
// paper through the advisor pipeline, and shows: the basic candidates the
// optimizer enumerates (C1..C3 of Table I), the generalized candidate
// (/Security//*, C4), the recommendation for a disk budget, and the plans
// the optimizer picks before and after the recommended indexes are built.

#include <cstdio>

#include "advisor/advisor.h"
#include "advisor/generalize.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT: example brevity

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Build the database and collect statistics (RUNSTATS).
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::TpoxScale scale;
  scale.security_docs = 1000;
  scale.order_docs = 1500;
  scale.custacc_docs = 400;
  if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
      !s.ok()) {
    return Fail(s);
  }
  std::printf("Loaded TPoX-style database: %zu securities, %zu orders, %zu "
              "customer docs\n\n",
              scale.security_docs, scale.order_docs, scale.custacc_docs);

  // 2. The paper's running-example workload (§III).
  engine::Workload workload;
  for (const char* text :
       {"for $sec in SECURITY('SDOC')/Security "
        "where $sec/Symbol = \"SYM000101\" return $sec",
        "for $sec in SECURITY('SDOC')/Security[Yield > 4.5] "
        "where $sec/SecInfo/*/Sector = \"Energy\" "
        "return <Security>{$sec/Name}</Security>"}) {
    auto stmt = engine::ParseStatement(text);
    if (!stmt.ok()) return Fail(stmt.status());
    workload.push_back(std::move(*stmt));
  }

  // 3. Candidate enumeration + generalization (Table I).
  advisor::IndexAdvisor adv(&store, &statistics);
  auto candidates = adv.BuildCandidates(workload, /*generalize=*/true);
  if (!candidates.ok()) return Fail(candidates.status());
  std::printf("Candidates (basic first, then generalized):\n");
  for (const auto& c : candidates->candidates) {
    std::printf("  C%-2d %-40s %-8s %s  size=%s\n", c.id + 1,
                c.pattern.path.ToString().c_str(),
                xpath::ValueTypeToString(c.pattern.type),
                c.is_general ? "[general]" : "[basic]  ",
                HumanBytes(static_cast<double>(c.size_bytes())).c_str());
  }

  // 4. Recommend a configuration under a disk budget.
  advisor::AdvisorOptions options;
  options.disk_budget_bytes = 512.0 * 1024;
  options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
  auto rec = adv.Recommend(workload, options);
  if (!rec.ok()) return Fail(rec.status());
  std::printf("\nRecommendation (budget %s, top-down full):\n",
              HumanBytes(options.disk_budget_bytes).c_str());
  for (const auto& ri : rec->indexes) {
    std::printf("  %-40s %s\n    %s\n", ri.pattern.path.ToString().c_str(),
                ri.is_general ? "[general]" : "[specific]", ri.ddl.c_str());
  }
  std::printf("  total size %s, estimated speedup %.2fx, %llu optimizer "
              "calls, %.3fs\n",
              HumanBytes(rec->total_size_bytes).c_str(), rec->est_speedup,
              static_cast<unsigned long long>(rec->optimizer_calls),
              rec->advisor_seconds);

  // 5. Materialize the recommendation and show plans before/after.
  storage::Catalog catalog(&store, &statistics);
  optimizer::Optimizer opt(&store, &catalog, &statistics);
  std::printf("\nPlans before indexes:\n");
  for (const auto& stmt : workload) {
    auto plan = opt.Optimize(stmt);
    if (!plan.ok()) return Fail(plan.status());
    std::printf("  %s\n", plan->Describe().c_str());
  }
  if (Status s = adv.Materialize(*rec, &catalog); !s.ok()) return Fail(s);
  std::printf("\nPlans after materializing the recommendation:\n");
  engine::Executor executor(&store, &catalog);
  for (const auto& stmt : workload) {
    auto plan = opt.Optimize(stmt);
    if (!plan.ok()) return Fail(plan.status());
    auto result = executor.Execute(stmt, *plan);
    if (!result.ok()) return Fail(result.status());
    std::printf("  %s\n    -> %llu results, %llu docs examined, %.4fs\n",
                plan->Describe().c_str(),
                static_cast<unsigned long long>(result->result_count),
                static_cast<unsigned long long>(result->docs_examined),
                result->wall_seconds);
  }
  return 0;
}
