// Workload tuning session: the DBA scenario the paper's evaluation models.
//
// Loads a TPoX-style database, takes the 11-query TPoX workload plus an
// update mix, sweeps disk budgets across all five search algorithms, then
// materializes the best configuration and verifies the plans actually use
// the new indexes.

#include <cstdio>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::TpoxScale scale;
  scale.security_docs = 1500;
  scale.order_docs = 2500;
  scale.custacc_docs = 600;
  if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
      !s.ok()) {
    return Fail(s);
  }

  // Workload: 11 TPoX queries, weighted, plus a light update mix.
  auto queries = tpox::TpoxQueries();
  if (!queries.ok()) return Fail(queries.status());
  engine::Workload workload = std::move(*queries);
  workload[0].frequency = 20;  // get_security is the hot path
  workload[5].frequency = 10;  // get_order
  Random rng(9);
  auto updates = tpox::TpoxUpdates(/*inserts=*/5, /*deletes=*/5,
                                   scale.order_docs, &rng);
  if (!updates.ok()) return Fail(updates.status());
  for (auto& u : *updates) {
    u.frequency = 2;
    workload.push_back(std::move(u));
  }

  advisor::IndexAdvisor advisor(&store, &statistics);
  auto all_index = advisor.AllIndexConfiguration(workload);
  if (!all_index.ok()) return Fail(all_index.status());
  std::printf("All-Index reference: %zu indexes, %s, est. speedup %.2fx\n\n",
              all_index->indexes.size(),
              HumanBytes(all_index->total_size_bytes).c_str(),
              all_index->est_speedup);

  std::printf("%-22s %10s %10s %10s %8s\n", "algorithm", "budget",
              "size", "speedup", "#idx");
  advisor::Recommendation best;
  double best_speedup = 0;
  for (double fraction : {0.5, 1.0, 2.0}) {
    const double budget = fraction * all_index->total_size_bytes;
    for (advisor::SearchAlgorithm algo :
         {advisor::SearchAlgorithm::kGreedy,
          advisor::SearchAlgorithm::kGreedyWithHeuristics,
          advisor::SearchAlgorithm::kTopDownLite,
          advisor::SearchAlgorithm::kTopDownFull,
          advisor::SearchAlgorithm::kDynamicProgramming}) {
      advisor::AdvisorOptions options;
      options.algorithm = algo;
      options.disk_budget_bytes = budget;
      auto rec = advisor.Recommend(workload, options);
      if (!rec.ok()) return Fail(rec.status());
      std::printf("%-22s %10s %10s %9.2fx %8zu\n",
                  advisor::SearchAlgorithmName(algo),
                  HumanBytes(budget).c_str(),
                  HumanBytes(rec->total_size_bytes).c_str(),
                  rec->est_speedup, rec->indexes.size());
      if (rec->est_speedup > best_speedup) {
        best_speedup = rec->est_speedup;
        best = std::move(*rec);
      }
    }
  }

  std::printf("\nBest configuration (est. %.2fx):\n", best_speedup);
  for (const auto& ri : best.indexes) {
    std::printf("  %s\n", ri.ddl.c_str());
  }

  // Materialize and verify usage.
  storage::Catalog catalog(&store, &statistics);
  if (Status s = advisor.Materialize(best, &catalog); !s.ok()) {
    return Fail(s);
  }
  optimizer::Optimizer opt(&store, &catalog, &statistics);
  engine::Executor executor(&store, &catalog);
  std::printf("\nPlans with the configuration in place:\n");
  size_t indexed_plans = 0;
  for (const auto& stmt : workload) {
    if (!stmt.is_query()) continue;
    auto plan = opt.Optimize(stmt);
    if (!plan.ok()) return Fail(plan.status());
    if (plan->kind != optimizer::Plan::Kind::kCollectionScan) {
      ++indexed_plans;
    }
    auto result = executor.Execute(stmt, *plan);
    if (!result.ok()) return Fail(result.status());
    std::printf("  %-28s %-14s results=%-6llu docs=%llu\n",
                stmt.label.c_str(),
                plan->kind == optimizer::Plan::Kind::kCollectionScan
                    ? "SCAN"
                    : (plan->kind == optimizer::Plan::Kind::kIndexScan
                           ? "INDEX-SCAN"
                           : "INDEX-AND"),
                static_cast<unsigned long long>(result->result_count),
                static_cast<unsigned long long>(result->docs_examined));
  }
  std::printf("\n%zu of 11 queries run off recommended indexes.\n",
              indexed_plans);
  return 0;
}
