// What-if explorer: the two optimizer modes exposed directly.
//
// For each statement of a small workload this example shows
//   1. Enumerate Indexes mode — the candidate patterns the optimizer's
//      index matching reports against the //* virtual universal index;
//   2. Evaluate Indexes mode — the statement's estimated cost under
//      hypothetical (virtual) index configurations, without building
//      anything;
//   3. the plan chosen once a chosen configuration is actually built.

#include <cstdio>

#include "engine/query_parser.h"
#include "xpath/parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::TpoxScale scale;
  scale.security_docs = 1000;
  scale.order_docs = 1200;
  scale.custacc_docs = 300;
  if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
      !s.ok()) {
    return Fail(s);
  }

  const char* statements[] = {
      "for $s in SECURITY('SDOC')/Security[Yield > 9.5] "
      "where $s/SecInfo/*/Sector = \"Energy\" return $s/Name",
      "for $o in ORDER('ODOC')/FIXML/Order where $o/@ID = \"100077\" "
      "return $o",
      "delete from ODOC where /FIXML/Order[@ID = \"100001\"]",
  };

  storage::Catalog catalog(&store, &statistics);
  optimizer::Optimizer opt(&store, &catalog, &statistics);

  for (const char* text : statements) {
    auto stmt = engine::ParseStatement(text);
    if (!stmt.ok()) return Fail(stmt.status());
    std::printf("statement: %s\n", text);

    // 1. Enumerate Indexes mode.
    auto candidates = opt.EnumerateIndexes(*stmt);
    if (!candidates.ok()) return Fail(candidates.status());
    std::printf("  enumerate-indexes mode found %zu candidate pattern(s):\n",
                candidates->size());
    for (const auto& pattern : *candidates) {
      std::printf("    %s\n", pattern.ToString().c_str());
    }

    // 2. Evaluate Indexes mode: baseline, then each candidate virtually.
    auto base = opt.OptimizeWithoutIndexes(*stmt);
    if (!base.ok()) return Fail(base.status());
    std::printf("  baseline (no indexes): cost %.1f  [%s]\n", base->est_cost,
                base->Describe().c_str());
    int v = 0;
    for (const auto& pattern : *candidates) {
      catalog.DropAllVirtualIndexes();
      auto created = catalog.CreateVirtualIndex(
          StringPrintf("what_if_%d", v++), stmt->collection(), pattern);
      if (!created.ok()) return Fail(created.status());
      auto plan = opt.Optimize(*stmt);
      if (!plan.ok()) return Fail(plan.status());
      std::printf("  with virtual %-32s cost %.1f (%.1f%% of baseline)\n",
                  pattern.path.ToString().c_str(), plan->est_cost,
                  100.0 * plan->est_cost / base->est_cost);
    }
    catalog.DropAllVirtualIndexes();
    std::printf("\n");
  }

  // 3. Build the strongest candidate for the order lookup and show the
  // real plan change.
  auto created = catalog.CreateIndex(
      "order_id", "ODOC",
      {*xpath::ParsePattern("/FIXML/Order/@ID"), xpath::ValueType::kString});
  if (!created.ok()) return Fail(created.status());
  auto stmt = engine::ParseStatement(statements[1]);
  if (!stmt.ok()) return Fail(stmt.status());
  auto plan = opt.Optimize(*stmt);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("after CREATE INDEX order_id: %s\n", plan->Describe().c_str());
  return 0;
}
