// Schema independence: the advisor on the XMark-style auction database.
//
// Nothing in the advisor knows about TPoX; this example runs the full
// pipeline on a structurally different schema — deeper nesting, repeated
// elements (bidders), and attribute-heavy patterns — and executes the
// recommended configuration.

#include <cstdio>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/xmark.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::XmarkScale scale;
  scale.items = 1200;
  scale.auctions = 1200;
  scale.persons = 600;
  if (Status s = tpox::BuildXmarkDatabase(scale, &store, &statistics);
      !s.ok()) {
    return Fail(s);
  }
  std::printf("XMark-style database: %zu items, %zu auctions, %zu persons\n\n",
              scale.items, scale.auctions, scale.persons);

  auto workload = tpox::XmarkQueries();
  if (!workload.ok()) return Fail(workload.status());

  advisor::IndexAdvisor advisor(&store, &statistics);
  advisor::AdvisorOptions options;
  options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
  options.disk_budget_bytes = 2e6;
  auto rec = advisor.Recommend(*workload, options);
  if (!rec.ok()) return Fail(rec.status());

  std::printf("recommendation (%zu/%zu candidates, est. %.2fx):\n",
              rec->basic_candidates, rec->total_candidates,
              rec->est_speedup);
  for (const auto& ri : rec->indexes) {
    std::printf("  %s\n", ri.ddl.c_str());
  }

  storage::Catalog catalog(&store, &statistics);
  if (Status s = advisor.Materialize(*rec, &catalog); !s.ok()) {
    return Fail(s);
  }
  optimizer::Optimizer opt(&store, &catalog, &statistics);
  engine::Executor executor(&store, &catalog);
  std::printf("\nexecution with the configuration:\n");
  for (const auto& stmt : *workload) {
    auto plan = opt.Optimize(stmt);
    if (!plan.ok()) return Fail(plan.status());
    engine::ExecOptions exec_options;
    exec_options.materialize_rows = true;
    exec_options.max_rows = 1;
    auto result = executor.Execute(stmt, *plan, exec_options);
    if (!result.ok()) return Fail(result.status());
    std::printf("  %-26s %-11s results=%-5llu docs=%-5llu %s\n",
                stmt.label.c_str(),
                plan->kind == optimizer::Plan::Kind::kCollectionScan
                    ? "SCAN"
                    : "INDEX",
                static_cast<unsigned long long>(result->result_count),
                static_cast<unsigned long long>(result->docs_examined),
                result->rows.empty()
                    ? ""
                    : ("e.g. " + result->rows[0].substr(0, 40)).c_str());
  }
  return 0;
}
