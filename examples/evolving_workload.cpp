// Evolving-workload scenario (§VI-B's motivation): the DBA trains the
// advisor on a representative workload, but production later poses
// *similar-but-different* queries reaching the same elements by different
// paths. A general configuration (top-down) keeps serving them; an
// overfitted specific configuration (greedy+heuristics) does not.

#include <cstdio>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

engine::Statement MustParse(const char* text) {
  auto stmt = engine::ParseStatement(text);
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 stmt.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*stmt);
}

// Executes the workload with a configuration materialized, returning how
// many statements ran off an index.
Result<size_t> IndexedPlanCount(storage::DocumentStore* store,
                                const storage::StatisticsCatalog* statistics,
                                const advisor::IndexAdvisor& advisor,
                                const advisor::Recommendation& rec,
                                const engine::Workload& workload) {
  storage::Catalog catalog(store, statistics);
  XIA_RETURN_IF_ERROR(advisor.Materialize(rec, &catalog));
  optimizer::Optimizer opt(store, &catalog, statistics);
  size_t indexed = 0;
  for (const auto& stmt : workload) {
    auto plan = opt.Optimize(stmt);
    if (!plan.ok()) return plan.status();
    if (plan->kind != optimizer::Plan::Kind::kCollectionScan) ++indexed;
  }
  return indexed;
}

}  // namespace

int main() {
  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  tpox::TpoxScale scale;
  scale.security_docs = 1200;
  scale.order_docs = 1000;
  scale.custacc_docs = 400;
  if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
      !s.ok()) {
    return Fail(s);
  }

  // Training workload: the queries the DBA knows about today.
  engine::Workload training;
  training.push_back(MustParse(
      "for $s in SECURITY('SDOC')/Security "
      "where $s/SecInfo/*/Sector = \"Energy\" return $s/Symbol"));
  training.push_back(MustParse(
      "for $s in SECURITY('SDOC')/Security "
      "where $s/SecInfo/*/Industry = \"EnergyInd1\" return $s/Name"));

  // Future workload: same elements, different paths/fields.
  engine::Workload future;
  future.push_back(MustParse(
      "for $s in SECURITY('SDOC')/Security "
      "where $s/SecInfo/*/SubIndustry = \"SubabCde\" return $s"));
  future.push_back(MustParse(
      "for $s in SECURITY('SDOC')/Security "
      "where $s/Name = \"Company7 abcd Holdings\" return $s/Symbol"));
  future.push_back(MustParse(
      "for $s in SECURITY('SDOC')/Security "
      "where $s/SecurityType = \"Bond\" return $s/Symbol"));

  advisor::IndexAdvisor advisor(&store, &statistics);
  auto all_index = advisor.AllIndexConfiguration(training);
  if (!all_index.ok()) return Fail(all_index.status());
  const double budget = 21.0 * all_index->total_size_bytes;

  std::printf("Training on %zu queries, budget %s.\n\n", training.size(),
              HumanBytes(budget).c_str());

  for (advisor::SearchAlgorithm algo :
       {advisor::SearchAlgorithm::kGreedyWithHeuristics,
        advisor::SearchAlgorithm::kTopDownLite}) {
    advisor::AdvisorOptions options;
    options.algorithm = algo;
    options.disk_budget_bytes = budget;
    auto rec = advisor.Recommend(training, options);
    if (!rec.ok()) return Fail(rec.status());

    std::printf("--- %s ---\n", advisor::SearchAlgorithmName(algo));
    for (const auto& ri : rec->indexes) {
      std::printf("  %-40s %s\n", ri.pattern.ToString().c_str(),
                  ri.is_general ? "[general]" : "[specific]");
    }
    auto train_hits =
        IndexedPlanCount(&store, &statistics, advisor, *rec, training);
    auto future_hits =
        IndexedPlanCount(&store, &statistics, advisor, *rec, future);
    if (!train_hits.ok()) return Fail(train_hits.status());
    if (!future_hits.ok()) return Fail(future_hits.status());
    std::printf("  training queries served by indexes: %zu / %zu\n",
                *train_hits, training.size());
    std::printf("  FUTURE  queries served by indexes: %zu / %zu\n\n",
                *future_hits, future.size());
  }

  std::printf(
      "The general configuration keeps serving queries the training\n"
      "workload never mentioned; the specific one degrades to scans.\n");
  return 0;
}
