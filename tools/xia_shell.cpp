// xia_shell: an interactive shell over the whole XIA stack — load or
// generate data, inspect statistics, create/drop (virtual) indexes,
// EXPLAIN and run statements, build a workload, and ask the advisor.
//
//   $ xia_shell
//   xia> demo
//   xia> workload add for $s in c('SDOC')/Security where $s/Symbol = "SYM000017" return $s
//   xia> advise 1MB topdown-full
//   xia> create index sym on SDOC /Security/Symbol string
//   xia> explain for $s in c('SDOC')/Security where $s/Symbol = "SYM000017" return $s
//   xia> run      for $s in c('SDOC')/Security where $s/Symbol = "SYM000017" return $s
//
// Also scriptable: `xia_shell < script.txt` (used by the test suite).

#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "engine/ddl.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/online_build.h"
#include "storage/snapshot.h"
#include "tpox/tpox_data.h"
#include "tpox/xmark.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "wal/manager.h"
#include "workload/capture.h"
#include "workload/online_advisor.h"
#include "workload/workload_io.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace {

using namespace xia;  // NOLINT
namespace fs = std::filesystem;

class Shell {
 public:
  Shell()
      : catalog_(&store_, &statistics_),
        optimizer_(&store_, &catalog_, &statistics_),
        executor_(&store_, &catalog_),
        advisor_(&store_, &statistics_) {
    // Every executed statement flows into the capture sink; the sink is
    // disabled until `monitor start` so the hot path pays one atomic load.
    executor_.set_sink(&capture_);
  }

  /// Opens `dir` as a durable data directory: recovers (or initializes a
  /// fresh WAL + empty store) and routes every later mutation through
  /// the WAL. A torn log tail is salvaged and reported, never an error;
  /// only real corruption (kDataLoss) fails the open.
  Status OpenDataDir(const std::string& dir, const std::string& fsync_text) {
    wal::WalManagerOptions options;
    if (!fsync_text.empty()) {
      XIA_ASSIGN_OR_RETURN(options.writer.policy,
                           wal::ParseFsyncPolicy(fsync_text));
    }
    wal_ = std::make_unique<wal::WalManager>(dir, options);
    XIA_ASSIGN_OR_RETURN(const wal::RecoveryReport report,
                         wal_->Open(&store_, &catalog_, &statistics_));
    std::printf("%s: %s\n", dir.c_str(), report.ToString().c_str());
    executor_.set_commit_log(wal_.get());
    return Status::OK();
  }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("xia shell — 'help' lists commands\n");
    for (;;) {
      if (interactive) {
        std::printf("xia> ");
        std::fflush(stdout);
      }
      if (!std::getline(in, line)) break;
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == "quit" || trimmed == "exit") break;
      Status status = Dispatch(std::string(trimmed));
      if (!status.ok()) {
        // Errors go to stderr so scripted sessions can separate them from
        // command output; a script aborts with a StatusCode-derived exit
        // code (see StatusExitCode) that distinguishes failure kinds.
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        if (!interactive) return StatusExitCode(status);
      }
    }
    return 0;
  }

  /// Worker threads for advise / monitor passes (0 = one per hardware
  /// thread, 1 = serial). Same recommendation at any setting.
  void set_advise_threads(size_t threads) { advise_threads_ = threads; }

 private:
  static std::pair<std::string, std::string> SplitCommand(
      const std::string& line) {
    const size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) return {line, ""};
    return {line.substr(0, space), std::string(Trim(line.substr(space)))};
  }

  Status Dispatch(const std::string& line) {
    auto [cmd, rest] = SplitCommand(line);
    if (cmd == "help") return Help();
    if (cmd == "demo") return Demo(rest);
    if (cmd == "load") return Load(rest);
    if (cmd == "save") return SaveSnapshot(rest);
    if (cmd == "restore") return RestoreSnapshot(rest);
    if (cmd == "collections") return Collections();
    if (cmd == "stats") return Stats(rest);
    if (cmd == "indexes") return Indexes();
    if (cmd == "create") return Create(rest);
    if (cmd == "drop") return DropIndex(rest);
    if (cmd == "runstats") return RunStatsCommand(rest);
    if (cmd == "checkpoint") return CheckpointCommand();
    if (cmd == "wal") return WalCommand(rest);
    if (cmd == "enumerate") return Enumerate(rest);
    if (cmd == "explain") return Explain(rest);
    if (cmd == "run") return Execute(rest);
    if (cmd == "workload") return WorkloadCommand(rest);
    if (cmd == "advise") return Advise(rest);
    if (cmd == "monitor") return MonitorCommand(rest);
    if (cmd == "replay") return Replay(rest);
    if (cmd == "trace") return TraceCommand(rest);
    if (cmd == "faults") return Faults();
    return Status::InvalidArgument("unknown command '" + cmd +
                                   "' (try 'help')");
  }

  Status Help() {
    std::printf(
        "  demo [tpox|xmark]              generate a demo database\n"
        "  load DIR                       load DIR/<collection>/*.xml\n"
        "  save FILE | restore FILE       binary snapshot of the store\n"
        "  collections                    list collections\n"
        "  stats                          process-wide metrics table\n"
        "  stats COLLECTION [N]           top-N data paths with statistics\n"
        "  indexes                        list catalog indexes\n"
        "  create collection NAME         create an empty collection\n"
        "  create index NAME on COLL PATTERN [string|numeric|structural]"
        " [virtual] [online]\n"
        "  drop index NAME\n"
        "  runstats COLLECTION            refresh data statistics\n"
        "  checkpoint                     snapshot + truncate the WAL"
        " (--data-dir)\n"
        "  wal status                     durability state (--data-dir)\n"
        "  enumerate STATEMENT            Enumerate-Indexes mode candidates\n"
        "  explain STATEMENT              best plan + cost\n"
        "  explain analyze STATEMENT      execute and compare to estimates\n"
        "  run STATEMENT                  execute best plan\n"
        "  workload add STATEMENT | load FILE | save FILE | list | show |"
        " clear\n"
        "  advise BUDGET [greedy|heuristics|topdown-lite|topdown-full|dp]"
        " [BUDGET_MS]\n"
        "                                 BUDGET_MS caps wall-clock time;\n"
        "                                 on expiry the best-so-far partial\n"
        "                                 recommendation is reported\n"
        "  monitor start [MIN_QUERIES] [INTERVAL_S]   capture + online"
        " advising\n"
        "  monitor status|flush|stop      online advisor state / force a"
        " pass / stop\n"
        "  monitor save FILE              save the captured (templatized)"
        " workload\n"
        "  replay FILE [TIMES]            execute a workload file TIMES"
        " times\n"
        "  trace on|off                   per-phase advisor trace in advise\n"
        "  faults                         fault-injection points (XIA_FAULTS)\n"
        "  quit\n");
    return Status::OK();
  }

  Status Demo(const std::string& which) {
    std::lock_guard<std::mutex> db(db_mu_);
    if (which.empty() || which == "tpox") {
      tpox::TpoxScale scale;
      XIA_RETURN_IF_ERROR(
          tpox::BuildTpoxDatabase(scale, &store_, &statistics_));
      std::printf("TPoX demo database loaded (SDOC/ODOC/CADOC)\n");
      return CheckpointAfterBulkLoadLocked();
    }
    if (which == "xmark") {
      tpox::XmarkScale scale;
      XIA_RETURN_IF_ERROR(
          tpox::BuildXmarkDatabase(scale, &store_, &statistics_));
      std::printf("XMark demo database loaded (XITEM/XAUCTION/XPERSON)\n");
      return CheckpointAfterBulkLoadLocked();
    }
    return Status::InvalidArgument("demo tpox|xmark");
  }

  Status Load(const std::string& dir) {
    std::lock_guard<std::mutex> db(db_mu_);
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      return Status::NotFound("not a directory: " + dir);
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_directory()) continue;
      const std::string name = entry.path().filename().string();
      XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                           store_.CreateCollection(name));
      size_t docs = 0;
      for (const auto& file : fs::directory_iterator(entry.path())) {
        if (!file.is_regular_file() || file.path().extension() != ".xml") {
          continue;
        }
        std::ifstream f(file.path());
        std::stringstream buffer;
        buffer << f.rdbuf();
        XIA_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(buffer.str()));
        coll->Add(std::move(doc));
        ++docs;
      }
      statistics_.RunStats(*coll);
      std::printf("loaded %s: %zu documents\n", name.c_str(), docs);
    }
    return CheckpointAfterBulkLoadLocked();
  }

  /// Bulk loads (demo/load/restore) mutate the store without going
  /// through the executor, so the WAL never saw them; an immediate
  /// checkpoint makes them durable. No-op without --data-dir.
  Status CheckpointAfterBulkLoadLocked() {
    if (!wal_) return Status::OK();
    XIA_RETURN_IF_ERROR(wal_->Checkpoint(store_, catalog_));
    std::printf("checkpointed at lsn %llu\n",
                static_cast<unsigned long long>(
                    wal_->GetStatus().checkpoint_lsn));
    return Status::OK();
  }

  Status SaveSnapshot(const std::string& path) {
    std::lock_guard<std::mutex> db(db_mu_);
    if (path.empty()) return Status::InvalidArgument("save FILE");
    XIA_RETURN_IF_ERROR(storage::SaveSnapshotToFile(store_, path));
    std::printf("saved %zu collection(s) to %s\n",
                store_.CollectionNames().size(), path.c_str());
    return Status::OK();
  }

  Status RestoreSnapshot(const std::string& path) {
    std::lock_guard<std::mutex> db(db_mu_);
    if (path.empty()) return Status::InvalidArgument("restore FILE");
    if (!store_.CollectionNames().empty()) {
      return Status::FailedPrecondition(
          "store is not empty; restore only works in a fresh session");
    }
    XIA_RETURN_IF_ERROR(storage::LoadSnapshotFromFile(path, &store_));
    for (const std::string& name : store_.CollectionNames()) {
      XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                           store_.GetCollection(name));
      statistics_.RunStats(*coll);
      std::printf("restored %s: %zu documents\n", name.c_str(),
                  coll->live_count());
    }
    return CheckpointAfterBulkLoadLocked();
  }

  Status Collections() {
    for (const std::string& name : store_.CollectionNames()) {
      XIA_ASSIGN_OR_RETURN(const storage::Collection* coll,
                           store_.GetCollection(name));
      std::printf("  %-12s %6zu documents  %10s  %8zu nodes\n", name.c_str(),
                  coll->live_count(),
                  HumanBytes(static_cast<double>(coll->total_bytes())).c_str(),
                  coll->total_nodes());
    }
    return Status::OK();
  }

  Status Stats(const std::string& rest) {
    auto [name, n_text] = SplitCommand(rest);
    if (name.empty()) {
      // Bare `stats`: the process-wide metrics table.
      std::printf("%s", obs::MetricsRegistry::Global().Snapshot()
                            .ToTable().c_str());
      return Status::OK();
    }
    size_t limit = 15;
    double n = 0;
    if (!n_text.empty() && ParseDouble(n_text, &n) && n > 0) {
      limit = static_cast<size_t>(n);
    }
    XIA_ASSIGN_OR_RETURN(const storage::CollectionStatistics* cs,
                         statistics_.Get(name));
    std::printf("%-52s %8s %8s %8s\n", "path", "count", "distinct",
                "numeric");
    std::vector<const storage::PathStats*> paths;
    for (const auto& [_, stats] : cs->paths()) paths.push_back(&stats);
    std::sort(paths.begin(), paths.end(),
              [](const auto* a, const auto* b) { return a->count > b->count; });
    for (size_t i = 0; i < paths.size() && i < limit; ++i) {
      std::printf("%-52s %8llu %8llu %8llu\n",
                  paths[i]->PathString().c_str(),
                  static_cast<unsigned long long>(paths[i]->count),
                  static_cast<unsigned long long>(paths[i]->distinct_values),
                  static_cast<unsigned long long>(paths[i]->numeric_count));
    }
    return Status::OK();
  }

  Status Indexes() {
    bool any = false;
    for (const std::string& coll : store_.CollectionNames()) {
      for (const auto* def : catalog_.IndexesFor(coll)) {
        std::printf("  %-14s %-10s %-40s %8s %s\n", def->name.c_str(),
                    coll.c_str(), def->pattern.ToString().c_str(),
                    HumanBytes(static_cast<double>(def->stats.size_bytes))
                        .c_str(),
                    def->is_virtual ? "[virtual]" : "");
        any = true;
      }
    }
    if (!any) std::printf("  (no indexes)\n");
    return Status::OK();
  }

  // create collection NAME | create index NAME on COLL PATTERN ...
  Status Create(const std::string& rest) {
    auto [kind, arg] = SplitCommand(rest);
    if (kind == "collection") {
      if (arg.empty()) return Status::InvalidArgument("create collection NAME");
      std::lock_guard<std::mutex> db(db_mu_);
      XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                           store_.CreateCollection(arg));
      statistics_.RunStats(*coll);
      if (wal_) XIA_RETURN_IF_ERROR(wal_->LogCreateCollection(arg));
      std::printf("created collection %s\n", arg.c_str());
      return Status::OK();
    }
    return CreateIndex(rest);
  }

  // create index NAME on COLL PATTERN [type] [virtual] [online]
  Status CreateIndex(const std::string& rest) {
    std::lock_guard<std::mutex> db(db_mu_);
    XIA_ASSIGN_OR_RETURN(const engine::CreateIndexSpec spec,
                         engine::ParseCreateIndex(rest));
    storage::OnlineBuildReport report;
    if (spec.is_virtual) {
      XIA_RETURN_IF_ERROR(
          catalog_.CreateVirtualIndex(spec.name, spec.collection, spec.pattern)
              .status());
    } else if (spec.online) {
      // The shell command loop holds db_mu_ (the monitor thread is the
      // only other mutator), so the build runs its phases over a private
      // shared_mutex: same state machine and report as the server path,
      // minus concurrent mutators.
      std::shared_mutex build_mu;
      auto commit = [&]() -> Status {
        if (wal_) {
          return wal_->LogCreateIndex(spec.name, spec.collection,
                                      spec.pattern);
        }
        return Status::OK();
      };
      XIA_RETURN_IF_ERROR(
          storage::BuildIndexOnline(&catalog_, &build_mu, spec.name,
                                    spec.collection, spec.pattern, {}, commit,
                                    &report)
              .status());
    } else {
      XIA_RETURN_IF_ERROR(
          catalog_.CreateIndex(spec.name, spec.collection, spec.pattern)
              .status());
      // Virtual indexes are advisor scratch state; only real DDL is
      // durable.
      if (wal_) {
        XIA_RETURN_IF_ERROR(
            wal_->LogCreateIndex(spec.name, spec.collection, spec.pattern));
      }
    }
    XIA_ASSIGN_OR_RETURN(const storage::IndexDef* def,
                         catalog_.Get(spec.name));
    std::printf("created %s%s: %llu entries, %s\n", spec.name.c_str(),
                spec.is_virtual ? " (virtual)" : "",
                static_cast<unsigned long long>(def->stats.entry_count),
                HumanBytes(static_cast<double>(def->stats.size_bytes))
                    .c_str());
    if (spec.online) {
      std::printf("  online build: %.3fs total, %.3fs stalled, "
                  "%llu delta ops, %llu docs scanned\n",
                  report.total_seconds, report.exclusive_seconds,
                  static_cast<unsigned long long>(report.delta_ops_applied),
                  static_cast<unsigned long long>(report.docs_scanned));
    }
    return Status::OK();
  }

  Status DropIndex(const std::string& rest) {
    std::lock_guard<std::mutex> db(db_mu_);
    auto [kw, name] = SplitCommand(rest);
    if (kw != "index" || name.empty()) {
      return Status::InvalidArgument("drop index NAME");
    }
    XIA_ASSIGN_OR_RETURN(const storage::IndexDef* def, catalog_.Get(name));
    const bool was_real = !def->is_virtual;
    XIA_RETURN_IF_ERROR(catalog_.DropIndex(name));
    if (was_real && wal_) XIA_RETURN_IF_ERROR(wal_->LogDropIndex(name));
    return Status::OK();
  }

  Status RunStatsCommand(const std::string& rest) {
    if (rest.empty()) return Status::InvalidArgument("runstats COLLECTION");
    std::lock_guard<std::mutex> db(db_mu_);
    XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                         store_.GetCollection(rest));
    statistics_.RunStats(*coll);
    if (wal_) XIA_RETURN_IF_ERROR(wal_->LogStatsRefresh(rest));
    std::printf("  statistics refreshed for %s\n", rest.c_str());
    return Status::OK();
  }

  Status CheckpointCommand() {
    if (!wal_) {
      return Status::FailedPrecondition("no data dir (start with --data-dir)");
    }
    std::lock_guard<std::mutex> db(db_mu_);
    XIA_RETURN_IF_ERROR(wal_->Checkpoint(store_, catalog_));
    const wal::WalStatus st = wal_->GetStatus();
    std::printf("  checkpointed at lsn %llu (log reset to %s)\n",
                static_cast<unsigned long long>(st.checkpoint_lsn),
                HumanBytes(static_cast<double>(st.log_bytes)).c_str());
    return Status::OK();
  }

  Status WalCommand(const std::string& rest) {
    if (rest != "status") return Status::InvalidArgument("wal status");
    if (!wal_) {
      return Status::FailedPrecondition("no data dir (start with --data-dir)");
    }
    std::printf("  %s\n", wal_->GetStatus().ToString().c_str());
    std::printf("  last open: %s\n",
                wal_->last_recovery().ToString().c_str());
    return Status::OK();
  }

  Status Enumerate(const std::string& text) {
    std::lock_guard<std::mutex> db(db_mu_);
    XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                         engine::ParseStatement(text));
    XIA_ASSIGN_OR_RETURN(std::vector<xpath::IndexPattern> patterns,
                         optimizer_.EnumerateIndexes(stmt));
    if (patterns.empty()) {
      std::printf("  (no indexable patterns)\n");
    }
    for (const auto& p : patterns) std::printf("  %s\n", p.ToString().c_str());
    return Status::OK();
  }

  Status Explain(const std::string& text) {
    std::lock_guard<std::mutex> db(db_mu_);
    auto [first, rest] = SplitCommand(text);
    if (first == "analyze") {
      XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                           engine::ParseStatement(rest));
      XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer_.Optimize(stmt));
      XIA_ASSIGN_OR_RETURN(std::string report,
                           executor_.ExplainAnalyze(stmt, plan));
      std::printf("  %s", report.c_str());
      return Status::OK();
    }
    XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                         engine::ParseStatement(text));
    XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer_.Optimize(stmt));
    std::printf("  %s\n", plan.Describe().c_str());
    return Status::OK();
  }

  Status Execute(const std::string& text) {
    std::lock_guard<std::mutex> db(db_mu_);
    XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                         engine::ParseStatement(text));
    XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer_.Optimize(stmt));
    engine::ExecOptions exec_options;
    exec_options.materialize_rows = true;
    exec_options.max_rows = 10;
    XIA_ASSIGN_OR_RETURN(engine::ExecResult result,
                         executor_.Execute(stmt, plan, exec_options));
    std::printf("  %s\n  %llu results, %llu docs examined, %llu index "
                "entries, %.4fs\n",
                plan.Describe().c_str(),
                static_cast<unsigned long long>(result.result_count),
                static_cast<unsigned long long>(result.docs_examined),
                static_cast<unsigned long long>(result.index_entries_scanned),
                result.wall_seconds);
    for (const std::string& row : result.rows) {
      std::printf("    %.110s\n", row.c_str());
    }
    if (result.result_count > result.rows.size() && !result.rows.empty()) {
      std::printf("    ... (%llu more)\n",
                  static_cast<unsigned long long>(result.result_count -
                                                  result.rows.size()));
    }
    return Status::OK();
  }

  Status WorkloadCommand(const std::string& rest) {
    auto [sub, arg] = SplitCommand(rest);
    if (sub == "add") {
      XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                           engine::ParseStatement(arg));
      stmt.label = StringPrintf("stmt-%zu", workload_.size() + 1);
      workload_.push_back(std::move(stmt));
      std::printf("  %zu statements in workload\n", workload_.size());
      return Status::OK();
    }
    if (sub == "load") {
      std::ifstream f(arg);
      if (!f) return Status::NotFound("workload file: " + arg);
      std::stringstream buffer;
      buffer << f.rdbuf();
      XIA_ASSIGN_OR_RETURN(engine::Workload loaded,
                           engine::ParseWorkloadText(buffer.str()));
      for (auto& stmt : loaded) workload_.push_back(std::move(stmt));
      std::printf("  %zu statements in workload\n", workload_.size());
      return Status::OK();
    }
    if (sub == "save") {
      if (arg.empty()) return Status::InvalidArgument("workload save FILE");
      XIA_RETURN_IF_ERROR(workload::SaveWorkloadToFile(workload_, arg));
      std::printf("  saved %zu statements to %s\n", workload_.size(),
                  arg.c_str());
      return Status::OK();
    }
    if (sub == "list") {
      for (const auto& stmt : workload_) {
        std::printf("  [%g] %s\n", stmt.frequency,
                    engine::ToText(stmt).c_str());
      }
      if (workload_.empty()) std::printf("  (empty)\n");
      return Status::OK();
    }
    if (sub == "show") {
      double total_freq = 0;
      for (const auto& stmt : workload_) total_freq += stmt.frequency;
      for (const auto& stmt : workload_) {
        const char* kind = stmt.is_query()    ? "query"
                           : stmt.is_insert() ? "insert"
                           : stmt.is_delete() ? "delete"
                                              : "update";
        std::printf("  %-16s %-6s freq=%-8g %.80s\n", stmt.label.c_str(),
                    kind, stmt.frequency, engine::ToText(stmt).c_str());
      }
      std::printf("  %zu statements, total frequency %g\n", workload_.size(),
                  total_freq);
      return Status::OK();
    }
    if (sub == "clear") {
      workload_.clear();
      return Status::OK();
    }
    return Status::InvalidArgument(
        "workload add|load|save|list|show|clear");
  }

  Status Advise(const std::string& rest) {
    std::lock_guard<std::mutex> db(db_mu_);
    if (workload_.empty()) {
      return Status::FailedPrecondition("workload is empty (workload add …)");
    }
    auto [budget_text, tail] = SplitCommand(rest);
    auto [algo_text, ms_text] = SplitCommand(tail);
    advisor::AdvisorOptions options;
    options.disk_budget_bytes = 10 * 1024.0 * 1024.0;
    options.threads = advise_threads_;
    if (!budget_text.empty()) {
      double multiplier = 1;
      std::string num = budget_text;
      if (EndsWith(num, "KB") || EndsWith(num, "kb")) {
        multiplier = 1024;
        num = num.substr(0, num.size() - 2);
      } else if (EndsWith(num, "MB") || EndsWith(num, "mb")) {
        multiplier = 1024.0 * 1024;
        num = num.substr(0, num.size() - 2);
      } else if (EndsWith(num, "GB") || EndsWith(num, "gb")) {
        multiplier = 1024.0 * 1024 * 1024;
        num = num.substr(0, num.size() - 2);
      }
      double v = 0;
      if (!ParseDouble(num, &v) || v < 0) {
        return Status::InvalidArgument("bad budget: " + budget_text);
      }
      options.disk_budget_bytes = v * multiplier;
    }
    if (!algo_text.empty()) {
      if (algo_text == "greedy") {
        options.algorithm = advisor::SearchAlgorithm::kGreedy;
      } else if (algo_text == "heuristics") {
        options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
      } else if (algo_text == "topdown-lite") {
        options.algorithm = advisor::SearchAlgorithm::kTopDownLite;
      } else if (algo_text == "topdown-full") {
        options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
      } else if (algo_text == "dp") {
        options.algorithm = advisor::SearchAlgorithm::kDynamicProgramming;
      } else {
        return Status::InvalidArgument("unknown algorithm: " + algo_text);
      }
    }
    if (!ms_text.empty()) {
      double ms = 0;
      if (!ParseDouble(ms_text, &ms) || ms <= 0) {
        return Status::InvalidArgument("bad BUDGET_MS: " + ms_text);
      }
      options.budget_ms = ms;
    }
    XIA_ASSIGN_OR_RETURN(advisor::Recommendation rec,
                         advisor_.Recommend(workload_, options));
    for (const auto& ri : rec.indexes) {
      std::printf("  %s  -- %s%s\n", ri.ddl.c_str(),
                  HumanBytes(static_cast<double>(ri.size_bytes)).c_str(),
                  ri.is_general ? " [general]" : "");
    }
    std::printf("  total %s, est. speedup %.2fx, %llu optimizer calls%s\n",
                HumanBytes(rec.total_size_bytes).c_str(), rec.est_speedup,
                static_cast<unsigned long long>(rec.optimizer_calls),
                rec.partial ? ", partial=true" : "");
    if (trace_ && !rec.trace.empty()) {
      std::printf("%s", rec.trace.ToString().c_str());
    }
    return Status::OK();
  }

  // monitor start [MIN_QUERIES] [INTERVAL_S] | status | flush | stop |
  // save FILE — online workload capture + continuous advising.
  Status MonitorCommand(const std::string& rest) {
    auto [sub, arg] = SplitCommand(rest);
    if (sub == "start") {
      if (monitor_ && monitor_->running()) {
        return Status::FailedPrecondition("monitor already running");
      }
      workload::OnlineAdvisorOptions options;
      options.advisor.disk_budget_bytes = 10 * 1024.0 * 1024.0;
      options.advisor.threads = advise_threads_;
      auto [min_text, interval_text] = SplitCommand(arg);
      double v = 0;
      if (!min_text.empty()) {
        if (!ParseDouble(min_text, &v) || v < 1) {
          return Status::InvalidArgument("bad MIN_QUERIES: " + min_text);
        }
        options.min_new_queries = static_cast<size_t>(v);
      }
      if (!interval_text.empty()) {
        if (!ParseDouble(interval_text, &v) || v <= 0) {
          return Status::InvalidArgument("bad INTERVAL_S: " + interval_text);
        }
        options.advise_interval_seconds = v;
      }
      if (wal_) {
        // Periodic checkpoints ride the monitor thread, bounding the log
        // replay a crash would need.
        options.checkpoint_fn = [this] {
          std::lock_guard<std::mutex> db(db_mu_);
          return wal_->Checkpoint(store_, catalog_);
        };
      }
      monitor_ = std::make_unique<workload::OnlineAdvisor>(
          &capture_, &advisor_, options, &db_mu_);
      XIA_RETURN_IF_ERROR(monitor_->Start());
      std::printf(
          "  monitoring: advising every %zu queries or %.1fs\n",
          options.min_new_queries, options.advise_interval_seconds);
      return Status::OK();
    }
    if (!monitor_) {
      return Status::FailedPrecondition("monitor not started");
    }
    if (sub == "stop") {
      monitor_->Stop();
      const workload::OnlineAdvisorStatus st = monitor_->Snapshot();
      std::printf("  monitor stopped: %llu queries -> %zu templates, "
                  "%llu advise passes\n",
                  static_cast<unsigned long long>(st.queries_seen),
                  st.template_count,
                  static_cast<unsigned long long>(st.advise_runs));
      return Status::OK();
    }
    if (sub == "flush") {
      XIA_RETURN_IF_ERROR(monitor_->AdviseNow());
      std::printf("  advised\n");
      return Status::OK();
    }
    if (sub == "status") {
      const workload::OnlineAdvisorStatus st = monitor_->Snapshot();
      std::printf(
          "  %s | captured %llu (pending %zu, dropped %llu) | "
          "%zu templates (dedup %.1fx)\n",
          st.running ? "running" : "stopped",
          static_cast<unsigned long long>(capture_.published()),
          capture_.pending(),
          static_cast<unsigned long long>(capture_.dropped()),
          st.template_count, st.dedup_ratio);
      std::printf(
          "  advise passes %llu (failures %llu, retries %llu), "
          "last %.3fs, churn +%zu/-%zu\n",
          static_cast<unsigned long long>(st.advise_runs),
          static_cast<unsigned long long>(st.advise_failures),
          static_cast<unsigned long long>(st.advise_retries),
          st.last_advise_seconds, st.last_entered, st.last_left);
      std::printf(
          "  circuit breaker %s (opened %llu times, %llu consecutive "
          "failures)\n",
          st.circuit_open ? "OPEN" : "closed",
          static_cast<unsigned long long>(st.circuit_opens),
          static_cast<unsigned long long>(st.consecutive_failures));
      if (!st.last_error.empty()) {
        std::printf("  last error: %s\n", st.last_error.c_str());
      }
      if (st.has_recommendation) {
        for (const auto& ri : st.recommendation.indexes) {
          std::printf("  %s  -- %s%s\n", ri.ddl.c_str(),
                      HumanBytes(static_cast<double>(ri.size_bytes)).c_str(),
                      ri.is_general ? " [general]" : "");
        }
        std::printf("  est. speedup %.2fx over the captured workload\n",
                    st.recommendation.est_speedup);
      } else {
        std::printf("  (no recommendation yet)\n");
      }
      return Status::OK();
    }
    if (sub == "save") {
      if (arg.empty()) return Status::InvalidArgument("monitor save FILE");
      const engine::Workload captured = monitor_->CurrentWorkload();
      if (captured.empty()) {
        return Status::FailedPrecondition("nothing captured yet");
      }
      XIA_RETURN_IF_ERROR(workload::SaveWorkloadToFile(captured, arg));
      std::printf("  saved %zu templates to %s\n", captured.size(),
                  arg.c_str());
      return Status::OK();
    }
    return Status::InvalidArgument("monitor start|status|flush|save|stop");
  }

  // replay FILE [TIMES]: execute every statement of a workload file
  // (optimize + run) TIMES times; executions flow into the capture sink.
  Status Replay(const std::string& rest) {
    auto [file, times_text] = SplitCommand(rest);
    if (file.empty()) return Status::InvalidArgument("replay FILE [TIMES]");
    size_t times = 1;
    double v = 0;
    if (!times_text.empty()) {
      if (!ParseDouble(times_text, &v) || v < 1) {
        return Status::InvalidArgument("bad TIMES: " + times_text);
      }
      times = static_cast<size_t>(v);
    }
    XIA_ASSIGN_OR_RETURN(engine::Workload loaded,
                         workload::LoadWorkloadFromFile(file));
    uint64_t executed = 0;
    Stopwatch timer;
    for (size_t t = 0; t < times; ++t) {
      for (const auto& stmt : loaded) {
        // Lock per statement, not per pass, so the online advisor can
        // interleave its passes with a long replay.
        std::lock_guard<std::mutex> db(db_mu_);
        XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer_.Optimize(stmt));
        XIA_RETURN_IF_ERROR(executor_.Execute(stmt, plan).status());
        ++executed;
      }
    }
    std::printf("  replayed %llu statements (%zu x %zu) in %.3fs\n",
                static_cast<unsigned long long>(executed), loaded.size(),
                times, timer.ElapsedSeconds());
    return Status::OK();
  }

  // Lists every registered fault-injection point with its armed spec and
  // hit/fired counters — the runtime view of the XIA_FAULTS env spec.
  Status Faults() {
    const auto snapshot = fault::FaultRegistry::Global().Snapshot();
    if (snapshot.empty()) {
      std::printf("  (no fault points registered)\n");
      return Status::OK();
    }
    std::printf("  %-28s %-8s %10s %10s\n", "point", "spec", "hits", "fired");
    for (const auto& point : snapshot) {
      std::printf("  %-28s %-8s %10llu %10llu\n", point.name.c_str(),
                  point.spec.ToString().c_str(),
                  static_cast<unsigned long long>(point.hits),
                  static_cast<unsigned long long>(point.fired));
    }
    return Status::OK();
  }

  Status TraceCommand(const std::string& rest) {
    if (rest == "on") {
      trace_ = true;
    } else if (rest == "off") {
      trace_ = false;
    } else {
      return Status::InvalidArgument("trace on|off");
    }
    std::printf("  trace %s\n", trace_ ? "on" : "off");
    return Status::OK();
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog statistics_;
  storage::Catalog catalog_;
  optimizer::Optimizer optimizer_;
  engine::Executor executor_;
  advisor::IndexAdvisor advisor_;
  engine::Workload workload_;
  /// Serializes store/statistics/catalog access between shell commands
  /// and the online advisor's background passes.
  std::mutex db_mu_;
  workload::WorkloadCapture capture_;
  std::unique_ptr<workload::OnlineAdvisor> monitor_;
  std::unique_ptr<wal::WalManager> wal_;
  bool trace_ = false;
  size_t advise_threads_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (Status s = fault::FaultRegistry::Global().ConfigureFromEnv(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }
  std::string script;
  std::string data_dir;
  std::string fsync_policy;
  size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--script" && has_value) {
      script = argv[++i];
    } else if (arg == "--data-dir" && has_value) {
      data_dir = argv[++i];
    } else if (arg == "--fsync" && has_value) {
      fsync_policy = argv[++i];
    } else if ((arg == "--threads" || arg == "-j") && has_value) {
      double v = 0;
      if (!ParseDouble(argv[++i], &v) || v < 0 ||
          v != static_cast<double>(static_cast<size_t>(v))) {
        std::fprintf(stderr, "bad --threads value: %s\n", argv[i]);
        return 2;
      }
      threads = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr,
                   "usage: xia_shell [--script FILE] [--data-dir DIR]"
                   " [--fsync always|interval|off] [--threads N | -j N]\n"
                   "  --threads/-j: worker threads for advise / monitor"
                   " passes\n"
                   "                (0 = one per hardware thread, 1 ="
                   " serial)\n");
      return 2;
    }
  }
  Shell shell;
  shell.set_advise_threads(threads);
  if (!data_dir.empty()) {
    // Recovery failures exit with the status-derived code: salvaged torn
    // tails are OK (exit 0 later), real corruption is kDataLoss (exit 22).
    if (Status s = shell.OpenDataDir(data_dir, fsync_policy); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return StatusExitCode(s);
    }
  }
  if (!script.empty()) {
    std::ifstream f(script);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", script.c_str());
      return 1;
    }
    return shell.Run(f, /*interactive=*/false);
  }
  const bool interactive = isatty(0);
  return shell.Run(std::cin, interactive);
}
