// xia_advise: command-line XML index advisor.
//
// Usage:
//   xia_advise --data DIR --workload FILE [--budget 10MB]
//              [--algorithm topdown-full] [--all-index] [--explain]
//   xia_advise --demo [--budget ...]      (generated TPoX-style database)
//
// DIR layout: one subdirectory per collection, each containing *.xml
// documents:
//   data/SDOC/security1.xml
//   data/SDOC/security2.xml
//   data/ODOC/order1.xml
//
// The workload file format is documented in engine/query_parser.h
// (';'-separated statements, '#' comments, @freq=/@label= annotations).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "advisor/advisor.h"
#include "advisor/report.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "xml/parser.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "tpox/tpox_data.h"
#include "util/string_util.h"
#include "workload/capture.h"
#include "workload/templatizer.h"
#include "workload/workload_io.h"

namespace {

using namespace xia;  // NOLINT
namespace fs = std::filesystem;

int Usage() {
  std::fprintf(
      stderr,
      "usage: xia_advise (--data DIR | --snapshot FILE | --demo)"
      " --workload FILE\n"
      "                  [--budget SIZE] [--budget-ms MS] [--algorithm NAME]"
      " [--beta F]\n"
      "                  [--no-generalize] [--all-index] [--explain]"
      " [--report]\n"
      "                  [--metrics-json PATH] [--capture PATH]"
      " [--threads N | -j N]\n"
      "  SIZE: bytes, or suffixed 512KB / 10MB / 1GB\n"
      "  NAME: greedy | heuristics | topdown-lite | topdown-full | dp\n"
      "  --threads/-j: worker threads for the what-if phases; 0 (default)\n"
      "             uses one per hardware thread, 1 forces serial. The\n"
      "             recommendation is identical at any thread count\n"
      "  --budget-ms: wall-clock budget for the advise run; on expiry the\n"
      "             best configuration found so far is reported with\n"
      "             partial=true\n"
      "  --capture: templatize the workload (constants -> markers,\n"
      "             duplicates merged into weighted templates), save the\n"
      "             compressed workload to PATH, and advise over it\n"
      "  env: XIA_FAULTS=\"name=p0.5,name2=n3\" arms fault-injection"
      " points;\n"
      "       XIA_FAULTS_SEED seeds their PRNGs\n");
  return 2;
}

// Every failure exits with a code derived from the StatusCode (see
// StatusExitCode), so scripts can distinguish e.g. not-found from
// data-loss without parsing stderr.
int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return StatusExitCode(status);
}

bool ParseSize(const std::string& text, double* out) {
  double multiplier = 1;
  std::string num = text;
  if (text.size() > 2) {
    const std::string suffix = text.substr(text.size() - 2);
    if (suffix == "KB" || suffix == "kb") {
      multiplier = 1024;
    } else if (suffix == "MB" || suffix == "mb") {
      multiplier = 1024.0 * 1024;
    } else if (suffix == "GB" || suffix == "gb") {
      multiplier = 1024.0 * 1024 * 1024;
    }
    if (multiplier != 1) num = text.substr(0, text.size() - 2);
  }
  double v = 0;
  if (!ParseDouble(num, &v) || v < 0) return false;
  *out = v * multiplier;
  return true;
}

bool ParseAlgorithm(const std::string& name,
                    advisor::SearchAlgorithm* out) {
  if (name == "greedy") {
    *out = advisor::SearchAlgorithm::kGreedy;
  } else if (name == "heuristics") {
    *out = advisor::SearchAlgorithm::kGreedyWithHeuristics;
  } else if (name == "topdown-lite") {
    *out = advisor::SearchAlgorithm::kTopDownLite;
  } else if (name == "topdown-full") {
    *out = advisor::SearchAlgorithm::kTopDownFull;
  } else if (name == "dp") {
    *out = advisor::SearchAlgorithm::kDynamicProgramming;
  } else {
    return false;
  }
  return true;
}

Status LoadDataDirectory(const std::string& dir,
                         storage::DocumentStore* store,
                         storage::StatisticsCatalog* statistics) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("data directory not found: " + dir);
  }
  size_t total_docs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string collection_name = entry.path().filename().string();
    auto coll = store->CreateCollection(collection_name);
    if (!coll.ok()) return coll.status();
    size_t docs = 0;
    for (const auto& file : fs::directory_iterator(entry.path())) {
      if (!file.is_regular_file()) continue;
      if (file.path().extension() != ".xml") continue;
      std::ifstream in(file.path());
      std::stringstream buffer;
      buffer << in.rdbuf();
      auto doc = xml::Parse(buffer.str());
      if (!doc.ok()) {
        return Status::ParseError(file.path().string() + ": " +
                                  doc.status().message());
      }
      (*coll)->Add(std::move(*doc));
      ++docs;
    }
    if (docs == 0) {
      return Status::InvalidArgument("collection directory " +
                                     collection_name + " has no .xml files");
    }
    statistics->RunStats(**coll);
    std::printf("loaded collection %-12s %6zu documents, %s\n",
                collection_name.c_str(), docs,
                HumanBytes(static_cast<double>((*coll)->total_bytes()))
                    .c_str());
    total_docs += docs;
  }
  if (total_docs == 0) {
    return Status::InvalidArgument(
        "no collections found (expected DIR/<collection>/*.xml)");
  }
  return Status::OK();
}

// Validates an output file path up front: the parent directory must exist
// and the path must not name a directory. Run *before* the expensive work
// so a typo'd --metrics-json / --capture path fails immediately with a
// clear error instead of silently writing nothing at the end.
Status ValidateOutputPath(const std::string& path, const char* what) {
  const fs::path p(path);
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    return Status::InvalidArgument(std::string(what) + " path " + path +
                                   " is a directory");
  }
  if (p.has_parent_path() && !fs::is_directory(p.parent_path(), ec)) {
    return Status::NotFound(std::string(what) + " directory does not exist: " +
                            p.parent_path().string());
  }
  return Status::OK();
}

// Writes the process-wide metrics snapshot as JSON; 0 on success.
int DumpMetricsJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
    return 1;
  }
  out << obs::MetricsRegistry::Global().Snapshot().ToJson() << "\n";
  std::printf("metrics snapshot written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (Status s = fault::FaultRegistry::Global().ConfigureFromEnv(); !s.ok()) {
    return Fail(s);
  }
  std::string data_dir;
  std::string snapshot_file;
  std::string workload_file;
  bool demo = false;
  bool all_index = false;
  bool explain = false;
  bool report = false;
  std::string metrics_json_path;
  std::string capture_path;
  advisor::AdvisorOptions options;
  options.disk_budget_bytes = 10.0 * 1024 * 1024;
  options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
  // CLI default: use the hardware (library default stays serial).
  options.threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return Usage();
      data_dir = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (!v) return Usage();
      snapshot_file = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (!v) return Usage();
      workload_file = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (!v || !ParseSize(v, &options.disk_budget_bytes)) return Usage();
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (!v || !ParseDouble(v, &options.budget_ms) ||
          options.budget_ms <= 0) {
        return Usage();
      }
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v || !ParseAlgorithm(v, &options.algorithm)) return Usage();
    } else if (arg == "--beta") {
      const char* v = next();
      if (!v || !ParseDouble(v, &options.beta)) return Usage();
    } else if (arg == "--no-generalize") {
      options.generalize = false;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--all-index") {
      all_index = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (!v) return Usage();
      metrics_json_path = v;
    } else if (arg == "--capture") {
      const char* v = next();
      if (!v) return Usage();
      capture_path = v;
    } else if (arg == "--threads" || arg == "-j") {
      const char* v = next();
      double threads = 0;
      if (!v || !ParseDouble(v, &threads) || threads < 0 ||
          threads != static_cast<double>(static_cast<size_t>(threads))) {
        return Usage();
      }
      options.threads = static_cast<size_t>(threads);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if ((data_dir.empty() && snapshot_file.empty() && !demo) ||
      workload_file.empty()) {
    return Usage();
  }
  // Fail fast on unwritable output destinations, before any data loads.
  if (!metrics_json_path.empty()) {
    if (Status s = ValidateOutputPath(metrics_json_path, "--metrics-json");
        !s.ok()) {
      return Fail(s);
    }
  }
  if (!capture_path.empty()) {
    if (Status s = ValidateOutputPath(capture_path, "--capture"); !s.ok()) {
      return Fail(s);
    }
  }

  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  if (demo) {
    tpox::TpoxScale scale;
    if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("demo database: %zu securities, %zu orders, %zu customers\n",
                scale.security_docs, scale.order_docs, scale.custacc_docs);
  } else if (!snapshot_file.empty()) {
    if (Status s = storage::LoadSnapshotFromFile(snapshot_file, &store);
        !s.ok()) {
      return Fail(s);
    }
    for (const std::string& name : store.CollectionNames()) {
      auto coll = store.GetCollection(name);
      if (!coll.ok()) return Fail(coll.status());
      statistics.RunStats(**coll);
      std::printf("restored collection %-12s %6zu documents\n", name.c_str(),
                  (*coll)->live_count());
    }
  } else {
    if (Status s = LoadDataDirectory(data_dir, &store, &statistics);
        !s.ok()) {
      return Fail(s);
    }
  }

  // LoadWorkloadFromFile verifies the CRC trailer when the file has one,
  // so a bit-flipped saved capture fails with kDataLoss instead of being
  // silently advised on.
  auto workload = xia::workload::LoadWorkloadFromFile(workload_file);
  if (!workload.ok()) return Fail(workload.status());
  std::printf("workload: %zu statements\n", workload->size());

  if (!capture_path.empty()) {
    // Run the raw workload through the capture -> templatize pipeline:
    // constants become markers, duplicates merge into weighted templates,
    // and both the file and the advise run below use the compressed form.
    xia::workload::WorkloadCapture capture;
    capture.set_enabled(true);
    for (const auto& stmt : *workload) capture.Publish(stmt);
    xia::workload::Templatizer templatizer;
    for (const auto& cq : capture.Drain()) {
      templatizer.Add(cq.statement, cq.statement.frequency);
    }
    engine::Workload templatized = templatizer.ToWorkload();
    if (Status s = xia::workload::SaveWorkloadToFile(templatized,
                                                     capture_path);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("captured: %llu statements -> %zu templates (%.1fx), "
                "saved to %s\n",
                static_cast<unsigned long long>(templatizer.raw_count()),
                templatizer.template_count(), templatizer.DedupRatio(),
                capture_path.c_str());
    *workload = std::move(templatized);
  }
  std::printf("\n");

  advisor::IndexAdvisor advisor(&store, &statistics);

  if (all_index) {
    auto rec = advisor.AllIndexConfiguration(*workload);
    if (!rec.ok()) return Fail(rec.status());
    std::printf("All-Index configuration (%zu indexes, %s, est. %.2fx):\n",
                rec->indexes.size(),
                HumanBytes(rec->total_size_bytes).c_str(), rec->est_speedup);
    for (const auto& ri : rec->indexes) std::printf("  %s\n", ri.ddl.c_str());
    if (!metrics_json_path.empty()) return DumpMetricsJson(metrics_json_path);
    return 0;
  }

  auto rec = advisor.Recommend(*workload, options);
  if (!rec.ok()) return Fail(rec.status());

  std::printf("recommendation (%s, budget %s):\n",
              advisor::SearchAlgorithmName(options.algorithm),
              HumanBytes(options.disk_budget_bytes).c_str());
  for (const auto& ri : rec->indexes) {
    std::printf("  %s  -- %s%s\n", ri.ddl.c_str(),
                HumanBytes(static_cast<double>(ri.size_bytes)).c_str(),
                ri.is_general ? ", general" : "");
  }
  std::printf(
      "\ntotal size %s | est. speedup %.2fx | %zu/%zu candidates "
      "(basic/total) | %llu optimizer calls | %.3fs%s\n",
      HumanBytes(rec->total_size_bytes).c_str(), rec->est_speedup,
      rec->basic_candidates, rec->total_candidates,
      static_cast<unsigned long long>(rec->optimizer_calls),
      rec->advisor_seconds, rec->partial ? " | partial=true" : "");

  if (report) {
    auto rendered = advisor::RenderReport(*workload, *rec, &store,
                                          &statistics);
    if (!rendered.ok()) return Fail(rendered.status());
    std::printf("\n%s", rendered->c_str());
  }

  if (explain) {
    storage::Catalog catalog(&store, &statistics);
    if (Status s = advisor.Materialize(*rec, &catalog); !s.ok()) {
      return Fail(s);
    }
    optimizer::Optimizer opt(&store, &catalog, &statistics);
    std::printf("\nplans with the recommendation materialized:\n");
    for (const auto& stmt : *workload) {
      auto plan = opt.Optimize(stmt);
      if (!plan.ok()) return Fail(plan.status());
      std::printf("  %-24s %s\n", stmt.label.c_str(),
                  plan->Describe().c_str());
    }
  }

  if (!metrics_json_path.empty()) return DumpMetricsJson(metrics_json_path);
  return 0;
}
