// Two-node kill -9 crash harness for xia::repl (ISSUE 8 headline test).
//
// The parent process runs a WAL-backed leader (in-process net::Server,
// demo TPoX data), applies a deterministic mutation stream over loopback,
// checkpoints mid-stream (so joining followers exercise the
// snapshot-transfer path), and records the leader's store digest and
// durable LSN. For every (crash kind, seed) pair it then forks a follower
// child on a fresh data dir that subscribes to the leader and SIGKILLs
// *itself* at a scheduled replication crash point:
//
//   recv-mid-frame            a record's bytes half-received, none applied
//   apply-before-wal          record decoded, local WAL append pending
//   apply-mid-apply           local WAL append durable, in-memory apply
//                             pending (restart replays from the local log)
//   snapshot-before-install   snapshot frame received, nothing installed
//   snapshot-mid-install      snapshot files staged, manifest not committed
//   local-checkpoint          follower's own checkpoint half done
//
// A second child then rejoins on the same data dir with no kill hook and
// must converge: its store digest must byte-equal the leader's. A final
// scenario restarts the *leader* mid-stream (same port, same data dir)
// and requires a live follower — started while the leader was still
// down, so the connect-retry backoff path runs too — to resubscribe and
// converge without losing any acked LSN. Exit 0 iff every run passes.
//
// Usage: xia_repl_harness [--seeds N] [--kind NAME] [--skip-restart]

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "tpox/tpox_data.h"
#include "util/atomic_file.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace xia {
namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Where in the follower's apply path the child kills itself.
struct CrashKind {
  const char* name;
  /// repl_test_hook point; nullptr = never crash (rejoin child).
  const char* hook_point;
  /// Roughly how often the point fires per run; the countdown is seeded
  /// modulo this so different seeds crash at different depths.
  int window;
};

constexpr CrashKind kCrashKinds[] = {
    {"recv-mid-frame", "repl.recv.mid_frame", 6},
    {"apply-before-wal", "repl.apply.before_wal", 24},
    {"apply-mid-apply", "repl.apply.mid_apply", 24},
    {"snapshot-before-install", "repl.snapshot.before_install", 1},
    {"snapshot-mid-install", "repl.snapshot.mid_install", 1},
    {"local-checkpoint", "checkpoint.after_snapshot", 3},
};

constexpr double kConvergeTimeoutSeconds = 60.0;

/// The deterministic mutation stream for one seed, against the demo TPoX
/// SDOC collection (inserts must target an existing collection). Inserts
/// carry a ~700-byte pad so replication batches span several TCP reads
/// and the mid-frame kill window actually opens.
std::vector<std::string> GenMutations(uint64_t seed, int count) {
  Random rng(seed);
  std::vector<std::string> statements;
  std::vector<std::string> symbols;
  const std::string pad(700, 'x');
  for (int i = 0; i < count; ++i) {
    const uint64_t roll = rng.Uniform(100);
    if (roll < 55 || symbols.empty()) {
      const std::string symbol =
          "RPL" + std::to_string(seed) + "N" + std::to_string(i);
      statements.push_back("insert into SDOC <Security><Symbol>" + symbol +
                           "</Symbol><Yield>" + std::to_string(rng.Uniform(9)) +
                           "</Yield><Pad>" + pad + "</Pad></Security>");
      symbols.push_back(symbol);
    } else if (roll < 80) {
      statements.push_back(
          "update SDOC set /Security/Yield = " + std::to_string(rng.Uniform(9)) +
          " where /Security[Symbol = \"" +
          symbols[rng.Uniform(symbols.size())] + "\"]");
    } else {
      const size_t victim = rng.Uniform(symbols.size());
      statements.push_back("delete from SDOC where /Security[Symbol = \"" +
                           symbols[victim] + "\"]");
      symbols.erase(symbols.begin() + victim);
    }
  }
  return statements;
}

Status RunMutations(uint16_t port, const std::vector<std::string>& statements) {
  net::Client client;
  XIA_RETURN_IF_ERROR(client.Connect("127.0.0.1", port));
  for (const std::string& statement : statements) {
    net::MutationRequest request;
    request.statement = statement;
    const Result<net::ExecReply> reply = client.Mutate(request);
    if (!reply.ok()) {
      return Status::Internal("mutation failed: " + reply.status().ToString() +
                              " (" + statement.substr(0, 60) + ")");
    }
  }
  return Status::OK();
}

net::ServerOptions LeaderOptions(const std::string& data_dir) {
  net::ServerOptions options;
  options.data_dir = data_dir;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{30, 40, 20, 42};
  return options;
}

/// Child body: run a follower against the leader, converge to target_lsn,
/// write the store digest, exit 42. With a hook point armed, SIGKILL self
/// when the countdown reaches zero instead. Never returns.
[[noreturn]] void RunFollowerChild(const std::string& data_dir,
                                   uint16_t leader_port,
                                   const char* hook_point, int countdown,
                                   uint64_t target_lsn,
                                   const std::string& digest_path,
                                   const std::string& target_lsn_path) {
  net::ServerOptions options;
  options.data_dir = data_dir;
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  options.follower_id = "harness-follower";
  options.repl_checkpoint_every = 16;
  std::atomic<int> remaining{countdown};
  if (hook_point != nullptr) {
    options.repl_test_hook = [&remaining, hook_point](const char* point) {
      if (std::strcmp(point, hook_point) == 0 &&
          remaining.fetch_sub(1) == 1) {
        ::kill(::getpid(), SIGKILL);
      }
    };
  }
  net::Server server(options);
  if (const Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "  follower start failed: %s\n",
                 started.ToString().c_str());
    ::_exit(4);
  }
  Stopwatch timer;
  while (true) {
    if (timer.ElapsedSeconds() > kConvergeTimeoutSeconds) {
      const net::ReplStatus rs = server.GetReplStatus();
      std::fprintf(stderr,
                   "  follower convergence timeout: applied_lsn=%llu "
                   "target=%llu connect_failures=%llu last_error=%s\n",
                   static_cast<unsigned long long>(rs.applier.applied_lsn),
                   static_cast<unsigned long long>(target_lsn),
                   static_cast<unsigned long long>(rs.applier.connect_failures),
                   rs.applier.last_error.c_str());
      ::_exit(5);
    }
    // The leader-restart scenario publishes the target LSN only once the
    // post-restart mutations are in; poll for it.
    if (target_lsn == 0) {
      const Result<std::string> text = ReadFileText(target_lsn_path);
      if (text.ok()) target_lsn = std::strtoull(text->c_str(), nullptr, 10);
      if (target_lsn == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
    }
    const net::ReplStatus rs = server.GetReplStatus();
    if (!rs.applier.sticky_error.empty()) {
      std::fprintf(stderr, "  follower diverged: %s\n",
                   rs.applier.sticky_error.c_str());
      ::_exit(6);
    }
    if (rs.applier.applied_lsn >= target_lsn) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Result<std::string> digest = server.StoreDigest();
  if (!digest.ok()) {
    std::fprintf(stderr, "  follower digest failed: %s\n",
                 digest.status().ToString().c_str());
    ::_exit(7);
  }
  if (const Status wrote = WriteFileAtomic(digest_path, *digest);
      !wrote.ok()) {
    std::fprintf(stderr, "  follower digest write failed: %s\n",
                 wrote.ToString().c_str());
    ::_exit(8);
  }
  (void)server.Stop();
  ::_exit(42);
}

/// Forks a follower child; returns true if it was SIGKILLed, false if it
/// exited 42 (converged before reaching the crash point). Any other fate
/// aborts the harness.
bool ForkFollower(const std::string& data_dir, uint16_t leader_port,
                  const char* hook_point, int countdown, uint64_t target_lsn,
                  const std::string& digest_path, bool* ok) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    RunFollowerChild(data_dir, leader_port, hook_point, countdown, target_lsn,
                     digest_path, /*target_lsn_path=*/"");
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
    *ok = true;
    return true;
  }
  *ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 42;
  if (!*ok) {
    std::fprintf(stderr, "  follower child died unexpectedly (wstatus=%d)\n",
                 wstatus);
  }
  return false;
}

bool RunOne(const CrashKind& kind, uint64_t seed, const std::string& base) {
  const std::string tag = std::string(kind.name) + "-" + std::to_string(seed);
  const std::string leader_dir = base + "/" + tag + "-leader";
  const std::string follower_dir = base + "/" + tag + "-follower";
  const std::string digest_path = base + "/" + tag + ".digest";
  fs::remove_all(leader_dir);
  fs::remove_all(follower_dir);

  net::Server leader(LeaderOptions(leader_dir));
  if (const Status started = leader.Start(); !started.ok()) {
    std::fprintf(stderr, "  leader start failed: %s\n",
                 started.ToString().c_str());
    return false;
  }
  bool pass = false;
  do {
    // Phase A -> checkpoint -> phase B: a joining follower needs the
    // snapshot (phase A predates the checkpoint horizon) *and* log
    // catch-up (phase B).
    if (const Status s = RunMutations(leader.port(), GenMutations(seed, 25));
        !s.ok()) {
      std::fprintf(stderr, "  phase A: %s\n", s.ToString().c_str());
      break;
    }
    if (const Status s = leader.CheckpointNow(); !s.ok()) {
      std::fprintf(stderr, "  checkpoint: %s\n", s.ToString().c_str());
      break;
    }
    if (const Status s =
            RunMutations(leader.port(), GenMutations(seed + 1000, 45));
        !s.ok()) {
      std::fprintf(stderr, "  phase B: %s\n", s.ToString().c_str());
      break;
    }
    const uint64_t target_lsn = leader.GetReplStatus().durable_lsn;
    const Result<std::string> leader_digest = leader.StoreDigest();
    if (!leader_digest.ok()) {
      std::fprintf(stderr, "  leader digest: %s\n",
                   leader_digest.status().ToString().c_str());
      break;
    }

    const int countdown = 1 + static_cast<int>(seed % kind.window);
    bool child_ok = false;
    const bool killed =
        ForkFollower(follower_dir, leader.port(), kind.hook_point, countdown,
                     target_lsn, digest_path, &child_ok);
    if (!child_ok) break;
    if (killed) {
      // Rejoin on the same data dir: recover the local WAL, resubscribe
      // from the last durable LSN, converge. This child runs no kill
      // hook, so it must exit cleanly (ForkFollower returns false).
      const bool rejoin_killed =
          ForkFollower(follower_dir, leader.port(), nullptr, 0, target_lsn,
                       digest_path, &child_ok);
      if (rejoin_killed || !child_ok) {
        std::fprintf(stderr, "  rejoin child failed\n");
        break;
      }
    }
    const Result<std::string> follower_digest = ReadFileText(digest_path);
    if (!follower_digest.ok()) {
      std::fprintf(stderr, "  follower digest unreadable: %s\n",
                   follower_digest.status().ToString().c_str());
      break;
    }
    if (*follower_digest != *leader_digest) {
      std::fprintf(stderr, "  DIVERGED: leader=%s follower=%s\n",
                   leader_digest->c_str(), follower_digest->c_str());
      break;
    }
    pass = true;
  } while (false);
  (void)leader.Stop();
  return pass;
}

/// Leader restart: follower starts while the leader is *down* (connect
/// retries with backoff), the leader comes back on the same port and data
/// dir, streams the rest, and the follower must converge with every
/// acked LSN intact.
bool RunLeaderRestart(const std::string& base) {
  const std::string leader_dir = base + "/restart-leader";
  const std::string follower_dir = base + "/restart-follower";
  const std::string digest_path = base + "/restart.digest";
  const std::string target_path = base + "/restart.target";
  fs::remove_all(leader_dir);
  fs::remove_all(follower_dir);
  fs::remove(target_path);

  uint16_t port = 0;
  {
    net::Server leader(LeaderOptions(leader_dir));
    if (const Status started = leader.Start(); !started.ok()) {
      std::fprintf(stderr, "  leader start failed: %s\n",
                   started.ToString().c_str());
      return false;
    }
    port = leader.port();
    if (const Status s = RunMutations(port, GenMutations(7, 20)); !s.ok()) {
      std::fprintf(stderr, "  phase A: %s\n", s.ToString().c_str());
      (void)leader.Stop();
      return false;
    }
    if (const Status s = leader.CheckpointNow(); !s.ok()) {
      std::fprintf(stderr, "  checkpoint: %s\n", s.ToString().c_str());
      (void)leader.Stop();
      return false;
    }
    if (const Status stopped = leader.Stop(); !stopped.ok()) {
      std::fprintf(stderr, "  leader stop: %s\n", stopped.ToString().c_str());
      return false;
    }
  }

  // Leader is down. Start the follower now: its applier must retry with
  // backoff until the leader returns.
  const pid_t pid = ::fork();
  if (pid == 0) {
    RunFollowerChild(follower_dir, port, nullptr, 0, /*target_lsn=*/0,
                     digest_path, target_path);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  bool pass = false;
  {
    net::ServerOptions options = LeaderOptions(leader_dir);
    options.demo.clear();  // the data dir recovers; no reseeding
    options.port = port;
    net::Server leader(options);
    if (const Status started = leader.Start(); !started.ok()) {
      std::fprintf(stderr, "  leader restart failed: %s\n",
                   started.ToString().c_str());
      ::kill(pid, SIGKILL);
      int ignored = 0;
      ::waitpid(pid, &ignored, 0);
      return false;
    }
    do {
      if (const Status s = RunMutations(port, GenMutations(8, 30)); !s.ok()) {
        std::fprintf(stderr, "  phase B: %s\n", s.ToString().c_str());
        break;
      }
      const uint64_t target_lsn = leader.GetReplStatus().durable_lsn;
      const Result<std::string> leader_digest = leader.StoreDigest();
      if (!leader_digest.ok()) {
        std::fprintf(stderr, "  leader digest: %s\n",
                     leader_digest.status().ToString().c_str());
        break;
      }
      if (const Status s =
              WriteFileAtomic(target_path, std::to_string(target_lsn));
          !s.ok()) {
        std::fprintf(stderr, "  target write: %s\n", s.ToString().c_str());
        break;
      }
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 42) {
        std::fprintf(stderr, "  follower child failed (wstatus=%d)\n",
                     wstatus);
        break;
      }
      const Result<std::string> follower_digest = ReadFileText(digest_path);
      if (!follower_digest.ok() || *follower_digest != *leader_digest) {
        std::fprintf(stderr, "  DIVERGED after leader restart\n");
        break;
      }
      pass = true;
    } while (false);
    (void)leader.Stop();
  }
  if (!pass) {
    ::kill(pid, SIGKILL);
    int ignored = 0;
    ::waitpid(pid, &ignored, 0);
  }
  return pass;
}

int RunHarness(uint64_t seeds, const std::string& only_kind,
               bool skip_restart) {
  const char* tmp = ::getenv("TMPDIR");
  const std::string base = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/xia_repl_harness_" + std::to_string(::getpid());
  fs::create_directories(base);
  int failures = 0;
  int runs = 0;
  for (const CrashKind& kind : kCrashKinds) {
    if (!only_kind.empty() && only_kind != kind.name) continue;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      ++runs;
      std::printf("[%s seed=%llu] ", kind.name,
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);
      if (RunOne(kind, seed, base)) {
        std::printf("ok\n");
      } else {
        std::printf("FAIL\n");
        ++failures;
      }
    }
  }
  if (only_kind.empty() && !skip_restart) {
    ++runs;
    std::printf("[leader-restart] ");
    std::fflush(stdout);
    if (RunLeaderRestart(base)) {
      std::printf("ok\n");
    } else {
      std::printf("FAIL\n");
      ++failures;
    }
  }
  if (failures == 0) fs::remove_all(base);
  std::printf("%d/%d runs passed\n", runs - failures, runs);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xia

int main(int argc, char** argv) {
  uint64_t seeds = 10;
  std::string only_kind;
  bool skip_restart = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--kind" && i + 1 < argc) {
      only_kind = argv[++i];
    } else if (arg == "--skip-restart") {
      skip_restart = true;
    } else {
      std::fprintf(stderr,
                   "usage: xia_repl_harness [--seeds N] [--kind NAME] "
                   "[--skip-restart]\n");
      return 2;
    }
  }
  return xia::RunHarness(seeds, only_kind, skip_restart);
}
