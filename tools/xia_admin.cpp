// xia_admin: operator CLI for replication failover (DESIGN §15).
//
//   $ xia_admin status 10.0.0.1:4711 10.0.0.2:4711 10.0.0.3:4711
//   $ xia_admin promote 10.0.0.2:4711 10.0.0.3:4711
//   $ xia_admin follow 10.0.0.1:4711 10.0.0.2:4711
//
// `status` prints one line per endpoint (role, epoch, durable LSN;
// unreachable nodes are reported, not fatal). `promote` queries every
// candidate, picks the most-caught-up follower (highest durable LSN,
// ties broken by endpoint order), promotes it — the node bumps its
// replication epoch and writes the fencing barrier — and with
// --refollow points the remaining reachable nodes at the new leader.
// `follow` re-targets one node at a (new) leader, which is also how a
// deposed leader rejoins the cluster.
//
// Error contract (shared with xia_client/xia_shell): the first failure
// prints a single "error: ..." line on stderr and exits with
// StatusExitCode (10 + StatusCode).

#include <cstdio>
#include <string>
#include <vector>

#include "net/client.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

struct Endpoint {
  std::string host;
  uint16_t port = 0;
  std::string text;  // as given, for messages
};

Result<Endpoint> ParseEndpoint(const std::string& text) {
  Endpoint ep;
  ep.text = text;
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return Status::InvalidArgument("bad endpoint (want HOST:PORT): " + text);
  }
  double v = 0;
  if (!ParseDouble(text.substr(colon + 1), &v) || v < 1 || v > 65535) {
    return Status::InvalidArgument("bad port in endpoint: " + text);
  }
  ep.host = text.substr(0, colon);
  ep.port = static_cast<uint16_t>(v);
  return ep;
}

Result<net::ReplStatusReply> QueryStatus(const Endpoint& ep) {
  net::Client client;
  XIA_RETURN_IF_ERROR(client.Connect(ep.host, ep.port, /*timeout_s=*/3.0));
  return client.ReplStatus();
}

void PrintStatusLine(const Endpoint& ep, const net::ReplStatusReply& rs) {
  std::printf("%-21s %-8s epoch=%llu durable_lsn=%llu checkpoint_lsn=%llu "
              "applied_lsn=%llu followers=%zu%s%s\n",
              ep.text.c_str(), rs.role.c_str(),
              static_cast<unsigned long long>(rs.repl_epoch),
              static_cast<unsigned long long>(rs.durable_lsn),
              static_cast<unsigned long long>(rs.checkpoint_lsn),
              static_cast<unsigned long long>(rs.applied_lsn),
              rs.followers.size(),
              rs.leader_endpoint.empty() ? "" : " leader=",
              rs.leader_endpoint.c_str());
}

int RunStatus(const std::vector<Endpoint>& endpoints) {
  bool any_ok = false;
  for (const Endpoint& ep : endpoints) {
    const Result<net::ReplStatusReply> rs = QueryStatus(ep);
    if (!rs.ok()) {
      std::printf("%-21s unreachable (%s)\n", ep.text.c_str(),
                  rs.status().ToString().c_str());
      continue;
    }
    PrintStatusLine(ep, *rs);
    any_ok = true;
  }
  if (!any_ok) {
    std::fprintf(stderr, "error: no endpoint reachable\n");
    return StatusExitCode(Status::Unavailable(""));
  }
  return 0;
}

int RunPromote(const std::vector<Endpoint>& endpoints, bool refollow) {
  // Pick the most-caught-up follower: every durably-replicated (and thus
  // every quorum-acked) mutation is within its durable LSN, so promoting
  // the max-LSN candidate never loses an acked write.
  int best = -1;
  uint64_t best_lsn = 0;
  std::vector<bool> reachable(endpoints.size(), false);
  for (size_t i = 0; i < endpoints.size(); ++i) {
    const Result<net::ReplStatusReply> rs = QueryStatus(endpoints[i]);
    if (!rs.ok()) {
      std::printf("%-21s unreachable (%s)\n", endpoints[i].text.c_str(),
                  rs.status().ToString().c_str());
      continue;
    }
    reachable[i] = true;
    PrintStatusLine(endpoints[i], *rs);
    if (rs->role == "leader") {
      std::fprintf(stderr,
                   "error: %s is already a leader (epoch %llu); refusing to "
                   "promote around a live leader\n",
                   endpoints[i].text.c_str(),
                   static_cast<unsigned long long>(rs->repl_epoch));
      return StatusExitCode(Status::FailedPrecondition(""));
    }
    if (best < 0 || rs->durable_lsn > best_lsn) {
      best = static_cast<int>(i);
      best_lsn = rs->durable_lsn;
    }
  }
  if (best < 0) {
    std::fprintf(stderr, "error: no promotable candidate reachable\n");
    return StatusExitCode(Status::Unavailable(""));
  }

  const Endpoint& winner = endpoints[static_cast<size_t>(best)];
  net::Client client;
  if (const Status s = client.Connect(winner.host, winner.port); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }
  const Result<net::PromoteReply> promoted = client.Promote();
  if (!promoted.ok()) {
    std::fprintf(stderr, "error: promote %s: %s\n", winner.text.c_str(),
                 promoted.status().ToString().c_str());
    return StatusExitCode(promoted.status());
  }
  std::printf("promoted %s: epoch=%llu barrier_lsn=%llu\n",
              winner.text.c_str(),
              static_cast<unsigned long long>(promoted->epoch),
              static_cast<unsigned long long>(promoted->barrier_lsn));

  if (refollow) {
    for (size_t i = 0; i < endpoints.size(); ++i) {
      if (static_cast<int>(i) == best || !reachable[i]) continue;
      net::Client peer;
      Status s = peer.Connect(endpoints[i].host, endpoints[i].port);
      if (s.ok()) s = peer.Follow(winner.host, winner.port).status();
      if (!s.ok()) {
        std::fprintf(stderr, "error: refollow %s: %s\n",
                     endpoints[i].text.c_str(), s.ToString().c_str());
        return StatusExitCode(s);
      }
      std::printf("%s now follows %s\n", endpoints[i].text.c_str(),
                  winner.text.c_str());
    }
  }
  return 0;
}

int RunFollow(const Endpoint& node, const Endpoint& leader) {
  net::Client client;
  Status s = client.Connect(node.host, node.port);
  if (s.ok()) s = client.Follow(leader.host, leader.port).status();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }
  std::printf("%s now follows %s\n", node.text.c_str(), leader.text.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xia_admin status  HOST:PORT...\n"
      "       xia_admin promote HOST:PORT... [--refollow]\n"
      "       xia_admin follow  HOST:PORT LEADER_HOST:PORT\n"
      "  promote picks the candidate with the highest durable LSN and\n"
      "  promotes it (epoch bump + fencing barrier); --refollow points\n"
      "  the other reachable candidates at the new leader. follow\n"
      "  re-targets one node (e.g. a rejoining deposed leader) at the\n"
      "  given leader.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string verb = argv[1];
  bool refollow = false;
  std::vector<Endpoint> endpoints;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--refollow") {
      refollow = true;
      continue;
    }
    const Result<Endpoint> ep = ParseEndpoint(arg);
    if (!ep.ok()) {
      std::fprintf(stderr, "error: %s\n", ep.status().ToString().c_str());
      return StatusExitCode(ep.status());
    }
    endpoints.push_back(*ep);
  }
  if (endpoints.empty()) return Usage();
  if (verb == "status") return RunStatus(endpoints);
  if (verb == "promote") return RunPromote(endpoints, refollow);
  if (verb == "follow") {
    if (endpoints.size() != 2 || refollow) return Usage();
    return RunFollow(endpoints[0], endpoints[1]);
  }
  return Usage();
}
