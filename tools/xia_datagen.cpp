// xia_datagen: writes a TPoX-style or XMark-style database as on-disk XML
// files (the layout xia_advise --data consumes), plus an optional
// synthetic workload file.
//
// Usage:
//   xia_datagen --out DIR [--schema tpox|xmark] [--scale N] [--seed S]
//               [--synthetic-workload FILE --queries N]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "engine/query.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/synthetic.h"
#include "tpox/tpox_data.h"
#include "storage/snapshot.h"
#include "tpox/xmark.h"
#include "util/string_util.h"
#include "xml/serializer.h"

namespace {

using namespace xia;  // NOLINT
namespace fs = std::filesystem;

int Usage() {
  std::fprintf(
      stderr,
      "usage: xia_datagen --out DIR [--schema tpox|xmark] [--scale N]\n"
      "                   [--seed S] [--snapshot FILE]\n"
      "                   [--synthetic-workload FILE --queries N]\n"
      "  --scale N multiplies the default document counts by N\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status DumpCollections(const storage::DocumentStore& store,
                       const std::string& out_dir) {
  for (const std::string& name : store.CollectionNames()) {
    auto coll = store.GetCollection(name);
    if (!coll.ok()) return coll.status();
    const fs::path dir = fs::path(out_dir) / name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("cannot create " + dir.string() + ": " +
                              ec.message());
    }
    size_t written = 0;
    Status failure = Status::OK();
    (*coll)->ForEach([&](xml::DocId id, const xml::Document& doc) {
      if (!failure.ok()) return;
      const fs::path file = dir / StringPrintf("doc%06d.xml", id);
      std::ofstream out(file);
      xml::SerializeOptions options;
      options.pretty = true;
      out << xml::Serialize(doc, 0, options);
      if (!out) {
        failure = Status::Internal("write failed: " + file.string());
        return;
      }
      ++written;
    });
    if (!failure.ok()) return failure;
    std::printf("wrote %6zu documents to %s\n", written,
                dir.string().c_str());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string schema = "tpox";
  std::string workload_file;
  std::string snapshot_file;
  double scale_factor = 1.0;
  uint64_t seed = 42;
  size_t queries = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out_dir = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (!v) return Usage();
      schema = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v || !ParseDouble(v, &scale_factor) || scale_factor <= 0) {
        return Usage();
      }
    } else if (arg == "--seed") {
      const char* v = next();
      double s = 0;
      if (!v || !ParseDouble(v, &s)) return Usage();
      seed = static_cast<uint64_t>(s);
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (!v) return Usage();
      snapshot_file = v;
    } else if (arg == "--synthetic-workload") {
      const char* v = next();
      if (!v) return Usage();
      workload_file = v;
    } else if (arg == "--queries") {
      const char* v = next();
      double q = 0;
      if (!v || !ParseDouble(v, &q) || q <= 0) return Usage();
      queries = static_cast<size_t>(q);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (out_dir.empty()) return Usage();

  storage::DocumentStore store;
  storage::StatisticsCatalog statistics;
  std::vector<std::string> collections;
  if (schema == "tpox") {
    tpox::TpoxScale scale;
    scale.security_docs = static_cast<size_t>(1000 * scale_factor);
    scale.order_docs = static_cast<size_t>(2000 * scale_factor);
    scale.custacc_docs = static_cast<size_t>(500 * scale_factor);
    scale.seed = seed;
    if (Status s = tpox::BuildTpoxDatabase(scale, &store, &statistics);
        !s.ok()) {
      return Fail(s);
    }
    collections = {tpox::kSecurityCollection, tpox::kOrderCollection,
                   tpox::kCustAccCollection};
  } else if (schema == "xmark") {
    tpox::XmarkScale scale;
    scale.items = static_cast<size_t>(800 * scale_factor);
    scale.auctions = static_cast<size_t>(800 * scale_factor);
    scale.persons = static_cast<size_t>(400 * scale_factor);
    scale.seed = seed;
    if (Status s = tpox::BuildXmarkDatabase(scale, &store, &statistics);
        !s.ok()) {
      return Fail(s);
    }
    collections = {tpox::kXmarkItemCollection, tpox::kXmarkAuctionCollection,
                   tpox::kXmarkPersonCollection};
  } else {
    return Usage();
  }

  if (Status s = DumpCollections(store, out_dir); !s.ok()) return Fail(s);

  if (!snapshot_file.empty()) {
    if (Status s = storage::SaveSnapshotToFile(store, snapshot_file);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote binary snapshot to %s\n", snapshot_file.c_str());
  }

  if (!workload_file.empty()) {
    Random rng(seed + 1);
    auto workload =
        tpox::GenerateSyntheticWorkload(statistics, collections, queries,
                                        &rng);
    if (!workload.ok()) return Fail(workload.status());
    std::ofstream out(workload_file);
    out << "# synthetic workload generated by xia_datagen (schema "
        << schema << ", seed " << seed << ")\n";
    for (const auto& stmt : *workload) {
      out << "@label=" << stmt.label << "\n" << stmt.text << ";\n\n";
    }
    if (!out) {
      return Fail(Status::Internal("write failed: " + workload_file));
    }
    std::printf("wrote %zu synthetic queries to %s\n", workload->size(),
                workload_file.c_str());
  }
  return 0;
}
