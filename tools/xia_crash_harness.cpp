// kill -9 crash harness for the WAL (ISSUE 4 headline test).
//
// For every (crash kind, seed) pair the harness forks a writer child that
// runs a deterministic mutation sequence — inserts, deletes, updates,
// index DDL, stats refreshes, periodic checkpoints — against a WAL-backed
// data directory, appending one ack byte to a side file after each
// committed operation. The child SIGKILLs *itself* at a scheduled crash
// point:
//
//   op-boundary               between two operations
//   wal.append.mid_write      half-way through writing a log frame
//   wal.append.before_fsync   bytes written, fsync pending
//   checkpoint.after_snapshot new snapshot on disk, old manifest current
//   checkpoint.after_manifest new manifest committed, log not yet reset
//   checkpoint.after_reset    log reset, stale files not yet deleted
//
// The parent then recovers the directory under a 5-second Deadline and
// checks *prefix consistency*: the recovered state must byte-equal the
// reference state after K operations for some K >= the number of acked
// operations (an acked op is durable; a crashed-mid-commit op may or may
// not survive). The reference states come from replaying the identical
// sequence in memory with no WAL. Exit 0 iff every run passes.
//
// Usage: xia_crash_harness [--seeds N] [--ops N] [--kind NAME]

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/deadline.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/snapshot.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/status.h"
#include "wal/manager.h"
#include "xpath/parser.h"

namespace xia {
namespace {

namespace fs = std::filesystem;

struct Db {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  storage::Catalog catalog{&store, &stats};
};

struct Op {
  enum Kind {
    kStatement,     // insert / delete / update text
    kCreateIndex,
    kDropIndex,
    kStatsRefresh,
    kCheckpoint,
  } kind = kStatement;
  std::string text;          // kStatement
  std::string index_name;    // kCreateIndex / kDropIndex
  std::string pattern_text;  // kCreateIndex
};

constexpr const char* kCollection = "CRASH";

/// The deterministic op sequence for one seed. Op 0 (create collection)
/// is implicit; these are ops 1..n.
std::vector<Op> GenOps(uint64_t seed, int count) {
  Random rng(seed);
  std::vector<Op> ops;
  std::vector<std::string> live_indexes;
  const std::vector<std::string> patterns = {"/doc/k", "/doc/g", "/doc//k"};
  int next_index_id = 0;
  for (int i = 0; i < count; ++i) {
    Op op;
    const uint64_t roll = rng.Uniform(100);
    if (i % 9 == 8) {
      // Periodic checkpoint, so every checkpoint crash window is reachable.
      op.kind = Op::kCheckpoint;
    } else if (roll < 50) {
      op.kind = Op::kStatement;
      op.text = "insert into " + std::string(kCollection) + " <doc><k>" +
                std::to_string(rng.Uniform(50)) + "</k><g>" +
                std::to_string(rng.Uniform(5)) + "</g></doc>";
    } else if (roll < 62) {
      op.kind = Op::kStatement;
      op.text = "delete from " + std::string(kCollection) + " where /doc[k = " +
                std::to_string(rng.Uniform(50)) + "]";
    } else if (roll < 74) {
      op.kind = Op::kStatement;
      op.text = "update " + std::string(kCollection) + " set /doc/g = " +
                std::to_string(rng.Uniform(9)) + " where /doc[k = " +
                std::to_string(rng.Uniform(50)) + "]";
    } else if (roll < 84) {
      op.kind = Op::kCreateIndex;
      op.index_name = "idx" + std::to_string(next_index_id++);
      op.pattern_text = patterns[rng.Uniform(patterns.size())];
      live_indexes.push_back(op.index_name);
    } else if (roll < 90 && !live_indexes.empty()) {
      op.kind = Op::kDropIndex;
      const size_t victim = rng.Uniform(live_indexes.size());
      op.index_name = live_indexes[victim];
      live_indexes.erase(live_indexes.begin() + victim);
    } else {
      op.kind = Op::kStatsRefresh;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Applies one op. `wal` may be null (the reference run).
Status ApplyOp(const Op& op, Db* db, wal::WalManager* wal) {
  switch (op.kind) {
    case Op::kStatement: {
      engine::Executor executor(&db->store, &db->catalog);
      if (wal != nullptr) executor.set_commit_log(wal);
      XIA_ASSIGN_OR_RETURN(const engine::Statement st,
                           engine::ParseStatement(op.text));
      return executor.Execute(st, optimizer::Plan()).status();
    }
    case Op::kCreateIndex: {
      XIA_ASSIGN_OR_RETURN(const xpath::Path path,
                           xpath::ParsePattern(op.pattern_text));
      const xpath::IndexPattern pattern{path, xpath::ValueType::kNumeric};
      XIA_RETURN_IF_ERROR(
          db->catalog.CreateIndex(op.index_name, kCollection, pattern)
              .status());
      if (wal != nullptr) {
        return wal->LogCreateIndex(op.index_name, kCollection, pattern);
      }
      return Status::OK();
    }
    case Op::kDropIndex:
      XIA_RETURN_IF_ERROR(db->catalog.DropIndex(op.index_name));
      if (wal != nullptr) return wal->LogDropIndex(op.index_name);
      return Status::OK();
    case Op::kStatsRefresh: {
      XIA_ASSIGN_OR_RETURN(const storage::Collection* coll,
                           db->store.GetCollection(kCollection));
      db->stats.RunStats(*coll);
      if (wal != nullptr) return wal->LogStatsRefresh(kCollection);
      return Status::OK();
    }
    case Op::kCheckpoint:
      // Logically a no-op: the reference state does not change.
      if (wal != nullptr) return wal->Checkpoint(db->store, db->catalog);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

/// Byte-exact logical state: full snapshot + sorted real-index defs.
std::string Digest(Db* db) {
  std::ostringstream snapshot;
  if (!storage::SaveSnapshot(db->store, snapshot).ok()) return "<error>";
  std::string out = snapshot.str();
  out += "|indexes:";
  for (const std::string& coll : db->store.CollectionNames()) {
    for (const storage::IndexDef* def : db->catalog.IndexesFor(coll)) {
      if (def->is_virtual) continue;
      out += def->name + "=" + def->collection + ":" +
             def->pattern.ToString() + ";";
    }
  }
  return out;
}

/// Reference digests: digests[0] = empty db, digests[1] = after the
/// create-collection op, digests[1 + k] = after ops[0..k].
std::vector<std::string> ReferenceDigests(const std::vector<Op>& ops) {
  Db db;
  std::vector<std::string> digests;
  digests.push_back(Digest(&db));
  if (!db.store.CreateCollection(kCollection).ok()) return digests;
  digests.push_back(Digest(&db));
  for (const Op& op : ops) {
    const Status s = ApplyOp(op, &db, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "reference apply failed: %s\n",
                   s.ToString().c_str());
      return digests;
    }
    digests.push_back(Digest(&db));
  }
  return digests;
}

struct CrashKind {
  const char* name;
  const char* hook_point;  // nullptr = crash at an op boundary
};

constexpr CrashKind kCrashKinds[] = {
    {"op-boundary", nullptr},
    {"append-mid-write", "wal.append.mid_write"},
    {"append-before-fsync", "wal.append.before_fsync"},
    {"checkpoint-after-snapshot", "checkpoint.after_snapshot"},
    {"checkpoint-after-manifest", "checkpoint.after_manifest"},
    {"checkpoint-after-reset", "checkpoint.after_reset"},
};

/// How many times the crash point is passed before the child dies. Varies
/// with the seed so crashes land at different log/checkpoint positions.
int CrashCountdown(const CrashKind& kind, uint64_t seed, int op_count) {
  if (kind.hook_point == nullptr) return 1 + static_cast<int>(seed) % op_count;
  if (std::strncmp(kind.hook_point, "checkpoint.", 11) == 0) {
    return 1 + static_cast<int>(seed) % (op_count / 9);  // per checkpoint op
  }
  return 1 + static_cast<int>(seed) % (op_count - op_count / 9);
}

/// Child body: run the sequence, acking each committed op, until the
/// scheduled SIGKILL. Never returns on the crash path.
void RunChild(const std::string& data_dir, const std::string& ack_path,
              const std::vector<Op>& ops, const CrashKind& kind,
              int countdown) {
  const int ack_fd =
      ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _exit(3);

  int remaining = countdown;
  wal::WalManagerOptions options;
  options.writer.policy = wal::FsyncPolicy::kAlways;
  if (kind.hook_point != nullptr) {
    options.writer.test_hook = [&remaining, &kind](const char* point) {
      if (std::strcmp(point, kind.hook_point) == 0 && --remaining == 0) {
        ::kill(::getpid(), SIGKILL);
      }
    };
  }

  wal::WalManager wal(data_dir, std::move(options));
  Db db;
  if (!wal.Open(&db.store, &db.catalog, &db.stats).ok()) _exit(4);

  const auto ack = [ack_fd] { (void)!::write(ack_fd, "a", 1); };
  if (!db.store.CreateCollection(kCollection).ok()) _exit(5);
  if (!wal.LogCreateCollection(kCollection).ok()) _exit(5);
  ack();

  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ApplyOp(ops[i], &db, &wal).ok()) _exit(6);
    ack();
    if (kind.hook_point == nullptr &&
        static_cast<int>(i) + 1 == countdown) {
      ::kill(::getpid(), SIGKILL);
    }
  }
  // The crash point was never reached (possible for large countdowns);
  // a completed run is still a valid recovery case.
  (void)wal.Close();
  _exit(42);
}

bool RunOne(const std::string& base_dir, const CrashKind& kind,
            uint64_t seed, int op_count, int* kills) {
  const std::string run_tag =
      std::string(kind.name) + "_seed" + std::to_string(seed);
  const std::string data_dir = base_dir + "/" + run_tag;
  const std::string ack_path = base_dir + "/" + run_tag + ".ack";
  fs::remove_all(data_dir);
  fs::remove(ack_path);

  const std::vector<Op> ops = GenOps(seed, op_count);
  const int countdown = CrashCountdown(kind, seed, op_count);

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    RunChild(data_dir, ack_path, ops, kind, countdown);
    _exit(7);  // unreachable
  }

  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::perror("waitpid");
    return false;
  }
  const bool killed =
      WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
  const bool completed = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 42;
  if (killed) ++*kills;
  if (!killed && !completed) {
    std::fprintf(stderr, "[%s] child failed unexpectedly (wstatus=%d)\n",
                 run_tag.c_str(), wstatus);
    return false;
  }

  std::error_code ec;
  const uint64_t acked = fs::exists(ack_path)
                             ? static_cast<uint64_t>(fs::file_size(ack_path, ec))
                             : 0;

  // Recover in-process, Deadline-bounded (the acceptance criterion).
  wal::WalManager wal(data_dir);
  Db db;
  auto report =
      wal.Open(&db.store, &db.catalog, &db.stats,
               fault::Deadline::AfterSeconds(5));
  if (!report.ok()) {
    std::fprintf(stderr, "[%s] recovery failed: %s\n", run_tag.c_str(),
                 report.status().ToString().c_str());
    return false;
  }

  const std::string recovered = Digest(&db);
  const std::vector<std::string> reference = ReferenceDigests(ops);
  // Largest matching prefix length (checkpoints and no-op deletes leave
  // the digest unchanged, so match from the top).
  int matched = -1;
  for (int k = static_cast<int>(reference.size()) - 1; k >= 0; --k) {
    if (reference[static_cast<size_t>(k)] == recovered) {
      matched = k;
      break;
    }
  }
  if (matched < 0) {
    std::fprintf(stderr,
                 "[%s] recovered state matches no reference prefix "
                 "(acked=%llu, %s)\n",
                 run_tag.c_str(), static_cast<unsigned long long>(acked),
                 report->ToString().c_str());
    return false;
  }
  if (static_cast<uint64_t>(matched) < acked) {
    std::fprintf(stderr,
                 "[%s] recovered only %d ops but %llu were acked "
                 "(durability violation; %s)\n",
                 run_tag.c_str(), matched,
                 static_cast<unsigned long long>(acked),
                 report->ToString().c_str());
    return false;
  }

  (void)wal.Close();
  fs::remove_all(data_dir);
  fs::remove(ack_path);
  return true;
}

int RunHarness(int seeds, int op_count, const char* only_kind) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string base_dir =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/xia_crash_harness";
  fs::create_directories(base_dir);

  int failures = 0;
  int runs = 0;
  for (const CrashKind& kind : kCrashKinds) {
    if (only_kind != nullptr && std::strcmp(kind.name, only_kind) != 0) {
      continue;
    }
    int kind_failures = 0;
    int kind_kills = 0;
    for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
      ++runs;
      if (!RunOne(base_dir, kind, seed, op_count, &kind_kills)) {
        ++kind_failures;
      }
    }
    std::printf("%-28s %d/%d seeds ok (%d killed mid-run)\n", kind.name,
                seeds - kind_failures, seeds, kind_kills);
    failures += kind_failures;
  }
  if (runs == 0) {
    std::fprintf(stderr, "unknown crash kind: %s\n", only_kind);
    return 2;
  }
  std::printf("%d runs, %d failures\n", runs, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xia

int main(int argc, char** argv) {
  int seeds = 20;
  int ops = 40;
  const char* kind = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::atoi(argv[++i]);
    } else if (arg == "--kind" && i + 1 < argc) {
      kind = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--ops N] [--kind NAME]\n",
                   argv[0]);
      return 2;
    }
  }
  if (seeds < 1 || ops < 9) {
    std::fprintf(stderr, "need --seeds >= 1 and --ops >= 9\n");
    return 2;
  }
  return xia::RunHarness(seeds, ops, kind);
}
