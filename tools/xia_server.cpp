// xia_server: the engine's network daemon. Builds or recovers a
// database, binds the framed wire protocol (src/net/), and serves
// queries, mutations, EXPLAIN, what-if advising, and metrics over TCP
// until SIGTERM/SIGINT, then drains gracefully (in-flight requests
// finish, the WAL is checkpointed) and exits 0.
//
//   $ xia_server --data-dir /var/lib/xia --demo tpox --port 4711
//   xia_server listening on 127.0.0.1:4711
//
// --port 0 (the default) picks a free ephemeral port; --port-file writes
// the resolved port for scripts/tests to pick up, so parallel runs never
// collide on a fixed port.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "fault/fault.h"
#include "net/server.h"
#include "util/atomic_file.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

// Signal handlers may only do async-signal-safe work: write one byte to
// this self-pipe; the main thread blocks on the read end and runs the
// actual (not signal-safe) shutdown.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int /*signum*/) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xia_server [--host H] [--port P] [--port-file FILE]\n"
      "                  [--data-dir DIR] [--fsync always|interval|off]\n"
      "                  [--demo tpox|xmark] [--demo-scale small|full]\n"
      "                  [--max-connections N] [--max-inflight N]\n"
      "                  [--budget-ms MS] [--drain-timeout-s S]\n"
      "                  [--metrics-json FILE] [--metrics-interval-s S]\n"
      "                  [--advise-threads N | -j N]\n"
      "                  [--follow HOST:PORT] [--follower-id ID]\n"
      "                  [--repl-checkpoint-every N]\n"
      "                  [--sync-replicas K] [--quorum-timeout-ms MS]\n"
      "                  [--follower-ttl-s S]\n"
      "  --port 0 (default) picks a free ephemeral port; --port-file\n"
      "  writes the resolved port so scripts can find the server.\n"
      "  --follow runs this node as a read replica of the leader at\n"
      "  HOST:PORT (requires --data-dir; mutations get read_only).\n"
      "  --sync-replicas K acks a mutation only after K replicas have\n"
      "  durably acked its LSN (kUnavailable on timeout, never a silent\n"
      "  downgrade); --follower-ttl-s prunes followers that stay\n"
      "  disconnected longer than S seconds from the quorum set.\n");
  return 2;
}

bool ParseCount(const char* text, size_t* out) {
  double v = 0;
  if (!ParseDouble(text, &v) || v < 0 ||
      v != static_cast<double>(static_cast<size_t>(v))) {
    return false;
  }
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (Status s = fault::FaultRegistry::Global().ConfigureFromEnv(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }

  net::ServerOptions options;
  std::string port_file;
  std::string demo_scale = "full";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    double v = 0;
    size_t n = 0;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      if (!ParseCount(argv[++i], &n) || n > 65535) return Usage();
      options.port = static_cast<uint16_t>(n);
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--data-dir" && has_value) {
      options.data_dir = argv[++i];
    } else if (arg == "--fsync" && has_value) {
      options.fsync_policy = argv[++i];
    } else if (arg == "--demo" && has_value) {
      options.demo = argv[++i];
    } else if (arg == "--demo-scale" && has_value) {
      demo_scale = argv[++i];
    } else if (arg == "--max-connections" && has_value) {
      if (!ParseCount(argv[++i], &n) || n == 0) return Usage();
      options.max_connections = n;
    } else if (arg == "--max-inflight" && has_value) {
      if (!ParseCount(argv[++i], &n)) return Usage();
      options.max_inflight_requests = n;
    } else if (arg == "--budget-ms" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 0) return Usage();
      options.default_budget_ms = v;
    } else if (arg == "--drain-timeout-s" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 0) return Usage();
      options.drain_timeout_s = v;
    } else if (arg == "--metrics-json" && has_value) {
      options.metrics_json_path = argv[++i];
    } else if (arg == "--metrics-interval-s" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v <= 0) return Usage();
      options.metrics_interval_s = v;
    } else if ((arg == "--advise-threads" || arg == "-j") && has_value) {
      if (!ParseCount(argv[++i], &n)) return Usage();
      options.advise_threads = n;
    } else if (arg == "--follow" && has_value) {
      const std::string target = argv[++i];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon + 1 >= target.size()) {
        return Usage();
      }
      if (!ParseCount(target.c_str() + colon + 1, &n) || n == 0 ||
          n > 65535) {
        return Usage();
      }
      options.follow_host = target.substr(0, colon);
      options.follow_port = static_cast<uint16_t>(n);
    } else if (arg == "--follower-id" && has_value) {
      options.follower_id = argv[++i];
    } else if (arg == "--repl-checkpoint-every" && has_value) {
      if (!ParseCount(argv[++i], &n)) return Usage();
      options.repl_checkpoint_every = n;
    } else if (arg == "--sync-replicas" && has_value) {
      if (!ParseCount(argv[++i], &n)) return Usage();
      options.sync_replicas = n;
    } else if (arg == "--quorum-timeout-ms" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v <= 0) return Usage();
      options.quorum_timeout_ms = v;
    } else if (arg == "--follower-ttl-s" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 0) return Usage();
      options.follower_ttl_s = v;
    } else {
      return Usage();
    }
  }
  if (demo_scale == "small") {
    // Loopback-test scale: big enough to exercise every code path,
    // small enough that ctest sessions start in milliseconds.
    options.demo_tpox_scale = tpox::TpoxScale{50, 100, 25, 42};
    options.demo_xmark_scale = tpox::XmarkScale{60, 60, 30, 7};
  } else if (demo_scale != "full") {
    return Usage();
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  net::Server server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }
  if (!options.data_dir.empty()) {
    std::printf("%s: %s\n", options.data_dir.c_str(),
                server.recovery().ToString().c_str());
  }
  std::printf("xia_server listening on %s:%u\n", server.host().c_str(),
              server.port());
  if (options.is_follower()) {
    std::printf("xia_server following %s:%u as \"%s\" (read replica)\n",
                options.follow_host.c_str(), options.follow_port,
                options.follower_id.c_str());
  }
  if (options.sync_replicas > 0) {
    std::printf(
        "xia_server quorum mode: %zu sync replica(s), %.0f ms ack timeout\n",
        options.sync_replicas, options.quorum_timeout_ms);
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    const Status s =
        WriteFileAtomic(port_file, std::to_string(server.port()) + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      (void)server.Stop();
      return StatusExitCode(s);
    }
  }

  // Block until SIGTERM/SIGINT.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("xia_server draining...\n");
  std::fflush(stdout);
  const Status stopped = server.Stop();
  const net::ServerStats stats = server.GetStats();
  std::printf(
      "xia_server stopped: %llu connections, %llu requests, "
      "%llu protocol errors, %llu admission rejects\n",
      static_cast<unsigned long long>(stats.connections_total),
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.admission_rejects));
  if (!stopped.ok()) {
    std::fprintf(stderr, "error: %s\n", stopped.ToString().c_str());
    return StatusExitCode(stopped);
  }
  return 0;
}
