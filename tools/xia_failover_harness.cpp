// Three-node kill -9 failover harness (ISSUE 9 headline test).
//
// Every run forks a quorum-commit leader (--sync-replicas 1 semantics)
// and two follower children, drives a unique-symbol insert stream
// through the leader, and SIGKILLs the leader at a scheduled crash
// point:
//
//   mid-group-commit   half a WAL record's bytes on disk
//   mid-quorum-wait    locally durable, quorum wait not yet entered
//   mid-stream-send    killed between replication frames
//   mid-checkpoint     leader checkpoint half done
//   post-ack           quorum satisfied, client reply never sent
//
// The parent then promotes the most-caught-up follower (highest durable
// LSN — the same rule xia_admin uses), re-points the other follower at
// it, writes ten more mutations, and rejoins the old leader's data dir
// as a follower of the new epoch (its unreplicated suffix truncates at
// the barrier, or it full-resyncs when its checkpoint passed it). The
// run passes iff every quorum-ACKED mutation is present on the new
// leader and all three store digests converge byte-for-byte.
//
// A final partition scenario leaves the deposed leader RUNNING while a
// follower is promoted behind its back: writes to the stale leader must
// fail kUnavailable (its quorum can never form), epoch-stamped writes
// must fail kFenced on both sides of the split, a follower rejection
// must name the real leader, and after the stale leader rejoins, its
// never-acked suffix must be gone from every digest. Exit 0 iff every
// run passes.
//
// Usage: xia_failover_harness [--seeds N] [--kind NAME]
//        (XIA_CHAOS_SEEDS=N overrides the default seed count)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "tpox/tpox_data.h"
#include "util/atomic_file.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace xia {
namespace {

namespace fs = std::filesystem;

constexpr double kChildLifeTimeoutSeconds = 120.0;
constexpr double kConvergeTimeoutSeconds = 90.0;

Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Where in the leader's commit/replication path the child kills itself.
struct CrashKind {
  const char* name;
  const char* hook_point;
  /// The countdown is seeded modulo this, so different seeds die at
  /// different depths into the mutation stream.
  int window;
};

constexpr CrashKind kCrashKinds[] = {
    {"mid-group-commit", "wal.append.mid_write", 20},
    {"mid-quorum-wait", "repl.quorum.before_wait", 30},
    {"mid-stream-send", "repl.stream.mid_send", 40},
    {"mid-checkpoint", "checkpoint.after_snapshot", 2},
    {"post-ack", "repl.quorum.after_ack", 30},
};

/// Inserts carry a ~700-byte pad so WAL records and replication frames
/// span several writes/reads and the mid-* kill windows actually open.
std::string InsertStatement(const std::string& symbol) {
  static const std::string pad(700, 'x');
  return "insert into SDOC <Security><Symbol>" + symbol +
         "</Symbol><Yield>5</Yield><Pad>" + pad + "</Pad></Security>";
}

/// One node of the cluster, run in a forked child.
struct NodeSpec {
  std::string data_dir;
  std::string control_dir;
  /// Control-file prefix: <control_dir>/<name>.{port,target,digest}.
  std::string name;
  /// First boot of the initial leader seeds the demo TPoX collections.
  bool seed_demo = false;
  /// Non-empty host = start as a follower of this endpoint.
  std::string leader_host;
  uint16_t leader_port = 0;
  /// SIGKILL self when hook_point has fired `countdown` times
  /// (nullptr = never crash).
  const char* hook_point = nullptr;
  int countdown = 0;
  double quorum_timeout_ms = 8000;
  /// Leader-role children checkpoint every ~200ms so the mid-checkpoint
  /// kill window opens during the stream.
  bool periodic_checkpoint = false;
};

/// Child body: run one cluster node until the parent publishes a target
/// LSN, converge to it (durable LSN as leader, applied LSN as
/// follower — the role can change at runtime via promote/follow), write
/// the store digest, exit 42. With a hook armed, SIGKILL self at the
/// scheduled point instead. Never returns.
[[noreturn]] void RunNodeChild(const NodeSpec& spec) {
  net::ServerOptions options;
  options.data_dir = spec.data_dir;
  if (spec.seed_demo) {
    options.demo = "tpox";
    options.demo_tpox_scale = tpox::TpoxScale{30, 40, 20, 42};
  }
  if (!spec.leader_host.empty()) {
    options.follow_host = spec.leader_host;
    options.follow_port = spec.leader_port;
    options.follower_id = spec.name;
  }
  options.repl_checkpoint_every = 16;
  options.sync_replicas = 1;
  options.quorum_timeout_ms = spec.quorum_timeout_ms;
  // Arm the kill hook only after startup: demo seeding, recovery, and
  // the initial checkpoint fire the same points and must not count.
  std::atomic<bool> armed{false};
  std::atomic<int> remaining{spec.countdown};
  if (spec.hook_point != nullptr) {
    options.repl_test_hook = [&armed, &remaining, &spec](const char* point) {
      if (!armed.load(std::memory_order_acquire)) return;
      if (std::strcmp(point, spec.hook_point) == 0 &&
          remaining.fetch_sub(1) == 1) {
        ::kill(::getpid(), SIGKILL);
      }
    };
  }
  net::Server server(options);
  if (const Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "  [%s] start failed: %s\n", spec.name.c_str(),
                 started.ToString().c_str());
    ::_exit(4);
  }
  const std::string prefix = spec.control_dir + "/" + spec.name;
  if (const Status wrote = WriteFileAtomic(
          prefix + ".port", std::to_string(server.port()));
      !wrote.ok()) {
    std::fprintf(stderr, "  [%s] port write failed: %s\n", spec.name.c_str(),
                 wrote.ToString().c_str());
    ::_exit(4);
  }
  armed.store(true, std::memory_order_release);

  Stopwatch life;
  uint64_t target = 0;
  int iter = 0;
  while (true) {
    if (life.ElapsedSeconds() > kChildLifeTimeoutSeconds) {
      const net::ReplStatus rs = server.GetReplStatus();
      std::fprintf(stderr,
                   "  [%s] timeout: target=%llu durable=%llu applied=%llu "
                   "last_error=%s\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(target),
                   static_cast<unsigned long long>(rs.durable_lsn),
                   static_cast<unsigned long long>(rs.applier.applied_lsn),
                   rs.applier.last_error.c_str());
      ::_exit(5);
    }
    ++iter;
    if (spec.periodic_checkpoint && !server.IsFollowerNow() &&
        iter % 40 == 0) {
      (void)server.CheckpointNow();
    }
    const net::ReplStatus rs = server.GetReplStatus();
    if (server.IsFollowerNow() && !rs.applier.sticky_error.empty()) {
      std::fprintf(stderr, "  [%s] diverged: %s\n", spec.name.c_str(),
                   rs.applier.sticky_error.c_str());
      ::_exit(6);
    }
    if (target == 0) {
      const Result<std::string> text = ReadFileText(prefix + ".target");
      if (text.ok()) target = std::strtoull(text->c_str(), nullptr, 10);
    }
    if (target != 0) {
      const uint64_t progress =
          server.IsFollowerNow() ? rs.applier.applied_lsn : rs.durable_lsn;
      if (progress >= target) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Result<std::string> digest = server.StoreDigest();
  if (!digest.ok()) {
    std::fprintf(stderr, "  [%s] digest failed: %s\n", spec.name.c_str(),
                 digest.status().ToString().c_str());
    ::_exit(7);
  }
  if (const Status wrote =
          WriteFileAtomic(prefix + ".digest", *digest);
      !wrote.ok()) {
    std::fprintf(stderr, "  [%s] digest write failed: %s\n",
                 spec.name.c_str(), wrote.ToString().c_str());
    ::_exit(8);
  }
  (void)server.Stop();
  ::_exit(42);
}

pid_t ForkNode(const NodeSpec& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) RunNodeChild(spec);
  return pid;
}

Result<uint16_t> WaitPortFile(const std::string& path, double timeout_s) {
  Stopwatch timer;
  while (timer.ElapsedSeconds() < timeout_s) {
    const Result<std::string> text = ReadFileText(path);
    if (text.ok()) {
      const uint64_t port = std::strtoull(text->c_str(), nullptr, 10);
      if (port >= 1 && port <= 65535) return static_cast<uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Status::DeadlineExceeded("no port file at " + path);
}

bool WaitForDeath(pid_t pid, double timeout_s, int* wstatus) {
  Stopwatch timer;
  while (timer.ElapsedSeconds() < timeout_s) {
    if (::waitpid(pid, wstatus, WNOHANG) == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

void KillAndReap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int ignored = 0;
  ::waitpid(pid, &ignored, 0);
}

/// Waits for a clean converged exit (42) and reads back the digest.
Result<std::string> ReapConverged(pid_t pid, const std::string& digest_path,
                                  const char* who) {
  int wstatus = 0;
  if (!WaitForDeath(pid, kConvergeTimeoutSeconds, &wstatus)) {
    KillAndReap(pid);
    return Status::DeadlineExceeded(std::string(who) +
                                    " did not converge in time");
  }
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 42) {
    return Status::Internal(std::string(who) + " died unexpectedly (wstatus " +
                            std::to_string(wstatus) + ")");
  }
  return ReadFileText(digest_path);
}

/// Polls the leader until `count` followers are connected.
Status WaitFollowersConnected(net::Client* leader, size_t count,
                              double timeout_s) {
  Stopwatch timer;
  while (timer.ElapsedSeconds() < timeout_s) {
    const Result<net::ReplStatusReply> rs = leader->ReplStatus();
    if (rs.ok()) {
      size_t connected = 0;
      for (const net::ReplStatusFollower& f : rs->followers) {
        if (f.connected) ++connected;
      }
      if (connected >= count) return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Status::DeadlineExceeded("followers never connected");
}

Result<uint64_t> QueryCount(net::Client* client, const std::string& symbol) {
  net::QueryRequest request;
  request.statement = "for $s in c('SDOC')/Security where $s/Symbol = \"" +
                      symbol + "\" return $s";
  XIA_ASSIGN_OR_RETURN(const net::ExecReply reply, client->Query(request));
  return reply.result_count;
}

struct Cluster {
  std::string ctl;
  pid_t pid1 = -1, pid2 = -1, pid3 = -1, pid_rejoin = -1;
  uint16_t port1 = 0, port2 = 0, port3 = 0;

  void KillAll() {
    KillAndReap(pid1);
    KillAndReap(pid2);
    KillAndReap(pid3);
    KillAndReap(pid_rejoin);
  }
};

/// Boots leader n1 (+demo) and followers n2/n3 in `base`/`tag`-* dirs.
/// On success all three ports are filled in.
Status BootCluster(const std::string& base, const std::string& tag,
                   const CrashKind* kind, uint64_t seed,
                   double leader_quorum_timeout_ms, Cluster* cluster) {
  cluster->ctl = base + "/" + tag + "-ctl";
  for (const char* node : {"n1", "n2", "n3"}) {
    fs::remove_all(base + "/" + tag + "-" + node);
  }
  fs::remove_all(cluster->ctl);
  fs::create_directories(cluster->ctl);

  NodeSpec n1;
  n1.data_dir = base + "/" + tag + "-n1";
  n1.control_dir = cluster->ctl;
  n1.name = "n1";
  n1.seed_demo = true;
  n1.quorum_timeout_ms = leader_quorum_timeout_ms;
  n1.periodic_checkpoint = true;
  if (kind != nullptr) {
    n1.hook_point = kind->hook_point;
    n1.countdown = 1 + static_cast<int>(seed % kind->window);
  }
  cluster->pid1 = ForkNode(n1);
  XIA_ASSIGN_OR_RETURN(cluster->port1,
                       WaitPortFile(cluster->ctl + "/n1.port", 10.0));

  for (const char* name : {"n2", "n3"}) {
    NodeSpec follower;
    follower.data_dir = base + "/" + tag + "-" + name;
    follower.control_dir = cluster->ctl;
    follower.name = name;
    follower.leader_host = "127.0.0.1";
    follower.leader_port = cluster->port1;
    (std::strcmp(name, "n2") == 0 ? cluster->pid2 : cluster->pid3) =
        ForkNode(follower);
  }
  XIA_ASSIGN_OR_RETURN(cluster->port2,
                       WaitPortFile(cluster->ctl + "/n2.port", 10.0));
  XIA_ASSIGN_OR_RETURN(cluster->port3,
                       WaitPortFile(cluster->ctl + "/n3.port", 10.0));
  return Status::OK();
}

bool RunOne(const CrashKind& kind, uint64_t seed, const std::string& base) {
  const std::string tag = std::string(kind.name) + "-" + std::to_string(seed);
  Cluster cluster;
  bool pass = false;
  do {
    if (const Status booted =
            BootCluster(base, tag, &kind, seed, 8000, &cluster);
        !booted.ok()) {
      std::fprintf(stderr, "  boot: %s\n", booted.ToString().c_str());
      break;
    }
    net::Client lead;
    if (const Status s = lead.Connect("127.0.0.1", cluster.port1); !s.ok()) {
      std::fprintf(stderr, "  connect n1: %s\n", s.ToString().c_str());
      break;
    }
    if (const Status s = WaitFollowersConnected(&lead, 2, 15.0); !s.ok()) {
      std::fprintf(stderr, "  %s\n", s.ToString().c_str());
      break;
    }

    // Drive quorum-acked inserts until the scheduled kill fires. Every
    // OK reply is a quorum promise the failover must keep.
    std::vector<std::string> acked;
    bool leader_died = false;
    int leader_wstatus = 0;
    bool harness_error = false;
    for (int i = 0; i < 300 && !leader_died; ++i) {
      const std::string symbol =
          "FOV" + std::to_string(seed) + "N" + std::to_string(i);
      net::MutationRequest request;
      request.statement = InsertStatement(symbol);
      const Result<net::ExecReply> reply = lead.Mutate(request);
      if (reply.ok()) {
        acked.push_back(symbol);
        continue;
      }
      // A failed mutation must mean the leader is (about to be) dead;
      // a quorum timeout with two healthy followers is a real bug.
      if (!WaitForDeath(cluster.pid1, 5.0, &leader_wstatus)) {
        std::fprintf(stderr, "  mutation failed but leader alive: %s\n",
                     reply.status().ToString().c_str());
        harness_error = true;
        break;
      }
      leader_died = true;
    }
    if (harness_error) break;
    if (!leader_died) {
      // The countdown never fired (short run for this point); a kill
      // from outside still exercises the same failover path.
      ::kill(cluster.pid1, SIGKILL);
      if (!WaitForDeath(cluster.pid1, 5.0, &leader_wstatus)) break;
    }
    cluster.pid1 = -1;  // reaped
    lead.Close();
    if (!WIFSIGNALED(leader_wstatus) ||
        WTERMSIG(leader_wstatus) != SIGKILL) {
      std::fprintf(stderr, "  leader died oddly (wstatus=%d)\n",
                   leader_wstatus);
      break;
    }

    // Promote the most-caught-up follower (max durable LSN: every
    // quorum-acked LSN is <= some follower's durable LSN, so the max
    // candidate holds them all).
    net::Client c2, c3;
    if (!c2.Connect("127.0.0.1", cluster.port2).ok() ||
        !c3.Connect("127.0.0.1", cluster.port3).ok()) {
      std::fprintf(stderr, "  cannot reach followers for promotion\n");
      break;
    }
    const Result<net::ReplStatusReply> rs2 = c2.ReplStatus();
    const Result<net::ReplStatusReply> rs3 = c3.ReplStatus();
    if (!rs2.ok() || !rs3.ok()) {
      std::fprintf(stderr, "  repl status failed during promotion\n");
      break;
    }
    const bool two_wins = rs2->durable_lsn >= rs3->durable_lsn;
    net::Client& cw = two_wins ? c2 : c3;
    net::Client& cl = two_wins ? c3 : c2;
    const uint16_t winner_port = two_wins ? cluster.port2 : cluster.port3;
    const Result<net::PromoteReply> promoted = cw.Promote();
    if (!promoted.ok()) {
      std::fprintf(stderr, "  promote: %s\n",
                   promoted.status().ToString().c_str());
      break;
    }
    if (promoted->epoch < 2 || promoted->barrier_lsn == 0) {
      std::fprintf(stderr, "  bad promote reply\n");
      break;
    }
    if (const Status s = cl.Follow("127.0.0.1", winner_port).status();
        !s.ok()) {
      std::fprintf(stderr, "  refollow: %s\n", s.ToString().c_str());
      break;
    }

    // The new epoch must accept quorum writes of its own.
    bool post_failed = false;
    for (int i = 0; i < 10; ++i) {
      const std::string symbol =
          "PST" + std::to_string(seed) + "N" + std::to_string(i);
      net::MutationRequest request;
      request.statement = InsertStatement(symbol);
      if (const Result<net::ExecReply> reply = cw.Mutate(request);
          !reply.ok()) {
        std::fprintf(stderr, "  post-failover write: %s\n",
                     reply.status().ToString().c_str());
        post_failed = true;
        break;
      }
      acked.push_back(symbol);
    }
    if (post_failed) break;

    // Zero acked-write loss: every promised mutation is on the new
    // leader exactly once.
    bool lost = false;
    for (const std::string& symbol : acked) {
      const Result<uint64_t> count = QueryCount(&cw, symbol);
      if (!count.ok() || *count != 1) {
        std::fprintf(stderr, "  LOST acked mutation %s (count=%llu)\n",
                     symbol.c_str(),
                     count.ok() ? static_cast<unsigned long long>(*count)
                                : 0ULL);
        lost = true;
        break;
      }
    }
    if (lost) break;

    // Rejoin the deposed leader's data dir under the new epoch; its
    // unreplicated suffix truncates at the barrier (or full-resyncs).
    NodeSpec rejoin;
    rejoin.data_dir = base + "/" + tag + "-n1";
    rejoin.control_dir = cluster.ctl;
    rejoin.name = "n1r";
    rejoin.leader_host = "127.0.0.1";
    rejoin.leader_port = winner_port;
    cluster.pid_rejoin = ForkNode(rejoin);
    if (!WaitPortFile(cluster.ctl + "/n1r.port", 10.0).ok()) {
      std::fprintf(stderr, "  rejoin never started\n");
      break;
    }

    const Result<net::ReplStatusReply> final_rs = cw.ReplStatus();
    if (!final_rs.ok()) break;
    const std::string target = std::to_string(final_rs->durable_lsn);
    const char* winner_name = two_wins ? "n2" : "n3";
    const char* loser_name = two_wins ? "n3" : "n2";
    // Followers first: the new leader must keep streaming until both
    // have converged, so its own target is published only after they
    // exit.
    (void)WriteFileAtomic(cluster.ctl + "/" + std::string(loser_name) +
                              ".target", target);
    (void)WriteFileAtomic(cluster.ctl + "/n1r.target", target);
    cl.Close();
    const Result<std::string> loser_digest = ReapConverged(
        two_wins ? cluster.pid3 : cluster.pid2,
        cluster.ctl + "/" + std::string(loser_name) + ".digest", "follower");
    const Result<std::string> rejoin_digest = ReapConverged(
        cluster.pid_rejoin, cluster.ctl + "/n1r.digest", "rejoined leader");
    (void)WriteFileAtomic(cluster.ctl + "/" + std::string(winner_name) +
                              ".target", target);
    cw.Close();
    const Result<std::string> winner_digest = ReapConverged(
        two_wins ? cluster.pid2 : cluster.pid3,
        cluster.ctl + "/" + std::string(winner_name) + ".digest",
        "new leader");
    cluster.pid2 = cluster.pid3 = cluster.pid_rejoin = -1;
    if (!winner_digest.ok() || !loser_digest.ok() || !rejoin_digest.ok()) {
      std::fprintf(stderr, "  convergence: %s / %s / %s\n",
                   winner_digest.status().ToString().c_str(),
                   loser_digest.status().ToString().c_str(),
                   rejoin_digest.status().ToString().c_str());
      break;
    }
    if (*winner_digest != *loser_digest ||
        *winner_digest != *rejoin_digest) {
      std::fprintf(stderr, "  DIVERGED: leader=%s follower=%s rejoin=%s\n",
                   winner_digest->c_str(), loser_digest->c_str(),
                   rejoin_digest->c_str());
      break;
    }
    pass = true;
  } while (false);
  cluster.KillAll();
  if (pass) {
    for (const char* suffix : {"-n1", "-n2", "-n3", "-ctl"}) {
      fs::remove_all(base + "/" + tag + suffix);
    }
  }
  return pass;
}

/// Partition scenario: the old leader keeps running while n2 is
/// promoted behind its back. Its writes must fence or time out — and
/// after it rejoins, they must not exist anywhere.
bool RunPartition(const std::string& base) {
  const std::string tag = "partition";
  Cluster cluster;
  bool pass = false;
  do {
    // Short quorum timeout on n1 so its doomed post-partition writes
    // fail fast instead of stalling the harness.
    if (const Status booted =
            BootCluster(base, tag, nullptr, 0, 2500, &cluster);
        !booted.ok()) {
      std::fprintf(stderr, "  boot: %s\n", booted.ToString().c_str());
      break;
    }
    net::Client c1, c2, c3;
    if (!c1.Connect("127.0.0.1", cluster.port1).ok() ||
        !c2.Connect("127.0.0.1", cluster.port2).ok() ||
        !c3.Connect("127.0.0.1", cluster.port3).ok()) {
      std::fprintf(stderr, "  connect failed\n");
      break;
    }
    if (const Status s = WaitFollowersConnected(&c1, 2, 15.0); !s.ok()) {
      std::fprintf(stderr, "  %s\n", s.ToString().c_str());
      break;
    }
    bool write_failed = false;
    for (int i = 0; i < 20; ++i) {
      net::MutationRequest request;
      request.statement = InsertStatement("PRE" + std::to_string(i));
      if (!c1.Mutate(request).ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) {
      std::fprintf(stderr, "  pre-partition writes failed\n");
      break;
    }

    // "Partition" n1: promote n2 while n1 still believes it leads.
    const Result<net::PromoteReply> promoted = c2.Promote();
    if (!promoted.ok() || promoted->epoch < 2) {
      std::fprintf(stderr, "  promote: %s\n",
                   promoted.status().ToString().c_str());
      break;
    }
    if (const Status s =
            c3.Follow("127.0.0.1", cluster.port2).status();
        !s.ok()) {
      std::fprintf(stderr, "  refollow n3: %s\n", s.ToString().c_str());
      break;
    }

    // Stale-leader writes: locally durable on n1 but never
    // quorum-acked — each must fail kUnavailable, not silently succeed.
    bool stale_ok = true;
    for (int i = 0; i < 3; ++i) {
      net::MutationRequest request;
      request.statement = InsertStatement("STALE" + std::to_string(i));
      const Result<net::ExecReply> reply = c1.Mutate(request);
      if (reply.ok() ||
          reply.status().code() != StatusCode::kUnavailable) {
        std::fprintf(stderr, "  stale write not rejected: %s\n",
                     reply.ok() ? "OK" : reply.status().ToString().c_str());
        stale_ok = false;
        break;
      }
    }
    if (!stale_ok) break;

    // Epoch-stamped writes fence on both sides of the split.
    {
      net::MutationRequest request;
      request.statement = InsertStatement("FENCED0");
      request.expected_epoch = promoted->epoch;
      const Result<net::ExecReply> reply = c1.Mutate(request);
      if (reply.ok() || reply.status().code() != StatusCode::kFenced) {
        std::fprintf(stderr, "  stale leader did not fence epoch %llu\n",
                     static_cast<unsigned long long>(promoted->epoch));
        break;
      }
    }
    {
      net::MutationRequest request;
      request.statement = InsertStatement("FENCED1");
      request.expected_epoch = 1;  // the pre-promotion epoch
      const Result<net::ExecReply> reply = c2.Mutate(request);
      if (reply.ok() || reply.status().code() != StatusCode::kFenced) {
        std::fprintf(stderr, "  new leader did not fence old epoch\n");
        break;
      }
    }
    // A follower rejection must name the real leader so clients can
    // redirect (the xia_client --retry path).
    {
      net::MutationRequest request;
      request.statement = InsertStatement("REDIR0");
      const Result<net::ExecReply> reply = c3.Mutate(request);
      const std::string want =
          "127.0.0.1:" + std::to_string(cluster.port2);
      if (reply.ok() || reply.status().code() != StatusCode::kReadOnly ||
          c3.leader_hint() != want) {
        std::fprintf(stderr, "  follower hint wrong: got \"%s\" want %s\n",
                     c3.leader_hint().c_str(), want.c_str());
        break;
      }
    }

    for (int i = 0; i < 10; ++i) {
      net::MutationRequest request;
      request.statement = InsertStatement("PST" + std::to_string(i));
      if (!c2.Mutate(request).ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) {
      std::fprintf(stderr, "  post-partition writes failed\n");
      break;
    }

    // Heal: the deposed leader rejoins and must shed its stale suffix.
    if (const Status s =
            c1.Follow("127.0.0.1", cluster.port2).status();
        !s.ok()) {
      std::fprintf(stderr, "  rejoin n1: %s\n", s.ToString().c_str());
      break;
    }

    bool stale_visible = false;
    for (int i = 0; i < 3; ++i) {
      const Result<uint64_t> count =
          QueryCount(&c2, "STALE" + std::to_string(i));
      if (!count.ok() || *count != 0) {
        std::fprintf(stderr, "  stale write MERGED into the new epoch\n");
        stale_visible = true;
        break;
      }
    }
    if (stale_visible) break;

    const Result<net::ReplStatusReply> final_rs = c2.ReplStatus();
    if (!final_rs.ok()) break;
    const std::string target = std::to_string(final_rs->durable_lsn);
    // Followers (n1 rejoined, n3) converge first; the leader n2 keeps
    // streaming until they exit and only then gets its own target.
    (void)WriteFileAtomic(cluster.ctl + "/n1.target", target);
    (void)WriteFileAtomic(cluster.ctl + "/n3.target", target);
    c1.Close();
    c3.Close();
    const Result<std::string> d1 =
        ReapConverged(cluster.pid1, cluster.ctl + "/n1.digest", "n1");
    const Result<std::string> d3 =
        ReapConverged(cluster.pid3, cluster.ctl + "/n3.digest", "n3");
    (void)WriteFileAtomic(cluster.ctl + "/n2.target", target);
    c2.Close();
    const Result<std::string> d2 =
        ReapConverged(cluster.pid2, cluster.ctl + "/n2.digest", "n2");
    cluster.pid1 = cluster.pid2 = cluster.pid3 = -1;
    if (!d1.ok() || !d2.ok() || !d3.ok()) {
      std::fprintf(stderr, "  convergence: %s / %s / %s\n",
                   d1.status().ToString().c_str(),
                   d2.status().ToString().c_str(),
                   d3.status().ToString().c_str());
      break;
    }
    if (*d1 != *d2 || *d1 != *d3) {
      std::fprintf(stderr, "  DIVERGED after heal: %s / %s / %s\n",
                   d1->c_str(), d2->c_str(), d3->c_str());
      break;
    }
    pass = true;
  } while (false);
  cluster.KillAll();
  if (pass) {
    for (const char* suffix : {"-n1", "-n2", "-n3", "-ctl"}) {
      fs::remove_all(base + "/" + tag + suffix);
    }
  }
  return pass;
}

int RunHarness(uint64_t seeds, const std::string& only_kind) {
  const char* tmp = ::getenv("TMPDIR");
  const std::string base = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/xia_failover_harness_" +
                           std::to_string(::getpid());
  fs::create_directories(base);
  int failures = 0;
  int runs = 0;
  for (const CrashKind& kind : kCrashKinds) {
    if (!only_kind.empty() && only_kind != kind.name) continue;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      ++runs;
      std::printf("[%s seed=%llu] ", kind.name,
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);
      if (RunOne(kind, seed, base)) {
        std::printf("ok\n");
      } else {
        std::printf("FAIL\n");
        ++failures;
      }
    }
  }
  if (only_kind.empty() || only_kind == "partition") {
    ++runs;
    std::printf("[partition] ");
    std::fflush(stdout);
    if (RunPartition(base)) {
      std::printf("ok\n");
    } else {
      std::printf("FAIL\n");
      ++failures;
    }
  }
  if (failures == 0) fs::remove_all(base);
  std::printf("%d/%d runs passed\n", runs - failures, runs);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xia

int main(int argc, char** argv) {
  uint64_t seeds = 10;
  if (const char* env = ::getenv("XIA_CHAOS_SEEDS"); env != nullptr) {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    if (v >= 1) seeds = v;
  }
  std::string only_kind;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--kind" && i + 1 < argc) {
      only_kind = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: xia_failover_harness [--seeds N] [--kind NAME]\n"
                   "  kinds: mid-group-commit mid-quorum-wait "
                   "mid-stream-send mid-checkpoint post-ack partition\n"
                   "  XIA_CHAOS_SEEDS=N overrides the default seed count\n");
      return 2;
    }
  }
  return xia::RunHarness(seeds, only_kind);
}
