// xia_client: command-line client for xia_server. Three modes:
//
//   * single-shot:  xia_client --port 4711 query 'for $s in ...'
//   * scripted:     xia_client --port 4711 --script session.txt
//                   (or commands on stdin, one per line)
//   * load driver:  xia_client --port 4711 --load 32 --requests 200
//                   opens 32 connections, sends 200 requests each, and
//                   prints qps plus p50/p95/p99 latency.
//
// Commands: ping [TOKEN|sleep=MS], query|run STMT, mutate STMT,
// explain [analyze] STMT, advise [BUDGET [ALGO [BUDGET_MS]]],
// metrics [json|prom|table]. `advise` with no --workload file advises on
// the server's captured workload.
//
// Error contract (shared with xia_shell/xia_advise): the first failing
// command prints a single "error: ..." line on stderr and exits with
// StatusExitCode (10 + StatusCode), so scripts can tell failure kinds
// apart.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/ddl.h"
#include "net/client.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using namespace xia;  // NOLINT

std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  const size_t space = line.find_first_of(" \t");
  if (space == std::string::npos) return {line, ""};
  return {line.substr(0, space), std::string(Trim(line.substr(space)))};
}

Result<double> ParseSizeBytes(const std::string& text) {
  double multiplier = 1;
  std::string num = text;
  if (EndsWith(num, "KB") || EndsWith(num, "kb")) {
    multiplier = 1024;
    num = num.substr(0, num.size() - 2);
  } else if (EndsWith(num, "MB") || EndsWith(num, "mb")) {
    multiplier = 1024.0 * 1024;
    num = num.substr(0, num.size() - 2);
  } else if (EndsWith(num, "GB") || EndsWith(num, "gb")) {
    multiplier = 1024.0 * 1024 * 1024;
    num = num.substr(0, num.size() - 2);
  }
  double v = 0;
  if (!ParseDouble(num, &v) || v <= 0) {
    return Status::InvalidArgument("bad budget: " + text);
  }
  return v * multiplier;
}

void PrintExecReply(const net::ExecReply& reply) {
  std::printf("count=%llu docs=%llu idx=%llu wall=%.6fs\n",
              static_cast<unsigned long long>(reply.result_count),
              static_cast<unsigned long long>(reply.docs_examined),
              static_cast<unsigned long long>(reply.index_entries_scanned),
              reply.wall_seconds);
  for (const std::string& row : reply.rows) {
    std::printf("  %s\n", row.c_str());
  }
}

class ClientShell {
 public:
  ClientShell(std::string host, uint16_t port, std::string workload_text,
              double budget_ms)
      : host_(std::move(host)),
        port_(port),
        workload_text_(std::move(workload_text)),
        budget_ms_(budget_ms) {}

  Status Connect() { return client_.Connect(host_, port_); }

  /// Connect with up to `retries` additional attempts under jittered
  /// exponential backoff (the OnlineAdvisor shape: 0.05s initial, x2,
  /// capped) — how a follower-facing script rides out a leader that is
  /// still starting or briefly partitioned away.
  Status ConnectWithRetry(size_t retries) {
    Status status = Connect();
    if (status.ok() || retries == 0) return status;
    Random jitter(static_cast<uint64_t>(::getpid()));
    double backoff = 0.05;
    for (size_t attempt = 0; attempt < retries && !status.ok(); ++attempt) {
      const double sleep_s = backoff * (0.5 + 0.5 * jitter.NextDouble());
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      backoff = std::min(backoff * 2.0, 2.0);
      status = Connect();
    }
    return status;
  }

  /// Load-driver mode: execute commands but print nothing.
  void set_quiet(bool quiet) { quiet_ = quiet; }

  /// Enables follow-the-leader redirects (see DispatchWithRedirect).
  void set_redirect_retries(size_t retries) { redirect_retries_ = retries; }

  Status Dispatch(const std::string& line) {
    auto [cmd, rest] = SplitCommand(line);
    if (cmd == "ping") return Ping(rest);
    if (cmd == "query" || cmd == "run") return Query(rest);
    if (cmd == "mutate") return Mutate(rest);
    if (cmd == "explain") return Explain(rest);
    if (cmd == "advise") return Advise(rest);
    if (cmd == "metrics") return Metrics(rest);
    if (cmd == "repl") return Repl(rest);
    if (cmd == "create") return CreateIndex(rest);
    return Status::InvalidArgument("unknown command: " + cmd);
  }

  /// Dispatch, and when the server rejects a write because it is a
  /// follower (kReadOnly) or a deposed leader (kFenced) while naming
  /// where the leader actually is, reconnect there and retry once.
  /// Only active under --retry N (N also bounds the reconnect attempts),
  /// so plain invocations keep failing loudly.
  Status DispatchWithRedirect(const std::string& line) {
    const Status status = Dispatch(line);
    if (redirect_retries_ == 0) return status;
    if (status.code() != StatusCode::kReadOnly &&
        status.code() != StatusCode::kFenced) {
      return status;
    }
    const std::string hint = client_.leader_hint();
    const size_t colon = hint.rfind(':');
    if (colon == std::string::npos || colon + 1 >= hint.size()) {
      return status;
    }
    double v = 0;
    if (!ParseDouble(hint.substr(colon + 1), &v) || v < 1 || v > 65535) {
      return status;
    }
    std::fprintf(stderr, "redirecting to leader %s\n", hint.c_str());
    host_ = hint.substr(0, colon);
    port_ = static_cast<uint16_t>(v);
    client_.Close();
    if (const Status reconnect = ConnectWithRetry(redirect_retries_);
        !reconnect.ok()) {
      return status;  // the original rejection is the better story
    }
    return Dispatch(line);
  }

  int RunScript(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == "quit" || trimmed == "exit") break;
      if (Status s = DispatchWithRedirect(std::string(trimmed)); !s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return StatusExitCode(s);
      }
    }
    return 0;
  }

 private:
  Status Ping(const std::string& rest) {
    const std::string token = rest.empty() ? "ping" : rest;
    XIA_ASSIGN_OR_RETURN(const std::string echoed, client_.Ping(token));
    if (echoed != token) {
      return Status::Internal("ping echo mismatch: " + echoed);
    }
    if (!quiet_) std::printf("pong %s\n", echoed.c_str());
    return Status::OK();
  }

  Status Query(const std::string& rest) {
    if (rest.empty()) return Status::InvalidArgument("query STMT");
    net::QueryRequest request;
    request.statement = rest;
    request.materialize_rows = true;
    request.budget_ms = budget_ms_;
    XIA_ASSIGN_OR_RETURN(const net::ExecReply reply, client_.Query(request));
    if (!quiet_) PrintExecReply(reply);
    return Status::OK();
  }

  Status Mutate(const std::string& rest) {
    if (rest.empty()) return Status::InvalidArgument("mutate STMT");
    net::MutationRequest request;
    request.statement = rest;
    request.budget_ms = budget_ms_;
    XIA_ASSIGN_OR_RETURN(const net::ExecReply reply, client_.Mutate(request));
    if (!quiet_) PrintExecReply(reply);
    return Status::OK();
  }

  // create index NAME on COLL PATTERN [type] [virtual] [online]
  Status CreateIndex(const std::string& rest) {
    XIA_ASSIGN_OR_RETURN(const engine::CreateIndexSpec spec,
                         engine::ParseCreateIndex(rest));
    net::CreateIndexRequest request;
    request.name = spec.name;
    request.collection = spec.collection;
    request.pattern = spec.pattern.path.ToString();
    request.value_type = static_cast<uint8_t>(spec.pattern.type);
    request.structural = spec.pattern.structural;
    request.is_virtual = spec.is_virtual;
    request.online = spec.online;
    XIA_ASSIGN_OR_RETURN(const net::CreateIndexReply reply,
                         client_.CreateIndex(request));
    if (!quiet_) {
      std::printf("created %s%s: %llu entries, %llu bytes, %.3fs",
                  spec.name.c_str(), spec.is_virtual ? " (virtual)" : "",
                  static_cast<unsigned long long>(reply.entry_count),
                  static_cast<unsigned long long>(reply.size_bytes),
                  reply.build_seconds);
      if (reply.online) {
        std::printf(" [online: stall %.3fs, %llu delta ops]",
                    reply.stall_seconds,
                    static_cast<unsigned long long>(reply.delta_ops));
      }
      std::printf("\n");
    }
    return Status::OK();
  }

  Status Explain(const std::string& rest) {
    net::ExplainRequest request;
    auto [first, tail] = SplitCommand(rest);
    if (first == "analyze") {
      request.analyze = true;
      request.statement = tail;
    } else {
      request.statement = rest;
    }
    if (request.statement.empty()) {
      return Status::InvalidArgument("explain [analyze] STMT");
    }
    request.budget_ms = budget_ms_;
    XIA_ASSIGN_OR_RETURN(const net::TextReply reply,
                         client_.Explain(request));
    if (!quiet_) std::printf("%s\n", reply.text.c_str());
    return Status::OK();
  }

  Status Advise(const std::string& rest) {
    net::AdviseRequest request;
    request.workload_text = workload_text_;
    request.budget_ms = budget_ms_;
    auto [budget_text, tail] = SplitCommand(rest);
    auto [algo_text, ms_text] = SplitCommand(tail);
    if (!budget_text.empty()) {
      XIA_ASSIGN_OR_RETURN(const double bytes, ParseSizeBytes(budget_text));
      request.disk_budget_bytes = static_cast<uint64_t>(bytes);
    }
    request.algorithm = algo_text;
    if (!ms_text.empty()) {
      double ms = 0;
      if (!ParseDouble(ms_text, &ms) || ms <= 0) {
        return Status::InvalidArgument("bad BUDGET_MS: " + ms_text);
      }
      request.budget_ms = ms;
    }
    XIA_ASSIGN_OR_RETURN(const net::AdviseReply reply,
                         client_.Advise(request));
    if (quiet_) return Status::OK();
    for (const net::AdviseReplyIndex& index : reply.indexes) {
      std::printf("  %s  -- %s%s\n", index.ddl.c_str(),
                  HumanBytes(static_cast<double>(index.size_bytes)).c_str(),
                  index.is_general ? " [general]" : "");
    }
    std::printf(
        "  total %s, est. speedup %.2fx, %llu optimizer calls%s\n",
        HumanBytes(static_cast<double>(reply.total_size_bytes)).c_str(),
        reply.est_speedup,
        static_cast<unsigned long long>(reply.optimizer_calls),
        reply.partial ? ", partial=true" : "");
    return Status::OK();
  }

  Status Repl(const std::string& rest) {
    if (rest != "status") return Status::InvalidArgument("repl status");
    XIA_ASSIGN_OR_RETURN(const net::ReplStatusReply rs, client_.ReplStatus());
    if (quiet_) return Status::OK();
    std::printf(
        "role=%s epoch=%llu epoch_start_lsn=%llu durable_lsn=%llu "
        "checkpoint_lsn=%llu applied_lsn=%llu",
        rs.role.c_str(), static_cast<unsigned long long>(rs.repl_epoch),
        static_cast<unsigned long long>(rs.epoch_start_lsn),
        static_cast<unsigned long long>(rs.durable_lsn),
        static_cast<unsigned long long>(rs.checkpoint_lsn),
        static_cast<unsigned long long>(rs.applied_lsn));
    if (!rs.leader_endpoint.empty()) {
      std::printf(" leader=%s", rs.leader_endpoint.c_str());
    }
    std::printf("\n");
    for (const net::ReplStatusFollower& f : rs.followers) {
      std::printf("  follower %-20s %-21s acked_lsn=%llu %s\n",
                  f.follower_id.c_str(), f.remote.c_str(),
                  static_cast<unsigned long long>(f.acked_lsn),
                  f.connected ? "connected" : "disconnected");
    }
    return Status::OK();
  }

  Status Metrics(const std::string& rest) {
    net::MetricsFormat format = net::MetricsFormat::kTable;
    if (rest == "json") {
      format = net::MetricsFormat::kJson;
    } else if (rest == "prom") {
      format = net::MetricsFormat::kPrometheus;
    } else if (!rest.empty() && rest != "table") {
      return Status::InvalidArgument("metrics [json|prom|table]");
    }
    XIA_ASSIGN_OR_RETURN(const net::TextReply reply,
                         client_.Metrics(format));
    if (!quiet_) std::printf("%s\n", reply.text.c_str());
    return Status::OK();
  }

  /// Mutable: a leader redirect re-targets the shell mid-session.
  std::string host_;
  uint16_t port_;
  const std::string workload_text_;
  const double budget_ms_;
  bool quiet_ = false;
  size_t redirect_retries_ = 0;
  net::Client client_;
};

/// Multi-connection load driver: `connections` threads, each with its own
/// client, sending `requests` copies of `command`. Reports aggregate qps
/// and latency percentiles.
int RunLoad(const std::string& host, uint16_t port, size_t connections,
            size_t requests, const std::string& command,
            const std::string& workload_text, double budget_ms,
            size_t retries) {
  std::mutex mu;
  std::vector<double> latencies;
  Status first_error = Status::OK();
  latencies.reserve(connections * requests);

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      ClientShell shell(host, port, workload_text, budget_ms);
      // Each request's stdout would swamp the report, so the driver only
      // keeps timings.
      shell.set_quiet(true);
      std::vector<double> local;
      local.reserve(requests);
      Status status = shell.ConnectWithRetry(retries);
      if (status.ok()) {
        for (size_t r = 0; r < requests; ++r) {
          Stopwatch timer;
          status = shell.Dispatch(command);
          if (!status.ok()) break;
          local.push_back(timer.ElapsedSeconds());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
      if (!status.ok() && first_error.ok()) first_error = status;
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();

  if (!first_error.ok()) {
    std::fprintf(stderr, "error: %s\n", first_error.ToString().c_str());
    return StatusExitCode(first_error);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](size_t rank) {
    return latencies.empty() ? 0.0 : latencies[std::min(
               latencies.size() - 1, rank)] * 1e3;
  };
  std::printf(
      "load: %zu conns x %zu reqs = %zu ok in %.3fs  qps=%.1f  "
      "p50=%.3fms p95=%.3fms p99=%.3fms\n",
      connections, requests, latencies.size(), seconds,
      seconds > 0 ? static_cast<double>(latencies.size()) / seconds : 0.0,
      pct(latencies.size() / 2), pct(latencies.size() * 95 / 100),
      pct(latencies.size() * 99 / 100));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: xia_client [--host H] (--port P | --port-file FILE)\n"
      "                  [--workload FILE] [--budget-ms MS] [--retry N]\n"
      "                  [--script FILE | COMMAND...\n"
      "                   | --load CONNS --requests N [--command CMD]]\n"
      "commands: ping [TOKEN|sleep=MS] | query|run STMT | mutate STMT\n"
      "          | explain [analyze] STMT\n"
      "          | advise [BUDGET [ALGO [BUDGET_MS]]]\n"
      "          | metrics [json|prom|table] | repl status\n"
      "          | create index NAME on COLL PATTERN\n"
      "            [string|numeric|structural] [virtual] [online]\n"
      "  with --retry N, a write rejected by a follower or deposed\n"
      "  leader (read_only/fenced) is retried once against the leader\n"
      "  endpoint named in the rejection.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string port_file;
  std::string script;
  std::string workload_file;
  std::string load_command = "ping";
  double budget_ms = 0;
  size_t retries = 0;
  size_t load_connections = 0;
  size_t load_requests = 100;
  std::vector<std::string> command_words;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    double v = 0;
    if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 1 || v > 65535) return Usage();
      port = static_cast<uint16_t>(v);
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--script" && has_value) {
      script = argv[++i];
    } else if (arg == "--workload" && has_value) {
      workload_file = argv[++i];
    } else if (arg == "--budget-ms" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 0) return Usage();
      budget_ms = v;
    } else if (arg == "--retry" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 0 ||
          v != static_cast<double>(static_cast<size_t>(v))) {
        return Usage();
      }
      retries = static_cast<size_t>(v);
    } else if (arg == "--load" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 1) return Usage();
      load_connections = static_cast<size_t>(v);
    } else if (arg == "--requests" && has_value) {
      if (!ParseDouble(argv[++i], &v) || v < 1) return Usage();
      load_requests = static_cast<size_t>(v);
    } else if (arg == "--command" && has_value) {
      load_command = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      command_words.push_back(arg);
    }
  }
  if (!port_file.empty()) {
    std::ifstream f(port_file);
    double v = 0;
    std::string text;
    if (!f || !std::getline(f, text) ||
        !ParseDouble(Trim(text), &v) || v < 1 || v > 65535) {
      std::fprintf(stderr, "error: bad port file: %s\n", port_file.c_str());
      return StatusExitCode(Status::InvalidArgument(""));
    }
    port = static_cast<uint16_t>(v);
  }
  if (port == 0) return Usage();

  std::string workload_text;
  if (!workload_file.empty()) {
    std::ifstream f(workload_file);
    if (!f) {
      std::fprintf(stderr, "error: cannot open %s\n", workload_file.c_str());
      return StatusExitCode(Status::NotFound(""));
    }
    std::ostringstream buffer;
    buffer << f.rdbuf();
    workload_text = buffer.str();
  }

  if (load_connections > 0) {
    return RunLoad(host, port, load_connections, load_requests, load_command,
                   workload_text, budget_ms, retries);
  }

  ClientShell shell(host, port, workload_text, budget_ms);
  shell.set_redirect_retries(retries);
  if (Status s = shell.ConnectWithRetry(retries); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return StatusExitCode(s);
  }
  if (!command_words.empty()) {
    if (Status s = shell.DispatchWithRedirect(Join(command_words, " "));
        !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return StatusExitCode(s);
    }
    return 0;
  }
  if (!script.empty()) {
    std::ifstream f(script);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", script.c_str());
      return 1;
    }
    return shell.RunScript(f);
  }
  return shell.RunScript(std::cin);
}
