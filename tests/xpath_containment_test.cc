#include <gtest/gtest.h>

#include "util/random.h"
#include "xpath/containment.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"
#include "xml/document.h"

namespace xia::xpath {
namespace {

Path P(const char* text) {
  auto p = ParsePattern(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

TEST(MatchLabelPathTest, ExactChildPath) {
  EXPECT_TRUE(MatchesLabelPath(P("/a/b/c"), {"a", "b", "c"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a/b/c"), {"a", "b"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a/b/c"), {"a", "b", "c", "d"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a/b/c"), {"a", "x", "c"}));
}

TEST(MatchLabelPathTest, Wildcard) {
  EXPECT_TRUE(MatchesLabelPath(P("/a/*/c"), {"a", "b", "c"}));
  EXPECT_TRUE(MatchesLabelPath(P("/a/*/c"), {"a", "zz", "c"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a/*/c"), {"a", "c"}));
}

TEST(MatchLabelPathTest, Descendant) {
  EXPECT_TRUE(MatchesLabelPath(P("//c"), {"c"}));
  EXPECT_TRUE(MatchesLabelPath(P("//c"), {"a", "b", "c"}));
  EXPECT_FALSE(MatchesLabelPath(P("//c"), {"a", "c", "b"}));
  EXPECT_TRUE(MatchesLabelPath(P("/a//c"), {"a", "c"}));
  EXPECT_TRUE(MatchesLabelPath(P("/a//c"), {"a", "x", "y", "c"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a//c"), {"b", "x", "c"}));
}

TEST(MatchLabelPathTest, Universal) {
  EXPECT_TRUE(MatchesLabelPath(P("//*"), {"a"}));
  EXPECT_TRUE(MatchesLabelPath(P("//*"), {"a", "b", "c"}));
  EXPECT_FALSE(MatchesLabelPath(P("//*"), {}));
}

TEST(MatchLabelPathTest, RepeatedLabels) {
  EXPECT_TRUE(MatchesLabelPath(P("/a//a"), {"a", "a"}));
  EXPECT_TRUE(MatchesLabelPath(P("/a//a"), {"a", "b", "a"}));
  EXPECT_FALSE(MatchesLabelPath(P("/a//a"), {"a"}));
}

TEST(CoversTest, Reflexive) {
  for (const char* text : {"/a", "/a/b", "//a", "/a/*/c", "//*", "/a//b"}) {
    EXPECT_TRUE(Covers(P(text), P(text))) << text;
  }
}

TEST(CoversTest, UniversalCoversEverything) {
  for (const char* text : {"/a", "/a/b/c", "//a", "/a/*/c", "/a//b"}) {
    EXPECT_TRUE(Covers(P("//*"), P(text))) << text;
    EXPECT_FALSE(Covers(P(text), P("//*"))) << text;
  }
}

TEST(CoversTest, PaperTableOneExamples) {
  // /Security//* covers the two specific candidates it generalizes (§V).
  EXPECT_TRUE(Covers(P("/Security//*"), P("/Security/Symbol")));
  EXPECT_TRUE(Covers(P("/Security//*"), P("/Security/SecInfo/*/Sector")));
  EXPECT_TRUE(Covers(P("/Security//*"), P("/Security//Industry")));
  EXPECT_FALSE(Covers(P("/Security//*"), P("/Other/Symbol")));
  EXPECT_FALSE(Covers(P("/Security/Symbol"), P("/Security//*")));
}

TEST(CoversTest, IntroExamples) {
  // §I: /Security[Yield>4.5] can use /Security/Yield, /Security/* or
  // //Yield — each must cover the compared pattern /Security/Yield.
  EXPECT_TRUE(Covers(P("/Security/Yield"), P("/Security/Yield")));
  EXPECT_TRUE(Covers(P("/Security/*"), P("/Security/Yield")));
  EXPECT_TRUE(Covers(P("//Yield"), P("/Security/Yield")));
}

TEST(CoversTest, WildcardVsConcrete) {
  EXPECT_TRUE(Covers(P("/a/*"), P("/a/b")));
  EXPECT_FALSE(Covers(P("/a/b"), P("/a/*")));
  EXPECT_TRUE(Covers(P("/*/b"), P("/a/b")));
  EXPECT_FALSE(Covers(P("/a/*"), P("/a/b/c")));
}

TEST(CoversTest, DescendantVsChild) {
  EXPECT_TRUE(Covers(P("/a//b"), P("/a/b")));
  EXPECT_TRUE(Covers(P("/a//b"), P("/a/x/b")));
  EXPECT_TRUE(Covers(P("/a//b"), P("/a/*/b")));
  EXPECT_FALSE(Covers(P("/a/b"), P("/a//b")));
  EXPECT_FALSE(Covers(P("/a/*/b"), P("/a//b")));  // // allows zero gap
  EXPECT_TRUE(Covers(P("/a//b"), P("/a/*/*/b")));
}

TEST(CoversTest, GapSubtleties) {
  // /a//b ⊆ //b but not vice versa.
  EXPECT_TRUE(Covers(P("//b"), P("/a//b")));
  EXPECT_FALSE(Covers(P("/a//b"), P("//b")));
  // //a//b vs //b.
  EXPECT_TRUE(Covers(P("//b"), P("//a//b")));
  EXPECT_FALSE(Covers(P("//a//b"), P("//b")));
}

TEST(CoversTest, WildcardGapInteraction) {
  // //* covers /a but /*/ * (depth exactly 2) does not cover /a (depth 1).
  EXPECT_FALSE(Covers(P("/*/*"), P("/a")));
  EXPECT_TRUE(Covers(P("/*/*"), P("/a/b")));
  // //*//* requires depth >= 2.
  EXPECT_FALSE(Covers(P("//*//*"), P("/a")));
  EXPECT_TRUE(Covers(P("//*//*"), P("/a/b")));
  EXPECT_TRUE(Covers(P("//*//*"), P("/a/b/c")));
}

TEST(CoversTest, NonTrivialEquivalences) {
  // //*//b and //b are NOT equivalent (//*//b needs depth >= 2)...
  EXPECT_TRUE(Covers(P("//b"), P("//*//b")));
  EXPECT_FALSE(Covers(P("//*//b"), P("//b")));
  // ...but //a//* and /a//* differ only in where a may sit.
  EXPECT_TRUE(Covers(P("//a//*"), P("/a//*")));
  EXPECT_FALSE(Covers(P("/a//*"), P("//a//*")));
}

TEST(CoversTest, Transitivity) {
  // spot-check transitivity on a chain.
  EXPECT_TRUE(Covers(P("//*"), P("/Security//*")));
  EXPECT_TRUE(Covers(P("/Security//*"), P("/Security/SecInfo/*/Sector")));
  EXPECT_TRUE(Covers(P("//*"), P("/Security/SecInfo/*/Sector")));
}

TEST(CoversTest, EquivalentHelper) {
  EXPECT_TRUE(Equivalent(P("/a/b"), P("/a/b")));
  EXPECT_FALSE(Equivalent(P("/a/b"), P("/a/*")));
  EXPECT_TRUE(StrictlyCovers(P("/a/*"), P("/a/b")));
  EXPECT_FALSE(StrictlyCovers(P("/a/b"), P("/a/b")));
}

// ---------------------------------------------------------------------------
// Property test: Covers agrees with evaluation on random documents.
// If Covers(P, Q) then every node selected by Q in any document must be
// selected by P too.

class ContainmentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Random linear pattern over a tiny alphabet.
Path RandomPattern(Random* rng) {
  std::vector<Step> steps;
  const size_t len = 1 + rng->Uniform(4);
  const char* names[] = {"a", "b", "c", "*"};
  for (size_t i = 0; i < len; ++i) {
    const Axis axis = rng->Bernoulli(0.3) ? Axis::kDescendant : Axis::kChild;
    steps.emplace_back(axis, names[rng->Uniform(4)]);
  }
  return Path(std::move(steps));
}

// Random document over the same alphabet.
xml::Document RandomDocument(Random* rng) {
  xml::Document doc;
  const char* names[] = {"a", "b", "c", "d"};
  const xml::NodeIndex root = doc.AddRoot(names[rng->Uniform(4)]);
  std::vector<xml::NodeIndex> frontier = {root};
  const size_t n_nodes = 3 + rng->Uniform(20);
  for (size_t i = 0; i < n_nodes; ++i) {
    const xml::NodeIndex parent = frontier[rng->Uniform(frontier.size())];
    frontier.push_back(doc.AddElement(parent, names[rng->Uniform(4)]));
  }
  return doc;
}

TEST_P(ContainmentPropertyTest, CoversImpliesSupersetOfMatches) {
  Random rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const Path p = RandomPattern(&rng);
    const Path q = RandomPattern(&rng);
    const bool covers = Covers(p, q);
    for (int d = 0; d < 10; ++d) {
      xml::Document doc = RandomDocument(&rng);
      const auto q_nodes = EvaluateLinear(doc, q);
      const auto p_nodes = EvaluateLinear(doc, p);
      if (covers) {
        for (xml::NodeIndex n : q_nodes) {
          EXPECT_TRUE(std::find(p_nodes.begin(), p_nodes.end(), n) !=
                      p_nodes.end())
              << "Covers(" << p.ToString() << ", " << q.ToString()
              << ") but node " << n << " selected only by the query pattern";
        }
      }
    }
  }
}

TEST_P(ContainmentPropertyTest, MatchAgreesWithEvaluator) {
  Random rng(GetParam() * 977 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    const Path p = RandomPattern(&rng);
    xml::Document doc = RandomDocument(&rng);
    const auto selected = EvaluateLinear(doc, p);
    for (size_t i = 0; i < doc.size(); ++i) {
      const auto n = static_cast<xml::NodeIndex>(i);
      const bool in_eval =
          std::find(selected.begin(), selected.end(), n) != selected.end();
      const bool matches = MatchesLabelPath(p, doc.LabelPath(n));
      EXPECT_EQ(in_eval, matches)
          << p.ToString() << " node " << doc.LabelPathString(n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xia::xpath
