// Concurrency tests for the workload capture path: N producer threads
// publishing while a consumer drains must lose nothing and duplicate
// nothing. These are the tests the dedicated TSan ctest (xia_tsan_build)
// rebuilds under -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "engine/query_parser.h"
#include "workload/capture.h"
#include "workload/templatizer.h"

namespace xia::workload {
namespace {

engine::Statement Parse(const std::string& text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

// Each producer publishes `per_thread` queries whose constant encodes
// (thread, i), so every publication is globally unique and the drained
// stream can be checked for loss and duplication exactly.
TEST(WorkloadConcurrentTest, ProducersAndDrainerLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;

  WorkloadCapture capture;
  capture.set_enabled(true);

  std::atomic<bool> producers_done{false};
  std::vector<CapturedQuery> drained;
  std::thread drainer([&] {
    for (;;) {
      const bool done = producers_done.load(std::memory_order_acquire);
      std::vector<CapturedQuery> batch = capture.Drain();
      drained.insert(drained.end(),
                     std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
      if (done && capture.pending() == 0) break;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        engine::Statement stmt = Parse(
            "for $s in collection('SDOC')/Security where $s/Symbol = \"T" +
            std::to_string(t) + "-" + std::to_string(i) + "\" return $s");
        ASSERT_TRUE(capture.Publish(stmt, 0.001));
      }
    });
  }
  for (auto& p : producers) p.join();
  producers_done.store(true, std::memory_order_release);
  drainer.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(capture.published(), kTotal);
  EXPECT_EQ(capture.dropped(), 0u);
  EXPECT_EQ(capture.drained(), kTotal);
  ASSERT_EQ(drained.size(), kTotal);

  // No duplicated or lost sequence numbers.
  std::vector<bool> seen_seq(kTotal, false);
  // No duplicated or lost payloads: count per (thread, i) constant.
  std::map<std::string, int> payloads;
  for (const CapturedQuery& cq : drained) {
    ASSERT_LT(cq.sequence, kTotal);
    EXPECT_FALSE(seen_seq[cq.sequence]) << "duplicate seq " << cq.sequence;
    seen_seq[cq.sequence] = true;
    ++payloads[cq.statement.query().where[0].literal.string_value];
  }
  EXPECT_EQ(payloads.size(), kTotal);
  for (const auto& [key, count] : payloads) {
    EXPECT_EQ(count, 1) << key;
  }
}

// Concurrent producers + a templatizing consumer: the weighted workload
// that comes out the other end accounts for every single publication.
TEST(WorkloadConcurrentTest, TemplatizedWeightsAccountForEveryQuery) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;

  WorkloadCapture capture;
  capture.set_enabled(true);
  Templatizer templatizer;

  std::atomic<bool> producers_done{false};
  std::thread consumer([&] {
    for (;;) {
      const bool done = producers_done.load(std::memory_order_acquire);
      templatizer.AddBatch(capture.Drain());
      if (done && capture.pending() == 0) break;
      std::this_thread::yield();
    }
  });

  // Every producer publishes the same two shapes with varying constants.
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string c = std::to_string(t * kPerThread + i);
        ASSERT_TRUE(capture.Publish(Parse(
            "for $s in collection('SDOC')/Security where $s/Symbol = \"S" +
            c + "\" return $s")));
        ASSERT_TRUE(capture.Publish(Parse(
            "for $o in collection('ODOC')/FIXML/Order where $o/@ID = \"O" +
            c + "\" return $o")));
      }
    });
  }
  for (auto& p : producers) p.join();
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  constexpr double kPerShape = double{kThreads} * kPerThread;
  EXPECT_EQ(templatizer.template_count(), 2u);
  EXPECT_EQ(templatizer.raw_count(), uint64_t{2} * kThreads * kPerThread);
  const engine::Workload w = templatizer.ToWorkload();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].frequency, kPerShape);
  EXPECT_DOUBLE_EQ(w[1].frequency, kPerShape);
}

// A bounded capture under pressure: accepted + dropped == attempted, and
// the drained stream never exceeds what was accepted.
TEST(WorkloadConcurrentTest, BoundedCaptureAccountsForDrops) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;

  WorkloadCapture capture(/*capacity=*/64);
  capture.set_enabled(true);
  const engine::Statement stmt =
      Parse("for $s in collection('SDOC')/Security return $s");

  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (capture.Publish(stmt)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  uint64_t drained = 0;
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire) || capture.pending() > 0) {
      drained += capture.Drain().size();
      std::this_thread::yield();
    }
  });
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  drainer.join();

  constexpr uint64_t kAttempted = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(capture.published(), accepted.load());
  EXPECT_EQ(capture.published() + capture.dropped(), kAttempted);
  EXPECT_EQ(drained, accepted.load());
  EXPECT_LE(capture.pending(), size_t{0});
}

}  // namespace
}  // namespace xia::workload
