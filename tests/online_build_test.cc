// Online (non-blocking) index builds, DESIGN §16: the build scans a
// snapshot bound under shared locks while concurrent mutators append to a
// side log, then replays the delta and swaps inside one short exclusive
// section. The resulting index must be *bit-identical* (ContentDigest) to
// an offline build over the same final state — under a mutation storm,
// with serial and parallel extraction, with and without the storm.
//
// Registered in the TSAN and ASAN gates (tests/CMakeLists.txt): the
// builder's shared-lock scan racing exclusive-lock mutators is exactly
// the interleaving a data race would corrupt.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/index.h"
#include "storage/online_build.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "xml/document.h"
#include "xpath/parser.h"

namespace xia::storage {
namespace {

xml::Document MakeDoc(int seq) {
  xml::Document doc;
  const auto root = doc.AddRoot("Security");
  doc.AddElement(root, "Symbol", "SYM" + std::to_string(seq));
  doc.AddElement(root, "Yield", std::to_string((seq % 97) / 10.0));
  return doc;
}

xpath::IndexPattern SymbolPattern() {
  auto path = xpath::ParsePattern("/Security/Symbol");
  EXPECT_TRUE(path.ok()) << path.status();
  return xpath::IndexPattern{*path, xpath::ValueType::kString};
}

class OnlineBuildTest : public ::testing::Test {
 protected:
  void SeedCollection(int docs) {
    Collection* coll = *store_.CreateCollection("C");
    for (int i = 0; i < docs; ++i) coll->Add(MakeDoc(i));
    stats_.RunStats(*coll);
  }

  /// Offline rebuild over the current store state; the digest oracle.
  uint32_t OfflineDigest(const xpath::IndexPattern& pattern) {
    PathValueIndex oracle("oracle", "C", pattern);
    Collection* coll = *store_.GetCollection("C");
    oracle.Build(*coll);
    return oracle.ContentDigest();
  }

  DocumentStore store_;
  StatisticsCatalog stats_;
  Catalog catalog_{&store_, &stats_};
  std::shared_mutex db_mu_;
};

TEST_F(OnlineBuildTest, MatchesOfflineOnQuiescentStore) {
  SeedCollection(500);
  OnlineBuildReport report;
  auto built = BuildIndexOnline(&catalog_, &db_mu_, "sym", "C",
                                SymbolPattern(), {}, nullptr, &report);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(report.docs_scanned, 500u);
  EXPECT_EQ(report.delta_ops_applied, 0u);
  EXPECT_EQ(catalog_.attached_side_logs(), 0u);
  EXPECT_EQ((*built)->physical->ContentDigest(),
            OfflineDigest(SymbolPattern()));
}

TEST_F(OnlineBuildTest, SerialAndParallelScansAreIdentical) {
  SeedCollection(1000);
  OnlineBuildOptions serial;
  serial.scan_chunk_docs = 64;
  auto a = BuildIndexOnline(&catalog_, &db_mu_, "sym_serial", "C",
                            SymbolPattern(), serial);
  ASSERT_TRUE(a.ok()) << a.status();

  util::ThreadPool pool(4);
  OnlineBuildOptions parallel;
  parallel.scan_chunk_docs = 64;
  parallel.pool = &pool;
  auto b = BuildIndexOnline(&catalog_, &db_mu_, "sym_parallel", "C",
                            SymbolPattern(), parallel);
  ASSERT_TRUE(b.ok()) << b.status();

  EXPECT_EQ((*a)->physical->ContentDigest(), (*b)->physical->ContentDigest());
  EXPECT_EQ((*a)->physical->entry_count(), (*b)->physical->entry_count());
}

TEST_F(OnlineBuildTest, DuplicateNameIsRejectedBeforeAttaching) {
  SeedCollection(10);
  ASSERT_TRUE(catalog_.CreateIndex("sym", "C", SymbolPattern()).ok());
  auto dup =
      BuildIndexOnline(&catalog_, &db_mu_, "sym", "C", SymbolPattern());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.attached_side_logs(), 0u);
}

// The tentpole correctness claim: an index built online *while the
// collection is being mutated* equals an offline rebuild of the final
// state, because every mutation the scan missed arrives via the side log
// and the installed index is maintained by the normal notify path after
// the swap.
TEST_F(OnlineBuildTest, DigestMatchesOfflineUnderMutationStorm) {
  SeedCollection(2000);
  Collection* coll = *store_.GetCollection("C");

  std::atomic<bool> build_done{false};
  std::atomic<int> next_seq{100000};
  const int kMutators = 3;
  std::vector<std::thread> mutators;
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&, t] {
      Random rng(1234 + t);
      // Keep mutating until the build finished, then a few more ops to
      // prove the installed index is maintained post-swap.
      for (int tail = 0; tail < 50;) {
        if (build_done.load(std::memory_order_acquire)) ++tail;
        std::unique_lock<std::shared_mutex> lock(db_mu_);
        if (rng.Uniform(3) != 0) {
          const int seq = next_seq.fetch_add(1, std::memory_order_relaxed);
          const xml::DocId id = coll->Add(MakeDoc(seq));
          catalog_.NotifyInsert("C", id, coll->Get(id));
        } else {
          const xml::DocId bound = coll->id_bound();
          const xml::DocId id =
              static_cast<xml::DocId>(rng.Uniform(bound ? bound : 1));
          if (coll->IsLive(id)) {
            catalog_.NotifyRemove("C", id, coll->Get(id));
            ASSERT_TRUE(coll->Remove(id).ok());
          }
        }
      }
    });
  }

  util::ThreadPool pool(2);
  OnlineBuildOptions options;
  options.pool = &pool;
  options.scan_chunk_docs = 128;  // many lock acquisitions => real overlap
  OnlineBuildReport report;
  auto built = BuildIndexOnline(&catalog_, &db_mu_, "sym", "C",
                                SymbolPattern(), options, nullptr, &report);
  build_done.store(true, std::memory_order_release);
  for (auto& m : mutators) m.join();
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(catalog_.attached_side_logs(), 0u);
  EXPECT_GT(report.docs_scanned, 0u);
  // The exclusive stall is a strict subset of the build.
  EXPECT_LT(report.exclusive_seconds, report.total_seconds);

  EXPECT_EQ((*built)->physical->ContentDigest(),
            OfflineDigest(SymbolPattern()))
      << "online build diverged from offline rebuild ("
      << report.delta_ops_applied << " delta ops, " << report.docs_scanned
      << " docs scanned)";
}

}  // namespace
}  // namespace xia::storage
