// End-to-end workload lifecycle test: executed queries -> capture ->
// templatize -> save -> load -> Advisor::Recommend must agree with a batch
// advise over the equivalent in-memory workload (ISSUE 2 acceptance).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "engine/query_parser.h"
#include "fault/fault.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "util/string_util.h"
#include "workload/capture.h"
#include "workload/templatizer.h"
#include "workload/workload_io.h"

namespace xia::workload {
namespace {

std::vector<std::string> RecommendedDdls(
    const advisor::Recommendation& rec) {
  std::vector<std::string> ddls;
  for (const auto& ri : rec.indexes) ddls.push_back(ri.ddl);
  return ddls;
}

class WorkloadRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 400;
    scale.order_docs = 500;
    scale.custacc_docs = 120;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
  }

  advisor::AdvisorOptions Options() {
    advisor::AdvisorOptions options;
    options.disk_budget_bytes = 2.0 * 1024 * 1024;
    return options;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
};

TEST_F(WorkloadRoundTripTest, CaptureTemplatizeSaveLoadAdvise) {
  // A raw "traffic" stream: each TPoX query published many times with
  // rotating constants (same shapes, different values).
  auto base = tpox::TpoxQueries();
  ASSERT_TRUE(base.ok()) << base.status();

  WorkloadCapture capture;
  capture.set_enabled(true);
  size_t raw = 0;
  for (int round = 0; round < 10; ++round) {
    for (const auto& stmt : *base) {
      ASSERT_TRUE(capture.Publish(stmt));
      ++raw;
    }
  }
  ASSERT_GE(raw, 100u);

  Templatizer templatizer;
  templatizer.AddBatch(capture.Drain());
  EXPECT_EQ(templatizer.raw_count(), raw);
  EXPECT_EQ(templatizer.template_count(), base->size());
  EXPECT_DOUBLE_EQ(templatizer.DedupRatio(), 10.0);

  const engine::Workload captured = templatizer.ToWorkload();

  // Save and reload; the loaded workload must recommend the same
  // configuration as the in-memory one.
  const std::string path =
      (std::filesystem::temp_directory_path() / "xia_roundtrip_test.xq")
          .string();
  ASSERT_TRUE(SaveWorkloadToFile(captured, path).ok());
  auto loaded = LoadWorkloadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), captured.size());
  for (size_t i = 0; i < captured.size(); ++i) {
    EXPECT_TRUE(engine::SameStatementBody(captured[i], (*loaded)[i])) << i;
    EXPECT_DOUBLE_EQ((*loaded)[i].frequency, captured[i].frequency) << i;
  }

  advisor::IndexAdvisor advisor(&store_, &stats_);
  auto rec_mem = advisor.Recommend(captured, Options());
  ASSERT_TRUE(rec_mem.ok()) << rec_mem.status();
  auto rec_file = advisor.Recommend(*loaded, Options());
  ASSERT_TRUE(rec_file.ok()) << rec_file.status();

  EXPECT_FALSE(rec_mem->indexes.empty());
  EXPECT_EQ(RecommendedDdls(*rec_mem), RecommendedDdls(*rec_file));
  EXPECT_DOUBLE_EQ(rec_mem->total_size_bytes, rec_file->total_size_bytes);
  EXPECT_NEAR(rec_mem->est_speedup, rec_file->est_speedup, 1e-9);

  // The weighted template workload must also recommend the same indexes
  // as the raw duplicated stream (frequency-weighting is what makes the
  // compression lossless for the advisor).
  engine::Workload raw_stream;
  for (int round = 0; round < 10; ++round) {
    for (const auto& stmt : *base) raw_stream.push_back(stmt);
  }
  auto rec_raw = advisor.Recommend(raw_stream, Options());
  ASSERT_TRUE(rec_raw.ok()) << rec_raw.status();
  EXPECT_EQ(RecommendedDdls(*rec_raw), RecommendedDdls(*rec_mem));

  // And the save format itself is canonical: save(load(save)) == save.
  auto first = SerializeWorkload(captured);
  ASSERT_TRUE(first.ok());
  auto second = SerializeWorkload(*loaded);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);

  std::remove(path.c_str());
}

TEST_F(WorkloadRoundTripTest, FailedSaveLeavesPreviousFileIntact) {
  // Atomic-save regression: a save that fails (injected fault fires
  // before serialization) must leave the previous good workload file
  // untouched, not truncate or clobber it.
  auto base = tpox::TpoxQueries();
  ASSERT_TRUE(base.ok()) << base.status();
  engine::Workload small(base->begin(), base->begin() + 2);
  engine::Workload larger(base->begin(), base->end());

  const std::string path =
      (std::filesystem::temp_directory_path() / "xia_atomic_save_test.xq")
          .string();
  ASSERT_TRUE(SaveWorkloadToFile(small, path).ok());
  auto before = LoadWorkloadFromFile(path);
  ASSERT_TRUE(before.ok()) << before.status();

  fault::ScopedFaultDisarm cleanup;
  fault::FaultRegistry::Global().Arm(fault::points::kWorkloadWrite,
                                     fault::FaultSpec::Probability(1));
  EXPECT_FALSE(SaveWorkloadToFile(larger, path).ok());
  fault::FaultRegistry::Global().DisarmAll();

  auto after = LoadWorkloadFromFile(path);
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_TRUE(engine::SameStatementBody((*before)[i], (*after)[i])) << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xia::workload
