// Odds-and-ends coverage: small public surfaces not exercised elsewhere.

#include <gtest/gtest.h>

#include <cctype>

#include "engine/normalizer.h"
#include "engine/query_parser.h"
#include "optimizer/plan.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "xml/document.h"
#include "xpath/parser.h"

namespace xia {
namespace {

TEST(StopwatchTest, ElapsesMonotonically) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(sw.ElapsedMillis(), b * 1e3 * 0.5);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), b + 1.0);
}

TEST(HumanBytesTest, LargeUnits) {
  EXPECT_EQ(HumanBytes(3.0 * 1024 * 1024 * 1024), "3.0 GB");
  EXPECT_EQ(HumanBytes(2.5 * 1024 * 1024 * 1024 * 1024), "2.5 TB");
  // Beyond TB it stays in TB.
  EXPECT_NE(HumanBytes(9e15).find("TB"), std::string::npos);
}

TEST(RandomTest, NextStringShapeAndDistribution) {
  Random rng(3);
  const std::string s = rng.NextString(64);
  ASSERT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_TRUE(std::islower(static_cast<unsigned char>(c))) << c;
  }
  EXPECT_TRUE(rng.NextString(0).empty());
}

TEST(RandomTest, PickCoversAllItems) {
  Random rng(5);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(StepTest, MatchesLabelSemantics) {
  const xpath::Step wildcard(xpath::Axis::kChild, "*");
  EXPECT_TRUE(wildcard.MatchesLabel("anything"));
  EXPECT_TRUE(wildcard.MatchesLabel("@attr"));
  const xpath::Step named(xpath::Axis::kDescendant, "Yield");
  EXPECT_TRUE(named.MatchesLabel("Yield"));
  EXPECT_FALSE(named.MatchesLabel("yield"));  // case-sensitive
}

TEST(LiteralTest, NumericToStringTrimsZeros) {
  EXPECT_EQ(xpath::Literal::Number(4.5).ToString(), "4.5");
  EXPECT_EQ(xpath::Literal::Number(100).ToString(), "100");
  EXPECT_EQ(xpath::Literal::String("x").ToString(), "\"x\"");
}

TEST(DocumentTest, RootEdgeCases) {
  xml::Document doc;
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.root(), xml::kInvalidNode);
  doc.AddRoot("r");
  EXPECT_EQ(doc.Depth(doc.root()), 1);
  EXPECT_EQ(doc.LabelPathString(doc.root()), "/r");
}

TEST(NormalizerTest, UpdateMatchNormalization) {
  auto stmt = engine::ParseStatement(
      "update SDOC set /Security/Yield = 1 where /Security[Symbol = \"X\"]");
  ASSERT_TRUE(stmt.ok());
  auto norm = engine::NormalizeUpdateMatch(*stmt);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->collection, "SDOC");
  EXPECT_EQ(norm->path.ToString(), "/Security[Symbol = \"X\"]");
  // Wrong-kind statements rejected.
  auto query = engine::ParseStatement("for $x in c('S')/a return $x");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(engine::NormalizeUpdateMatch(*query).ok());
}

TEST(StatementTest, UpdateToTextRoundTrips) {
  auto stmt = engine::ParseStatement(
      "update SDOC set /Security/Yield = 5.5 "
      "where /Security[Symbol = \"X\"]");
  ASSERT_TRUE(stmt.ok());
  stmt->text.clear();
  const std::string regenerated = engine::ToText(*stmt);
  auto reparsed = engine::ParseStatement(regenerated);
  ASSERT_TRUE(reparsed.ok()) << regenerated << ": " << reparsed.status();
  ASSERT_TRUE(reparsed->is_update());
  EXPECT_TRUE(engine::SameStatementBody(*stmt, *reparsed)) << regenerated;
}

TEST(PlanDescribeTest, AllKindsRender) {
  optimizer::Plan p;
  p.est_cost = 7;
  p.kind = optimizer::Plan::Kind::kInsert;
  EXPECT_NE(p.Describe().find("INSERT"), std::string::npos);
  p.kind = optimizer::Plan::Kind::kUpdate;
  EXPECT_NE(p.Describe().find("UPDATE"), std::string::npos);
  p.kind = optimizer::Plan::Kind::kDelete;
  EXPECT_NE(p.Describe().find("DELETE"), std::string::npos);
}

TEST(IndexablePredicateTest, ToStringForms) {
  optimizer::IndexablePredicate comparison;
  comparison.pattern = *xpath::ParsePattern("/a/b");
  comparison.op = xpath::CompareOp::kGe;
  comparison.literal = xpath::Literal::Number(3);
  EXPECT_EQ(comparison.ToString(), "/a/b >= 3 (string)");

  optimizer::IndexablePredicate existence;
  existence.pattern = *xpath::ParsePattern("/a/c");
  existence.existence = true;
  EXPECT_EQ(existence.ToString(), "exists /a/c");
}

}  // namespace
}  // namespace xia
