#include <gtest/gtest.h>

#include <algorithm>

#include "advisor/benefit.h"
#include "advisor/candidates.h"
#include "advisor/dag.h"
#include "advisor/generalize.h"
#include "advisor/search.h"
#include "engine/query_parser.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "xpath/parser.h"

namespace xia::advisor {
namespace {

engine::Statement Parse(const std::string& text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

// Fixture: a TPoX security collection plus a small workload with strongly
// selective predicates (so indexes genuinely help), and the full advisor
// candidate pipeline.
class SearchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 400;
    scale.order_docs = 400;
    scale.custacc_docs = 100;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());

    workload_.push_back(Parse(
        "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
        "return $s"));
    workload_.push_back(Parse(
        "for $s in c('SDOC')/Security[Yield > 9.7] "
        "where $s/SecInfo/*/Sector = \"Energy\" return $s/Name"));
    workload_.push_back(Parse(
        "for $o in c('ODOC')/FIXML/Order where $o/@ID = \"100005\" "
        "return $o"));
    workload_.push_back(Parse(
        "for $o in c('ODOC')/FIXML/Order where $o/Instrmt/Sym = "
        "\"SYM000002\" return $o/@ID"));

    scratch_catalog_ =
        std::make_unique<storage::Catalog>(&store_, &stats_);
    optimizer_ = std::make_unique<optimizer::Optimizer>(
        &store_, scratch_catalog_.get(), &stats_);
    auto set = EnumerateBasicCandidates(workload_, *optimizer_);
    ASSERT_TRUE(set.ok()) << set.status();
    set_ = std::move(*set);
    GeneralizeCandidates(&set_);
    ASSERT_TRUE(
        PopulateStatistics(&set_, stats_, storage::DefaultCostConstants())
            .ok());
    roots_ = BuildDag(&set_);

    whatif_catalog_ = std::make_unique<storage::Catalog>(&store_, &stats_);
    evaluator_ = std::make_unique<BenefitEvaluator>(
        &workload_, &set_, whatif_catalog_.get(), &stats_, &store_,
        BenefitEvaluator::Options{});
    ASSERT_TRUE(evaluator_->Initialize().ok());
  }

  SearchOptions OptionsWithBudget(double bytes) {
    SearchOptions o;
    o.disk_budget_bytes = bytes;
    return o;
  }

  double TotalBasicSize() const {
    double total = 0;
    for (size_t i = 0; i < set_.basic_count; ++i) {
      total += static_cast<double>(set_[i].size_bytes());
    }
    return total;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  engine::Workload workload_;
  std::unique_ptr<storage::Catalog> scratch_catalog_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<storage::Catalog> whatif_catalog_;
  std::unique_ptr<BenefitEvaluator> evaluator_;
  CandidateSet set_;
  std::vector<int> roots_;
};

TEST_F(SearchFixture, CandidatePipelineSane) {
  EXPECT_GE(set_.basic_count, 4u);
  EXPECT_GT(set_.size(), set_.basic_count);  // generalization added some
  EXPECT_FALSE(roots_.empty());
  for (const auto& c : set_.candidates) {
    EXPECT_GT(c.size_bytes(), 0u) << c.ToString();
    EXPECT_FALSE(c.affected.empty()) << c.ToString();
  }
}

TEST_F(SearchFixture, BenefitEvaluatorBasics) {
  EXPECT_GT(evaluator_->base_workload_cost(), 0);
  auto none = evaluator_->ConfigurationBenefit({});
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(*none, 0.0);
  // A selective single index has positive benefit.
  const int sym = set_.Find(
      "SDOC", {*xpath::ParsePattern("/Security/Symbol"),
               xpath::ValueType::kString});
  ASSERT_GE(sym, 0);
  auto benefit = evaluator_->ConfigurationBenefit({sym});
  ASSERT_TRUE(benefit.ok());
  EXPECT_GT(*benefit, 0);
  // Speedup consistent with benefit.
  auto speedup = evaluator_->ConfigurationSpeedup({sym});
  ASSERT_TRUE(speedup.ok());
  EXPECT_GT(*speedup, 1.0);
}

TEST_F(SearchFixture, BenefitMonotoneUnderBiggerBudgetConfigs) {
  // Adding a useful index never reduces the estimated benefit (the
  // optimizer can always ignore it).
  const int sym = set_.Find(
      "SDOC", {*xpath::ParsePattern("/Security/Symbol"),
               xpath::ValueType::kString});
  const int oid = set_.Find(
      "ODOC", {*xpath::ParsePattern("/FIXML/Order/@ID"),
               xpath::ValueType::kString});
  ASSERT_GE(sym, 0);
  ASSERT_GE(oid, 0);
  auto one = evaluator_->ConfigurationBenefit({sym});
  auto both = evaluator_->ConfigurationBenefit({sym, oid});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(both.ok());
  EXPECT_GE(*both, *one - 1e-6);
}

TEST_F(SearchFixture, SubConfigurationCacheHitsOnRepeatedEvaluation) {
  const std::vector<int> config{0, 1};
  ASSERT_TRUE(evaluator_->ConfigurationBenefit(config).ok());
  const size_t misses_before = evaluator_->cache_misses();
  const uint64_t calls_before = evaluator_->optimizer_calls();
  ASSERT_TRUE(evaluator_->ConfigurationBenefit(config).ok());
  EXPECT_EQ(evaluator_->cache_misses(), misses_before);
  EXPECT_EQ(evaluator_->optimizer_calls(), calls_before);
  EXPECT_GT(evaluator_->cache_hits(), 0u);
}

TEST_F(SearchFixture, AffectedSetDecompositionReducesOptimizerCalls) {
  // Evaluating a config touching only SDOC statements must not
  // re-optimize ODOC statements.
  BenefitEvaluator::Options naive_options;
  naive_options.use_subconfigurations = false;
  naive_options.use_affected_sets = false;
  storage::Catalog naive_catalog(&store_, &stats_);
  BenefitEvaluator naive(&workload_, &set_, &naive_catalog, &stats_,
                         &store_, naive_options);
  ASSERT_TRUE(naive.Initialize().ok());

  const int sym = set_.Find(
      "SDOC", {*xpath::ParsePattern("/Security/Symbol"),
               xpath::ValueType::kString});
  ASSERT_GE(sym, 0);

  const uint64_t fast_before = evaluator_->optimizer_calls();
  auto fast = evaluator_->ConfigurationBenefit({sym});
  const uint64_t fast_calls = evaluator_->optimizer_calls() - fast_before;

  const uint64_t naive_before = naive.optimizer_calls();
  auto slow = naive.ConfigurationBenefit({sym});
  const uint64_t naive_calls = naive.optimizer_calls() - naive_before;

  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_NEAR(*fast, *slow, 1e-6);  // same answer
  EXPECT_LT(fast_calls, naive_calls);  // fewer optimizer calls (§VI-C)
}

TEST_F(SearchFixture, AllAlgorithmsRespectBudget) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    for (double budget : {0.0, 16.0 * 1024, 64.0 * 1024, 1024.0 * 1024}) {
      auto outcome = RunSearch(algo, set_, roots_, evaluator_.get(),
                               OptionsWithBudget(budget));
      ASSERT_TRUE(outcome.ok())
          << SearchAlgorithmName(algo) << ": " << outcome.status();
      EXPECT_LE(outcome->total_size_bytes, budget + 1024)
          << SearchAlgorithmName(algo) << " at " << budget;
      // Selected ids are unique and valid.
      auto ids = outcome->selected;
      std::sort(ids.begin(), ids.end());
      EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
      for (int id : ids) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, static_cast<int>(set_.size()));
      }
      EXPECT_EQ(static_cast<int>(outcome->selected.size()),
                outcome->general_count + outcome->specific_count);
    }
  }
}

TEST_F(SearchFixture, ZeroBudgetSelectsNothing) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    auto outcome =
        RunSearch(algo, set_, roots_, evaluator_.get(), OptionsWithBudget(0));
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->selected.empty()) << SearchAlgorithmName(algo);
    EXPECT_DOUBLE_EQ(outcome->benefit, 0.0);
  }
}

TEST_F(SearchFixture, AmpleBudgetYieldsPositiveBenefitEverywhere) {
  const double budget = 10e6;
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    auto outcome = RunSearch(algo, set_, roots_, evaluator_.get(),
                             OptionsWithBudget(budget));
    ASSERT_TRUE(outcome.ok()) << SearchAlgorithmName(algo);
    EXPECT_GT(outcome->benefit, 0) << SearchAlgorithmName(algo);
    EXPECT_FALSE(outcome->selected.empty()) << SearchAlgorithmName(algo);
  }
}

TEST_F(SearchFixture, DpMatchesBruteForceOnStandaloneBenefits) {
  // With interaction ignored, DP must be optimal; verify against brute
  // force over all subsets of the basic candidates.
  std::vector<double> benefits(set_.size());
  for (size_t i = 0; i < set_.size(); ++i) {
    auto b = evaluator_->ConfigurationBenefit({static_cast<int>(i)});
    ASSERT_TRUE(b.ok());
    benefits[i] = *b;
  }
  const double budget = TotalBasicSize() * 0.6;
  const size_t n = set_.basic_count;
  ASSERT_LE(n, 16u);
  double best_brute = 0;
  for (size_t mask = 0; mask < (1u << n); ++mask) {
    double size = 0;
    double value = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        size += static_cast<double>(set_[i].size_bytes());
        value += std::max(0.0, benefits[i]);
      }
    }
    if (size <= budget) best_brute = std::max(best_brute, value);
  }

  // Restrict DP to basic candidates by building a reduced set.
  CandidateSet basics;
  basics.basic_count = set_.basic_count;
  for (size_t i = 0; i < set_.basic_count; ++i) {
    basics.candidates.push_back(set_[i]);
  }
  storage::Catalog dp_catalog(&store_, &stats_);
  BenefitEvaluator dp_eval(&workload_, &basics, &dp_catalog, &stats_,
                           &store_, BenefitEvaluator::Options{});
  ASSERT_TRUE(dp_eval.Initialize().ok());
  SearchOptions options = OptionsWithBudget(budget);
  options.dp_granularity_bytes = 64;  // fine-grained for the comparison
  auto outcome = RunSearch(SearchAlgorithm::kDynamicProgramming, basics, {},
                           &dp_eval, options);
  ASSERT_TRUE(outcome.ok());
  double dp_value = 0;
  for (int id : outcome->selected) {
    dp_value += std::max(0.0, benefits[static_cast<size_t>(id)]);
  }
  // DP discretization may lose a little, but must be close to optimal.
  EXPECT_GE(dp_value, best_brute * 0.95 - 1e-9);
}

TEST_F(SearchFixture, TopDownPrefersGeneralIndexesUnderLargeBudget) {
  const double budget = 10e6;
  auto top_down = RunSearch(SearchAlgorithm::kTopDownLite, set_, roots_,
                            evaluator_.get(), OptionsWithBudget(budget));
  auto heuristics =
      RunSearch(SearchAlgorithm::kGreedyWithHeuristics, set_, roots_,
                evaluator_.get(), OptionsWithBudget(budget));
  ASSERT_TRUE(top_down.ok());
  ASSERT_TRUE(heuristics.ok());
  // Table IV shape: top-down recommends at least as many general indexes
  // as greedy-with-heuristics.
  EXPECT_GE(top_down->general_count, heuristics->general_count);
}

TEST_F(SearchFixture, GreedyHeuristicsAvoidsRedundantGenerals) {
  // With a budget that fits everything, the heuristic search must not pick
  // a general index whose basics are already all covered.
  auto outcome =
      RunSearch(SearchAlgorithm::kGreedyWithHeuristics, set_, roots_,
                evaluator_.get(), OptionsWithBudget(10e6));
  ASSERT_TRUE(outcome.ok());
  std::set<int> covered;
  for (int id : outcome->selected) {
    const Candidate& c = set_[static_cast<size_t>(id)];
    if (c.is_general) {
      bool redundant = !c.covered_basics.empty();
      for (int b : c.covered_basics) {
        if (covered.count(b) == 0) redundant = false;
      }
      // Note: selection order is not recorded in the outcome, so we only
      // check the weaker invariant that not every general's basics are
      // also selected alongside it.
      if (redundant) {
        for (int b : c.covered_basics) {
          EXPECT_TRUE(std::find(outcome->selected.begin(),
                                outcome->selected.end(),
                                b) == outcome->selected.end());
        }
      }
    }
    for (int b : c.covered_basics) covered.insert(b);
  }
}

TEST_F(SearchFixture, ExhaustiveRefusesLargeCandidateSets) {
  SearchOptions options = OptionsWithBudget(1e6);
  options.exhaustive_limit = 2;  // force refusal
  auto outcome = RunSearch(SearchAlgorithm::kExhaustive, set_, roots_,
                           evaluator_.get(), options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SearchFixture, ExhaustiveOracleBoundsEveryAlgorithm) {
  // The exhaustive search is the interaction-aware optimum; no algorithm
  // may beat it, and the good ones should come close at a binding budget.
  if (set_.size() > 16) GTEST_SKIP() << "candidate set too large";
  const double budget = TotalBasicSize() * 0.5;
  auto oracle = RunSearch(SearchAlgorithm::kExhaustive, set_, roots_,
                          evaluator_.get(), OptionsWithBudget(budget));
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  ASSERT_GT(oracle->benefit, 0);

  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    auto outcome = RunSearch(algo, set_, roots_, evaluator_.get(),
                             OptionsWithBudget(budget));
    ASSERT_TRUE(outcome.ok()) << SearchAlgorithmName(algo);
    EXPECT_LE(outcome->benefit, oracle->benefit * 1.0 + 1e-6)
        << SearchAlgorithmName(algo) << " beat the oracle?";
    EXPECT_GE(outcome->benefit, 0.5 * oracle->benefit)
        << SearchAlgorithmName(algo) << " far from optimal: "
        << outcome->benefit << " vs " << oracle->benefit;
  }
  // Greedy+heuristics and top-down full should be near-optimal here.
  auto heur = RunSearch(SearchAlgorithm::kGreedyWithHeuristics, set_, roots_,
                        evaluator_.get(), OptionsWithBudget(budget));
  ASSERT_TRUE(heur.ok());
  EXPECT_GE(heur->benefit, 0.85 * oracle->benefit);
}

TEST(SearchAlgorithmNameTest, AllNamed) {
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kGreedy), "greedy");
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kGreedyWithHeuristics),
               "greedy+heuristics");
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kTopDownLite),
               "top-down lite");
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kTopDownFull),
               "top-down full");
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kDynamicProgramming),
               "dynamic programming");
  EXPECT_STREQ(SearchAlgorithmName(SearchAlgorithm::kExhaustive),
               "exhaustive");
}

}  // namespace
}  // namespace xia::advisor
