// Fault matrix: arm every registered injection point in turn at p=1 and
// drive the full pipeline (build db -> workload io round-trip -> snapshot
// round-trip -> advise -> materialize -> execute). Each armed point must
// produce a clean, attributable Status — no crash, no partially mutated
// store, counters consistent. Also covers the online advisor's retry and
// circuit-breaker behaviour under kOnlineAdvise faults.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <thread>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/online_build.h"
#include "storage/snapshot.h"
#include "xpath/parser.h"
#include "tpox/tpox_data.h"
#include "wal/manager.h"
#include "workload/capture.h"
#include "workload/online_advisor.h"
#include "workload/workload_io.h"

namespace xia::fault {
namespace {

engine::Workload MakeWorkload() {
  engine::Workload w;
  for (const char* text :
       {"for $sec in SECURITY('SDOC')/Security "
        "where $sec/Symbol = \"SYM000003\" return $sec",
        "for $sec in SECURITY('SDOC')/Security[Yield > 4.5] "
        "where $sec/SecInfo/*/Sector = \"Energy\" "
        "return <Security>{$sec/Name}</Security>"}) {
    auto stmt = engine::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    w.push_back(std::move(*stmt));
  }
  return w;
}

Status BuildSmallDatabase(storage::DocumentStore* store,
                          storage::StatisticsCatalog* stats) {
  tpox::TpoxScale scale;
  scale.security_docs = 30;
  scale.order_docs = 30;
  scale.custacc_docs = 10;
  return tpox::BuildTpoxDatabase(scale, store, stats);
}

// The end-to-end pipeline every fault point sits on. Returns the first
// failure; with nothing armed it must succeed.
Status RunPipeline() {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  XIA_RETURN_IF_ERROR(BuildSmallDatabase(&store, &stats));

  // Workload persistence round-trip (kWorkloadWrite / kWorkloadRead).
  const engine::Workload workload = MakeWorkload();
  XIA_ASSIGN_OR_RETURN(std::string text,
                       workload::SerializeWorkload(workload));
  XIA_ASSIGN_OR_RETURN(engine::Workload loaded,
                       workload::DeserializeWorkload(text));

  // Snapshot round-trip (kSnapshotWrite / kSnapshotRead).
  std::stringstream buffer;
  XIA_RETURN_IF_ERROR(storage::SaveSnapshot(store, buffer));
  storage::DocumentStore restored;
  XIA_RETURN_IF_ERROR(storage::LoadSnapshot(buffer, &restored));
  storage::StatisticsCatalog restored_stats;
  for (const std::string& name : restored.CollectionNames()) {
    XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                         restored.GetCollection(name));
    restored_stats.RunStats(*coll);
  }

  // Advise (kOptimizerPlan / kAdvisorEnumerate / kAdvisorBenefit /
  // kAdvisorSearch) and materialize (kIndexBuild / kBtreeAlloc).
  advisor::IndexAdvisor advisor(&restored, &restored_stats);
  advisor::AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  // Parallel advising so the pipeline crosses kPoolSubmit; results are
  // identical to serial, and an armed submit fault must surface as a
  // clean Status with no partially mutated store.
  options.threads = 2;
  XIA_ASSIGN_OR_RETURN(advisor::Recommendation rec,
                       advisor.Recommend(loaded, options));
  storage::Catalog catalog(&restored, &restored_stats);
  XIA_RETURN_IF_ERROR(advisor.Materialize(rec, &catalog));

  // Execute over the materialized configuration (kExecutorScan /
  // kIndexLookup via the index probe).
  optimizer::Optimizer optimizer(&restored, &catalog, &restored_stats);
  engine::Executor executor(&restored, &catalog);
  for (const auto& stmt : loaded) {
    XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer.Optimize(stmt));
    XIA_RETURN_IF_ERROR(executor.Execute(stmt, plan).status());
  }

  // Durability round-trip (kWalAppend / kWalFsync on the write side,
  // kWalReplay on the reopen).
  const std::string wal_dir =
      ::testing::TempDir() + "/xia_fault_matrix_wal";
  std::filesystem::remove_all(wal_dir);
  {
    wal::WalManager manager(wal_dir);
    storage::DocumentStore db;
    storage::StatisticsCatalog db_stats;
    storage::Catalog db_catalog(&db, &db_stats);
    XIA_RETURN_IF_ERROR(manager.Open(&db, &db_catalog, &db_stats).status());
    XIA_RETURN_IF_ERROR(manager.LogCreateCollection("WALC"));
    XIA_ASSIGN_OR_RETURN(
        engine::Statement ins,
        engine::ParseStatement("insert into WALC <w><v>1</v></w>"));
    XIA_RETURN_IF_ERROR(manager.OnCommit(ins));
    XIA_RETURN_IF_ERROR(manager.Close());
  }
  {
    wal::WalManager manager(wal_dir);
    storage::DocumentStore db;
    storage::StatisticsCatalog db_stats;
    storage::Catalog db_catalog(&db, &db_stats);
    XIA_RETURN_IF_ERROR(manager.Open(&db, &db_catalog, &db_stats).status());
  }
  return Status::OK();
}

TEST(FaultMatrixTest, PipelineSucceedsWithNothingArmed) {
  ScopedFaultDisarm cleanup;
  const Status status = RunPipeline();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(FaultMatrixTest, EveryArmedPointFailsCleanly) {
  // kOnlineAdvise sits on the online advisor's pass loop, not on this
  // pipeline; it has its own tests below. kIndexBuildSwap sits on the
  // online index build's swap section (Materialize builds offline), and
  // FailedOnlineSwapLeavesCatalogUntouched below drives it at p=1. The
  // net.* and repl.* points sit on the server/client/replication socket
  // paths, which this pipeline never crosses — the NetPoints/ReplPoints
  // loopback matrices below drive those at p=1, so every registered
  // point is exercised somewhere in this file.
  for (const char* point_name : kAllPoints) {
    const std::string name(point_name);
    if (name == points::kOnlineAdvise ||
        name == points::kIndexBuildSwap ||
        name.rfind("xia.fault.net.", 0) == 0 ||
        name.rfind("xia.fault.repl.", 0) == 0) {
      continue;
    }
    SCOPED_TRACE(point_name);
    ScopedFaultDisarm cleanup;
    FaultRegistry::Global().Arm(point_name, FaultSpec::Probability(1));
    obs::Counter* fired_total =
        obs::MetricsRegistry::Global().GetCounter("xia.fault.fired");
    const uint64_t fired_before = fired_total->value();

    const Status status = RunPipeline();

    // The pipeline crosses every point, so arming any of them must fail
    // the run — with the injected, attributable status.
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("fault injected"), std::string::npos)
        << status;
    EXPECT_NE(status.message().find(point_name), std::string::npos)
        << status;

    // Counter consistency: the point recorded the injection, both in its
    // own snapshot and in the process-wide metric.
    const FaultPointStatus st =
        FaultRegistry::Global().GetPoint(point_name)->Snapshot();
    EXPECT_GE(st.fired, 1u);
    EXPECT_GE(st.hits, st.fired);
    EXPECT_GE(fired_total->value(), fired_before + st.fired);
  }
}

TEST(FaultMatrixTest, FailedSnapshotLoadLeavesStoreEmpty) {
  ScopedFaultDisarm cleanup;
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  ASSERT_TRUE(BuildSmallDatabase(&store, &stats).ok());
  std::stringstream buffer;
  ASSERT_TRUE(storage::SaveSnapshot(store, buffer).ok());

  FaultRegistry::Global().Arm(points::kSnapshotRead,
                              FaultSpec::Probability(1));
  storage::DocumentStore restored;
  const Status status = storage::LoadSnapshot(buffer, &restored);
  EXPECT_FALSE(status.ok());
  // Stage-and-swap: the failed load must not touch the target store.
  EXPECT_TRUE(restored.CollectionNames().empty());
}

TEST(FaultMatrixTest, FailedOnlineSwapLeavesCatalogUntouched) {
  ScopedFaultDisarm cleanup;
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  ASSERT_TRUE(BuildSmallDatabase(&store, &stats).ok());
  storage::Catalog catalog(&store, &stats);
  std::shared_mutex db_mu;

  FaultRegistry::Global().Arm(points::kIndexBuildSwap,
                              FaultSpec::Probability(1));
  auto pattern = xpath::ParsePattern("/Security/Symbol");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  xpath::IndexPattern ip;
  ip.path = *pattern;
  ip.type = xpath::ValueType::kString;
  bool committed = false;
  const auto built = storage::BuildIndexOnline(
      &catalog, &db_mu, "idx_swap_fault", "SDOC", ip, {},
      [&] {
        committed = true;
        return Status::OK();
      });

  // The swap fails with the injected, attributable status; the commit
  // hook (the WAL write in a real server) never ran, the catalog holds
  // no trace of the index, and the side log was cleanly discarded.
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInternal);
  EXPECT_NE(built.status().message().find("fault injected"),
            std::string::npos)
      << built.status();
  EXPECT_NE(built.status().message().find(points::kIndexBuildSwap),
            std::string::npos)
      << built.status();
  EXPECT_FALSE(committed);
  EXPECT_TRUE(catalog.IndexesFor("SDOC").empty());
  EXPECT_FALSE(catalog.Get("idx_swap_fault").ok());
  EXPECT_EQ(catalog.attached_side_logs(), 0u);

  // Disarmed, the identical build succeeds — nothing stale blocks it.
  FaultRegistry::Global().Disarm(points::kIndexBuildSwap);
  const auto retry = storage::BuildIndexOnline(&catalog, &db_mu,
                                               "idx_swap_fault", "SDOC", ip);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_GT((*retry)->physical->entry_count(), 0u);
  EXPECT_EQ(catalog.attached_side_logs(), 0u);
}

// ---------------------------------------------------------------------
// Loopback matrix over the socket and replication fault points. The
// pipeline above never opens a socket; these drive every net.* / repl.*
// point at p=1 against live servers and require a clean attributable
// failure, zero partial mutation, and full recovery after disarm.
// ---------------------------------------------------------------------

net::ServerOptions TinyServerOptions(const std::string& suffix) {
  net::ServerOptions options;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{20, 20, 10, 42};
  const std::string dir =
      ::testing::TempDir() + "/xia_fault_loopback_" + suffix;
  std::filesystem::remove_all(dir);
  options.data_dir = dir;
  return options;
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

bool WaitForFired(const char* point, uint64_t at_least,
                  double timeout_s = 30.0) {
  return WaitFor(
      [&] {
        return FaultRegistry::Global().GetPoint(point)->Snapshot().fired >=
               at_least;
      },
      timeout_s);
}

uint64_t SdocCount(net::Client* client, const std::string& symbol) {
  net::QueryRequest request;
  request.statement =
      "for $s in c('SDOC')/Security where $s/Symbol = \"" + symbol +
      "\" return $s";
  const auto reply = client->Query(request);
  EXPECT_TRUE(reply.ok()) << reply.status();
  return reply.ok() ? reply->result_count : ~0ull;
}

TEST(FaultMatrixTest, NetPointsFailCleanlyOverLoopback) {
  ScopedFaultDisarm cleanup;
  net::Server server(TinyServerOptions("net"));
  ASSERT_TRUE(server.Start().ok());

  // kNetAccept at p=1: the TCP handshake may complete in the backlog, but
  // the server-side accept fails before a session spawns, so the
  // connection only ever yields EOF/reset — never a reply — and the
  // accept loop itself survives.
  {
    FaultRegistry::Global().Arm(points::kNetAccept, FaultSpec::Probability(1));
    auto socket = net::ConnectTcp(server.host(), server.port(), 5.0);
    if (socket.ok()) {
      (void)socket->SendAll(net::EncodeFrame(net::MsgType::kPing, 1, "x"));
      const auto readable = socket->WaitReadable(1.0);
      if (readable.ok() && *readable) {
        char buf[64];
        const auto n = socket->Recv(buf, sizeof(buf));
        EXPECT_TRUE(!n.ok() || *n == 0) << "got a reply through a faulted "
                                           "accept";
      }
      socket->Close();
    }
    EXPECT_TRUE(WaitForFired(points::kNetAccept, 1));
    FaultRegistry::Global().DisarmAll();
  }

  // kNetRead at p=1: a mutation request dies on the first Recv (either
  // side of the wire — the point is global), so it must never execute.
  // Connect AFTER arming: a session already parked inside Recv passed
  // the injection check before the arm and would read the request.
  {
    FaultRegistry::Global().Arm(points::kNetRead, FaultSpec::Probability(1));
    net::Client client;
    ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
    net::MutationRequest mutation;
    mutation.statement =
        "insert into SDOC <Security><Symbol>FAULTED</Symbol></Security>";
    const auto reply = client.Mutate(mutation);
    ASSERT_FALSE(reply.ok());
    EXPECT_TRUE(reply.status().code() == StatusCode::kInternal ||
                reply.status().code() == StatusCode::kUnavailable)
        << reply.status();
    if (reply.status().code() == StatusCode::kInternal) {
      EXPECT_NE(reply.status().message().find(points::kNetRead),
                std::string::npos)
          << reply.status();
    }
    // Two fires: the client's own Recv (which surfaced the error above)
    // and the server session's. Disarming before the server side has
    // actually hit the point would let it read — and apply — the
    // mutation after all.
    EXPECT_TRUE(WaitForFired(points::kNetRead, 2));
    FaultRegistry::Global().DisarmAll();
  }

  // kNetWrite at p=1: the request dies on the first SendAll with a clean
  // attributable status.
  {
    net::Client client;
    ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
    FaultRegistry::Global().Arm(points::kNetWrite, FaultSpec::Probability(1));
    const auto pong = client.Ping("boom");
    ASSERT_FALSE(pong.ok());
    EXPECT_TRUE(pong.status().code() == StatusCode::kInternal ||
                pong.status().code() == StatusCode::kUnavailable)
        << pong.status();
    if (pong.status().code() == StatusCode::kInternal) {
      EXPECT_NE(pong.status().message().find(points::kNetWrite),
                std::string::npos)
          << pong.status();
    }
    EXPECT_GE(FaultRegistry::Global().GetPoint(points::kNetWrite)->Snapshot()
                  .fired,
              1u);
    FaultRegistry::Global().DisarmAll();
  }

  // Recovery: with everything disarmed a fresh client works, and the
  // mutation that was cut off under kNetRead never landed.
  net::Client client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  const auto pong = client.Ping("after");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(SdocCount(&client, "FAULTED"), 0u);

  server.Stop();
}

// Streaming-replication points: with the point armed at p=1 the follower
// must never (even partially) apply the blocked records; once disarmed it
// must converge to the leader's exact digest.
void RunReplPointScenario(const char* point) {
  SCOPED_TRACE(point);
  ScopedFaultDisarm cleanup;
  net::Server leader(TinyServerOptions(std::string("repl_leader_") + point));
  ASSERT_TRUE(leader.Start().ok());
  net::ServerOptions follower_options;
  follower_options.data_dir =
      TinyServerOptions(std::string("repl_follower_") + point).data_dir;
  follower_options.follow_host = "127.0.0.1";
  follower_options.follow_port = leader.port();
  net::Server follower(follower_options);
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >=
           leader.GetReplStatus().durable_lsn;
  }));

  FaultRegistry::Global().Arm(point, FaultSpec::Probability(1));
  {
    net::Client writer;
    ASSERT_TRUE(writer.Connect(leader.host(), leader.port()).ok());
    net::MutationRequest mutation;
    mutation.statement =
        "insert into SDOC <Security><Symbol>REPLFAULT</Symbol></Security>";
    const auto reply = writer.Mutate(mutation);
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  const uint64_t target = leader.GetReplStatus().durable_lsn;

  // The stream hits the armed point, and the new record never applies —
  // not even partially — while it is armed.
  ASSERT_TRUE(WaitForFired(point, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto armed_stats = follower.GetReplStatus().applier;
  EXPECT_LT(armed_stats.applied_lsn, target);
  EXPECT_TRUE(armed_stats.sticky_error.empty()) << armed_stats.sticky_error;

  // Disarm: the resubscribe loop recovers without a restart and the two
  // stores converge byte-for-byte.
  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >= target;
  })) << follower.GetReplStatus().applier.last_error;
  auto leader_digest = leader.StoreDigest();
  auto follower_digest = follower.StoreDigest();
  ASSERT_TRUE(leader_digest.ok()) << leader_digest.status();
  ASSERT_TRUE(follower_digest.ok()) << follower_digest.status();
  EXPECT_EQ(*leader_digest, *follower_digest);

  follower.Stop();
  leader.Stop();
}

TEST(FaultMatrixTest, ReplSendPointFailsCleanlyOverLoopback) {
  RunReplPointScenario(points::kReplSend);
}

TEST(FaultMatrixTest, ReplRecvPointFailsCleanlyOverLoopback) {
  RunReplPointScenario(points::kReplRecv);
}

TEST(FaultMatrixTest, ReplApplyPointFailsCleanlyOverLoopback) {
  RunReplPointScenario(points::kReplApply);
}

TEST(FaultMatrixTest, ReplSnapshotXferPointBlocksJoinUntilDisarmed) {
  // The snapshot-transfer point gates a fresh follower's join: while
  // armed nothing is ever installed; after disarm the join completes.
  ScopedFaultDisarm cleanup;
  net::Server leader(TinyServerOptions("snapxfer_leader"));
  ASSERT_TRUE(leader.Start().ok());
  ASSERT_TRUE(leader.CheckpointNow().ok());

  FaultRegistry::Global().Arm(points::kReplSnapshotXfer,
                              FaultSpec::Probability(1));
  net::ServerOptions follower_options;
  follower_options.data_dir = TinyServerOptions("snapxfer_follower").data_dir;
  follower_options.follow_host = "127.0.0.1";
  follower_options.follow_port = leader.port();
  net::Server follower(follower_options);
  ASSERT_TRUE(follower.Start().ok());

  ASSERT_TRUE(WaitForFired(points::kReplSnapshotXfer, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto armed_stats = follower.GetReplStatus().applier;
  EXPECT_EQ(armed_stats.snapshots_installed, 0u);
  EXPECT_EQ(armed_stats.records_applied, 0u);
  EXPECT_TRUE(armed_stats.sticky_error.empty()) << armed_stats.sticky_error;

  FaultRegistry::Global().DisarmAll();
  const uint64_t target = leader.GetReplStatus().durable_lsn;
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >= target;
  })) << follower.GetReplStatus().applier.last_error;
  EXPECT_GE(follower.GetReplStatus().applier.snapshots_installed, 1u);
  auto leader_digest = leader.StoreDigest();
  auto follower_digest = follower.StoreDigest();
  ASSERT_TRUE(leader_digest.ok()) << leader_digest.status();
  ASSERT_TRUE(follower_digest.ok()) << follower_digest.status();
  EXPECT_EQ(*leader_digest, *follower_digest);

  follower.Stop();
  leader.Stop();
}

TEST(FaultMatrixTest, ReplQuorumWaitPointFailsAttributablyAndRecovers) {
  // kReplQuorumWait sits between the local commit and the quorum wait:
  // armed at p=1 the mutation fails with the injected status even
  // though a follower is caught up — and because the commit already
  // happened, the record is durable locally (same contract as a quorum
  // timeout: loud failure, no silent downgrade, no rollback).
  ScopedFaultDisarm cleanup;
  net::ServerOptions options = TinyServerOptions("quorum_leader");
  options.sync_replicas = 1;
  options.quorum_timeout_ms = 8000;
  net::Server leader(options);
  ASSERT_TRUE(leader.Start().ok());
  net::ServerOptions follower_options;
  follower_options.data_dir = TinyServerOptions("quorum_follower").data_dir;
  follower_options.follow_host = "127.0.0.1";
  follower_options.follow_port = leader.port();
  net::Server follower(follower_options);
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    const auto repl = leader.GetReplStatus();
    return !repl.followers.empty() &&
           repl.followers[0].acked_lsn >= repl.durable_lsn;
  }));

  FaultRegistry::Global().Arm(points::kReplQuorumWait,
                              FaultSpec::Probability(1));
  net::Client client;
  ASSERT_TRUE(client.Connect(leader.host(), leader.port()).ok());
  net::MutationRequest mutation;
  mutation.statement =
      "insert into SDOC <Security><Symbol>QWFAULT</Symbol></Security>";
  const auto reply = client.Mutate(mutation);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInternal) << reply.status();
  EXPECT_NE(reply.status().message().find(points::kReplQuorumWait),
            std::string::npos)
      << reply.status();
  // Committed locally before the injected point: the record is durable.
  EXPECT_EQ(SdocCount(&client, "QWFAULT"), 1u);

  // Disarm: the server needs no restart, quorum commits work again, and
  // the follower converges to the leader's exact digest.
  FaultRegistry::Global().DisarmAll();
  mutation.statement =
      "insert into SDOC <Security><Symbol>QWOK</Symbol></Security>";
  const auto recovered = client.Mutate(mutation);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  const uint64_t target = leader.GetReplStatus().durable_lsn;
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >= target;
  }));
  auto leader_digest = leader.StoreDigest();
  auto follower_digest = follower.StoreDigest();
  ASSERT_TRUE(leader_digest.ok()) << leader_digest.status();
  ASSERT_TRUE(follower_digest.ok()) << follower_digest.status();
  EXPECT_EQ(*leader_digest, *follower_digest);

  follower.Stop();
  leader.Stop();
}

TEST(FaultMatrixTest, ReplPromotePointFailsCleanlyAndNodeStaysFollower) {
  // kReplPromote at p=1: the promotion fails attributably BEFORE any
  // state changes — no epoch bump, no barrier, node still a follower
  // and still applying. After disarm the same promote succeeds.
  ScopedFaultDisarm cleanup;
  net::Server leader(TinyServerOptions("promote_leader"));
  ASSERT_TRUE(leader.Start().ok());
  net::ServerOptions follower_options;
  follower_options.data_dir = TinyServerOptions("promote_follower").data_dir;
  follower_options.follow_host = "127.0.0.1";
  follower_options.follow_port = leader.port();
  net::Server follower(follower_options);
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >=
           leader.GetReplStatus().durable_lsn;
  }));

  FaultRegistry::Global().Arm(points::kReplPromote,
                              FaultSpec::Probability(1));
  uint64_t epoch = 0;
  uint64_t barrier = 0;
  const Status failed = follower.Promote(&epoch, &barrier);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInternal) << failed;
  EXPECT_NE(failed.message().find(points::kReplPromote), std::string::npos)
      << failed;
  auto status = follower.GetReplStatus();
  EXPECT_TRUE(status.is_follower);
  EXPECT_EQ(status.repl_epoch, 1u);
  EXPECT_EQ(status.epoch_start_lsn, 0u);

  // Still replicating: mutations on the leader keep flowing through.
  {
    net::Client writer;
    ASSERT_TRUE(writer.Connect(leader.host(), leader.port()).ok());
    net::MutationRequest mutation;
    mutation.statement =
        "insert into SDOC <Security><Symbol>PROFAULT</Symbol></Security>";
    ASSERT_TRUE(writer.Mutate(mutation).ok());
  }
  const uint64_t target = leader.GetReplStatus().durable_lsn;
  ASSERT_TRUE(WaitFor([&] {
    return follower.GetReplStatus().applier.applied_lsn >= target;
  }));

  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(follower.Promote(&epoch, &barrier).ok());
  EXPECT_EQ(epoch, 2u);
  EXPECT_GT(barrier, 0u);
  EXPECT_FALSE(follower.GetReplStatus().is_follower);

  follower.Stop();
  leader.Stop();
}

class OnlineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildSmallDatabase(&store_, &stats_).ok());
    advisor_ =
        std::make_unique<advisor::IndexAdvisor>(&store_, &stats_);
    capture_.set_enabled(true);
    for (const auto& stmt : MakeWorkload()) capture_.Publish(stmt);
  }

  workload::OnlineAdvisorOptions FastOptions() {
    workload::OnlineAdvisorOptions options;
    options.advisor.disk_budget_bytes = 1e6;
    options.backoff_initial_seconds = 0.001;
    options.backoff_multiplier = 2.0;
    return options;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<advisor::IndexAdvisor> advisor_;
  workload::WorkloadCapture capture_;
};

TEST_F(OnlineFaultTest, RetryRecoversFromTransientFault) {
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 2;
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);

  // The first attempt of the pass fails; the retry succeeds.
  FaultRegistry::Global().Arm(points::kOnlineAdvise, FaultSpec::NthHit(1));
  EXPECT_TRUE(online.AdviseNow().ok());
  const workload::OnlineAdvisorStatus st = online.Snapshot();
  EXPECT_EQ(st.advise_runs, 1u);
  EXPECT_EQ(st.advise_failures, 0u);
  EXPECT_GE(st.advise_retries, 1u);
  EXPECT_EQ(st.consecutive_failures, 0u);
  EXPECT_FALSE(st.circuit_open);
  EXPECT_TRUE(st.last_error.empty());
  EXPECT_TRUE(st.has_recommendation);
}

TEST_F(OnlineFaultTest, CircuitBreakerOpensProbesAndCloses) {
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 0;
  options.circuit_breaker_failures = 2;
  options.circuit_cooldown_seconds = 0.05;
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);

  FaultRegistry::Global().Arm(points::kOnlineAdvise,
                              FaultSpec::Probability(1));
  // Two consecutive failed passes trip the breaker.
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  workload::OnlineAdvisorStatus st = online.Snapshot();
  EXPECT_TRUE(st.circuit_open);
  EXPECT_EQ(st.circuit_opens, 1u);
  EXPECT_EQ(st.consecutive_failures, 2u);
  EXPECT_NE(st.last_error.find("fault injected"), std::string::npos);

  // While open and inside the cooldown, passes are rejected without
  // touching the advisor.
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kUnavailable);

  // A failed half-open probe re-opens for another cooldown.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  st = online.Snapshot();
  EXPECT_TRUE(st.circuit_open);

  // Once the fault clears, the next probe closes the breaker.
  FaultRegistry::Global().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_TRUE(online.AdviseNow().ok());
  st = online.Snapshot();
  EXPECT_FALSE(st.circuit_open);
  EXPECT_EQ(st.consecutive_failures, 0u);
  EXPECT_TRUE(st.last_error.empty());
  EXPECT_TRUE(st.has_recommendation);
}

TEST_F(OnlineFaultTest, ProbabilisticFaultsEventuallyConverge) {
  // Under a 30% per-attempt fault, retries keep the advising loop alive:
  // across many passes at least one succeeds and none crash.
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 4;
  options.circuit_breaker_failures = 100;  // keep the breaker out of it
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);
  FaultRegistry::Global().set_seed(7);
  FaultRegistry::Global().Arm(points::kOnlineAdvise,
                              FaultSpec::Probability(0.3));
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    if (online.AdviseNow().ok()) ++successes;
  }
  EXPECT_GT(successes, 0);
  FaultRegistry::Global().set_seed(42);
}

}  // namespace
}  // namespace xia::fault
