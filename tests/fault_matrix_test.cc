// Fault matrix: arm every registered injection point in turn at p=1 and
// drive the full pipeline (build db -> workload io round-trip -> snapshot
// round-trip -> advise -> materialize -> execute). Each armed point must
// produce a clean, attributable Status — no crash, no partially mutated
// store, counters consistent. Also covers the online advisor's retry and
// circuit-breaker behaviour under kOnlineAdvise faults.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "tpox/tpox_data.h"
#include "wal/manager.h"
#include "workload/capture.h"
#include "workload/online_advisor.h"
#include "workload/workload_io.h"

namespace xia::fault {
namespace {

engine::Workload MakeWorkload() {
  engine::Workload w;
  for (const char* text :
       {"for $sec in SECURITY('SDOC')/Security "
        "where $sec/Symbol = \"SYM000003\" return $sec",
        "for $sec in SECURITY('SDOC')/Security[Yield > 4.5] "
        "where $sec/SecInfo/*/Sector = \"Energy\" "
        "return <Security>{$sec/Name}</Security>"}) {
    auto stmt = engine::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    w.push_back(std::move(*stmt));
  }
  return w;
}

Status BuildSmallDatabase(storage::DocumentStore* store,
                          storage::StatisticsCatalog* stats) {
  tpox::TpoxScale scale;
  scale.security_docs = 30;
  scale.order_docs = 30;
  scale.custacc_docs = 10;
  return tpox::BuildTpoxDatabase(scale, store, stats);
}

// The end-to-end pipeline every fault point sits on. Returns the first
// failure; with nothing armed it must succeed.
Status RunPipeline() {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  XIA_RETURN_IF_ERROR(BuildSmallDatabase(&store, &stats));

  // Workload persistence round-trip (kWorkloadWrite / kWorkloadRead).
  const engine::Workload workload = MakeWorkload();
  XIA_ASSIGN_OR_RETURN(std::string text,
                       workload::SerializeWorkload(workload));
  XIA_ASSIGN_OR_RETURN(engine::Workload loaded,
                       workload::DeserializeWorkload(text));

  // Snapshot round-trip (kSnapshotWrite / kSnapshotRead).
  std::stringstream buffer;
  XIA_RETURN_IF_ERROR(storage::SaveSnapshot(store, buffer));
  storage::DocumentStore restored;
  XIA_RETURN_IF_ERROR(storage::LoadSnapshot(buffer, &restored));
  storage::StatisticsCatalog restored_stats;
  for (const std::string& name : restored.CollectionNames()) {
    XIA_ASSIGN_OR_RETURN(storage::Collection * coll,
                         restored.GetCollection(name));
    restored_stats.RunStats(*coll);
  }

  // Advise (kOptimizerPlan / kAdvisorEnumerate / kAdvisorBenefit /
  // kAdvisorSearch) and materialize (kIndexBuild / kBtreeAlloc).
  advisor::IndexAdvisor advisor(&restored, &restored_stats);
  advisor::AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  // Parallel advising so the pipeline crosses kPoolSubmit; results are
  // identical to serial, and an armed submit fault must surface as a
  // clean Status with no partially mutated store.
  options.threads = 2;
  XIA_ASSIGN_OR_RETURN(advisor::Recommendation rec,
                       advisor.Recommend(loaded, options));
  storage::Catalog catalog(&restored, &restored_stats);
  XIA_RETURN_IF_ERROR(advisor.Materialize(rec, &catalog));

  // Execute over the materialized configuration (kExecutorScan /
  // kIndexLookup via the index probe).
  optimizer::Optimizer optimizer(&restored, &catalog, &restored_stats);
  engine::Executor executor(&restored, &catalog);
  for (const auto& stmt : loaded) {
    XIA_ASSIGN_OR_RETURN(optimizer::Plan plan, optimizer.Optimize(stmt));
    XIA_RETURN_IF_ERROR(executor.Execute(stmt, plan).status());
  }

  // Durability round-trip (kWalAppend / kWalFsync on the write side,
  // kWalReplay on the reopen).
  const std::string wal_dir =
      ::testing::TempDir() + "/xia_fault_matrix_wal";
  std::filesystem::remove_all(wal_dir);
  {
    wal::WalManager manager(wal_dir);
    storage::DocumentStore db;
    storage::StatisticsCatalog db_stats;
    storage::Catalog db_catalog(&db, &db_stats);
    XIA_RETURN_IF_ERROR(manager.Open(&db, &db_catalog, &db_stats).status());
    XIA_RETURN_IF_ERROR(manager.LogCreateCollection("WALC"));
    XIA_ASSIGN_OR_RETURN(
        engine::Statement ins,
        engine::ParseStatement("insert into WALC <w><v>1</v></w>"));
    XIA_RETURN_IF_ERROR(manager.OnCommit(ins));
    XIA_RETURN_IF_ERROR(manager.Close());
  }
  {
    wal::WalManager manager(wal_dir);
    storage::DocumentStore db;
    storage::StatisticsCatalog db_stats;
    storage::Catalog db_catalog(&db, &db_stats);
    XIA_RETURN_IF_ERROR(manager.Open(&db, &db_catalog, &db_stats).status());
  }
  return Status::OK();
}

TEST(FaultMatrixTest, PipelineSucceedsWithNothingArmed) {
  ScopedFaultDisarm cleanup;
  const Status status = RunPipeline();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(FaultMatrixTest, EveryArmedPointFailsCleanly) {
  // kOnlineAdvise sits on the online advisor's pass loop, not on this
  // pipeline; it has its own tests below. The net.* points sit on the
  // server/client socket paths, which this pipeline never crosses —
  // net_server_test.NetFaultPoints* covers their matrix.
  for (const char* point_name : kAllPoints) {
    const std::string name(point_name);
    if (name == points::kOnlineAdvise || name == points::kNetAccept ||
        name == points::kNetRead || name == points::kNetWrite) {
      continue;
    }
    SCOPED_TRACE(point_name);
    ScopedFaultDisarm cleanup;
    FaultRegistry::Global().Arm(point_name, FaultSpec::Probability(1));
    obs::Counter* fired_total =
        obs::MetricsRegistry::Global().GetCounter("xia.fault.fired");
    const uint64_t fired_before = fired_total->value();

    const Status status = RunPipeline();

    // The pipeline crosses every point, so arming any of them must fail
    // the run — with the injected, attributable status.
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("fault injected"), std::string::npos)
        << status;
    EXPECT_NE(status.message().find(point_name), std::string::npos)
        << status;

    // Counter consistency: the point recorded the injection, both in its
    // own snapshot and in the process-wide metric.
    const FaultPointStatus st =
        FaultRegistry::Global().GetPoint(point_name)->Snapshot();
    EXPECT_GE(st.fired, 1u);
    EXPECT_GE(st.hits, st.fired);
    EXPECT_GE(fired_total->value(), fired_before + st.fired);
  }
}

TEST(FaultMatrixTest, FailedSnapshotLoadLeavesStoreEmpty) {
  ScopedFaultDisarm cleanup;
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  ASSERT_TRUE(BuildSmallDatabase(&store, &stats).ok());
  std::stringstream buffer;
  ASSERT_TRUE(storage::SaveSnapshot(store, buffer).ok());

  FaultRegistry::Global().Arm(points::kSnapshotRead,
                              FaultSpec::Probability(1));
  storage::DocumentStore restored;
  const Status status = storage::LoadSnapshot(buffer, &restored);
  EXPECT_FALSE(status.ok());
  // Stage-and-swap: the failed load must not touch the target store.
  EXPECT_TRUE(restored.CollectionNames().empty());
}

class OnlineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(BuildSmallDatabase(&store_, &stats_).ok());
    advisor_ =
        std::make_unique<advisor::IndexAdvisor>(&store_, &stats_);
    capture_.set_enabled(true);
    for (const auto& stmt : MakeWorkload()) capture_.Publish(stmt);
  }

  workload::OnlineAdvisorOptions FastOptions() {
    workload::OnlineAdvisorOptions options;
    options.advisor.disk_budget_bytes = 1e6;
    options.backoff_initial_seconds = 0.001;
    options.backoff_multiplier = 2.0;
    return options;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<advisor::IndexAdvisor> advisor_;
  workload::WorkloadCapture capture_;
};

TEST_F(OnlineFaultTest, RetryRecoversFromTransientFault) {
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 2;
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);

  // The first attempt of the pass fails; the retry succeeds.
  FaultRegistry::Global().Arm(points::kOnlineAdvise, FaultSpec::NthHit(1));
  EXPECT_TRUE(online.AdviseNow().ok());
  const workload::OnlineAdvisorStatus st = online.Snapshot();
  EXPECT_EQ(st.advise_runs, 1u);
  EXPECT_EQ(st.advise_failures, 0u);
  EXPECT_GE(st.advise_retries, 1u);
  EXPECT_EQ(st.consecutive_failures, 0u);
  EXPECT_FALSE(st.circuit_open);
  EXPECT_TRUE(st.last_error.empty());
  EXPECT_TRUE(st.has_recommendation);
}

TEST_F(OnlineFaultTest, CircuitBreakerOpensProbesAndCloses) {
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 0;
  options.circuit_breaker_failures = 2;
  options.circuit_cooldown_seconds = 0.05;
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);

  FaultRegistry::Global().Arm(points::kOnlineAdvise,
                              FaultSpec::Probability(1));
  // Two consecutive failed passes trip the breaker.
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  workload::OnlineAdvisorStatus st = online.Snapshot();
  EXPECT_TRUE(st.circuit_open);
  EXPECT_EQ(st.circuit_opens, 1u);
  EXPECT_EQ(st.consecutive_failures, 2u);
  EXPECT_NE(st.last_error.find("fault injected"), std::string::npos);

  // While open and inside the cooldown, passes are rejected without
  // touching the advisor.
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kUnavailable);

  // A failed half-open probe re-opens for another cooldown.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_EQ(online.AdviseNow().code(), StatusCode::kInternal);
  st = online.Snapshot();
  EXPECT_TRUE(st.circuit_open);

  // Once the fault clears, the next probe closes the breaker.
  FaultRegistry::Global().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_TRUE(online.AdviseNow().ok());
  st = online.Snapshot();
  EXPECT_FALSE(st.circuit_open);
  EXPECT_EQ(st.consecutive_failures, 0u);
  EXPECT_TRUE(st.last_error.empty());
  EXPECT_TRUE(st.has_recommendation);
}

TEST_F(OnlineFaultTest, ProbabilisticFaultsEventuallyConverge) {
  // Under a 30% per-attempt fault, retries keep the advising loop alive:
  // across many passes at least one succeeds and none crash.
  ScopedFaultDisarm cleanup;
  workload::OnlineAdvisorOptions options = FastOptions();
  options.max_retries = 4;
  options.circuit_breaker_failures = 100;  // keep the breaker out of it
  workload::OnlineAdvisor online(&capture_, advisor_.get(), options);
  FaultRegistry::Global().set_seed(7);
  FaultRegistry::Global().Arm(points::kOnlineAdvise,
                              FaultSpec::Probability(0.3));
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    if (online.AdviseNow().ok()) ++successes;
  }
  EXPECT_GT(successes, 0);
  FaultRegistry::Global().set_seed(42);
}

}  // namespace
}  // namespace xia::fault
