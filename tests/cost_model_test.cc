// Unit tests for the cost model: monotonicity and structural properties
// that plan choice relies on, independent of any concrete database.

#include <gtest/gtest.h>

#include "engine/normalizer.h"
#include "engine/query_parser.h"
#include "optimizer/cost_model.h"
#include "storage/document_store.h"
#include "xml/parser.h"

namespace xia::optimizer {
namespace {

engine::NormalizedQuery Normalized(const char* text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto norm = engine::Normalize(*stmt);
  EXPECT_TRUE(norm.ok()) << norm.status();
  return *norm;
}

// Builds statistics over n tiny documents.
storage::CollectionStatistics StatsOver(size_t n) {
  storage::DocumentStore store;
  auto coll = store.CreateCollection("C");
  EXPECT_TRUE(coll.ok());
  for (size_t i = 0; i < n; ++i) {
    auto doc = xml::Parse(
        "<a><b>" + std::to_string(i) + "</b><c>x" + std::to_string(i % 7) +
        "</c></a>");
    EXPECT_TRUE(doc.ok());
    (*coll)->Add(std::move(*doc));
  }
  storage::CollectionStatistics stats;
  stats.Collect(**coll);
  return stats;
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : model_(storage::DefaultCostConstants()) {}
  CostModel model_;
};

TEST_F(CostModelTest, CollectionScanGrowsWithData) {
  const auto q = Normalized("for $x in c('C')/a[b > 1] return $x");
  const auto small = StatsOver(100);
  const auto big = StatsOver(1000);
  EXPECT_LT(model_.CollectionScanCost(small, q),
            model_.CollectionScanCost(big, q));
}

TEST_F(CostModelTest, IndexAccessMonotoneInLevelsAndEntries) {
  EXPECT_LT(model_.IndexAccessCost(1, 10, 8),
            model_.IndexAccessCost(2, 10, 8));
  EXPECT_LT(model_.IndexAccessCost(2, 10, 8),
            model_.IndexAccessCost(2, 100000, 8));
  EXPECT_LE(model_.IndexAccessCost(1, 1, 8),
            model_.IndexAccessCost(1, 1, 64) + 1e-9);
  EXPECT_GT(model_.IndexAccessCost(1, 1, 8), 0);
}

TEST_F(CostModelTest, FetchScalesLinearlyInDocs) {
  const auto q = Normalized("for $x in c('C')/a[b > 1] return $x");
  const auto stats = StatsOver(500);
  const double one = model_.FetchAndResidualCost(1, stats, q);
  const double hundred = model_.FetchAndResidualCost(100, stats, q);
  EXPECT_NEAR(hundred, 100 * one, 1e-9);
}

TEST_F(CostModelTest, SelectiveIndexPathIsCheaperThanScan) {
  // The relationship plan choice relies on: levels + 1 fetched doc beats
  // scanning everything, for a reasonably sized collection.
  const auto q = Normalized("for $x in c('C')/a[b = 7] return $x");
  const auto stats = StatsOver(2000);
  const double scan = model_.CollectionScanCost(stats, q);
  const double index = model_.IndexAccessCost(2, 1, 8) +
                       model_.FetchAndResidualCost(1, stats, q);
  EXPECT_LT(index, scan);
}

TEST_F(CostModelTest, InsertCostGrowsWithDocumentSize) {
  EXPECT_LT(model_.DocumentInsertCost(100, 5),
            model_.DocumentInsertCost(100000, 500));
  EXPECT_GT(model_.DocumentInsertCost(1, 1), 0);
}

TEST_F(CostModelTest, RemoveCostScalesWithDocs) {
  EXPECT_NEAR(model_.DocumentRemoveCost(10, 2000),
              10 * model_.DocumentRemoveCost(1, 2000), 1e-9);
  EXPECT_EQ(model_.DocumentRemoveCost(0, 2000), 0);
}

TEST_F(CostModelTest, MaintenanceCostBehaviour) {
  storage::IndexStats idx;
  idx.entry_count = 10000;
  idx.levels = 3;
  idx.avg_key_length = 12;
  // Zero documents touched: free.
  EXPECT_EQ(model_.MaintenanceCost(idx, 1000, 0), 0);
  // Scales with documents touched.
  const double one = model_.MaintenanceCost(idx, 1000, 1);
  EXPECT_GT(one, 0);
  EXPECT_NEAR(model_.MaintenanceCost(idx, 1000, 10), 10 * one, 1e-9);
  // Denser indexes (more entries per document) cost more to maintain.
  storage::IndexStats sparse = idx;
  sparse.entry_count = 100;
  EXPECT_LT(model_.MaintenanceCost(sparse, 1000, 1), one);
  // Empty collection: no per-doc entries, no cost.
  EXPECT_EQ(model_.MaintenanceCost(idx, 0, 1), 0);
}

TEST_F(CostModelTest, PerDocumentEvalGrowsWithPredicates) {
  const auto stats = StatsOver(200);
  const auto simple = Normalized("for $x in c('C')/a return $x");
  const auto heavy =
      Normalized("for $x in c('C')/a[b > 1][c = \"x\"][b < 9] return $x");
  EXPECT_LT(model_.PerDocumentEvalCost(stats, simple),
            model_.PerDocumentEvalCost(stats, heavy));
}

TEST(CostConstantsTest, DefaultsAreSane) {
  const auto& cc = storage::DefaultCostConstants();
  EXPECT_GT(cc.page_size, 0u);
  EXPECT_GT(cc.random_page_cost, cc.seq_page_cost);
  EXPECT_GT(cc.fetch_doc_cost, cc.cpu_node_cost);
  EXPECT_GT(cc.assumed_fanout, 1u);
}

}  // namespace
}  // namespace xia::optimizer
