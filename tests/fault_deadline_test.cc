// xia::fault unit tests: spec parsing, deterministic firing, registry
// configuration, deadlines/cancellation, CRC32 vectors, StatusExitCode,
// and deadline behaviour in the executor and advisor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/deadline.h"
#include "fault/fault.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "util/crc32.h"
#include "util/status.h"

namespace xia::fault {
namespace {

TEST(FaultSpecTest, ParsesProbabilityAndNthHit) {
  auto p = FaultSpec::Parse("p0.25");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->mode, FaultSpec::Mode::kProbability);
  EXPECT_DOUBLE_EQ(p->probability, 0.25);

  auto n = FaultSpec::Parse("n3");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->mode, FaultSpec::Mode::kNthHit);
  EXPECT_EQ(n->nth, 3u);

  // Boundaries.
  EXPECT_TRUE(FaultSpec::Parse("p0").ok());
  EXPECT_TRUE(FaultSpec::Parse("p1").ok());
  EXPECT_TRUE(FaultSpec::Parse("n1").ok());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "p", "n", "p1.5", "p-0.1", "n0", "n-2",
                          "n1.5", "x3", "3", "p0.5extra"}) {
    EXPECT_FALSE(FaultSpec::Parse(bad).ok()) << bad;
  }
}

TEST(FaultSpecTest, ToStringRoundTrips) {
  EXPECT_EQ(FaultSpec().ToString(), "off");
  EXPECT_EQ(FaultSpec::Probability(0.5).ToString(), "p0.5");
  EXPECT_EQ(FaultSpec::NthHit(7).ToString(), "n7");
}

TEST(FaultPointTest, DisarmedNeverFires) {
  ScopedFaultDisarm cleanup;
  FaultPoint* point = FaultRegistry::Global().GetPoint("test.disarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(point->ShouldFire());
  // Disarmed hits are not counted (the fast path is one atomic load).
  EXPECT_EQ(point->Snapshot().hits, 0u);
}

TEST(FaultPointTest, NthHitFiresExactlyOnce) {
  ScopedFaultDisarm cleanup;
  FaultRegistry::Global().Arm("test.nth", FaultSpec::NthHit(3));
  FaultPoint* point = FaultRegistry::Global().GetPoint("test.nth");
  std::vector<bool> fires;
  for (int i = 0; i < 10; ++i) fires.push_back(point->ShouldFire());
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false,
                                      false, false, false, false, false}));
  const FaultPointStatus st = point->Snapshot();
  EXPECT_EQ(st.hits, 10u);
  EXPECT_EQ(st.fired, 1u);
}

TEST(FaultPointTest, ProbabilityExtremes) {
  ScopedFaultDisarm cleanup;
  FaultRegistry::Global().Arm("test.p0", FaultSpec::Probability(0));
  FaultRegistry::Global().Arm("test.p1", FaultSpec::Probability(1));
  FaultPoint* never = FaultRegistry::Global().GetPoint("test.p0");
  FaultPoint* always = FaultRegistry::Global().GetPoint("test.p1");
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(never->ShouldFire());
    EXPECT_TRUE(always->ShouldFire());
  }
}

TEST(FaultPointTest, EqualSeedsReplayEqualSchedules) {
  ScopedFaultDisarm cleanup;
  FaultRegistry& registry = FaultRegistry::Global();
  registry.set_seed(12345);
  registry.Arm("test.replay", FaultSpec::Probability(0.5));
  FaultPoint* point = registry.GetPoint("test.replay");
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(point->ShouldFire());
  // Re-arming with the same registry seed replays the same schedule.
  registry.Arm("test.replay", FaultSpec::Probability(0.5));
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(point->ShouldFire());
  EXPECT_EQ(first, second);

  registry.set_seed(54321);
  registry.Arm("test.replay", FaultSpec::Probability(0.5));
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) other.push_back(point->ShouldFire());
  EXPECT_NE(first, other);
  registry.set_seed(42);  // restore the default for later tests
}

TEST(FaultPointTest, InjectedStatusNamesThePoint) {
  FaultPoint* point = FaultRegistry::Global().GetPoint("test.status");
  const Status status = point->InjectedStatus();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("fault injected"), std::string::npos);
  EXPECT_NE(status.message().find("test.status"), std::string::npos);
}

TEST(FaultRegistryTest, ConfigureFromSpecArmsEveryEntry) {
  ScopedFaultDisarm cleanup;
  ASSERT_TRUE(FaultRegistry::Global()
                  .ConfigureFromSpec("test.cfg.a=p0.5; test.cfg.b=n2")
                  .ok());
  EXPECT_EQ(FaultRegistry::Global().GetPoint("test.cfg.a")->Snapshot()
                .spec.ToString(),
            "p0.5");
  EXPECT_EQ(FaultRegistry::Global().GetPoint("test.cfg.b")->Snapshot()
                .spec.ToString(),
            "n2");
}

TEST(FaultRegistryTest, MalformedSpecAppliesNothing) {
  ScopedFaultDisarm cleanup;
  const Status status = FaultRegistry::Global().ConfigureFromSpec(
      "test.cfg.good=p1,test.cfg.bad=zzz");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // All-or-nothing: the well-formed entry must not have been armed.
  EXPECT_EQ(FaultRegistry::Global().GetPoint("test.cfg.good")->Snapshot()
                .spec.ToString(),
            "off");
}

TEST(FaultRegistryTest, ConfigureFromEnvReadsSpecAndSeed) {
  ScopedFaultDisarm cleanup;
  ::setenv("XIA_FAULTS", "test.env.point=n1", 1);
  ::setenv("XIA_FAULTS_SEED", "99", 1);
  EXPECT_TRUE(FaultRegistry::Global().ConfigureFromEnv().ok());
  EXPECT_EQ(FaultRegistry::Global().seed(), 99u);
  EXPECT_TRUE(FaultRegistry::Global().GetPoint("test.env.point")
                  ->ShouldFire());

  ::setenv("XIA_FAULTS", "broken", 1);
  EXPECT_FALSE(FaultRegistry::Global().ConfigureFromEnv().ok());
  ::unsetenv("XIA_FAULTS");
  ::unsetenv("XIA_FAULTS_SEED");
  FaultRegistry::Global().set_seed(42);
}

TEST(FaultRegistryTest, ScopedDisarmClearsEverything) {
  {
    ScopedFaultDisarm cleanup;
    FaultRegistry::Global().Arm("test.scoped", FaultSpec::Probability(1));
    EXPECT_TRUE(FaultRegistry::Global().GetPoint("test.scoped")
                    ->ShouldFire());
  }
  EXPECT_FALSE(
      FaultRegistry::Global().GetPoint("test.scoped")->ShouldFire());
}

Status FunctionWithInjectionSite() {
  XIA_FAULT_INJECT("test.macro.site");
  return Status::OK();
}

TEST(FaultMacroTest, InjectsIntoStatusReturningFunction) {
  ScopedFaultDisarm cleanup;
  EXPECT_TRUE(FunctionWithInjectionSite().ok());
  FaultRegistry::Global().Arm("test.macro.site", FaultSpec::Probability(1));
  const Status status = FunctionWithInjectionSite();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.macro.site"), std::string::npos);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 1e18);
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
  EXPECT_TRUE(Deadline::AfterSeconds(0).expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  const Deadline deadline = Deadline::AfterSeconds(60);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 50.0);
  EXPECT_LT(deadline.remaining_seconds(), 61.0);
}

TEST(CancelTokenTest, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CheckInterruptTest, CancellationBeatsDeadline) {
  CancelToken token;
  EXPECT_TRUE(CheckInterrupt(Deadline(), &token).ok());
  EXPECT_TRUE(CheckInterrupt(Deadline(), nullptr).ok());

  EXPECT_EQ(CheckInterrupt(Deadline::AfterMillis(0)).code(),
            StatusCode::kDeadlineExceeded);

  token.Cancel();
  // Both tripped: cancellation wins (the more deliberate signal).
  EXPECT_EQ(CheckInterrupt(Deadline::AfterMillis(0), &token).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(CheckInterrupt(Deadline(), &token).code(),
            StatusCode::kCancelled);
}

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    crc = Crc32Update(crc, data.data() + i, n);
  }
  EXPECT_EQ(crc, Crc32(data));
}

TEST(Crc32Test, DetectsSingleByteCorruption) {
  std::string data = "some payload worth protecting";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string corrupt = data;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    EXPECT_NE(Crc32(corrupt), clean) << "offset " << i;
  }
}

TEST(StatusExitCodeTest, DistinctNonZeroCodePerFailureClass) {
  EXPECT_EQ(StatusExitCode(Status::OK()), 0);
  const std::vector<Status> failures = {
      Status::InvalidArgument("x"), Status::NotFound("x"),
      Status::FailedPrecondition("x"), Status::Internal("x"),
      Status::ParseError("x"), Status::DeadlineExceeded("x"),
      Status::Cancelled("x"), Status::DataLoss("x"),
      Status::Unavailable("x")};
  std::vector<int> codes;
  for (const Status& s : failures) {
    const int code = StatusExitCode(s);
    // Never collides with 0 (ok), 1 (generic) or 2 (usage).
    EXPECT_GE(code, 10) << s;
    codes.push_back(code);
  }
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::unique(codes.begin(), codes.end()), codes.end());
  // The contract the CLI error-path test relies on.
  EXPECT_EQ(StatusExitCode(Status::NotFound("x")), 12);
  EXPECT_EQ(StatusExitCode(Status::InvalidArgument("x")), 11);
}

class DeadlinePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 40;
    scale.order_docs = 40;
    scale.custacc_docs = 20;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
  }

  engine::Workload MakeWorkload() {
    engine::Workload w;
    for (const char* text :
         {"for $sec in SECURITY('SDOC')/Security "
          "where $sec/Symbol = \"SYM000011\" return $sec",
          "for $sec in SECURITY('SDOC')/Security[Yield > 4.5] "
          "where $sec/SecInfo/*/Sector = \"Energy\" "
          "return <Security>{$sec/Name}</Security>"}) {
      auto stmt = engine::ParseStatement(text);
      EXPECT_TRUE(stmt.ok()) << stmt.status();
      w.push_back(std::move(*stmt));
    }
    return w;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
};

TEST_F(DeadlinePipelineTest, ExpiredDeadlineStopsExecutorScan) {
  storage::Catalog catalog(&store_, &stats_);
  optimizer::Optimizer optimizer(&store_, &catalog, &stats_);
  engine::Executor executor(&store_, &catalog);
  auto stmt = engine::ParseStatement(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000017\" "
      "return $s");
  ASSERT_TRUE(stmt.ok());
  auto plan = optimizer.Optimize(*stmt);
  ASSERT_TRUE(plan.ok());

  engine::ExecOptions options;
  options.deadline = fault::Deadline::AfterMillis(0);
  auto result = executor.Execute(*stmt, *plan, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // Cancellation takes the same exit.
  engine::ExecOptions cancelled;
  CancelToken token;
  token.Cancel();
  cancelled.cancel = &token;
  auto cancelled_result = executor.Execute(*stmt, *plan, cancelled);
  ASSERT_FALSE(cancelled_result.ok());
  EXPECT_EQ(cancelled_result.status().code(), StatusCode::kCancelled);
}

TEST_F(DeadlinePipelineTest, OptimizerHonoursDeadline) {
  storage::Catalog catalog(&store_, &stats_);
  optimizer::Optimizer::Options options;
  options.deadline = fault::Deadline::AfterMillis(0);
  optimizer::Optimizer optimizer(&store_, &catalog, &stats_, options);
  auto stmt = engine::ParseStatement(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000017\" "
      "return $s");
  ASSERT_TRUE(stmt.ok());
  auto plan = optimizer.Optimize(*stmt);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlinePipelineTest, TinyBudgetYieldsPartialRecommendation) {
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  options.budget_ms = 0.001;  // expires before the first candidate
  auto rec = advisor.Recommend(MakeWorkload(), options);
  // Degrades to best-so-far, never kDeadlineExceeded.
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE(rec->partial);
}

TEST_F(DeadlinePipelineTest, UnboundedRunIsNotPartial) {
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  auto rec = advisor.Recommend(MakeWorkload(), options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_FALSE(rec->partial);
  EXPECT_FALSE(rec->indexes.empty());
}

TEST_F(DeadlinePipelineTest, CancelledRunYieldsPartialRecommendation) {
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  CancelToken token;
  token.Cancel();
  options.cancel = &token;
  auto rec = advisor.Recommend(MakeWorkload(), options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE(rec->partial);
}

TEST_F(DeadlinePipelineTest, GranularPollingInsideBenefitEvaluation) {
  // The deadline-aware ConfigurationBenefit polls per statement *inside*
  // a sub-configuration evaluation, and an interrupted evaluation must
  // not poison the cache: a later deadline-free call recomputes cleanly.
  advisor::IndexAdvisor advisor(&store_, &stats_);
  auto set = advisor.BuildCandidates(MakeWorkload(), /*generalize=*/false);
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_GE(set->basic_count, 1u);

  const engine::Workload workload = MakeWorkload();
  storage::Catalog whatif(&store_, &stats_);
  advisor::BenefitEvaluator evaluator(&workload, &*set, &whatif, &stats_,
                                      &store_,
                                      advisor::BenefitEvaluator::Options{});
  ASSERT_TRUE(evaluator.Initialize().ok());

  const std::vector<int> config = {0};
  auto interrupted = evaluator.ConfigurationBenefit(
      config, Deadline::AfterMillis(0), nullptr);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kDeadlineExceeded);

  CancelToken token;
  token.Cancel();
  auto cancelled = evaluator.ConfigurationBenefit(config, Deadline(), &token);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // Nothing was cached for the interrupted evaluations.
  auto clean = evaluator.ConfigurationBenefit(config);
  ASSERT_TRUE(clean.ok()) << clean.status();
  auto again = evaluator.ConfigurationBenefit(config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*clean, *again);
}

TEST_F(DeadlinePipelineTest, ParallelRunHonoursBoundedOverrun) {
  // Pooled work items poll the deadline at statement granularity, so the
  // overrun of a tiny budget stays bounded by one unit of work — the run
  // completes quickly (well under the tier-1 timeout) with partial set,
  // instead of finishing the whole batch first.
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  options.threads = 2;
  options.budget_ms = 0.001;
  auto rec = advisor.Recommend(MakeWorkload(), options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE(rec->partial);
  EXPECT_LT(rec->advisor_seconds, 2.0);

  // And an unbounded parallel run matches the serial result exactly.
  advisor::AdvisorOptions unbounded;
  unbounded.threads = 2;
  auto parallel = advisor.Recommend(MakeWorkload(), unbounded);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  advisor::AdvisorOptions serial;
  auto reference = advisor.Recommend(MakeWorkload(), serial);
  ASSERT_TRUE(reference.ok());
  EXPECT_FALSE(parallel->partial);
  EXPECT_EQ(parallel->benefit, reference->benefit);
  EXPECT_EQ(parallel->optimizer_calls, reference->optimizer_calls);
  EXPECT_EQ(parallel->indexes.size(), reference->indexes.size());
}

TEST_F(DeadlinePipelineTest, PartialRecommendationIsStillValid) {
  // Every budget, however tight, must yield a structurally valid
  // recommendation: sizes within the disk budget, speedup >= 1.
  advisor::IndexAdvisor advisor(&store_, &stats_);
  for (double budget_ms : {0.001, 0.1, 1.0, 5.0}) {
    advisor::AdvisorOptions options;
    options.budget_ms = budget_ms;
    auto rec = advisor.Recommend(MakeWorkload(), options);
    ASSERT_TRUE(rec.ok()) << "budget " << budget_ms << ": " << rec.status();
    EXPECT_LE(rec->total_size_bytes, options.disk_budget_bytes)
        << "budget " << budget_ms;
    EXPECT_GE(rec->est_speedup, 1.0) << "budget " << budget_ms;
  }
}

}  // namespace
}  // namespace xia::fault
