#include <gtest/gtest.h>

#include "xpath/parser.h"
#include "xpath/path.h"

namespace xia::xpath {
namespace {

TEST(PatternParserTest, ChildSteps) {
  auto p = ParsePattern("/Security/Symbol");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->size(), 2u);
  EXPECT_EQ(p->step(0).axis, Axis::kChild);
  EXPECT_EQ(p->step(0).name_test, "Security");
  EXPECT_EQ(p->step(1).name_test, "Symbol");
  EXPECT_EQ(p->ToString(), "/Security/Symbol");
}

TEST(PatternParserTest, DescendantAndWildcard) {
  auto p = ParsePattern("//Security/*/Sector");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ(p->step(0).axis, Axis::kDescendant);
  EXPECT_TRUE(p->step(1).is_wildcard());
  EXPECT_EQ(p->ToString(), "//Security/*/Sector");
}

TEST(PatternParserTest, UniversalPattern) {
  auto p = ParsePattern("//*");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->IsUniversal());
  EXPECT_FALSE(ParsePattern("/a")->IsUniversal());
  EXPECT_FALSE(ParsePattern("//a")->IsUniversal());
  EXPECT_FALSE(ParsePattern("/*")->IsUniversal());
}

TEST(PatternParserTest, AttributeStep) {
  auto p = ParsePattern("/FIXML/Order/@ID");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->step(2).name_test, "@ID");
}

TEST(PatternParserTest, RejectsPredicates) {
  auto p = ParsePattern("/Security[Yield > 4]");
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PatternParserTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("Security").ok());
  EXPECT_FALSE(ParsePattern("/").ok());
  EXPECT_FALSE(ParsePattern("/a/").ok());
  EXPECT_FALSE(ParsePattern("/a b").ok());
}

TEST(QueryParserTest, ComparisonPredicate) {
  auto q = ParseQuery("/Security[Yield > 4.5]");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->size(), 1u);
  const auto& preds = q->steps()[0].predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].relative_steps.size(), 1u);
  EXPECT_EQ(preds[0].relative_steps[0].name_test, "Yield");
  EXPECT_EQ(*preds[0].op, CompareOp::kGt);
  EXPECT_EQ(preds[0].literal.type, ValueType::kNumeric);
  EXPECT_DOUBLE_EQ(preds[0].literal.numeric_value, 4.5);
}

TEST(QueryParserTest, StringLiteralAndMultiStepRelPath) {
  auto q = ParseQuery("/Security[SecInfo/*/Sector = \"Energy\"]/Name");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->size(), 2u);
  const auto& preds = q->steps()[0].predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].relative_steps.size(), 3u);
  EXPECT_TRUE(preds[0].relative_steps[1].is_wildcard());
  EXPECT_EQ(preds[0].literal.string_value, "Energy");
  EXPECT_FALSE(q->IsLinear());
  EXPECT_EQ(q->Spine().ToString(), "/Security/Name");
}

TEST(QueryParserTest, SelfValuePredicate) {
  auto q = ParseQuery("/Security/Yield[. >= 2]");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& preds = q->steps()[1].predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_TRUE(preds[0].relative_steps.empty());
  EXPECT_EQ(*preds[0].op, CompareOp::kGe);
}

TEST(QueryParserTest, DescendantRelativePredicate) {
  auto q = ParseQuery("/Customer[.//Amount > 1000]");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& preds = q->steps()[0].predicates;
  ASSERT_EQ(preds.size(), 1u);
  ASSERT_EQ(preds[0].relative_steps.size(), 1u);
  EXPECT_EQ(preds[0].relative_steps[0].axis, Axis::kDescendant);
}

TEST(QueryParserTest, ExistencePredicate) {
  auto q = ParseQuery("/Security[SubIndustry]");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& preds = q->steps()[0].predicates;
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_FALSE(preds[0].is_comparison());
}

TEST(QueryParserTest, AllOperators) {
  const std::pair<const char*, CompareOp> cases[] = {
      {"/a[b = 1]", CompareOp::kEq},  {"/a[b != 1]", CompareOp::kNe},
      {"/a[b < 1]", CompareOp::kLt},  {"/a[b <= 1]", CompareOp::kLe},
      {"/a[b > 1]", CompareOp::kGt},  {"/a[b >= 1]", CompareOp::kGe},
  };
  for (const auto& [text, op] : cases) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status();
    EXPECT_EQ(*q->steps()[0].predicates[0].op, op) << text;
  }
}

TEST(QueryParserTest, MultiplePredicatesOnOneStep) {
  auto q = ParseQuery("/Security[Yield > 4][PE < 20]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->steps()[0].predicates.size(), 2u);
}

TEST(QueryParserTest, PredicatesAtArbitrarySteps) {
  auto q = ParseQuery("/a[x = 1]/b/c[y/z > 3]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->steps()[0].predicates.size(), 1u);
  EXPECT_TRUE(q->steps()[1].predicates.empty());
  EXPECT_EQ(q->steps()[2].predicates.size(), 1u);
}

TEST(QueryParserTest, ToStringRoundTrip) {
  for (const char* text :
       {"/Security/Symbol", "//Security//*", "/Security[Yield > 4.5]",
        "/a[b/c = \"x\"]/d", "/Customer[.//Amount >= 100]/Id",
        "/FIXML/Order[@ID = \"103\"]"}) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status();
    auto q2 = ParseQuery(q->ToString());
    ASSERT_TRUE(q2.ok()) << q->ToString() << ": " << q2.status();
    EXPECT_EQ(*q, *q2) << text << " vs " << q->ToString();
  }
}

TEST(QueryParserTest, NegativeNumericLiteral) {
  auto q = ParseQuery("/a[b < -2.5]");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_DOUBLE_EQ(q->steps()[0].predicates[0].literal.numeric_value, -2.5);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("/a[").ok());
  EXPECT_FALSE(ParseQuery("/a[]").ok());
  EXPECT_FALSE(ParseQuery("/a[b >]").ok());
  EXPECT_FALSE(ParseQuery("/a[b = ]").ok());
  EXPECT_FALSE(ParseQuery("/a[b = \"open]").ok());
  EXPECT_FALSE(ParseQuery("/a]").ok());
}

TEST(PatternParserTest, AttributeWildcardIsNotSupported) {
  // DESIGN.md fidelity note: '*' matches any label (attributes included);
  // DB2's separate '@*' name test is intentionally not part of the
  // grammar.
  EXPECT_FALSE(ParsePattern("/a/@*").ok());
}

TEST(PathTest, GeneralityScore) {
  EXPECT_EQ(ParsePattern("/a/b")->GeneralityScore(), 0);
  EXPECT_GT(ParsePattern("/a/*")->GeneralityScore(),
            ParsePattern("/a/b")->GeneralityScore());
  EXPECT_GT(ParsePattern("//a")->GeneralityScore(),
            ParsePattern("/a/*")->GeneralityScore());
}

TEST(PathTest, IsConcrete) {
  EXPECT_TRUE(ParsePattern("/a/b/c")->IsConcrete());
  EXPECT_FALSE(ParsePattern("/a/*/c")->IsConcrete());
  EXPECT_FALSE(ParsePattern("/a//c")->IsConcrete());
}

TEST(PathTest, OrderingIsStrictWeak) {
  auto a = *ParsePattern("/a");
  auto b = *ParsePattern("/a/b");
  auto c = *ParsePattern("/c");
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(IndexPatternTest, ToStringIncludesType) {
  IndexPattern p{*ParsePattern("/a/b"), ValueType::kNumeric};
  EXPECT_EQ(p.ToString(), "/a/b (numeric)");
}

}  // namespace
}  // namespace xia::xpath
