// Equi-depth histogram tests: quantile construction, CDF interpolation,
// statistics collection, index-level merging, and the selectivity win on
// skewed data.

#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/selectivity.h"
#include "storage/document_store.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/string_util.h"
#include "xml/document.h"
#include "xpath/parser.h"

namespace xia::storage {
namespace {

TEST(WeightedQuantilesTest, UniformValues) {
  std::vector<std::pair<double, double>> values;
  for (int i = 0; i <= 100; ++i) values.emplace_back(i, 1.0);
  const auto q = WeightedQuantiles(std::move(values), 4);
  ASSERT_EQ(q.size(), 5u);
  EXPECT_DOUBLE_EQ(q.front(), 0);
  EXPECT_DOUBLE_EQ(q.back(), 100);
  EXPECT_NEAR(q[1], 25, 2);
  EXPECT_NEAR(q[2], 50, 2);
  EXPECT_NEAR(q[3], 75, 2);
}

TEST(WeightedQuantilesTest, RespectsWeights) {
  // 90% of the mass at 1, 10% spread to 100.
  std::vector<std::pair<double, double>> values = {{1.0, 90.0},
                                                   {100.0, 10.0}};
  const auto q = WeightedQuantiles(std::move(values), 10);
  ASSERT_EQ(q.size(), 11u);
  // The first nine boundaries sit at 1.
  for (int i = 0; i <= 8; ++i) EXPECT_DOUBLE_EQ(q[static_cast<size_t>(i)], 1.0);
  EXPECT_DOUBLE_EQ(q.back(), 100.0);
}

TEST(WeightedQuantilesTest, EdgeCases) {
  EXPECT_TRUE(WeightedQuantiles({}, 4).empty());
  EXPECT_TRUE(WeightedQuantiles({{1.0, 1.0}}, 0).empty());
  const auto single = WeightedQuantiles({{7.0, 3.0}}, 4);
  ASSERT_EQ(single.size(), 5u);
  for (double b : single) EXPECT_DOUBLE_EQ(b, 7.0);
}

TEST(HistogramCdfTest, InterpolatesWithinBuckets) {
  const std::vector<double> q = {0, 10, 20, 30, 40};  // uniform 0..40
  EXPECT_DOUBLE_EQ(HistogramCdf(q, -5), 0.0);
  EXPECT_DOUBLE_EQ(HistogramCdf(q, 0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramCdf(q, 45), 1.0);
  EXPECT_NEAR(HistogramCdf(q, 20), 0.5, 1e-9);
  EXPECT_NEAR(HistogramCdf(q, 5), 0.125, 1e-9);
  EXPECT_NEAR(HistogramCdf(q, 35), 0.875, 1e-9);
}

TEST(HistogramCdfTest, SkewedBuckets) {
  // Equi-depth over a skewed distribution: buckets narrow near the head.
  const std::vector<double> q = {0, 1, 2, 4, 100};
  EXPECT_NEAR(HistogramCdf(q, 2), 0.5, 1e-9);
  EXPECT_NEAR(HistogramCdf(q, 52), 0.875, 1e-9);  // halfway into last bucket
  EXPECT_GT(HistogramCdf(q, 4), 0.74);
}

class HistogramStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto coll = store_.CreateCollection("C");
    ASSERT_TRUE(coll.ok());
    coll_ = *coll;
    Random rng(3);
    // Exponentially distributed values: uniform assumption badly
    // overestimates the tail.
    for (int i = 0; i < 3000; ++i) {
      xml::Document doc;
      const xml::NodeIndex root = doc.AddRoot("r");
      const double v = -std::log(1.0 - rng.NextDouble()) * 100.0;
      doc.AddElement(root, "v", StringPrintf("%.3f", v));
      coll_->Add(std::move(doc));
    }
  }

  DocumentStore store_;
  Collection* coll_ = nullptr;
};

TEST_F(HistogramStatsTest, CollectBuildsQuantiles) {
  CollectionStatistics stats;
  stats.Collect(*coll_);
  const PathStats& vs = stats.paths().at("/r/v");
  ASSERT_EQ(vs.numeric_quantiles.size(), 17u);  // 16 buckets by default
  // Boundaries are sorted and span [min, max].
  for (size_t i = 0; i + 1 < vs.numeric_quantiles.size(); ++i) {
    EXPECT_LE(vs.numeric_quantiles[i], vs.numeric_quantiles[i + 1]);
  }
  EXPECT_NEAR(vs.numeric_quantiles.front(), vs.min_numeric, 1e-9);
  EXPECT_NEAR(vs.numeric_quantiles.back(), vs.max_numeric, 1e-9);
  // Exponential with mean 100: the median is ~69, far below the uniform
  // midpoint of [0, max]. The histogram must know that.
  EXPECT_LT(vs.numeric_quantiles[8], 90.0);
  EXPECT_GT(vs.numeric_quantiles[8], 50.0);
}

TEST_F(HistogramStatsTest, DisablingHistogramsLeavesQuantilesEmpty) {
  CollectionStatistics stats;
  CollectionStatistics::CollectOptions options;
  options.histogram_buckets = 0;
  stats.Collect(*coll_, options);
  EXPECT_TRUE(stats.paths().at("/r/v").numeric_quantiles.empty());
}

TEST_F(HistogramStatsTest, DerivedIndexStatsCarryQuantiles) {
  CollectionStatistics stats;
  stats.Collect(*coll_);
  const IndexStats derived = stats.DeriveIndexStats(
      {*xpath::ParsePattern("/r/v"), xpath::ValueType::kNumeric},
      DefaultCostConstants());
  ASSERT_GE(derived.numeric_quantiles.size(), 2u);
  EXPECT_NEAR(derived.numeric_quantiles.front(), derived.min_numeric, 1.0);
}

TEST_F(HistogramStatsTest, RealIndexStatsCarryExactQuantiles) {
  PathValueIndex index(
      "v", "C", {*xpath::ParsePattern("/r/v"), xpath::ValueType::kNumeric});
  index.Build(*coll_);
  const IndexStats actual = index.ActualStats(DefaultCostConstants());
  ASSERT_EQ(actual.numeric_quantiles.size(), 17u);
  EXPECT_DOUBLE_EQ(actual.numeric_quantiles.front(), actual.min_numeric);
  EXPECT_DOUBLE_EQ(actual.numeric_quantiles.back(), actual.max_numeric);
}

TEST_F(HistogramStatsTest, HistogramBeatsUniformOnSkewedRange) {
  CollectionStatistics with_hist;
  with_hist.Collect(*coll_);
  CollectionStatistics no_hist;
  CollectionStatistics::CollectOptions options;
  options.histogram_buckets = 0;
  no_hist.Collect(*coll_, options);

  const xpath::IndexPattern pattern{*xpath::ParsePattern("/r/v"),
                                    xpath::ValueType::kNumeric};
  const IndexStats hist_stats =
      with_hist.DeriveIndexStats(pattern, DefaultCostConstants());
  const IndexStats uniform_stats =
      no_hist.DeriveIndexStats(pattern, DefaultCostConstants());

  // Ground truth: fraction of values > 200 for Exp(mean 100) is e^-2.
  size_t above = 0;
  size_t total = 0;
  coll_->ForEach([&](xml::DocId, const xml::Document& doc) {
    double v = 0;
    if (ParseDouble(doc.node(1).value, &v)) {
      ++total;
      if (v > 200.0) ++above;
    }
  });
  const double truth = static_cast<double>(above) /
                       static_cast<double>(total);

  const xpath::Literal two_hundred = xpath::Literal::Number(200.0);
  const double est_hist = optimizer::ValueSelectivity(
      hist_stats, xpath::CompareOp::kGt, two_hundred);
  const double est_uniform = optimizer::ValueSelectivity(
      uniform_stats, xpath::CompareOp::kGt, two_hundred);

  EXPECT_LT(std::abs(est_hist - truth), std::abs(est_uniform - truth))
      << "hist " << est_hist << " uniform " << est_uniform << " truth "
      << truth;
  EXPECT_NEAR(est_hist, truth, 0.05);
}

}  // namespace
}  // namespace xia::storage
