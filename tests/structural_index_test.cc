// Structural index tests: §III's second index category, implemented as a
// reachability-only mode of PathValueIndex and wired through the optimizer
// (existence predicates), executor, and advisor.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xia {
namespace {

xpath::IndexPattern Structural(const char* text) {
  return {*xpath::ParsePattern(text), xpath::ValueType::kString,
          /*structural=*/true};
}

engine::Statement Parse(const std::string& text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

class StructuralFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto coll = store_.CreateCollection("SDOC");
    ASSERT_TRUE(coll.ok());
    coll_ = *coll;
    for (int i = 0; i < 2000; ++i) {
      // Every 100th security carries the optional <Convertible/> marker,
      // which is empty — only a structural index can find it.
      const std::string marker = (i % 100 == 0) ? "<Convertible/>" : "";
      const std::string text =
          "<Security><Symbol>SYM" + std::to_string(i) + "</Symbol>" + marker +
          "<Yield>" + std::to_string(i % 10) + "</Yield></Security>";
      auto doc = xml::Parse(text);
      ASSERT_TRUE(doc.ok());
      coll_->Add(std::move(*doc));
    }
    stats_.RunStats(*coll_);
    catalog_ = std::make_unique<storage::Catalog>(&store_, &stats_);
    opt_ = std::make_unique<optimizer::Optimizer>(&store_, catalog_.get(),
                                                  &stats_);
    executor_ = std::make_unique<engine::Executor>(&store_, catalog_.get());
  }

  storage::DocumentStore store_;
  storage::Collection* coll_ = nullptr;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<optimizer::Optimizer> opt_;
  std::unique_ptr<engine::Executor> executor_;
};

TEST_F(StructuralFixture, IndexesValuelessNodes) {
  storage::PathValueIndex index("s", "SDOC",
                                Structural("/Security/Convertible"));
  index.Build(*coll_);
  EXPECT_EQ(index.entry_count(), 20u);  // i % 100 == 0 within 2000
  auto all = index.LookupAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rids.size(), 20u);
  // Value lookups are rejected.
  EXPECT_FALSE(
      index.Lookup(xpath::CompareOp::kEq, xpath::Literal::String("x")).ok());
}

TEST_F(StructuralFixture, DerivedStatsCountAllNodes) {
  auto cs = stats_.Get("SDOC");
  ASSERT_TRUE(cs.ok());
  const auto cc = storage::DefaultCostConstants();
  const auto structural =
      (*cs)->DeriveIndexStats(Structural("/Security/Convertible"), cc);
  EXPECT_EQ(structural.entry_count, 20u);
  // A value index over the same pattern holds nothing (markers are empty).
  const auto value = (*cs)->DeriveIndexStats(
      {*xpath::ParsePattern("/Security/Convertible"),
       xpath::ValueType::kString},
      cc);
  EXPECT_EQ(value.entry_count, 0u);
}

TEST_F(StructuralFixture, PatternEqualityDistinguishesKinds) {
  const xpath::IndexPattern structural = Structural("/a/b");
  const xpath::IndexPattern value{*xpath::ParsePattern("/a/b"),
                                  xpath::ValueType::kString};
  EXPECT_FALSE(structural == value);
  EXPECT_TRUE(structural < value || value < structural);
  EXPECT_NE(structural.ToString().find("structural"), std::string::npos);
}

TEST_F(StructuralFixture, ExistencePredicateExtractedAndEnumerated) {
  const engine::Statement stmt = Parse(
      "for $s in c('SDOC')/Security[Convertible] return $s/Symbol");
  auto patterns = opt_->EnumerateIndexes(stmt);
  ASSERT_TRUE(patterns.ok()) << patterns.status();
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_TRUE((*patterns)[0].structural);
  EXPECT_EQ((*patterns)[0].path.ToString(), "/Security/Convertible");
}

TEST_F(StructuralFixture, OptimizerUsesStructuralIndexForExistence) {
  ASSERT_TRUE(catalog_->CreateIndex("conv", "SDOC",
                                    Structural("/Security/Convertible"))
                  .ok());
  const engine::Statement stmt = Parse(
      "for $s in c('SDOC')/Security[Convertible] return $s/Symbol");
  auto plan = opt_->Optimize(stmt);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->kind, optimizer::Plan::Kind::kIndexScan);
  EXPECT_EQ(plan->legs[0].index_name, "conv");
  EXPECT_TRUE(plan->legs[0].predicate.existence);

  auto result = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 20u);
  EXPECT_EQ(result->docs_examined, 20u);
}

TEST_F(StructuralFixture, ValueIndexNotUsedForExistence) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Convertible"),
                           xpath::ValueType::kString})
                  .ok());
  const engine::Statement stmt = Parse(
      "for $s in c('SDOC')/Security[Convertible] return $s/Symbol");
  auto plan = opt_->Optimize(stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kind, optimizer::Plan::Kind::kCollectionScan);
}

TEST_F(StructuralFixture, StructuralIndexNotUsedForComparisons) {
  ASSERT_TRUE(
      catalog_->CreateIndex("syield", "SDOC", Structural("/Security/Yield"))
          .ok());
  const engine::Statement stmt =
      Parse("for $s in c('SDOC')/Security[Yield = 3] return $s");
  auto plan = opt_->Optimize(stmt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kind, optimizer::Plan::Kind::kCollectionScan);
}

TEST_F(StructuralFixture, MaintenanceOnInsertAndDelete) {
  ASSERT_TRUE(catalog_->CreateIndex("conv", "SDOC",
                                    Structural("/Security/Convertible"))
                  .ok());
  auto ins = Parse(
      "insert into SDOC "
      "<Security><Symbol>NEW</Symbol><Convertible/></Security>");
  auto plan = opt_->Optimize(ins);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(executor_->Execute(ins, *plan).ok());
  auto physical = catalog_->GetPhysical("conv");
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ((*physical)->entry_count(), 21u);

  auto del = Parse("delete from SDOC where /Security[Symbol = \"NEW\"]");
  auto dplan = opt_->Optimize(del);
  ASSERT_TRUE(dplan.ok());
  ASSERT_TRUE(executor_->Execute(del, *dplan).ok());
  EXPECT_EQ((*physical)->entry_count(), 20u);
}

TEST_F(StructuralFixture, AdvisorRecommendsStructuralIndex) {
  engine::Workload workload;
  workload.push_back(Parse(
      "for $s in c('SDOC')/Security[Convertible] return $s/Symbol"));
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  options.algorithm = advisor::SearchAlgorithm::kGreedyWithHeuristics;
  auto rec = advisor.Recommend(workload, options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->indexes.size(), 1u);
  EXPECT_TRUE(rec->indexes[0].pattern.structural);
  EXPECT_NE(rec->indexes[0].ddl.find("STRUCTURAL"), std::string::npos);
  EXPECT_GT(rec->est_speedup, 1.0);
}

TEST_F(StructuralFixture, StructuralAndValueCandidatesDoNotGeneralizeTogether) {
  engine::Workload workload;
  workload.push_back(Parse(
      "for $s in c('SDOC')/Security[Convertible] return $s"));
  workload.push_back(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM4\" return $s"));
  advisor::IndexAdvisor advisor(&store_, &stats_);
  auto set = advisor.BuildCandidates(workload, /*generalize=*/true);
  ASSERT_TRUE(set.ok());
  for (const auto& c : set->candidates) {
    if (!c.is_general) continue;
    // Any generalized candidate must be purely structural or purely value.
    for (int b : c.covered_basics) {
      EXPECT_EQ((*set)[static_cast<size_t>(b)].pattern.structural,
                c.pattern.structural);
    }
  }
}

}  // namespace
}  // namespace xia
