#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "fault/deadline.h"
#include "fault/fault.h"

namespace xia::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }).ok());
    }
    // The destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> seen(kN);
  Status s = pool.ParallelFor(kN, [&seen](size_t i) {
    seen[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsOk) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.ParallelFor(0, [](size_t) {
                return Status::InvalidArgument("never called");
              }).ok());
}

TEST(ThreadPoolTest, FirstErrorBySmallestIndexWins) {
  // Both serial (1 thread) and parallel pools must report the error a
  // serial in-order loop would have reported: the smallest failing index.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    for (int round = 0; round < 10; ++round) {
      Status s = pool.ParallelFor(64, [](size_t i) {
        if (i == 7 || i == 40) {
          return Status::InvalidArgument("boom at " + std::to_string(i));
        }
        return Status::OK();
      });
      ASSERT_FALSE(s.ok());
      EXPECT_NE(s.message().find("boom at 7"), std::string::npos) << s;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  Status s = pool.ParallelFor(4, [&](size_t) {
    EXPECT_TRUE(ThreadPool::OnWorkerThread());
    // A nested ParallelFor from a worker must not deadlock the fixed-size
    // pool: it runs inline on the calling worker.
    return pool.ParallelFor(8, [&inner_total](size_t) {
      inner_total.fetch_add(1);
      return Status::OK();
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, ExpiredDeadlineSkipsItemsAndReportsInterrupt) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    bool interrupted = false;
    const fault::Deadline expired = fault::Deadline::AfterMillis(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Status s = pool.ParallelFor(
        100,
        [&ran](size_t) {
          ran.fetch_add(1);
          return Status::OK();
        },
        expired, nullptr, &interrupted);
    // An interrupt is not an error: the caller degrades to best-so-far.
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_TRUE(interrupted);
    EXPECT_EQ(ran.load(), 0);
  }
}

TEST(ThreadPoolTest, CancelTokenStopsDispatch) {
  ThreadPool pool(2);
  fault::CancelToken cancel;
  cancel.Cancel();
  std::atomic<int> ran{0};
  bool interrupted = false;
  Status s = pool.ParallelFor(
      50,
      [&ran](size_t) {
        ran.fetch_add(1);
        return Status::OK();
      },
      fault::Deadline::Infinite(), &cancel, &interrupted);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_TRUE(interrupted);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, InfiniteDeadlineRunsEverythingWithoutInterrupt) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  bool interrupted = true;
  Status s = pool.ParallelFor(
      64,
      [&ran](size_t) {
        ran.fetch_add(1);
        return Status::OK();
      },
      fault::Deadline::Infinite(), nullptr, &interrupted);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(interrupted);
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ArmedSubmitFaultSurfacesAsCleanStatus) {
  fault::ScopedFaultDisarm cleanup;
  fault::FaultRegistry::Global().Arm(fault::points::kPoolSubmit,
                                     fault::FaultSpec::Probability(1));
  ThreadPool pool(2);
  const Status direct = pool.Submit([] {});
  EXPECT_FALSE(direct.ok());
  EXPECT_NE(direct.message().find("fault injected"), std::string::npos)
      << direct;

  // ParallelFor propagates the dispatch failure instead of hanging or
  // reporting a half-run batch as success.
  std::atomic<int> ran{0};
  const Status batch = pool.ParallelFor(8, [&ran](size_t) {
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_FALSE(batch.ok());
  EXPECT_NE(batch.message().find("fault injected"), std::string::npos)
      << batch;
}

}  // namespace
}  // namespace xia::util
