#include <gtest/gtest.h>

#include "engine/normalizer.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "optimizer/selectivity.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "xpath/parser.h"

namespace xia::optimizer {
namespace {

engine::Statement Parse(const std::string& text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

TEST(ExtractIndexablePredicatesTest, PaperExampleQ1) {
  auto norm = engine::Normalize(Parse(
      "for $sec in SECURITY('SDOC')/Security "
      "where $sec/Symbol = \"BCIIPRC\" return $sec"));
  ASSERT_TRUE(norm.ok());
  auto preds = ExtractIndexablePredicates(*norm);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].pattern.ToString(), "/Security/Symbol");  // C1
  EXPECT_EQ(preds[0].type, xpath::ValueType::kString);
  EXPECT_EQ(preds[0].op, xpath::CompareOp::kEq);
}

TEST(ExtractIndexablePredicatesTest, PaperExampleQ2) {
  auto norm = engine::Normalize(Parse(
      "for $sec in SECURITY('SDOC')/Security[Yield>4.5] "
      "where $sec/SecInfo/*/Sector = \"Energy\" "
      "return <Security>{$sec/Name}</Security>"));
  ASSERT_TRUE(norm.ok());
  auto preds = ExtractIndexablePredicates(*norm);
  ASSERT_EQ(preds.size(), 2u);
  // C3 (inline) and C2 (rewritten from where).
  EXPECT_EQ(preds[0].pattern.ToString(), "/Security/Yield");
  EXPECT_EQ(preds[0].type, xpath::ValueType::kNumeric);
  EXPECT_EQ(preds[1].pattern.ToString(), "/Security/SecInfo/*/Sector");
  EXPECT_EQ(preds[1].type, xpath::ValueType::kString);
}

TEST(ExtractIndexablePredicatesTest, SkipsNonIndexable) {
  auto norm = engine::Normalize(Parse(
      "for $x in c('S')/a[b != 3][c][d > 1] return $x"));
  ASSERT_TRUE(norm.ok());
  auto preds = ExtractIndexablePredicates(*norm);
  // '!=' is skipped; the existence test [c] and the comparison d > 1 are
  // both indexable (the former by a structural index).
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_TRUE(preds[0].existence);
  EXPECT_EQ(preds[0].pattern.ToString(), "/a/c");
  EXPECT_FALSE(preds[1].existence);
  EXPECT_EQ(preds[1].pattern.ToString(), "/a/d");
}

TEST(ExtractIndexablePredicatesTest, MidPathPredicates) {
  auto norm = engine::Normalize(
      Parse("for $x in c('S')/a[b = 1]/c/d[e = 2] return $x"));
  ASSERT_TRUE(norm.ok());
  auto preds = ExtractIndexablePredicates(*norm);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].pattern.ToString(), "/a/b");
  EXPECT_EQ(preds[0].spine_step, 0u);
  EXPECT_EQ(preds[1].pattern.ToString(), "/a/c/d/e");
  EXPECT_EQ(preds[1].spine_step, 2u);
}

TEST(ValueSelectivityTest, Equality) {
  storage::IndexStats stats;
  stats.entry_count = 1000;
  stats.distinct_keys = 100;
  EXPECT_DOUBLE_EQ(
      ValueSelectivity(stats, xpath::CompareOp::kEq,
                       xpath::Literal::String("x")),
      0.01);
  EXPECT_DOUBLE_EQ(
      ValueSelectivity(stats, xpath::CompareOp::kNe,
                       xpath::Literal::String("x")),
      0.99);
}

TEST(ValueSelectivityTest, NumericRangeUniform) {
  storage::IndexStats stats;
  stats.entry_count = 1000;
  stats.distinct_keys = 500;
  stats.min_numeric = 0;
  stats.max_numeric = 10;
  EXPECT_NEAR(ValueSelectivity(stats, xpath::CompareOp::kGt,
                               xpath::Literal::Number(7.5)),
              0.25, 1e-9);
  EXPECT_NEAR(ValueSelectivity(stats, xpath::CompareOp::kLt,
                               xpath::Literal::Number(2.5)),
              0.25, 1e-9);
  // Out-of-range literals clamp.
  EXPECT_LE(ValueSelectivity(stats, xpath::CompareOp::kGt,
                             xpath::Literal::Number(100)),
            kMinSelectivity * 10);
  EXPECT_DOUBLE_EQ(ValueSelectivity(stats, xpath::CompareOp::kLt,
                                    xpath::Literal::Number(100)),
                   1.0);
}

TEST(ValueSelectivityTest, StringRangeDefault) {
  storage::IndexStats stats;
  stats.entry_count = 10;
  stats.distinct_keys = 10;
  EXPECT_DOUBLE_EQ(ValueSelectivity(stats, xpath::CompareOp::kGt,
                                    xpath::Literal::String("m")),
                   kDefaultStringRangeSelectivity);
}

TEST(ValueSelectivityTest, EmptyIndex) {
  storage::IndexStats stats;
  EXPECT_DOUBLE_EQ(ValueSelectivity(stats, xpath::CompareOp::kEq,
                                    xpath::Literal::Number(1)),
                   kMinSelectivity);
}

// -------------------------------------------------------------------------
// Optimizer fixture on the TPoX database.

class OptimizerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 300;
    scale.order_docs = 300;
    scale.custacc_docs = 100;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    catalog_ = std::make_unique<storage::Catalog>(&store_, &stats_);
    opt_ = std::make_unique<Optimizer>(&store_, catalog_.get(), &stats_);
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<Optimizer> opt_;
};

TEST_F(OptimizerFixture, NoIndexesMeansCollectionScan) {
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s"));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->kind, Plan::Kind::kCollectionScan);
  EXPECT_GT(plan->est_cost, 0);
}

TEST_F(OptimizerFixture, SelectiveIndexBeatsScan) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const engine::Statement stmt = Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s");
  auto without = opt_->OptimizeWithoutIndexes(stmt);
  auto with = opt_->Optimize(stmt);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->kind, Plan::Kind::kIndexScan);
  EXPECT_LT(with->est_cost, without->est_cost);
}

TEST_F(OptimizerFixture, UnselectivePredicateKeepsScan) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "yield", "SDOC",
                          {*xpath::ParsePattern("/Security/Yield"),
                           xpath::ValueType::kNumeric})
                  .ok());
  // Yield > 0.5 matches ~95% of securities; scanning wins.
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security[Yield > 0.5] return $s"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kind, Plan::Kind::kCollectionScan);
}

TEST_F(OptimizerFixture, TypeMismatchedIndexNotUsed) {
  // A numeric index cannot serve a string predicate on the same path.
  ASSERT_TRUE(catalog_->CreateIndex(
                          "symnum", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kNumeric})
                  .ok());
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kind, Plan::Kind::kCollectionScan);
}

TEST_F(OptimizerFixture, GeneralIndexMatchesSpecificPredicate) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "gen", "SDOC",
                          {*xpath::ParsePattern("/Security//*"),
                           xpath::ValueType::kString})
                  .ok());
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->kind, Plan::Kind::kIndexScan);
  EXPECT_EQ(plan->legs[0].index_name, "gen");
}

TEST_F(OptimizerFixture, SpecificIndexPreferredOverGeneral) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "gen", "SDOC",
                          {*xpath::ParsePattern("/Security//*"),
                           xpath::ValueType::kString})
                  .ok());
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->kind, Plan::Kind::kIndexScan);
  EXPECT_EQ(plan->legs[0].index_name, "sym");
}

TEST_F(OptimizerFixture, IndexAndingChosenForTwoSelectivePredicates) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sector", "SDOC",
                          {*xpath::ParsePattern("/Security/SecInfo/*/Sector"),
                           xpath::ValueType::kString})
                  .ok());
  ASSERT_TRUE(catalog_->CreateIndex(
                          "pe", "SDOC",
                          {*xpath::ParsePattern("/Security/PE"),
                           xpath::ValueType::kNumeric})
                  .ok());
  auto plan = opt_->Optimize(Parse(
      "for $s in c('SDOC')/Security[PE > 58] "
      "where $s/SecInfo/*/Sector = \"Energy\" return $s"));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->kind == Plan::Kind::kIndexScan ||
              plan->kind == Plan::Kind::kIndexAnd);
  EXPECT_LT(plan->est_cost,
            opt_->OptimizeWithoutIndexes(Parse(
                    "for $s in c('SDOC')/Security[PE > 58] "
                    "where $s/SecInfo/*/Sector = \"Energy\" return $s"))
                ->est_cost);
}

TEST_F(OptimizerFixture, EnumerateIndexesReturnsRewrittenPatterns) {
  auto patterns = opt_->EnumerateIndexes(Parse(
      "for $sec in SECURITY('SDOC')/Security[Yield>4.5] "
      "where $sec/SecInfo/*/Sector = \"Energy\" return $sec/Name"));
  ASSERT_TRUE(patterns.ok()) << patterns.status();
  ASSERT_EQ(patterns->size(), 2u);
  EXPECT_EQ((*patterns)[0].path.ToString(), "/Security/Yield");
  EXPECT_EQ((*patterns)[0].type, xpath::ValueType::kNumeric);
  EXPECT_EQ((*patterns)[1].path.ToString(), "/Security/SecInfo/*/Sector");
}

TEST_F(OptimizerFixture, EnumerateIndexesForDeleteAndInsert) {
  auto del = opt_->EnumerateIndexes(
      Parse("delete from ODOC where /FIXML/Order[@ID = \"100003\"]"));
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->size(), 1u);
  EXPECT_EQ((*del)[0].path.ToString(), "/FIXML/Order/@ID");

  auto ins = opt_->EnumerateIndexes(Parse("insert into ODOC <FIXML/>"));
  ASSERT_TRUE(ins.ok());
  EXPECT_TRUE(ins->empty());
}

TEST_F(OptimizerFixture, EnumerateDeduplicatesPatterns) {
  auto patterns = opt_->EnumerateIndexes(Parse(
      "for $s in c('SDOC')/Security[Yield > 1][Yield < 5] return $s"));
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 1u);
}

TEST_F(OptimizerFixture, DeletePlansUseIndexes) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "oid", "ODOC",
                          {*xpath::ParsePattern("/FIXML/Order/@ID"),
                           xpath::ValueType::kString})
                  .ok());
  const engine::Statement del =
      Parse("delete from ODOC where /FIXML/Order[@ID = \"100003\"]");
  auto plan = opt_->Optimize(del);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kind, Plan::Kind::kDelete);
  ASSERT_EQ(plan->legs.size(), 1u);
  EXPECT_EQ(plan->legs[0].index_name, "oid");
  auto noidx = opt_->OptimizeWithoutIndexes(del);
  ASSERT_TRUE(noidx.ok());
  EXPECT_LT(plan->est_cost, noidx->est_cost);
}

TEST_F(OptimizerFixture, InsertCostIndependentOfIndexes) {
  const engine::Statement ins =
      Parse("insert into ODOC <FIXML><Order ID=\"x\"/></FIXML>");
  auto before = opt_->Optimize(ins);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(catalog_->CreateIndex(
                          "oid", "ODOC",
                          {*xpath::ParsePattern("/FIXML/Order/@ID"),
                           xpath::ValueType::kString})
                  .ok());
  auto after = opt_->Optimize(ins);
  ASSERT_TRUE(after.ok());
  // DB2-style: the optimizer does NOT fold maintenance into the estimate.
  EXPECT_DOUBLE_EQ(before->est_cost, after->est_cost);
}

TEST_F(OptimizerFixture, MaintenanceCostChargedForUpdatesOnly) {
  auto data = stats_.Get("ODOC");
  ASSERT_TRUE(data.ok());
  const storage::IndexStats idx_stats = (*data)->DeriveIndexStats(
      {*xpath::ParsePattern("/FIXML/Order/@ID"), xpath::ValueType::kString},
      storage::DefaultCostConstants());

  const xpath::IndexPattern idx_pattern{
      *xpath::ParsePattern("/FIXML/Order/@ID"), xpath::ValueType::kString};
  const engine::Statement query =
      Parse("for $o in c('ODOC')/FIXML/Order where $o/@ID = \"1\" return $o");
  EXPECT_DOUBLE_EQ(opt_->MaintenanceCost(query, idx_pattern, idx_stats), 0.0);

  const engine::Statement ins = Parse("insert into ODOC <FIXML/>");
  EXPECT_GT(opt_->MaintenanceCost(ins, idx_pattern, idx_stats), 0.0);

  const engine::Statement del =
      Parse("delete from ODOC where /FIXML/Order[@ID = \"100003\"]");
  EXPECT_GT(opt_->MaintenanceCost(del, idx_pattern, idx_stats), 0.0);

  // A value update maintains only indexes that can reach the updated
  // nodes.
  const engine::Statement upd = Parse(
      "update ODOC set /FIXML/Order/Px = 10 "
      "where /FIXML/Order[@ID = \"100003\"]");
  EXPECT_DOUBLE_EQ(opt_->MaintenanceCost(upd, idx_pattern, idx_stats), 0.0);
  auto odata = stats_.Get("ODOC");
  ASSERT_TRUE(odata.ok());
  const xpath::IndexPattern px_pattern{*xpath::ParsePattern("/FIXML/Order/Px"),
                                       xpath::ValueType::kNumeric};
  const storage::IndexStats px_stats = (*odata)->DeriveIndexStats(
      px_pattern, storage::DefaultCostConstants());
  EXPECT_GT(opt_->MaintenanceCost(upd, px_pattern, px_stats), 0.0);
  const xpath::IndexPattern wide{*xpath::ParsePattern("/FIXML//*"),
                                 xpath::ValueType::kNumeric};
  const storage::IndexStats wide_stats = (*odata)->DeriveIndexStats(
      wide, storage::DefaultCostConstants());
  EXPECT_GT(opt_->MaintenanceCost(upd, wide, wide_stats), 0.0);
}

TEST_F(OptimizerFixture, VirtualIndexesCostLikeReal) {
  // The what-if property: a virtual index must yield (nearly) the same
  // plan cost as the physically built index.
  const engine::Statement stmt = Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s");
  ASSERT_TRUE(catalog_->CreateVirtualIndex(
                          "vsym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  auto virtual_plan = opt_->Optimize(stmt);
  ASSERT_TRUE(virtual_plan.ok());
  ASSERT_EQ(virtual_plan->kind, Plan::Kind::kIndexScan);
  EXPECT_TRUE(virtual_plan->uses_virtual_index);
  catalog_->DropAllVirtualIndexes();

  ASSERT_TRUE(catalog_->CreateIndex(
                          "rsym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  auto real_plan = opt_->Optimize(stmt);
  ASSERT_TRUE(real_plan.ok());
  ASSERT_EQ(real_plan->kind, Plan::Kind::kIndexScan);
  EXPECT_NEAR(virtual_plan->est_cost, real_plan->est_cost,
              0.25 * real_plan->est_cost + 1.0);
}

TEST_F(OptimizerFixture, CallCounting) {
  opt_->ResetCallCount();
  EXPECT_EQ(opt_->optimize_calls(), 0u);
  const engine::Statement stmt =
      Parse("for $s in c('SDOC')/Security[PE > 1] return $s");
  ASSERT_TRUE(opt_->Optimize(stmt).ok());
  ASSERT_TRUE(opt_->OptimizeWithoutIndexes(stmt).ok());
  ASSERT_TRUE(opt_->EnumerateIndexes(stmt).ok());
  EXPECT_EQ(opt_->optimize_calls(), 3u);
}

TEST_F(OptimizerFixture, UnknownCollectionFails) {
  auto plan = opt_->Optimize(
      Parse("for $s in c('NOPE')/Security[PE > 1] return $s"));
  EXPECT_FALSE(plan.ok());
}

TEST(PlanTest, DescribeMentionsStructure) {
  Plan scan;
  scan.kind = Plan::Kind::kCollectionScan;
  scan.est_cost = 12.5;
  EXPECT_NE(scan.Describe().find("COLLECTION-SCAN"), std::string::npos);

  Plan idx;
  idx.kind = Plan::Kind::kIndexScan;
  PlanLeg leg;
  leg.index_name = "foo";
  leg.index_pattern = {*xpath::ParsePattern("/a/b"),
                       xpath::ValueType::kString};
  leg.index_is_virtual = true;
  idx.legs.push_back(leg);
  const std::string described = idx.Describe();
  EXPECT_NE(described.find("INDEX-SCAN"), std::string::npos);
  EXPECT_NE(described.find("foo"), std::string::npos);
  EXPECT_NE(described.find("virtual"), std::string::npos);
}

}  // namespace
}  // namespace xia::optimizer
