#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "storage/btree.h"
#include "util/random.h"

namespace xia::storage {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_FALSE(tree.Begin().valid());
  EXPECT_FALSE(tree.LowerBound(0).valid());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, InsertAndContains) {
  BTree<int> tree;
  EXPECT_TRUE(tree.Insert(5));
  EXPECT_TRUE(tree.Insert(3));
  EXPECT_TRUE(tree.Insert(9));
  EXPECT_FALSE(tree.Insert(5));  // duplicate
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.Contains(3));
  EXPECT_TRUE(tree.Contains(5));
  EXPECT_TRUE(tree.Contains(9));
  EXPECT_FALSE(tree.Contains(4));
}

TEST(BTreeTest, SortedIteration) {
  BTree<int> tree;
  for (int v : {7, 1, 9, 3, 5}) tree.Insert(v);
  std::vector<int> out;
  for (auto it = tree.Begin(); it.valid(); it.Next()) out.push_back(it.key());
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree<int> tree;
  const int n = 10000;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(tree.Insert(i));
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_GT(tree.height(), 1u);
  EXPECT_GT(tree.leaf_count(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  // All present, in order.
  int expect = 0;
  for (auto it = tree.Begin(); it.valid(); it.Next()) {
    EXPECT_EQ(it.key(), expect++);
  }
  EXPECT_EQ(expect, n);
}

TEST(BTreeTest, ReverseInsertionOrder) {
  BTree<int> tree;
  for (int i = 999; i >= 0; --i) tree.Insert(i);
  EXPECT_TRUE(tree.CheckInvariants());
  int expect = 0;
  for (auto it = tree.Begin(); it.valid(); it.Next()) {
    EXPECT_EQ(it.key(), expect++);
  }
}

TEST(BTreeTest, EraseLeavesTreeConsistent) {
  BTree<int> tree;
  for (int i = 0; i < 2000; ++i) tree.Insert(i);
  for (int i = 0; i < 2000; i += 2) EXPECT_TRUE(tree.Erase(i));
  EXPECT_FALSE(tree.Erase(0));  // already gone
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(tree.Contains(i), i % 2 == 1) << i;
  }
}

TEST(BTreeTest, EraseEverythingShrinksHeight) {
  BTree<int> tree;
  for (int i = 0; i < 5000; ++i) tree.Insert(i);
  const size_t tall = tree.height();
  EXPECT_GT(tall, 1u);
  for (int i = 0; i < 5000; ++i) EXPECT_TRUE(tree.Erase(i));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.internal_count(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, LowerBound) {
  BTree<int> tree;
  for (int i = 0; i < 100; i += 10) tree.Insert(i);  // 0,10,...,90
  auto it = tree.LowerBound(35);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 40);
  it = tree.LowerBound(40);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 40);
  it = tree.LowerBound(-5);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 0);
  EXPECT_FALSE(tree.LowerBound(91).valid());
}

TEST(BTreeTest, ScanRange) {
  BTree<int> tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(i);
  std::vector<int> got;
  const size_t pages = tree.Scan(100, 199, [&](const int& k) {
    got.push_back(k);
    return true;
  });
  EXPECT_EQ(got.size(), 100u);
  EXPECT_EQ(got.front(), 100);
  EXPECT_EQ(got.back(), 199);
  EXPECT_GE(pages, 1u);
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree<int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i);
  int count = 0;
  tree.Scan(0, 99, [&](const int&) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

TEST(BTreeTest, PageAccountingMatchesStructure) {
  BTree<int> tree;
  for (int i = 0; i < 20000; ++i) tree.Insert(i);
  // Leaves hold at most kLeafCapacity keys and (after pure inserts) at
  // least half that.
  EXPECT_GE(tree.leaf_count(),
            20000 / BTree<int>::kLeafCapacity);
  EXPECT_LE(tree.leaf_count(),
            2 * (20000 / BTree<int>::kLeafCapacity) + 1);
}

// Model-based randomized test against std::set.
class BTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeModelTest, MatchesStdSetUnderRandomOps) {
  Random rng(GetParam());
  BTree<int> tree;
  std::set<int> model;
  const int kUniverse = 500;
  for (int op = 0; op < 20000; ++op) {
    const int key = static_cast<int>(rng.Uniform(kUniverse));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0) {
      EXPECT_EQ(tree.Insert(key), model.insert(key).second);
    } else if (action == 1) {
      EXPECT_EQ(tree.Erase(key), model.erase(key) > 0);
    } else {
      EXPECT_EQ(tree.Contains(key), model.count(key) > 0);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.CheckInvariants());
  // Full ordered comparison.
  auto it = tree.Begin();
  for (int v : model) {
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(it.key(), v);
    it.Next();
  }
  EXPECT_FALSE(it.valid());
  // LowerBound agreement at every point.
  for (int key = -1; key <= kUniverse; ++key) {
    auto tit = tree.LowerBound(key);
    auto mit = model.lower_bound(key);
    if (mit == model.end()) {
      EXPECT_FALSE(tit.valid()) << key;
    } else {
      ASSERT_TRUE(tit.valid()) << key;
      EXPECT_EQ(tit.key(), *mit) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(BTreeTest, StringKeys) {
  BTree<std::string> tree;
  tree.Insert("Energy");
  tree.Insert("Aerospace");
  tree.Insert("Tech");
  std::vector<std::string> out;
  for (auto it = tree.Begin(); it.valid(); it.Next()) out.push_back(it.key());
  EXPECT_EQ(out, (std::vector<std::string>{"Aerospace", "Energy", "Tech"}));
}

TEST(BTreeTest, MoveConstruction) {
  BTree<int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i);
  BTree<int> moved = std::move(tree);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_TRUE(moved.Contains(42));
  EXPECT_TRUE(moved.CheckInvariants());
}

// ---- BulkLoad ----

TEST(BTreeTest, BulkLoadEmpty) {
  BTree<int> tree;
  EXPECT_TRUE(tree.BulkLoad({}));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  // The emptied tree is still fully usable.
  EXPECT_TRUE(tree.Insert(7));
  EXPECT_TRUE(tree.Contains(7));
}

TEST(BTreeTest, BulkLoadSingleKey) {
  BTree<int> tree;
  EXPECT_TRUE(tree.BulkLoad({42}));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.Contains(42));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, BulkLoadRejectsDuplicates) {
  BTree<int> tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i);
  EXPECT_FALSE(tree.BulkLoad({1, 2, 2, 3}));
  // Input is validated before the tree is touched: a rejected load
  // leaves the existing contents intact, never a half-packed tree.
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_TRUE(tree.Contains(9));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, BulkLoadRejectsUnsortedInput) {
  BTree<int> tree;
  EXPECT_FALSE(tree.BulkLoad({3, 2, 1}));   // reverse-sorted
  EXPECT_FALSE(tree.BulkLoad({1, 3, 2}));   // locally unsorted
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

// Every size around the leaf-capacity boundaries must satisfy the same
// min-fill invariants Erase maintains (the tail-donation rule).
TEST(BTreeTest, BulkLoadBoundarySizes) {
  for (size_t n : {1u, 31u, 32u, 33u, 63u, 64u, 65u, 95u, 96u, 97u, 128u,
                   129u, 4159u, 4160u, 4161u}) {
    std::vector<int> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = static_cast<int>(i);
    BTree<int> tree;
    ASSERT_TRUE(tree.BulkLoad(keys)) << n;
    ASSERT_EQ(tree.size(), n) << n;
    ASSERT_TRUE(tree.CheckInvariants()) << n;
    int expect = 0;
    for (auto it = tree.Begin(); it.valid(); it.Next()) {
      ASSERT_EQ(it.key(), expect++) << n;
    }
    ASSERT_EQ(static_cast<size_t>(expect), n);
  }
}

TEST(BTreeTest, BulkLoadMatchesIncrementalAt100k) {
  const int n = 100000;
  std::vector<int> keys(n);
  for (int i = 0; i < n; ++i) keys[i] = i * 3;

  BTree<int> incremental;
  for (int k : keys) ASSERT_TRUE(incremental.Insert(k));
  BTree<int> bulk;
  ASSERT_TRUE(bulk.BulkLoad(keys));

  EXPECT_EQ(bulk.size(), incremental.size());
  EXPECT_TRUE(bulk.CheckInvariants());
  auto a = bulk.Begin();
  auto b = incremental.Begin();
  while (a.valid() && b.valid()) {
    ASSERT_EQ(a.key(), b.key());
    a.Next();
    b.Next();
  }
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
  // Bottom-up packing must not be *worse* than split-grown structure.
  EXPECT_LE(bulk.height(), incremental.height());
  EXPECT_LE(bulk.leaf_count(), incremental.leaf_count());
}

TEST(BTreeTest, EraseAndInsertAfterBulkLoad) {
  const int n = 20000;
  std::vector<int> keys(n);
  for (int i = 0; i < n; ++i) keys[i] = i;
  BTree<int> tree;
  ASSERT_TRUE(tree.BulkLoad(keys));

  // The packed tree honors the same min-fill contract as a split-grown
  // one, so heavy erasure must rebalance cleanly.
  Random rng(7);
  std::set<int> model(keys.begin(), keys.end());
  for (int round = 0; round < 15000; ++round) {
    const int k = static_cast<int>(rng.Uniform(2 * n));
    if (rng.Next() & 1) {
      EXPECT_EQ(tree.Erase(k), model.erase(k) > 0);
    } else {
      EXPECT_EQ(tree.Insert(k), model.insert(k).second);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  EXPECT_TRUE(tree.CheckInvariants());
  auto it = tree.Begin();
  for (int k : model) {
    ASSERT_TRUE(it.valid());
    ASSERT_EQ(it.key(), k);
    it.Next();
  }
  EXPECT_FALSE(it.valid());
}

}  // namespace
}  // namespace xia::storage
