// End-to-end test for the online advising loop (ISSUE 2 acceptance):
// queries executed through the engine flow into the capture sink, the
// background OnlineAdvisor folds them into templates and recommends, and
// the online recommendation equals a batch advise over the same captured
// workload.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "workload/capture.h"
#include "workload/online_advisor.h"

namespace xia::workload {
namespace {

std::vector<std::string> Ddls(const advisor::Recommendation& rec) {
  std::vector<std::string> out;
  for (const auto& ri : rec.indexes) out.push_back(ri.ddl);
  return out;
}

class OnlineAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 300;
    scale.order_docs = 400;
    scale.custacc_docs = 100;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    catalog_ = std::make_unique<storage::Catalog>(&store_, &stats_);
    optimizer_ = std::make_unique<optimizer::Optimizer>(&store_,
                                                        catalog_.get(),
                                                        &stats_);
    executor_ = std::make_unique<engine::Executor>(&store_, catalog_.get());
    advisor_ = std::make_unique<advisor::IndexAdvisor>(&store_, &stats_);
    executor_->set_sink(&capture_);
  }

  OnlineAdvisorOptions Options() {
    OnlineAdvisorOptions options;
    options.min_new_queries = 32;
    options.advise_interval_seconds = 0.05;
    options.poll_interval_seconds = 0.005;
    options.advisor.disk_budget_bytes = 2.0 * 1024 * 1024;
    return options;
  }

  // Executes every TPoX query `rounds` times through the real engine
  // path, which publishes into capture_ via the executor sink.
  void RunTraffic(int rounds) {
    auto queries = tpox::TpoxQueries();
    ASSERT_TRUE(queries.ok()) << queries.status();
    for (int r = 0; r < rounds; ++r) {
      for (const auto& stmt : *queries) {
        std::lock_guard<std::mutex> db(db_mu_);
        auto result = executor_->ExecuteBest(stmt, *optimizer_);
        ASSERT_TRUE(result.ok()) << result.status();
      }
    }
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<engine::Executor> executor_;
  std::unique_ptr<advisor::IndexAdvisor> advisor_;
  WorkloadCapture capture_;
  std::mutex db_mu_;
};

TEST_F(OnlineAdvisorTest, OnlineMatchesBatchOverCapturedWorkload) {
  OnlineAdvisor online(&capture_, advisor_.get(), Options(), &db_mu_);
  ASSERT_TRUE(online.Start().ok());
  EXPECT_TRUE(online.running());

  RunTraffic(/*rounds=*/10);  // 110 queries >= the 100 the issue asks for.

  // Force a final synchronous pass so nothing is left pending, then stop.
  ASSERT_TRUE(online.AdviseNow().ok());
  online.Stop();
  EXPECT_FALSE(online.running());

  OnlineAdvisorStatus status = online.Snapshot();
  EXPECT_EQ(status.queries_seen, 110u);
  EXPECT_EQ(status.template_count, 11u);
  EXPECT_GE(status.advise_runs, 1u);
  EXPECT_EQ(status.advise_failures, 0u);
  ASSERT_TRUE(status.has_recommendation);
  EXPECT_FALSE(status.recommendation.indexes.empty());

  // The acceptance bar: the online recommendation equals a batch advise
  // over the same captured (templatized, weighted) workload.
  const engine::Workload captured = online.CurrentWorkload();
  ASSERT_EQ(captured.size(), 11u);
  auto batch = advisor_->Recommend(captured, Options().advisor);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(Ddls(status.recommendation), Ddls(*batch));
  EXPECT_DOUBLE_EQ(status.recommendation.total_size_bytes,
                   batch->total_size_bytes);
}

TEST_F(OnlineAdvisorTest, BackgroundThreadAdvisesOnItsOwn) {
  OnlineAdvisor online(&capture_, advisor_.get(), Options(), &db_mu_);
  ASSERT_TRUE(online.Start().ok());

  RunTraffic(/*rounds=*/6);  // 66 queries > min_new_queries = 32.

  // No AdviseNow(): the background thread must pick the work up itself.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (online.Snapshot().advise_runs == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  online.Stop();

  OnlineAdvisorStatus status = online.Snapshot();
  EXPECT_GE(status.advise_runs, 1u);
  EXPECT_EQ(status.advise_failures, 0u);
  EXPECT_TRUE(status.has_recommendation);
  EXPECT_GT(status.queries_seen, 0u);
  EXPECT_GT(status.recommendation.indexes.size(), 0u);
}

TEST_F(OnlineAdvisorTest, StopIsIdempotentAndRestartable) {
  OnlineAdvisor online(&capture_, advisor_.get(), Options(), &db_mu_);
  EXPECT_FALSE(online.running());
  online.Stop();  // Stop before Start is a no-op.
  ASSERT_TRUE(online.Start().ok());
  EXPECT_FALSE(online.Start().ok());  // Double-start is refused.
  online.Stop();
  online.Stop();
  EXPECT_FALSE(online.running());
  // Capture is disabled after Stop: publications are ignored.
  auto queries = tpox::TpoxQueries();
  ASSERT_TRUE(queries.ok());
  EXPECT_FALSE(capture_.Publish((*queries)[0]));

  // Restart picks the loop back up.
  ASSERT_TRUE(online.Start().ok());
  EXPECT_TRUE(online.running());
  RunTraffic(/*rounds=*/1);
  ASSERT_TRUE(online.AdviseNow().ok());
  online.Stop();
  EXPECT_EQ(online.Snapshot().queries_seen, 11u);
}

TEST_F(OnlineAdvisorTest, ChurnSettlesOnStableTraffic) {
  // No background thread here: passes are driven synchronously via
  // AdviseNow() so the churn of each pass is deterministic.
  OnlineAdvisor online(&capture_, advisor_.get(), Options(), &db_mu_);
  capture_.set_enabled(true);

  RunTraffic(/*rounds=*/5);
  ASSERT_TRUE(online.AdviseNow().ok());
  OnlineAdvisorStatus first = online.Snapshot();
  ASSERT_TRUE(first.has_recommendation);
  EXPECT_EQ(first.last_entered, first.recommendation.indexes.size());
  EXPECT_EQ(first.last_left, 0u);

  // Same traffic again: weights double uniformly, the configuration must
  // not move, so churn is zero.
  RunTraffic(/*rounds=*/5);
  ASSERT_TRUE(online.AdviseNow().ok());
  OnlineAdvisorStatus second = online.Snapshot();
  EXPECT_EQ(Ddls(second.recommendation), Ddls(first.recommendation));
  EXPECT_EQ(second.last_entered, 0u);
  EXPECT_EQ(second.last_left, 0u);
}

}  // namespace
}  // namespace xia::workload
