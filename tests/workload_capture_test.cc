// xia::workload unit tests: the capture sink, templatization (constants ->
// markers, normalization-aware dedup), and the canonical text
// serialization with its byte-identical round-trip guarantee.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "engine/query_parser.h"
#include "workload/capture.h"
#include "workload/templatizer.h"
#include "workload/workload_io.h"

namespace xia::workload {
namespace {

engine::Statement Parse(const std::string& text, double freq = 1.0,
                        const std::string& label = "") {
  auto stmt = engine::ParseStatement(text, freq, label);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

// ---------------------------------------------------------------- capture

TEST(WorkloadCaptureTest, DisabledCaptureIgnoresPublications) {
  WorkloadCapture capture;
  EXPECT_FALSE(capture.enabled());
  EXPECT_FALSE(capture.Publish(Parse(
      "for $s in collection('SDOC')/Security return $s")));
  EXPECT_EQ(capture.pending(), 0u);
  EXPECT_EQ(capture.published(), 0u);
}

TEST(WorkloadCaptureTest, PublishDrainRoundTrip) {
  WorkloadCapture capture;
  capture.set_enabled(true);
  EXPECT_TRUE(capture.Publish(
      Parse("for $s in collection('SDOC')/Security return $s"), 0.25));
  EXPECT_TRUE(capture.Publish(
      Parse("for $s in collection('ODOC')/FIXML return $s"), 0.5));
  EXPECT_EQ(capture.pending(), 2u);

  std::vector<CapturedQuery> batch = capture.Drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].sequence, 0u);
  EXPECT_EQ(batch[1].sequence, 1u);
  EXPECT_DOUBLE_EQ(batch[0].wall_seconds, 0.25);
  EXPECT_EQ(batch[0].statement.collection(), "SDOC");
  EXPECT_EQ(batch[1].statement.collection(), "ODOC");
  EXPECT_EQ(capture.pending(), 0u);
  EXPECT_EQ(capture.published(), 2u);
  EXPECT_EQ(capture.drained(), 2u);
  EXPECT_TRUE(capture.Drain().empty());
}

TEST(WorkloadCaptureTest, CapacityBoundsPendingAndCountsDrops) {
  WorkloadCapture capture(/*capacity=*/2);
  capture.set_enabled(true);
  const engine::Statement stmt =
      Parse("for $s in collection('SDOC')/Security return $s");
  EXPECT_TRUE(capture.Publish(stmt));
  EXPECT_TRUE(capture.Publish(stmt));
  EXPECT_FALSE(capture.Publish(stmt));  // full
  EXPECT_EQ(capture.pending(), 2u);
  EXPECT_EQ(capture.dropped(), 1u);
  // Draining frees capacity again.
  EXPECT_EQ(capture.Drain().size(), 2u);
  EXPECT_TRUE(capture.Publish(stmt));
}

// ----------------------------------------------------------- templatizer

TEST(TemplatizerTest, ConstantsCollapseIntoOneTemplate) {
  Templatizer t;
  EXPECT_TRUE(t.Add(Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/Symbol = \"SYM000017\" return $s")));
  EXPECT_FALSE(t.Add(Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/Symbol = \"SYM000042\" return $s")));
  EXPECT_FALSE(t.Add(Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/Symbol = \"SYM000099\" return $s")));
  EXPECT_EQ(t.template_count(), 1u);
  EXPECT_EQ(t.raw_count(), 3u);
  EXPECT_DOUBLE_EQ(t.DedupRatio(), 3.0);
  // The representative keeps the first concrete literal.
  const engine::Workload w = t.ToWorkload();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0].frequency, 3.0);
  EXPECT_NE(w[0].text.find("SYM000017"), std::string::npos);
}

TEST(TemplatizerTest, NormalizationMergesWhereAndInlinePredicates) {
  // A where-clause conjunct and the equivalent inline predicate rewrite to
  // the same normalized path, so they are one template.
  Templatizer t;
  EXPECT_TRUE(t.Add(Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/Yield > 4.5 return $s")));
  EXPECT_FALSE(t.Add(Parse(
      "for $s in collection('SDOC')/Security[Yield > 9.9] return $s")));
  EXPECT_EQ(t.template_count(), 1u);
}

TEST(TemplatizerTest, ShapeDifferencesStaySeparate) {
  Templatizer t;
  const char* variants[] = {
      // Different compared path.
      "for $s in collection('SDOC')/Security where $s/Symbol = \"A\" "
      "return $s",
      "for $s in collection('SDOC')/Security where $s/Name = \"A\" "
      "return $s",
      // Different operator.
      "for $s in collection('SDOC')/Security where $s/Symbol != \"A\" "
      "return $s",
      // Different literal *type* (string vs numeric).
      "for $s in collection('SDOC')/Security where $s/Symbol = 7 return $s",
      // Different collection.
      "for $s in collection('ODOC')/Security where $s/Symbol = \"A\" "
      "return $s",
      // Different returns.
      "for $s in collection('SDOC')/Security where $s/Symbol = \"A\" "
      "return $s/Name",
  };
  for (const char* text : variants) EXPECT_TRUE(t.Add(Parse(text))) << text;
  EXPECT_EQ(t.template_count(), 6u);
}

TEST(TemplatizerTest, ModificationStatements) {
  Templatizer t;
  // All inserts into one collection are one template.
  EXPECT_TRUE(t.Add(Parse("insert into ODOC <FIXML><Order/></FIXML>")));
  EXPECT_FALSE(t.Add(Parse("insert into ODOC <FIXML><Other/></FIXML>")));
  EXPECT_TRUE(t.Add(Parse("insert into SDOC <Security/>")));
  // Deletes dedupe up to constants.
  EXPECT_TRUE(t.Add(Parse(
      "delete from ODOC where /FIXML/Order[@ID = \"100001\"]")));
  EXPECT_FALSE(t.Add(Parse(
      "delete from ODOC where /FIXML/Order[@ID = \"100002\"]")));
  // Updates dedupe up to constants (match literal and new value).
  EXPECT_TRUE(t.Add(Parse(
      "update SDOC set /Security/Yield = 9.9 "
      "where /Security[Symbol = \"A\"]")));
  EXPECT_FALSE(t.Add(Parse(
      "update SDOC set /Security/Yield = 1.1 "
      "where /Security[Symbol = \"B\"]")));
  // ... but a different update target is a different template.
  EXPECT_TRUE(t.Add(Parse(
      "update SDOC set /Security/Price/Last = 1.0 "
      "where /Security[Symbol = \"A\"]")));
  EXPECT_EQ(t.template_count(), 5u);
}

TEST(TemplatizerTest, AddWorkloadWeightsByFrequency) {
  Templatizer t;
  engine::Workload w;
  w.push_back(Parse("for $s in collection('SDOC')/Security "
                    "where $s/Symbol = \"A\" return $s",
                    20.0, "hot"));
  w.push_back(Parse("for $s in collection('SDOC')/Security "
                    "where $s/Symbol = \"B\" return $s",
                    5.0));
  EXPECT_EQ(t.AddWorkload(w), 1u);
  const engine::Workload out = t.ToWorkload();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].frequency, 25.0);
  EXPECT_EQ(out[0].label, "hot");
}

TEST(TemplatizerTest, ClearResets) {
  Templatizer t;
  t.Add(Parse("for $s in collection('SDOC')/Security return $s"));
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.raw_count(), 0u);
  EXPECT_DOUBLE_EQ(t.DedupRatio(), 0.0);
}

// ---------------------------------------------------------- serialization

engine::Workload SampleWorkload() {
  engine::Workload w;
  w.push_back(Parse("for $s in collection('SDOC')/Security "
                    "where $s/Symbol = \"SYM000017\" return $s",
                    20.0, "get_security"));
  w.push_back(Parse("for $s in collection('SDOC')/Security[Yield > 4.5] "
                    "where $s/SecInfo/*/Sector = \"Energy\" "
                    "return $s/Name, $s/Symbol",
                    2.5));
  w.push_back(Parse("update SDOC set /Security/Yield = 9.9 "
                    "where /Security[Symbol = \"SYM000017\"]",
                    3.0, "bump"));
  w.push_back(Parse("delete from ODOC where /FIXML/Order[@ID = \"100001\"]"));
  return w;
}

TEST(WorkloadIoTest, SerializeParsesBackEquivalent) {
  const engine::Workload w = SampleWorkload();
  auto text = SerializeWorkload(w);
  ASSERT_TRUE(text.ok()) << text.status();
  auto loaded = DeserializeWorkload(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_TRUE(engine::SameStatementBody(w[i], (*loaded)[i])) << i;
    EXPECT_DOUBLE_EQ((*loaded)[i].frequency, w[i].frequency) << i;
  }
  EXPECT_EQ((*loaded)[0].label, "get_security");
  // Unlabeled statements pick up the parser's positional default.
  EXPECT_EQ((*loaded)[1].label, "stmt-2");
  EXPECT_EQ((*loaded)[3].label, "stmt-4");
}

TEST(WorkloadIoTest, SaveLoadSaveIsByteIdentical) {
  const engine::Workload w = SampleWorkload();
  auto first = SerializeWorkload(w);
  ASSERT_TRUE(first.ok()) << first.status();
  auto loaded = DeserializeWorkload(*first);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto second = SerializeWorkload(*loaded);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);
}

TEST(WorkloadIoTest, MultiLineStatementsCollapseToOneLine) {
  engine::Workload w;
  w.push_back(Parse("for $s in collection('SDOC')/Security\n"
                    "  where $s/Symbol = \"A\"\n  return $s"));
  auto text = SerializeWorkload(w);
  ASSERT_TRUE(text.ok()) << text.status();
  // Header + annotation line + statement line + CRC trailer.
  int lines = 0;
  for (const char c : *text) lines += c == '\n';
  EXPECT_EQ(lines, 4);
  auto loaded = DeserializeWorkload(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(engine::SameStatementBody(w[0], (*loaded)[0]));
}

TEST(WorkloadIoTest, CrcTrailerDetectsEveryBodyByteFlip) {
  engine::Workload w;
  w.push_back(Parse("for $s in collection('SDOC')/Security "
                    "where $s/Symbol = \"A\" return $s", 3.0));
  auto text = SerializeWorkload(w);
  ASSERT_TRUE(text.ok());
  // The trailer is the final line; everything before it is CRC-covered.
  const size_t body_len = text->rfind("# crc32=");
  ASSERT_NE(body_len, std::string::npos);
  for (size_t offset = 0; offset < body_len; ++offset) {
    std::string corrupt = *text;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
    auto loaded = DeserializeWorkload(corrupt);
    ASSERT_FALSE(loaded.ok()) << "flip at offset " << offset;
    // Flipping the newline that terminates the body breaks trailer
    // *detection* (the file degrades to an unverified legacy parse, which
    // then fails on the mangled statement); every other body flip is
    // caught by the checksum itself.
    if (offset + 1 < body_len) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
          << "flip at offset " << offset;
    }
  }
}

TEST(WorkloadIoTest, TamperedTrailerChecksumRejected) {
  engine::Workload w;
  w.push_back(Parse("for $s in collection('SDOC')/Security return $s"));
  auto text = SerializeWorkload(w);
  ASSERT_TRUE(text.ok());
  std::string corrupt = *text;
  // Replace the stored checksum with a different valid-looking one.
  const size_t hex_start = corrupt.rfind("# crc32=") + 8;
  corrupt[hex_start] = corrupt[hex_start] == '0' ? '1' : '0';
  auto loaded = DeserializeWorkload(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(WorkloadIoTest, LegacyFileWithoutTrailerStillLoads) {
  // Hand-written (or pre-CRC) workload files have no trailer and must be
  // accepted unverified.
  const std::string legacy =
      "@freq=2 @label=q1\n"
      "for $s in collection('SDOC')/Security return $s;\n";
  auto loaded = DeserializeWorkload(legacy);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_DOUBLE_EQ((*loaded)[0].frequency, 2.0);
}

TEST(WorkloadIoTest, EmptyWorkloadRejected) {
  EXPECT_FALSE(SerializeWorkload(engine::Workload()).ok());
}

TEST(WorkloadIoTest, UnquotedHashRejected) {
  engine::Workload w;
  w.push_back(Parse("insert into SDOC <Security color=\"x\">#1</Security>"));
  EXPECT_FALSE(SerializeWorkload(w).ok());
  // A '#' inside a string literal is fine.
  engine::Workload ok;
  ok.push_back(Parse("for $s in collection('SDOC')/Security "
                     "where $s/Symbol = \"#1\" return $s"));
  EXPECT_TRUE(SerializeWorkload(ok).ok());
}

TEST(WorkloadIoTest, FileRoundTripAndMissingDirectory) {
  const engine::Workload w = SampleWorkload();
  const std::string path =
      (std::filesystem::temp_directory_path() / "xia_workload_io_test.xq")
          .string();
  ASSERT_TRUE(SaveWorkloadToFile(w, path).ok());
  auto loaded = LoadWorkloadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), w.size());
  std::remove(path.c_str());

  EXPECT_FALSE(
      SaveWorkloadToFile(w, "/nonexistent-xia-dir/w.xq").ok());
  EXPECT_FALSE(LoadWorkloadFromFile(path).ok());  // deleted above
}

// -------------------------------------------------- executor sink wiring

TEST(QuerySinkTest, TemplateKeyIsStableAcrossEquivalentForms) {
  // collection('X') and SECURITY('X') spellings parse to the same body and
  // therefore the same key.
  EXPECT_EQ(TemplateKey(Parse("for $s in collection('SDOC')/Security "
                              "where $s/Symbol = \"A\" return $s")),
            TemplateKey(Parse("for $s in SECURITY('SDOC')/Security "
                              "where $s/Symbol = \"B\" return $s")));
}

}  // namespace
}  // namespace xia::workload
