// End-to-end advisor tests on the TPoX database: the full §III-§VII
// pipeline, including the paper's running example, maintenance-cost
// behaviour, and the estimated-vs-actual speedup linkage.

#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "advisor/report.h"
#include "engine/executor.h"
#include "engine/query_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "util/random.h"
#include "xpath/parser.h"

namespace xia::advisor {
namespace {

engine::Statement Parse(const std::string& text, double freq = 1.0) {
  auto stmt = engine::ParseStatement(text, freq);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

class AdvisorE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 500;
    scale.order_docs = 600;
    scale.custacc_docs = 150;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    advisor_ = std::make_unique<IndexAdvisor>(&store_, &stats_);
  }

  engine::Workload PaperWorkload() {
    engine::Workload w;
    w.push_back(Parse(
        "for $sec in SECURITY('SDOC')/Security "
        "where $sec/Symbol = \"SYM000101\" return $sec"));
    w.push_back(Parse(
        "for $sec in SECURITY('SDOC')/Security[Yield > 4.5] "
        "where $sec/SecInfo/*/Sector = \"Energy\" "
        "return <Security>{$sec/Name}</Security>"));
    return w;
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<IndexAdvisor> advisor_;
};

TEST_F(AdvisorE2eTest, TableOneCandidates) {
  auto set = advisor_->BuildCandidates(PaperWorkload(), /*generalize=*/true);
  ASSERT_TRUE(set.ok()) << set.status();
  // C1, C2, C3 basic; C4 = /Security//* general (Table I).
  ASSERT_EQ(set->basic_count, 3u);
  ASSERT_EQ(set->size(), 4u);
  EXPECT_EQ((*set)[0].pattern.path.ToString(), "/Security/Symbol");
  EXPECT_EQ((*set)[1].pattern.path.ToString(), "/Security/Yield");
  EXPECT_EQ((*set)[1].pattern.type, xpath::ValueType::kNumeric);
  EXPECT_EQ((*set)[2].pattern.path.ToString(), "/Security/SecInfo/*/Sector");
  EXPECT_EQ((*set)[3].pattern.path.ToString(), "/Security//*");
  EXPECT_TRUE((*set)[3].is_general);
}

TEST_F(AdvisorE2eTest, AffectedSetsTrackProvenance) {
  auto set = advisor_->BuildCandidates(PaperWorkload(), /*generalize=*/true);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ((*set)[0].affected, (std::vector<size_t>{0}));  // Q1 -> C1
  EXPECT_EQ((*set)[1].affected, (std::vector<size_t>{1}));  // Q2 -> C3
  EXPECT_EQ((*set)[2].affected, (std::vector<size_t>{1}));  // Q2 -> C2
  EXPECT_EQ((*set)[3].affected, (std::vector<size_t>{0, 1}));  // C4 both
}

TEST_F(AdvisorE2eTest, RecommendationsFitBudgetAndHelp) {
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    AdvisorOptions options;
    options.algorithm = algo;
    options.disk_budget_bytes = 256.0 * 1024;
    auto rec = advisor_->Recommend(PaperWorkload(), options);
    ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo) << rec.status();
    EXPECT_LE(rec->total_size_bytes, options.disk_budget_bytes * 1.01);
    EXPECT_GE(rec->est_speedup, 1.0) << SearchAlgorithmName(algo);
    EXPECT_GT(rec->base_cost, 0);
    EXPECT_GT(rec->optimizer_calls, 0u);
    EXPECT_EQ(rec->basic_candidates, 3u);
    EXPECT_EQ(rec->total_candidates, 4u);
  }
}

TEST_F(AdvisorE2eTest, AllIndexIsUpperBoundReference) {
  auto all = advisor_->AllIndexConfiguration(PaperWorkload());
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->indexes.size(), 3u);  // every basic candidate
  EXPECT_GT(all->est_speedup, 1.0);

  AdvisorOptions options;
  options.disk_budget_bytes = all->total_size_bytes;
  options.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  auto rec = advisor_->Recommend(PaperWorkload(), options);
  ASSERT_TRUE(rec.ok());
  // With a budget the size of AllIndex, the recommendation approaches the
  // AllIndex speedup (Fig. 2's plateau).
  EXPECT_GE(rec->est_speedup, all->est_speedup * 0.8);
}

TEST_F(AdvisorE2eTest, BiggerBudgetNeverHurts) {
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  double last_speedup = 0;
  for (double budget : {32.0 * 1024, 128.0 * 1024, 512.0 * 1024}) {
    options.disk_budget_bytes = budget;
    auto rec = advisor_->Recommend(PaperWorkload(), options);
    ASSERT_TRUE(rec.ok());
    EXPECT_GE(rec->est_speedup, last_speedup - 1e-9) << budget;
    last_speedup = rec->est_speedup;
  }
}

TEST_F(AdvisorE2eTest, DisableGeneralizationDropsGeneralCandidates) {
  auto set = advisor_->BuildCandidates(PaperWorkload(), /*generalize=*/false);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), set->basic_count);
}

TEST_F(AdvisorE2eTest, UpdateHeavyWorkloadSuppressesWideIndexes) {
  // A workload dominated by order insertions should make a wide order
  // index unattractive; with maintenance accounting disabled it would be
  // picked.
  engine::Workload workload;
  workload.push_back(Parse(
      "for $o in c('ODOC')/FIXML/Order where $o/Instrmt/Sym = "
      "\"SYM000002\" return $o"));
  Random rng(5);
  auto updates = tpox::TpoxUpdates(/*inserts=*/40, /*deletes=*/0, 600, &rng);
  ASSERT_TRUE(updates.ok());
  for (auto& u : *updates) {
    u.frequency = 50;  // update-heavy
    workload.push_back(std::move(u));
  }

  AdvisorOptions with_maintenance;
  with_maintenance.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  with_maintenance.disk_budget_bytes = 10e6;
  auto rec_with = advisor_->Recommend(workload, with_maintenance);
  ASSERT_TRUE(rec_with.ok()) << rec_with.status();

  AdvisorOptions without_maintenance = with_maintenance;
  without_maintenance.charge_maintenance = false;
  auto rec_without = advisor_->Recommend(workload, without_maintenance);
  ASSERT_TRUE(rec_without.ok());

  // Maintenance charges can only shrink (or keep) the configuration and
  // reduce the net benefit.
  EXPECT_LE(rec_with->indexes.size(), rec_without->indexes.size());
  EXPECT_LE(rec_with->benefit, rec_without->benefit + 1e-9);
}

TEST_F(AdvisorE2eTest, FrequencyWeightsBenefit) {
  // The same query with a higher frequency yields a proportionally larger
  // configuration benefit (§III: freq_s multiplies the cost delta).
  engine::Workload once;
  once.push_back(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s", 1.0));
  engine::Workload often;
  often.push_back(Parse(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
      "return $s", 10.0));

  AdvisorOptions options;
  options.disk_budget_bytes = 10e6;
  options.algorithm = SearchAlgorithm::kGreedy;
  auto rec_once = advisor_->Recommend(once, options);
  auto rec_often = advisor_->Recommend(often, options);
  ASSERT_TRUE(rec_once.ok());
  ASSERT_TRUE(rec_often.ok());
  EXPECT_NEAR(rec_often->benefit, 10.0 * rec_once->benefit,
              0.05 * rec_often->benefit);
}

TEST_F(AdvisorE2eTest, MaterializedRecommendationChangesRealPlans) {
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  options.disk_budget_bytes = 1e6;
  const engine::Workload workload = PaperWorkload();
  auto rec = advisor_->Recommend(workload, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->indexes.empty());

  storage::Catalog catalog(&store_, &stats_);
  ASSERT_TRUE(advisor_->Materialize(*rec, &catalog).ok());
  EXPECT_EQ(catalog.size(), rec->indexes.size());

  optimizer::Optimizer opt(&store_, &catalog, &stats_);
  engine::Executor executor(&store_, &catalog);
  // Q1 should now run off an index and touch very few documents.
  auto plan = opt.Optimize(workload[0]);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->kind, optimizer::Plan::Kind::kCollectionScan);
  auto result = executor.Execute(workload[0], *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);
  EXPECT_LT(result->docs_examined, 50u);
}

TEST_F(AdvisorE2eTest, ActualSpeedupTracksEstimatedDirection) {
  // Execute the workload with and without the recommended configuration;
  // measured document work must drop when the advisor predicts a speedup.
  const engine::Workload workload = PaperWorkload();
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kTopDownFull;
  options.disk_budget_bytes = 1e6;
  auto rec = advisor_->Recommend(workload, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_GT(rec->est_speedup, 1.0);

  storage::Catalog no_indexes(&store_, &stats_);
  optimizer::Optimizer opt_before(&store_, &no_indexes, &stats_);
  engine::Executor exec_before(&store_, &no_indexes);
  uint64_t docs_before = 0;
  for (const auto& stmt : workload) {
    auto r = exec_before.ExecuteBest(stmt, opt_before);
    ASSERT_TRUE(r.ok());
    docs_before += r->docs_examined;
  }

  storage::Catalog with_indexes(&store_, &stats_);
  ASSERT_TRUE(advisor_->Materialize(*rec, &with_indexes).ok());
  optimizer::Optimizer opt_after(&store_, &with_indexes, &stats_);
  engine::Executor exec_after(&store_, &with_indexes);
  uint64_t docs_after = 0;
  for (const auto& stmt : workload) {
    auto r = exec_after.ExecuteBest(stmt, opt_after);
    ASSERT_TRUE(r.ok());
    docs_after += r->docs_examined;
  }
  EXPECT_LT(docs_after, docs_before / 2);
}

TEST_F(AdvisorE2eTest, TpoxElevenQueryWorkload) {
  auto workload = tpox::TpoxQueries();
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 11u);
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kTopDownFull;
  options.disk_budget_bytes = 4e6;
  auto rec = advisor_->Recommend(*workload, options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GE(rec->basic_candidates, 8u);
  EXPECT_GT(rec->total_candidates, rec->basic_candidates);
  EXPECT_GT(rec->est_speedup, 1.0);
  EXPECT_FALSE(rec->indexes.empty());
  // Recommendations span multiple collections.
  std::set<std::string> collections;
  for (const auto& ri : rec->indexes) collections.insert(ri.collection);
  EXPECT_GE(collections.size(), 2u);
}

TEST_F(AdvisorE2eTest, DdlRendering) {
  AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  auto rec = advisor_->Recommend(PaperWorkload(), options);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->indexes.empty());
  for (const auto& ri : rec->indexes) {
    EXPECT_NE(ri.ddl.find("GENERATE KEY USING XMLPATTERN"),
              std::string::npos);
    EXPECT_NE(ri.ddl.find(ri.pattern.path.ToString()), std::string::npos);
  }
}

TEST_F(AdvisorE2eTest, ReportRendersAllSections) {
  AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  const engine::Workload workload = PaperWorkload();
  auto rec = advisor_->Recommend(workload, options);
  ASSERT_TRUE(rec.ok());
  auto report = RenderReport(workload, *rec, &store_, &stats_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("recommended DDL"), std::string::npos);
  EXPECT_NE(report->find("per-statement impact"), std::string::npos);
  EXPECT_NE(report->find("GENERATE KEY USING XMLPATTERN"),
            std::string::npos);
  // Both statements appear with a cost row.
  EXPECT_NE(report->find("cost before"), std::string::npos);

  ReportOptions minimal;
  minimal.per_statement = false;
  minimal.show_ddl = false;
  auto terse = RenderReport(workload, *rec, &store_, &stats_, minimal);
  ASSERT_TRUE(terse.ok());
  EXPECT_EQ(terse->find("per-statement impact"), std::string::npos);
  EXPECT_EQ(terse->find("recommended DDL"), std::string::npos);
  EXPECT_NE(terse->find("est. workload speedup"), std::string::npos);
}

TEST_F(AdvisorE2eTest, TraceCoversPipelineAndAccountsOptimizerCalls) {
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kTopDownFull;
  options.disk_budget_bytes = 1e6;
  auto rec = advisor_->Recommend(PaperWorkload(), options);
  ASSERT_TRUE(rec.ok()) << rec.status();

  // Every pipeline phase appears as a depth-0 span with a sane duration.
  ASSERT_FALSE(rec->trace.empty());
  for (const char* phase : {"compact", "enumerate", "generalize",
                            "statistics", "dag", "initialize", "search",
                            "finalize"}) {
    const obs::SpanRecord* span = rec->trace.Find(phase);
    ASSERT_NE(span, nullptr) << phase;
    EXPECT_EQ(span->depth, 0) << phase;
    EXPECT_GE(span->seconds, 0.0) << phase;
  }

  // Depth-0 spans tile the run: their durations sum to (nearly) the
  // advisor's wall time...
  EXPECT_GT(rec->advisor_seconds, 0.0);
  EXPECT_LE(rec->trace.PhaseSeconds(), rec->advisor_seconds);
  EXPECT_GE(rec->trace.PhaseSeconds(), 0.95 * rec->advisor_seconds);

  // ...and their optimizer-call deltas to the recommendation's total.
  // The deltas come from the process-wide counter, which only moves when
  // instrumentation is compiled in.
  if (obs::kObsEnabled) {
    EXPECT_EQ(rec->trace.PhaseTrackedCalls(), rec->optimizer_calls);
  }

  // The enumeration probes are part of the total (the old accounting
  // dropped them).
  const obs::SpanRecord* enumerate = rec->trace.Find("enumerate");
  EXPECT_GT(rec->optimizer_calls, 0u);
  if (obs::kObsEnabled) {
    EXPECT_GT(enumerate->tracked_calls, 0u);
  }
}

TEST_F(AdvisorE2eTest, AdvisorFeedsProcessMetrics) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with XIA_OBS_OFF";
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* optimize_calls =
      registry.GetCounter("xia.optimizer.optimize_calls");
  obs::Counter* containment =
      registry.GetCounter("xia.xpath.containment.checks");
  const uint64_t calls_before = optimize_calls->value();
  const uint64_t containment_before = containment->value();

  AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  auto rec = advisor_->Recommend(PaperWorkload(), options);
  ASSERT_TRUE(rec.ok());

  EXPECT_EQ(optimize_calls->value() - calls_before, rec->optimizer_calls);
  EXPECT_GT(containment->value(), containment_before);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.Find("xia.advisor.runs"), nullptr);
  EXPECT_GT(snap.Find("xia.advisor.runs")->counter, 0u);
  ASSERT_NE(snap.Find("xia.optimizer.cost_model.evaluations"), nullptr);
  EXPECT_GT(snap.Find("xia.optimizer.cost_model.evaluations")->counter, 0u);
}

TEST_F(AdvisorE2eTest, ReportOnEmptyRecommendation) {
  AdvisorOptions options;
  options.disk_budget_bytes = 0;  // nothing fits
  const engine::Workload workload = PaperWorkload();
  auto rec = advisor_->Recommend(workload, options);
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->indexes.empty());
  auto report = RenderReport(workload, *rec, &store_, &stats_);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("no indexes pay off"), std::string::npos);
}

}  // namespace
}  // namespace xia::advisor
