// Concurrency tests for the WAL writer's group commit: many threads
// appending and committing simultaneously must all become durable, with
// no torn interleaving in the on-disk frame stream. Runs under the
// xia_tsan_build gate as well as the default suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "wal/log_file.h"
#include "wal/record.h"
#include "wal/writer.h"

namespace xia::wal {
namespace {

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/xia_walcc_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void HammerWriter(FsyncPolicy policy, int threads, int per_thread) {
  const std::string dir =
      ScratchDir(std::string("hammer_") + FsyncPolicyName(policy));
  const std::string path = dir + "/wal.log";
  ASSERT_TRUE(InitLogFile(path).ok());

  WalWriterOptions options;
  options.policy = policy;
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(path, 1).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        auto lsn = writer.Append(WalRecord::Insert(
            "C", "<t><id>" + std::to_string(t * per_thread + i) +
                     "</id></t>"));
        if (!lsn.ok() || !writer.Commit(*lsn).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(writer.Close().ok());

  // Every record must be on disk exactly once, with a dense LSN range —
  // group commit may batch arbitrarily but can never drop or duplicate.
  auto scanned = ScanLogFile(path);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_FALSE(scanned->torn_tail) << scanned->tail_reason;
  const size_t total = static_cast<size_t>(threads) * per_thread;
  ASSERT_EQ(scanned->payloads.size(), total);
  std::set<uint64_t> lsns;
  for (const std::string& payload : scanned->payloads) {
    auto record = DecodeRecord(payload);
    ASSERT_TRUE(record.ok()) << record.status();
    lsns.insert(record->lsn);
  }
  EXPECT_EQ(lsns.size(), total);
  EXPECT_EQ(*lsns.begin(), 1u);
  EXPECT_EQ(*lsns.rbegin(), total);
  if (policy == FsyncPolicy::kOff) {
    EXPECT_EQ(writer.durable_lsn(), 0u);  // kOff never fsyncs, by design
  } else {
    EXPECT_EQ(writer.durable_lsn(), total);
  }
}

TEST(WalConcurrentTest, GroupCommitAlwaysPolicy) {
  HammerWriter(FsyncPolicy::kAlways, 8, 50);
}

TEST(WalConcurrentTest, GroupCommitIntervalPolicy) {
  HammerWriter(FsyncPolicy::kInterval, 8, 200);
}

TEST(WalConcurrentTest, GroupCommitOffPolicy) {
  HammerWriter(FsyncPolicy::kOff, 8, 200);
}

TEST(WalConcurrentTest, ConcurrentCommitsBatch) {
  // With many threads racing a slow medium (fsync per batch), at least
  // one flush should carry more than one record. This is probabilistic
  // in principle, but with 16 threads and an fsync-bound leader it is
  // effectively certain; assert on writer accounting rather than the
  // histogram so the test also runs under XIA_OBS_OFF.
  const std::string dir = ScratchDir("batching");
  const std::string path = dir + "/wal.log";
  ASSERT_TRUE(InitLogFile(path).ok());
  WalWriterOptions options;
  options.policy = FsyncPolicy::kAlways;
  WalWriter writer(options);
  ASSERT_TRUE(writer.Open(path, 1).ok());

  constexpr int kThreads = 16;
  constexpr int kPerThread = 25;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = writer.Append(WalRecord::DropIndex("x"));
        ASSERT_TRUE(lsn.ok());
        ASSERT_TRUE(writer.Commit(*lsn).ok());
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const uint64_t total = kThreads * kPerThread;
  EXPECT_EQ(writer.appended_records(), total);
  EXPECT_EQ(writer.durable_lsn(), total);
  // Fewer fsyncs than records == group commit actually grouped.
  EXPECT_LT(writer.fsyncs(), total);
  ASSERT_TRUE(writer.Close().ok());
}

}  // namespace
}  // namespace xia::wal
