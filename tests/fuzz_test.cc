// Randomized robustness tests: parsers must never crash or hang on
// arbitrary input, serialize/parse must round-trip structured data, and
// the persistence loaders must survive arbitrary mutation of their inputs
// — including with fault-injection points armed at low probability.

#include <gtest/gtest.h>

#include <sstream>

#include "advisor/advisor.h"
#include "engine/query_parser.h"
#include "fault/deadline.h"
#include "fault/fault.h"
#include "storage/snapshot.h"
#include "tpox/tpox_data.h"
#include "tpox/xmark.h"
#include "util/random.h"
#include "workload/workload_io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomGarbage(Random* rng, size_t max_len) {
  const std::string alphabet =
      "<>/=\"'ab c[]@*.{}$&;#\n\t\\!0123456789-_";
  std::string out;
  const size_t len = rng->Uniform(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += alphabet[rng->Uniform(alphabet.size())];
  }
  return out;
}

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomGarbage(&rng, 120);
    auto doc = xml::Parse(input);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse to the same node count.
      auto again = xml::Parse(xml::Serialize(*doc));
      ASSERT_TRUE(again.ok()) << input;
      EXPECT_EQ(again->size(), doc->size()) << input;
    }
  }
}

TEST_P(FuzzTest, XPathParserNeverCrashes) {
  Random rng(GetParam() * 13 + 1);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = RandomGarbage(&rng, 60);
    auto q = xpath::ParseQuery(input);
    if (q.ok()) {
      // Accepted paths round-trip.
      auto again = xpath::ParseQuery(q->ToString());
      ASSERT_TRUE(again.ok()) << input << " -> " << q->ToString();
      EXPECT_EQ(*again, *q) << input;
    }
  }
}

TEST_P(FuzzTest, StatementParserNeverCrashes) {
  Random rng(GetParam() * 29 + 5);
  const char* stems[] = {
      "for $s in c('S')", "insert into S ", "delete from S where ",
      "update S set ",    "",
  };
  for (int i = 0; i < 2000; ++i) {
    std::string input = stems[rng.Uniform(5)] + RandomGarbage(&rng, 80);
    (void)engine::ParseStatement(input);  // must return, not crash
  }
}

TEST_P(FuzzTest, WorkloadTextParserNeverCrashes) {
  Random rng(GetParam() * 97 + 11);
  for (int i = 0; i < 500; ++i) {
    (void)engine::ParseWorkloadText(RandomGarbage(&rng, 300));
  }
}

TEST_P(FuzzTest, GeneratedDocumentsRoundTrip) {
  Random rng(GetParam() * 7);
  for (size_t i = 0; i < 40; ++i) {
    std::vector<xml::Document> docs;
    docs.push_back(tpox::GenerateSecurityDocument(i, &rng));
    docs.push_back(tpox::GenerateOrderDocument(i, 100, &rng));
    docs.push_back(tpox::GenerateCustAccDocument(i, &rng));
    docs.push_back(tpox::GenerateXmarkItem(i, &rng));
    docs.push_back(tpox::GenerateXmarkAuction(i, 50, 50, &rng));
    docs.push_back(tpox::GenerateXmarkPerson(i, &rng));
    for (const auto& doc : docs) {
      for (bool pretty : {false, true}) {
        xml::SerializeOptions options;
        options.pretty = pretty;
        auto parsed = xml::Parse(xml::Serialize(doc, 0, options));
        ASSERT_TRUE(parsed.ok()) << parsed.status();
        ASSERT_EQ(parsed->size(), doc.size());
        for (size_t n = 0; n < doc.size(); ++n) {
          EXPECT_EQ(parsed->node(static_cast<xml::NodeIndex>(n)).label,
                    doc.node(static_cast<xml::NodeIndex>(n)).label);
          EXPECT_EQ(parsed->node(static_cast<xml::NodeIndex>(n)).value,
                    doc.node(static_cast<xml::NodeIndex>(n)).value);
        }
      }
    }
  }
}

// Applies `mutations` random byte edits (flip / insert / delete) to a
// copy of `bytes`.
std::string Mutate(const std::string& bytes, int mutations, Random* rng) {
  std::string out = bytes;
  for (int m = 0; m < mutations && !out.empty(); ++m) {
    switch (rng->Uniform(3)) {
      case 0:
        out[rng->Uniform(out.size())] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:
        out.insert(out.begin() + rng->Uniform(out.size() + 1),
                   static_cast<char>(rng->Uniform(256)));
        break;
      default:
        out.erase(out.begin() + rng->Uniform(out.size()));
        break;
    }
  }
  return out;
}

TEST_P(FuzzTest, MutatedSnapshotsNeverCrashOrPartiallyLoad) {
  Random rng(GetParam() * 131 + 17);
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  tpox::TpoxScale scale;
  scale.security_docs = 10;
  scale.order_docs = 10;
  scale.custacc_docs = 5;
  ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store, &stats).ok());
  std::stringstream buffer;
  ASSERT_TRUE(storage::SaveSnapshot(store, buffer).ok());
  const std::string clean = buffer.str();

  // Bound the whole fuzz loop: mutation coverage should never turn into a
  // hanging test, whatever the mutated bytes decode to.
  const fault::Deadline deadline = fault::Deadline::AfterSeconds(30);
  for (int trial = 0; trial < 300 && !deadline.expired(); ++trial) {
    const std::string bytes = Mutate(clean, 1 + rng.Uniform(8), &rng);
    std::stringstream in(bytes);
    storage::DocumentStore restored;
    const auto status = storage::LoadSnapshot(in, &restored);
    if (!status.ok()) {
      // A rejected snapshot must leave the target untouched.
      EXPECT_TRUE(restored.CollectionNames().empty()) << "trial " << trial;
    }
  }
}

TEST_P(FuzzTest, MutatedWorkloadFilesNeverCrash) {
  Random rng(GetParam() * 151 + 23);
  engine::Workload w;
  auto stmt = engine::ParseStatement(
      "for $s in c('SDOC')/Security where $s/Symbol = \"SYM1\" return $s");
  ASSERT_TRUE(stmt.ok());
  w.push_back(std::move(*stmt));
  auto clean = workload::SerializeWorkload(w);
  ASSERT_TRUE(clean.ok());

  const fault::Deadline deadline = fault::Deadline::AfterSeconds(30);
  for (int trial = 0; trial < 500 && !deadline.expired(); ++trial) {
    (void)workload::DeserializeWorkload(
        Mutate(*clean, 1 + rng.Uniform(6), &rng));
  }
}

TEST_P(FuzzTest, PipelineUnderLowProbabilityFaults) {
  // With every fault point armed at 2%, repeated advise pipelines must
  // either succeed or fail with a clean Status — never crash, never leave
  // a partially loaded store.
  fault::ScopedFaultDisarm cleanup;
  fault::FaultRegistry& registry = fault::FaultRegistry::Global();
  registry.set_seed(GetParam() * 1000 + 7);
  for (const char* point : fault::kAllPoints) {
    registry.Arm(point, fault::FaultSpec::Probability(0.02));
  }

  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  tpox::TpoxScale scale;
  scale.security_docs = 15;
  scale.order_docs = 15;
  scale.custacc_docs = 5;
  ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store, &stats).ok());
  engine::Workload w;
  auto stmt = engine::ParseStatement(
      "for $sec in SECURITY('SDOC')/Security "
      "where $sec/Symbol = \"SYM000003\" return $sec");
  ASSERT_TRUE(stmt.ok());
  w.push_back(std::move(*stmt));

  const fault::Deadline deadline = fault::Deadline::AfterSeconds(60);
  int successes = 0;
  for (int trial = 0; trial < 40 && !deadline.expired(); ++trial) {
    std::stringstream buffer;
    if (!storage::SaveSnapshot(store, buffer).ok()) continue;
    storage::DocumentStore restored;
    if (!storage::LoadSnapshot(buffer, &restored).ok()) {
      EXPECT_TRUE(restored.CollectionNames().empty()) << "trial " << trial;
      continue;
    }
    storage::StatisticsCatalog restored_stats;
    for (const std::string& name : restored.CollectionNames()) {
      auto coll = restored.GetCollection(name);
      ASSERT_TRUE(coll.ok());
      restored_stats.RunStats(**coll);
    }
    advisor::IndexAdvisor advisor(&restored, &restored_stats);
    advisor::AdvisorOptions options;
    options.disk_budget_bytes = 1e6;
    auto rec = advisor.Recommend(w, options);
    if (rec.ok()) ++successes;
  }
  registry.set_seed(42);
  // 2% per hit still lets most runs through end to end.
  EXPECT_GT(successes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xia
