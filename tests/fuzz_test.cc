// Randomized robustness tests: parsers must never crash or hang on
// arbitrary input, and serialize/parse must round-trip structured data.

#include <gtest/gtest.h>

#include "engine/query_parser.h"
#include "tpox/tpox_data.h"
#include "tpox/xmark.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomGarbage(Random* rng, size_t max_len) {
  const std::string alphabet =
      "<>/=\"'ab c[]@*.{}$&;#\n\t\\!0123456789-_";
  std::string out;
  const size_t len = rng->Uniform(max_len);
  for (size_t i = 0; i < len; ++i) {
    out += alphabet[rng->Uniform(alphabet.size())];
  }
  return out;
}

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::string input = RandomGarbage(&rng, 120);
    auto doc = xml::Parse(input);
    if (doc.ok()) {
      // Whatever parsed must serialize and re-parse to the same node count.
      auto again = xml::Parse(xml::Serialize(*doc));
      ASSERT_TRUE(again.ok()) << input;
      EXPECT_EQ(again->size(), doc->size()) << input;
    }
  }
}

TEST_P(FuzzTest, XPathParserNeverCrashes) {
  Random rng(GetParam() * 13 + 1);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = RandomGarbage(&rng, 60);
    auto q = xpath::ParseQuery(input);
    if (q.ok()) {
      // Accepted paths round-trip.
      auto again = xpath::ParseQuery(q->ToString());
      ASSERT_TRUE(again.ok()) << input << " -> " << q->ToString();
      EXPECT_EQ(*again, *q) << input;
    }
  }
}

TEST_P(FuzzTest, StatementParserNeverCrashes) {
  Random rng(GetParam() * 29 + 5);
  const char* stems[] = {
      "for $s in c('S')", "insert into S ", "delete from S where ",
      "update S set ",    "",
  };
  for (int i = 0; i < 2000; ++i) {
    std::string input = stems[rng.Uniform(5)] + RandomGarbage(&rng, 80);
    (void)engine::ParseStatement(input);  // must return, not crash
  }
}

TEST_P(FuzzTest, WorkloadTextParserNeverCrashes) {
  Random rng(GetParam() * 97 + 11);
  for (int i = 0; i < 500; ++i) {
    (void)engine::ParseWorkloadText(RandomGarbage(&rng, 300));
  }
}

TEST_P(FuzzTest, GeneratedDocumentsRoundTrip) {
  Random rng(GetParam() * 7);
  for (size_t i = 0; i < 40; ++i) {
    std::vector<xml::Document> docs;
    docs.push_back(tpox::GenerateSecurityDocument(i, &rng));
    docs.push_back(tpox::GenerateOrderDocument(i, 100, &rng));
    docs.push_back(tpox::GenerateCustAccDocument(i, &rng));
    docs.push_back(tpox::GenerateXmarkItem(i, &rng));
    docs.push_back(tpox::GenerateXmarkAuction(i, 50, 50, &rng));
    docs.push_back(tpox::GenerateXmarkPerson(i, &rng));
    for (const auto& doc : docs) {
      for (bool pretty : {false, true}) {
        xml::SerializeOptions options;
        options.pretty = pretty;
        auto parsed = xml::Parse(xml::Serialize(doc, 0, options));
        ASSERT_TRUE(parsed.ok()) << parsed.status();
        ASSERT_EQ(parsed->size(), doc.size());
        for (size_t n = 0; n < doc.size(); ++n) {
          EXPECT_EQ(parsed->node(static_cast<xml::NodeIndex>(n)).label,
                    doc.node(static_cast<xml::NodeIndex>(n)).label);
          EXPECT_EQ(parsed->node(static_cast<xml::NodeIndex>(n)).value,
                    doc.node(static_cast<xml::NodeIndex>(n)).value);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xia
