// Snapshot round-trip tests: structure, values, DocId stability (including
// tombstones), index rebuild equivalence, and corruption handling.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "fault/fault.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "storage/statistics.h"
#include "tpox/tpox_data.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia::storage {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 60;
    scale.order_docs = 80;
    scale.custacc_docs = 30;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    // Punch holes so tombstones are exercised.
    auto coll = store_.GetCollection(tpox::kSecurityCollection);
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->Remove(3).ok());
    ASSERT_TRUE((*coll)->Remove(17).ok());
    ASSERT_TRUE((*coll)->Remove(59).ok());
  }

  DocumentStore store_;
  StatisticsCatalog stats_;
};

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());

  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshot(buffer, &restored).ok());

  ASSERT_EQ(restored.CollectionNames(), store_.CollectionNames());
  for (const std::string& name : store_.CollectionNames()) {
    auto original = store_.GetCollection(name);
    auto loaded = restored.GetCollection(name);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ((*loaded)->live_count(), (*original)->live_count()) << name;
    EXPECT_EQ((*loaded)->id_bound(), (*original)->id_bound()) << name;
    EXPECT_EQ((*loaded)->total_nodes(), (*original)->total_nodes()) << name;
    for (xml::DocId id = 0; id < (*original)->id_bound(); ++id) {
      ASSERT_EQ((*loaded)->IsLive(id), (*original)->IsLive(id))
          << name << " doc " << id;
      if (!(*original)->IsLive(id)) continue;
      // Byte-identical serialization is the strongest cheap equality.
      EXPECT_EQ(xml::Serialize((*loaded)->Get(id)),
                xml::Serialize((*original)->Get(id)))
          << name << " doc " << id;
    }
  }
}

TEST_F(SnapshotTest, IndexesBuiltOnRestoredStoreMatch) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshot(buffer, &restored).ok());

  const xpath::IndexPattern pattern{
      *xpath::ParsePattern("/Security/Symbol"), xpath::ValueType::kString};
  auto a = store_.GetCollection(tpox::kSecurityCollection);
  auto b = restored.GetCollection(tpox::kSecurityCollection);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  PathValueIndex ia("a", "SDOC", pattern);
  PathValueIndex ib("b", "SDOC", pattern);
  ia.Build(**a);
  ib.Build(**b);
  ASSERT_EQ(ia.entry_count(), ib.entry_count());
  // RIDs agree exactly because DocIds were preserved.
  auto ra = ia.LookupAll();
  auto rb = ib.LookupAll();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->rids.size(), rb->rids.size());
  for (size_t i = 0; i < ra->rids.size(); ++i) {
    EXPECT_TRUE(ra->rids[i] == rb->rids[i]) << i;
  }
}

TEST_F(SnapshotTest, EmptyStoreRoundTrips) {
  DocumentStore empty;
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(empty, buffer).ok());
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshot(buffer, &restored).ok());
  EXPECT_TRUE(restored.CollectionNames().empty());
}

TEST_F(SnapshotTest, LoadIntoNonEmptyStoreRejected) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
  auto status = LoadSnapshot(buffer, &store_);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, BadMagicRejected) {
  std::stringstream buffer("definitely not a snapshot");
  DocumentStore restored;
  auto status = LoadSnapshot(buffer, &restored);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, TruncationRejectedEverywhere) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
  const std::string full = buffer.str();
  Random rng(5);
  // Random truncation points (plus a few boundaries) all fail cleanly.
  std::vector<size_t> cuts = {8, 9, 12, full.size() - 1, full.size() / 2};
  for (int i = 0; i < 20; ++i) cuts.push_back(rng.Uniform(full.size()));
  for (size_t cut : cuts) {
    std::stringstream cut_stream(full.substr(0, cut));
    DocumentStore restored;
    auto status = LoadSnapshot(cut_stream, &restored);
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
  }
}

TEST_F(SnapshotTest, CorruptedBytesDoNotCrash) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
  const std::string full = buffer.str();
  Random rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::string corrupted = full;
    const size_t pos = 8 + rng.Uniform(corrupted.size() - 8);
    corrupted[pos] = static_cast<char>(rng.Uniform(256));
    std::stringstream in(corrupted);
    DocumentStore restored;
    (void)LoadSnapshot(in, &restored);  // any Status is fine; no crash/UB
  }
}

TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/xia_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshotToFile(store_, path).ok());
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshotFromFile(path, &restored).ok());
  EXPECT_EQ(restored.CollectionNames(), store_.CollectionNames());
  EXPECT_FALSE(LoadSnapshotFromFile("/nonexistent/snapshot", &restored).ok());
}

// A store small enough that every byte offset can be corrupted
// exhaustively.
class TinySnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto coll_a = store_.CreateCollection("A");
    ASSERT_TRUE(coll_a.ok());
    auto doc1 = xml::Parse("<r><x>1</x><y a=\"b\">two</y></r>");
    ASSERT_TRUE(doc1.ok());
    (*coll_a)->Add(std::move(*doc1));
    auto doc2 = xml::Parse("<r><x>3</x></r>");
    ASSERT_TRUE(doc2.ok());
    (*coll_a)->Add(std::move(*doc2));
    ASSERT_TRUE((*coll_a)->Remove(0).ok());  // one tombstone
    auto coll_b = store_.CreateCollection("B");
    ASSERT_TRUE(coll_b.ok());
    auto doc3 = xml::Parse("<q><k>v</k></q>");
    ASSERT_TRUE(doc3.ok());
    (*coll_b)->Add(std::move(*doc3));

    std::stringstream buffer;
    ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
    bytes_ = buffer.str();
  }

  DocumentStore store_;
  std::string bytes_;
};

TEST_F(TinySnapshotTest, EveryByteFlipIsRejectedAndTargetUntouched) {
  // Inverting any single byte (magic, counts, lengths, payload, checksum)
  // must make the load fail with a clean Status AND leave the target store
  // untouched — the stage-and-swap guarantee. A ^0xFF flip inside a
  // section payload is a <=8-bit burst error, which CRC-32 always detects.
  for (size_t offset = 0; offset < bytes_.size(); ++offset) {
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xFF);
    std::stringstream in(corrupt);
    DocumentStore restored;
    const auto status = LoadSnapshot(in, &restored);
    EXPECT_FALSE(status.ok()) << "flip at offset " << offset;
    EXPECT_TRUE(restored.CollectionNames().empty())
        << "partial mutation after flip at offset " << offset;
  }
}

TEST_F(TinySnapshotTest, EveryTruncationIsRejectedAndTargetUntouched) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    std::stringstream in(bytes_.substr(0, len));
    DocumentStore restored;
    const auto status = LoadSnapshot(in, &restored);
    EXPECT_FALSE(status.ok()) << "truncated to " << len << " bytes";
    EXPECT_TRUE(restored.CollectionNames().empty())
        << "partial mutation after truncation to " << len << " bytes";
  }
}

TEST_F(TinySnapshotTest, LegacyV1SnapshotStillLoads) {
  // Reconstruct the v1 byte layout from the v2 snapshot: same magic
  // prefix except the version digit, same collection count, and the
  // section payloads inlined without the [len][payload][crc] framing.
  ASSERT_GE(bytes_.size(), 12u);
  std::string v1 = bytes_.substr(0, 12);
  v1[7] = '1';
  size_t pos = 12;
  const auto read_u32 = [&](size_t at) {
    return static_cast<uint32_t>(static_cast<unsigned char>(bytes_[at])) |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes_[at + 1]))
               << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes_[at + 2]))
               << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes_[at + 3]))
               << 24;
  };
  while (pos < bytes_.size()) {
    const uint32_t len = read_u32(pos);
    ASSERT_LE(pos + 4 + len + 4, bytes_.size());
    v1 += bytes_.substr(pos + 4, len);
    pos += 4 + len + 4;  // skip the length prefix and the trailing CRC
  }

  std::stringstream in(v1);
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshot(in, &restored).ok());
  ASSERT_EQ(restored.CollectionNames(), store_.CollectionNames());
  auto coll = restored.GetCollection("A");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->live_count(), 1u);
  EXPECT_EQ((*coll)->id_bound(), 2u);
  EXPECT_FALSE((*coll)->IsLive(0));
}

TEST_F(SnapshotTest, FailedSaveLeavesPreviousFileIntact) {
  // Atomic-save regression: a save that fails (here via the injected
  // fault, which fires before any byte is written) must leave the
  // previous good snapshot untouched — no truncation, no partial file.
  const std::string path = ::testing::TempDir() + "/xia_snapshot_atomic.bin";
  ASSERT_TRUE(SaveSnapshotToFile(store_, path).ok());

  std::ifstream before_in(path, std::ios::binary);
  std::stringstream before;
  before << before_in.rdbuf();

  fault::ScopedFaultDisarm cleanup;
  fault::FaultRegistry::Global().Arm(fault::points::kSnapshotWrite,
                                     fault::FaultSpec::Probability(1));
  auto coll = store_.GetCollection(tpox::kSecurityCollection);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Remove(5).ok());  // make the store differ
  EXPECT_FALSE(SaveSnapshotToFile(store_, path).ok());
  fault::FaultRegistry::Global().DisarmAll();

  std::ifstream after_in(path, std::ios::binary);
  std::stringstream after;
  after << after_in.rdbuf();
  EXPECT_EQ(after.str(), before.str());
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshotFromFile(path, &restored).ok());
}

TEST_F(SnapshotTest, StatisticsOverRestoredStoreMatch) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(store_, buffer).ok());
  DocumentStore restored;
  ASSERT_TRUE(LoadSnapshot(buffer, &restored).ok());

  auto coll_a = store_.GetCollection(tpox::kOrderCollection);
  auto coll_b = restored.GetCollection(tpox::kOrderCollection);
  ASSERT_TRUE(coll_a.ok());
  ASSERT_TRUE(coll_b.ok());
  CollectionStatistics sa;
  CollectionStatistics sb;
  sa.Collect(**coll_a);
  sb.Collect(**coll_b);
  ASSERT_EQ(sa.paths().size(), sb.paths().size());
  for (const auto& [path, stats] : sa.paths()) {
    const auto& other = sb.paths().at(path);
    EXPECT_EQ(stats.count, other.count) << path;
    EXPECT_EQ(stats.distinct_values, other.distinct_values) << path;
  }
}

}  // namespace
}  // namespace xia::storage
