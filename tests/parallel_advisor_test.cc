// Parallel advising equivalence: the whole point of DESIGN §12 is that a
// pooled run is indistinguishable from a serial one — same indexes, same
// benefit, same optimizer-call count — so these tests assert exact
// equality (not tolerance) across thread counts, for every search
// algorithm. Also stresses the sharded BenefitCache's in-flight dedup
// directly (run under TSAN by the xia_tsan_build ctest).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/benefit.h"
#include "advisor/candidates.h"
#include "engine/query_parser.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "util/thread_pool.h"

namespace xia::advisor {
namespace {

engine::Statement Parse(const std::string& text) {
  auto stmt = engine::ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

class ParallelAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 40;
    scale.order_docs = 40;
    scale.custacc_docs = 20;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    advisor_ = std::make_unique<IndexAdvisor>(&store_, &stats_);

    workload_.push_back(Parse(
        "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000007\" "
        "return $s"));
    workload_.push_back(Parse(
        "for $s in c('SDOC')/Security[Yield > 4.5] "
        "where $s/SecInfo/*/Sector = \"Energy\" return $s/Name"));
    workload_.push_back(Parse(
        "for $o in c('ODOC')/FIXML/Order where $o/@ID = \"100005\" "
        "return $o"));
    workload_.push_back(Parse(
        "for $o in c('ODOC')/FIXML/Order where $o/Instrmt/Sym = "
        "\"SYM000002\" return $o/@ID"));
    workload_.push_back(Parse(
        "for $c in c('CADOC')/Customer where $c/Id = 1003 "
        "return $c/Name"));
  }

  // Exact comparison: parallel advising promises bit-identical output.
  static void ExpectSameRecommendation(const Recommendation& a,
                                       const Recommendation& b) {
    ASSERT_EQ(a.indexes.size(), b.indexes.size());
    for (size_t i = 0; i < a.indexes.size(); ++i) {
      EXPECT_EQ(a.indexes[i].collection, b.indexes[i].collection);
      EXPECT_EQ(a.indexes[i].pattern.ToString(),
                b.indexes[i].pattern.ToString());
      EXPECT_EQ(a.indexes[i].is_general, b.indexes[i].is_general);
      EXPECT_EQ(a.indexes[i].size_bytes, b.indexes[i].size_bytes);
    }
    EXPECT_EQ(a.total_size_bytes, b.total_size_bytes);
    EXPECT_EQ(a.base_cost, b.base_cost);
    EXPECT_EQ(a.benefit, b.benefit);
    EXPECT_EQ(a.est_speedup, b.est_speedup);
    EXPECT_EQ(a.basic_candidates, b.basic_candidates);
    EXPECT_EQ(a.total_candidates, b.total_candidates);
    EXPECT_EQ(a.general_count, b.general_count);
    EXPECT_EQ(a.specific_count, b.specific_count);
    EXPECT_EQ(a.optimizer_calls, b.optimizer_calls);
    EXPECT_EQ(a.partial, b.partial);
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<IndexAdvisor> advisor_;
  engine::Workload workload_;
};

TEST_F(ParallelAdvisorTest, EveryAlgorithmIdenticalAcrossThreadCounts) {
  const std::vector<SearchAlgorithm> algorithms = {
      SearchAlgorithm::kGreedy,
      SearchAlgorithm::kGreedyWithHeuristics,
      SearchAlgorithm::kTopDownLite,
      SearchAlgorithm::kTopDownFull,
      SearchAlgorithm::kDynamicProgramming,
  };
  for (SearchAlgorithm algo : algorithms) {
    SCOPED_TRACE(SearchAlgorithmName(algo));
    AdvisorOptions options;
    options.algorithm = algo;
    options.disk_budget_bytes = 512 * 1024;
    options.threads = 1;
    auto serial = advisor_->Recommend(workload_, options);
    ASSERT_TRUE(serial.ok()) << serial.status();
    EXPECT_FALSE(serial->partial);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      SCOPED_TRACE(threads);
      options.threads = threads;
      auto parallel = advisor_->Recommend(workload_, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      ExpectSameRecommendation(*serial, *parallel);
    }
  }
}

TEST_F(ParallelAdvisorTest, ExhaustiveIdenticalAcrossThreadCounts) {
  // Exhaustive enumerates 2^n subsets, refused beyond 16 candidates; a
  // two-statement workload without generalization stays under the limit.
  engine::Workload small;
  small.push_back(workload_[0]);
  small.push_back(workload_[2]);
  AdvisorOptions options;
  options.algorithm = SearchAlgorithm::kExhaustive;
  options.generalize = false;
  options.disk_budget_bytes = 512 * 1024;
  options.threads = 1;
  auto serial = advisor_->Recommend(small, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_LE(serial->basic_candidates, 16u);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    SCOPED_TRACE(threads);
    options.threads = threads;
    auto parallel = advisor_->Recommend(small, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameRecommendation(*serial, *parallel);
  }
}

TEST_F(ParallelAdvisorTest, SharedPoolMatchesRunLocalPool) {
  AdvisorOptions options;
  options.disk_budget_bytes = 512 * 1024;
  options.threads = 4;
  auto run_local = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(run_local.ok()) << run_local.status();

  util::ThreadPool pool(4);
  options.pool = &pool;
  auto shared = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(shared.ok()) << shared.status();
  ExpectSameRecommendation(*run_local, *shared);
  // The pool survives a run and serves the next one.
  auto again = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(again.ok()) << again.status();
  ExpectSameRecommendation(*run_local, *again);
}

TEST_F(ParallelAdvisorTest, ParallelTraceAnnotatesThreads) {
  AdvisorOptions options;
  options.disk_budget_bytes = 512 * 1024;
  options.threads = 2;
  auto rec = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  const obs::SpanRecord* search = rec->trace.Find("search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->threads, 2);
  EXPECT_NE(rec->trace.ToJson().find("\"threads\":2"), std::string::npos);

  options.threads = 1;
  auto serial = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->trace.ToJson().find("\"threads\""), std::string::npos);
}

// Canonicalization: permuted or duplicated candidate ids must hit the
// same cache entries — no spurious misses, no extra optimizer calls.
TEST_F(ParallelAdvisorTest, ConfigurationIdsAreCanonicalized) {
  auto set = advisor_->BuildCandidates(workload_, /*generalize=*/true);
  ASSERT_TRUE(set.ok()) << set.status();
  ASSERT_GE(set->basic_count, 3u);

  storage::Catalog whatif(&store_, &stats_);
  BenefitEvaluator evaluator(&workload_, &*set, &whatif, &stats_, &store_,
                             BenefitEvaluator::Options{});
  ASSERT_TRUE(evaluator.Initialize().ok());

  const std::vector<int> config = {0, 1, 2};
  auto sorted = evaluator.ConfigurationBenefit(config);
  ASSERT_TRUE(sorted.ok()) << sorted.status();

  const size_t misses_after_first = evaluator.cache_misses();
  const uint64_t calls_after_first = evaluator.optimizer_calls();

  std::vector<int> shuffled = {2, 0, 1, 2, 0};  // permuted + duplicated
  std::mt19937 rng(7);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    auto benefit = evaluator.ConfigurationBenefit(shuffled);
    ASSERT_TRUE(benefit.ok()) << benefit.status();
    EXPECT_EQ(*benefit, *sorted);
  }
  EXPECT_EQ(evaluator.cache_misses(), misses_after_first);
  EXPECT_EQ(evaluator.optimizer_calls(), calls_after_first);
}

// The sharded cache's in-flight dedup under contention: every key is
// computed exactly once no matter how many threads race for it, and
// hits + misses == total GetOrCompute calls.
TEST(BenefitCacheTest, ConcurrentGetOrComputeDedupesExactly) {
  BenefitCache cache;
  constexpr int kKeys = 32;
  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::vector<std::atomic<int>> computed(kKeys);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &computed, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      for (int i = 0; i < kIterations; ++i) {
        const int k = static_cast<int>(rng() % kKeys);
        auto value = cache.GetOrCompute({k, k + 1}, [&computed, k]() {
          computed[k].fetch_add(1);
          return Result<double>(k * 1.5);
        });
        ASSERT_TRUE(value.ok());
        ASSERT_EQ(*value, k * 1.5);
      }
    });
  }
  for (auto& t : threads) t.join();

  int total_computed = 0;
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_LE(computed[k].load(), 1) << "key " << k << " computed twice";
    total_computed += computed[k].load();
  }
  EXPECT_EQ(cache.misses(), static_cast<size_t>(total_computed));
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<size_t>(kThreads * kIterations));
}

TEST(BenefitCacheTest, FailedComputationIsNotCached) {
  BenefitCache cache;
  const std::vector<int> key = {1, 2, 3};
  int attempts = 0;
  auto failing = cache.GetOrCompute(key, [&attempts]() -> Result<double> {
    ++attempts;
    return Status::Internal("transient");
  });
  EXPECT_FALSE(failing.ok());
  // The failure was not cached: the next call recomputes and succeeds.
  auto retry = cache.GetOrCompute(key, [&attempts]() -> Result<double> {
    ++attempts;
    return Result<double>(42.0);
  });
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 42.0);
  EXPECT_EQ(attempts, 2);
  // And from then on it is a plain hit.
  auto hit = cache.GetOrCompute(key, [&attempts]() -> Result<double> {
    ++attempts;
    return Result<double>(0.0);
  });
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 42.0);
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace xia::advisor
