// Property test: every physical plan computes the same answer.
//
// For randomized synthetic queries over the TPoX database, the result of
// a collection scan (ground truth, straight off the evaluator) must equal
// the result of every index-based plan the optimizer can form — including
// plans over deliberately general (wider-than-needed) indexes, whose
// lookups return false positives that the residual check must remove.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/normalizer.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/synthetic.h"
#include "tpox/tpox_data.h"
#include "util/random.h"
#include "util/string_util.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace xia {
namespace {

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 400;
    scale.order_docs = 400;
    scale.custacc_docs = 150;
    scale.seed = GetParam();
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
};

TEST_P(EquivalenceTest, IndexPlansMatchScanPlans) {
  Random rng(GetParam() * 31 + 7);
  tpox::SyntheticOptions options;
  options.wildcard_probability = 0.25;
  options.descendant_probability = 0.2;
  auto workload = tpox::GenerateSyntheticWorkload(
      stats_,
      {tpox::kSecurityCollection, tpox::kOrderCollection,
       tpox::kCustAccCollection},
      30, &rng, options);
  ASSERT_TRUE(workload.ok()) << workload.status();

  // Catalog with an exact index per predicate pattern AND general indexes,
  // so both specific and general legs get exercised.
  storage::Catalog catalog(&store_, &stats_);
  int next_id = 0;
  for (const auto& stmt : *workload) {
    auto norm = engine::Normalize(stmt);
    ASSERT_TRUE(norm.ok());
    for (const auto& pred : optimizer::ExtractIndexablePredicates(*norm)) {
      const xpath::IndexPattern pattern = pred.AsIndexPattern();
      bool exists = false;
      for (const auto* def : catalog.IndexesFor(stmt.collection())) {
        if (def->pattern == pattern) exists = true;
      }
      if (!exists) {
        ASSERT_TRUE(catalog.CreateIndex(StringPrintf("x%d", next_id++),
                                        stmt.collection(), pattern)
                        .ok());
      }
    }
  }
  for (const char* coll :
       {tpox::kSecurityCollection, tpox::kOrderCollection,
        tpox::kCustAccCollection}) {
    for (xpath::ValueType type :
         {xpath::ValueType::kString, xpath::ValueType::kNumeric}) {
      ASSERT_TRUE(catalog.CreateIndex(StringPrintf("g%d", next_id++), coll,
                                      {*xpath::ParsePattern("//*"), type})
                      .ok());
    }
  }

  optimizer::Optimizer opt(&store_, &catalog, &stats_);
  engine::Executor executor(&store_, &catalog);

  size_t index_plans_checked = 0;
  for (const auto& stmt : *workload) {
    auto scan_plan = opt.OptimizeWithoutIndexes(stmt);
    ASSERT_TRUE(scan_plan.ok());
    auto scan_result = executor.Execute(stmt, *scan_plan);
    ASSERT_TRUE(scan_result.ok()) << stmt.text;

    // Best plan with indexes available.
    auto best_plan = opt.Optimize(stmt);
    ASSERT_TRUE(best_plan.ok());
    auto best_result = executor.Execute(stmt, *best_plan);
    ASSERT_TRUE(best_result.ok()) << stmt.text;
    EXPECT_EQ(best_result->result_count, scan_result->result_count)
        << stmt.text << "\nplan: " << best_plan->Describe();
    if (best_plan->kind != optimizer::Plan::Kind::kCollectionScan) {
      ++index_plans_checked;
    }

    // Force a plan through each matching index individually, general
    // indexes included.
    auto norm = engine::Normalize(stmt);
    ASSERT_TRUE(norm.ok());
    for (const auto& pred : optimizer::ExtractIndexablePredicates(*norm)) {
      for (const auto* def : catalog.IndexesFor(stmt.collection())) {
        if (def->pattern.structural != pred.existence) continue;
        if (!pred.existence && def->pattern.type != pred.type) continue;
        if (!xpath::Covers(def->pattern.path, pred.pattern)) continue;
        optimizer::Plan forced;
        forced.kind = optimizer::Plan::Kind::kIndexScan;
        optimizer::PlanLeg leg;
        leg.index_name = def->name;
        leg.index_pattern = def->pattern;
        leg.predicate = pred;
        forced.legs.push_back(leg);
        auto forced_result = executor.Execute(stmt, forced);
        ASSERT_TRUE(forced_result.ok()) << stmt.text << " via " << def->name;
        EXPECT_EQ(forced_result->result_count, scan_result->result_count)
            << stmt.text << " via index " << def->name << " ["
            << def->pattern.ToString() << "]";
        ++index_plans_checked;
      }
    }
  }
  // The property is vacuous if nothing ran through an index.
  EXPECT_GT(index_plans_checked, 20u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace xia
