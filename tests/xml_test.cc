#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xia::xml {
namespace {

TEST(DocumentTest, BuildTree) {
  Document doc;
  const NodeIndex root = doc.AddRoot("Security");
  const NodeIndex symbol = doc.AddElement(root, "Symbol", "IBM");
  const NodeIndex info = doc.AddElement(root, "SecInfo");
  const NodeIndex stock = doc.AddElement(info, "StockInformation");
  const NodeIndex sector = doc.AddElement(stock, "Sector", "Tech");

  EXPECT_EQ(doc.size(), 5u);
  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.node(symbol).value, "IBM");
  EXPECT_EQ(doc.ChildCount(root), 2u);
  EXPECT_EQ(doc.node(sector).parent, stock);
  EXPECT_EQ(doc.Depth(sector), 4);
  EXPECT_EQ(doc.LabelPathString(sector),
            "/Security/SecInfo/StockInformation/Sector");
  EXPECT_EQ(doc.LabelPath(symbol),
            (std::vector<std::string>{"Security", "Symbol"}));
}

TEST(DocumentTest, Attributes) {
  Document doc;
  const NodeIndex root = doc.AddRoot("Order");
  const NodeIndex id = doc.AddAttribute(root, "ID", "103");
  EXPECT_TRUE(doc.node(id).is_attribute());
  EXPECT_EQ(doc.node(id).label, "@ID");
  EXPECT_EQ(doc.node(id).value, "103");
  EXPECT_EQ(doc.LabelPathString(id), "/Order/@ID");
}

TEST(DocumentTest, ApproximateByteSizeGrows) {
  Document doc;
  const NodeIndex root = doc.AddRoot("a");
  const size_t before = doc.ApproximateByteSize();
  doc.AddElement(root, "child", "some value here");
  EXPECT_GT(doc.ApproximateByteSize(), before);
}

TEST(ParserTest, SimpleDocument) {
  auto doc = Parse("<a><b>1</b><c attr=\"x\">two</c></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->size(), 4u);
  EXPECT_EQ(doc->node(0).label, "a");
  EXPECT_EQ(doc->node(1).label, "b");
  EXPECT_EQ(doc->node(1).value, "1");
  // c has attribute child @attr.
  const Node& c = doc->node(2);
  EXPECT_EQ(c.label, "c");
  EXPECT_EQ(c.value, "two");
  ASSERT_EQ(doc->ChildCount(2), 1u);
  EXPECT_EQ(doc->node(c.first_child).label, "@attr");
  EXPECT_EQ(doc->node(c.first_child).value, "x");
}

TEST(ParserTest, DeclarationCommentsCdata) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?><!-- hi --><root><!-- inner "
      "--><x><![CDATA[a<b]]></x></root>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->node(1).value, "a<b");
}

TEST(ParserTest, SelfClosingAndEntities) {
  auto doc = Parse("<r><empty/><e>&lt;&amp;&gt;&quot;&apos;&#65;</e></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->node(1).label, "empty");
  EXPECT_EQ(doc->node(2).value, "<&>\"'A");
}

TEST(ParserTest, WhitespaceOnlyTextIgnored) {
  auto doc = Parse("<r>\n  <a>1</a>\n  <b>2</b>\n</r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->node(0).value, "");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></b>").ok());
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());
  EXPECT_FALSE(Parse("<a x=unquoted></a>").ok());
  EXPECT_FALSE(Parse("plain text").ok());
  EXPECT_FALSE(Parse("<a x=\"unterminated></a>").ok());
}

TEST(ParserTest, ErrorMentionsOffset) {
  auto doc = Parse("<a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("offset"), std::string::npos);
}

TEST(SerializerTest, RoundTrip) {
  const std::string text =
      "<Security><Symbol>IBM&amp;Co</Symbol><SecInfo><Stock "
      "kind=\"common\"><Sector>Tech</Sector></Stock></SecInfo></Security>";
  auto doc = Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const std::string serialized = Serialize(*doc);
  auto reparsed = Parse(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(Serialize(*reparsed), serialized);
  EXPECT_EQ(reparsed->size(), doc->size());
  for (size_t i = 0; i < doc->size(); ++i) {
    EXPECT_EQ(reparsed->node(static_cast<NodeIndex>(i)).label,
              doc->node(static_cast<NodeIndex>(i)).label);
    EXPECT_EQ(reparsed->node(static_cast<NodeIndex>(i)).value,
              doc->node(static_cast<NodeIndex>(i)).value);
  }
}

TEST(SerializerTest, EscapesSpecials) {
  Document doc;
  const NodeIndex root = doc.AddRoot("a");
  doc.SetValue(root, "x<y&z>\"q\"");
  const std::string out = Serialize(doc);
  EXPECT_EQ(out, "<a>x&lt;y&amp;z&gt;&quot;q&quot;</a>");
}

TEST(SerializerTest, PrettyPrintingParsesBack) {
  auto doc = Parse("<r><a>1</a><b><c>2</c></b></r>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions options;
  options.pretty = true;
  const std::string pretty = Serialize(*doc, 0, options);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->size(), doc->size());
}

TEST(SerializerTest, EmptyElementIsSelfClosed) {
  Document doc;
  const NodeIndex root = doc.AddRoot("r");
  doc.AddElement(root, "leaf");
  EXPECT_EQ(Serialize(doc), "<r><leaf/></r>");
}

}  // namespace
}  // namespace xia::xml
