#include <gtest/gtest.h>

#include "advisor/advisor.h"
#include "engine/normalizer.h"
#include "tpox/xmark.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xia::tpox {
namespace {

TEST(XmarkDataTest, ItemShape) {
  Random rng(1);
  const xml::Document doc = GenerateXmarkItem(17, &rng);
  auto id = xpath::EvaluateLinear(doc, *xpath::ParsePattern("/item/@id"));
  ASSERT_EQ(id.size(), 1u);
  EXPECT_EQ(doc.node(id[0]).value, "item17");
  EXPECT_EQ(
      xpath::EvaluateLinear(doc, *xpath::ParsePattern("/item/location"))
          .size(),
      1u);
  EXPECT_GE(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/item/incategory/@category"))
                .size(),
            1u);
}

TEST(XmarkDataTest, AuctionShape) {
  Random rng(2);
  const xml::Document doc = GenerateXmarkAuction(3, 100, 50, &rng);
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/open_auction/current"))
                .size(),
            1u);
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/open_auction/itemref/@item"))
                .size(),
            1u);
}

TEST(XmarkDataTest, PersonShape) {
  Random rng(3);
  const xml::Document doc = GenerateXmarkPerson(11, &rng);
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/person/profile/@income"))
                .size(),
            1u);
}

class XmarkFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    XmarkScale scale;
    scale.items = 150;
    scale.auctions = 150;
    scale.persons = 80;
    ASSERT_TRUE(BuildXmarkDatabase(scale, &store_, &stats_).ok());
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
};

TEST_F(XmarkFixture, DatabasePopulated) {
  for (const char* name : {kXmarkItemCollection, kXmarkAuctionCollection,
                           kXmarkPersonCollection}) {
    auto coll = store_.GetCollection(name);
    ASSERT_TRUE(coll.ok()) << name;
    EXPECT_GT((*coll)->live_count(), 0u);
    EXPECT_TRUE(stats_.Get(name).ok());
  }
}

TEST_F(XmarkFixture, QueriesParseAndNormalize) {
  auto workload = XmarkQueries();
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 8u);
  for (const auto& stmt : *workload) {
    auto norm = engine::Normalize(stmt);
    ASSERT_TRUE(norm.ok()) << stmt.label << ": " << norm.status();
  }
}

TEST_F(XmarkFixture, AdvisorWorksOnSecondSchema) {
  auto workload = XmarkQueries();
  ASSERT_TRUE(workload.ok());
  advisor::IndexAdvisor advisor(&store_, &stats_);
  advisor::AdvisorOptions options;
  options.algorithm = advisor::SearchAlgorithm::kTopDownFull;
  options.disk_budget_bytes = 2e6;
  auto rec = advisor.Recommend(*workload, options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_GE(rec->basic_candidates, 6u);
  EXPECT_GT(rec->est_speedup, 1.0);
  EXPECT_FALSE(rec->indexes.empty());
}

TEST_F(XmarkFixture, AttributeHeavyCandidatesEnumerated) {
  auto workload = XmarkQueries();
  ASSERT_TRUE(workload.ok());
  advisor::IndexAdvisor advisor(&store_, &stats_);
  auto set = advisor.BuildCandidates(*workload, /*generalize=*/true);
  ASSERT_TRUE(set.ok()) << set.status();
  bool has_attribute_candidate = false;
  for (const auto& c : set->candidates) {
    if (!c.pattern.path.empty() &&
        c.pattern.path.last().name_test.rfind("@", 0) == 0) {
      has_attribute_candidate = true;
    }
  }
  EXPECT_TRUE(has_attribute_candidate);
}

}  // namespace
}  // namespace xia::tpox
