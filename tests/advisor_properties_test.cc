// Advisor-level invariants checked across algorithms, budgets and seeds:
// determinism, the All-Index ceiling, compaction-neutrality, and
// candidate/DAG structural properties on generated workloads.

#include <gtest/gtest.h>

#include <set>

#include "advisor/advisor.h"
#include "advisor/dag.h"
#include "engine/query_parser.h"
#include "tpox/synthetic.h"
#include "tpox/tpox_data.h"
#include "util/random.h"
#include "xpath/containment.h"

namespace xia::advisor {
namespace {

class AdvisorPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 400;
    scale.order_docs = 500;
    scale.custacc_docs = 150;
    scale.seed = GetParam();
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    advisor_ = std::make_unique<IndexAdvisor>(&store_, &stats_);

    Random rng(GetParam() * 101 + 3);
    auto workload = tpox::GenerateSyntheticWorkload(
        stats_,
        {tpox::kSecurityCollection, tpox::kOrderCollection,
         tpox::kCustAccCollection},
        12, &rng);
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<IndexAdvisor> advisor_;
  engine::Workload workload_;
};

TEST_P(AdvisorPropertyTest, RecommendationIsDeterministic) {
  AdvisorOptions options;
  options.disk_budget_bytes = 256 * 1024;
  options.algorithm = SearchAlgorithm::kTopDownFull;
  auto a = advisor_->Recommend(workload_, options);
  auto b = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->indexes.size(), b->indexes.size());
  for (size_t i = 0; i < a->indexes.size(); ++i) {
    EXPECT_TRUE(a->indexes[i].pattern == b->indexes[i].pattern);
  }
  EXPECT_DOUBLE_EQ(a->benefit, b->benefit);
}

TEST_P(AdvisorPropertyTest, AllIndexIsABenefitCeiling) {
  auto all = advisor_->AllIndexConfiguration(workload_);
  ASSERT_TRUE(all.ok());
  for (SearchAlgorithm algo :
       {SearchAlgorithm::kGreedy, SearchAlgorithm::kGreedyWithHeuristics,
        SearchAlgorithm::kTopDownLite, SearchAlgorithm::kTopDownFull,
        SearchAlgorithm::kDynamicProgramming}) {
    AdvisorOptions options;
    options.algorithm = algo;
    options.disk_budget_bytes = 64e6;  // effectively unconstrained
    auto rec = advisor_->Recommend(workload_, options);
    ASSERT_TRUE(rec.ok()) << SearchAlgorithmName(algo);
    // All-Index holds the best index for every predicate; no query-only
    // configuration beats it by more than estimation noise.
    EXPECT_LE(rec->benefit, all->benefit * 1.05 + 1e-6)
        << SearchAlgorithmName(algo);
  }
}

TEST_P(AdvisorPropertyTest, DuplicatedWorkloadScalesBenefitNotShape) {
  AdvisorOptions options;
  options.disk_budget_bytes = 1e6;
  options.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  auto base = advisor_->Recommend(workload_, options);
  ASSERT_TRUE(base.ok());

  engine::Workload tripled;
  for (int k = 0; k < 3; ++k) {
    for (const auto& stmt : workload_) tripled.push_back(stmt);
  }
  auto rec3 = advisor_->Recommend(tripled, options);
  ASSERT_TRUE(rec3.ok());
  // Compaction folds the copies: same configuration, ~3x the benefit.
  ASSERT_EQ(rec3->indexes.size(), base->indexes.size());
  for (size_t i = 0; i < base->indexes.size(); ++i) {
    EXPECT_TRUE(rec3->indexes[i].pattern == base->indexes[i].pattern);
  }
  EXPECT_NEAR(rec3->benefit, 3.0 * base->benefit,
              0.01 * rec3->benefit + 1e-6);
  // And, crucially, no more optimizer calls than the single copy needed.
  EXPECT_LE(rec3->optimizer_calls, base->optimizer_calls + 3);
}

TEST_P(AdvisorPropertyTest, CandidateSetStructure) {
  auto set = advisor_->BuildCandidates(workload_, /*generalize=*/true);
  ASSERT_TRUE(set.ok());
  // Basic candidates precede generals; ids are positional.
  for (size_t i = 0; i < set->size(); ++i) {
    EXPECT_EQ((*set)[i].id, static_cast<int>(i));
    EXPECT_EQ((*set)[i].is_general, i >= set->basic_count);
  }
  // Every general candidate covers >= 2 basics or strictly covers one,
  // and inherits their affected sets.
  for (size_t i = set->basic_count; i < set->size(); ++i) {
    const Candidate& g = (*set)[i];
    EXPECT_FALSE(g.covered_basics.empty()) << g.ToString();
    std::set<size_t> expected_affected;
    for (int b : g.covered_basics) {
      const Candidate& basic = (*set)[static_cast<size_t>(b)];
      EXPECT_TRUE(xpath::Covers(g.pattern.path, basic.pattern.path))
          << g.ToString() << " vs " << basic.ToString();
      expected_affected.insert(basic.affected.begin(), basic.affected.end());
    }
    EXPECT_EQ(std::set<size_t>(g.affected.begin(), g.affected.end()),
              expected_affected)
        << g.ToString();
  }
  // No duplicate patterns per collection.
  std::set<std::string> seen;
  for (const auto& c : set->candidates) {
    EXPECT_TRUE(seen.insert(c.collection + "|" + c.pattern.ToString()).second)
        << c.ToString();
  }
}

TEST_P(AdvisorPropertyTest, DagIsAcyclicAndCoverageConsistent) {
  auto set = advisor_->BuildCandidates(workload_, /*generalize=*/true);
  ASSERT_TRUE(set.ok());
  const std::vector<int> roots = BuildDag(&*set);

  // Parent strictly covers child (or is the smaller-id equivalent).
  for (const auto& c : set->candidates) {
    for (int child : c.children) {
      const Candidate& ch = (*set)[static_cast<size_t>(child)];
      EXPECT_TRUE(xpath::Covers(c.pattern.path, ch.pattern.path));
      // Edge symmetry.
      EXPECT_NE(std::find(ch.parents.begin(), ch.parents.end(), c.id),
                ch.parents.end());
    }
  }
  // Acyclic: DFS from roots never revisits a node on the current stack.
  std::vector<int> state(set->size(), 0);  // 0 new, 1 on-stack, 2 done
  std::function<bool(int)> dfs = [&](int id) {
    if (state[static_cast<size_t>(id)] == 1) return false;
    if (state[static_cast<size_t>(id)] == 2) return true;
    state[static_cast<size_t>(id)] = 1;
    for (int c : (*set)[static_cast<size_t>(id)].children) {
      if (!dfs(c)) return false;
    }
    state[static_cast<size_t>(id)] = 2;
    return true;
  };
  for (int r : roots) EXPECT_TRUE(dfs(r)) << "cycle reachable from " << r;
}

TEST_P(AdvisorPropertyTest, DecomposedBenefitEqualsNaiveBenefit) {
  // The SVI-C machinery (affected sets + sub-configuration cache) must be
  // exactness-preserving on arbitrary configurations.
  auto set = advisor_->BuildCandidates(workload_, /*generalize=*/true);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(PopulateStatistics(&*set, stats_,
                                 storage::DefaultCostConstants())
                  .ok());

  storage::Catalog fast_catalog(&store_, &stats_);
  BenefitEvaluator fast(&workload_, &*set, &fast_catalog, &stats_, &store_,
                        BenefitEvaluator::Options{});
  ASSERT_TRUE(fast.Initialize().ok());

  BenefitEvaluator::Options naive_options;
  naive_options.use_subconfigurations = false;
  naive_options.use_affected_sets = false;
  storage::Catalog naive_catalog(&store_, &stats_);
  BenefitEvaluator naive(&workload_, &*set, &naive_catalog, &stats_,
                         &store_, naive_options);
  ASSERT_TRUE(naive.Initialize().ok());

  Random rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<int> config;
    for (size_t i = 0; i < set->size(); ++i) {
      if (rng.Bernoulli(0.3)) config.push_back(static_cast<int>(i));
    }
    auto a = fast.ConfigurationBenefit(config);
    auto b = naive.ConfigurationBenefit(config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(*a, *b, 1e-6 * std::abs(*b) + 1e-6)
        << "config size " << config.size();
  }
  EXPECT_LT(fast.optimizer_calls(), naive.optimizer_calls());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdvisorPropertyTest,
                         ::testing::Values(11, 29, 47));

}  // namespace
}  // namespace xia::advisor
