#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xia::storage {
namespace {

xml::Document Doc(const std::string& text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(*doc);
}

xpath::IndexPattern Pattern(const char* text,
                            xpath::ValueType type = xpath::ValueType::kString) {
  auto p = xpath::ParsePattern(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return {*p, type};
}

// A small fixture with a few Security-like documents.
class StorageFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto coll = store_.CreateCollection("SDOC");
    ASSERT_TRUE(coll.ok());
    coll_ = *coll;
    AddSecurity("IBM", "4.8", "Energy");
    AddSecurity("MSFT", "2.1", "Tech");
    AddSecurity("XOM", "6.5", "Energy");
    AddSecurity("NOVAL", "", "Tech");  // missing yield value
    stats_.RunStats(*coll_);
  }

  void AddSecurity(const std::string& symbol, const std::string& yield,
                   const std::string& sector) {
    std::string yield_el =
        yield.empty() ? "<Yield/>" : "<Yield>" + yield + "</Yield>";
    doc_ids_.push_back(coll_->Add(Doc(
        "<Security><Symbol>" + symbol + "</Symbol>" + yield_el +
        "<SecInfo><StockInformation><Sector>" + sector +
        "</Sector></StockInformation></SecInfo></Security>")));
  }

  DocumentStore store_;
  Collection* coll_ = nullptr;
  StatisticsCatalog stats_;
  std::vector<xml::DocId> doc_ids_;
};

TEST_F(StorageFixture, CollectionBasics) {
  EXPECT_EQ(coll_->live_count(), 4u);
  EXPECT_GT(coll_->total_bytes(), 0u);
  EXPECT_GT(coll_->total_nodes(), 0u);
  EXPECT_TRUE(coll_->IsLive(doc_ids_[0]));
  EXPECT_FALSE(coll_->IsLive(99));
  EXPECT_FALSE(coll_->IsLive(-1));
}

TEST_F(StorageFixture, RemoveKeepsIdsStable) {
  const size_t bytes_before = coll_->total_bytes();
  ASSERT_TRUE(coll_->Remove(doc_ids_[1]).ok());
  EXPECT_EQ(coll_->live_count(), 3u);
  EXPECT_LT(coll_->total_bytes(), bytes_before);
  EXPECT_FALSE(coll_->IsLive(doc_ids_[1]));
  EXPECT_TRUE(coll_->IsLive(doc_ids_[2]));
  EXPECT_FALSE(coll_->Remove(doc_ids_[1]).ok());  // double remove
  // New documents do not reuse the removed slot.
  const xml::DocId fresh = coll_->Add(Doc("<Security/>"));
  EXPECT_NE(fresh, doc_ids_[1]);
}

TEST_F(StorageFixture, ForEachSkipsDead) {
  ASSERT_TRUE(coll_->Remove(doc_ids_[0]).ok());
  size_t seen = 0;
  coll_->ForEach([&](xml::DocId id, const xml::Document&) {
    EXPECT_NE(id, doc_ids_[0]);
    ++seen;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(DocumentStoreTest, CollectionLifecycle) {
  DocumentStore store;
  EXPECT_TRUE(store.CreateCollection("A").ok());
  EXPECT_FALSE(store.CreateCollection("A").ok());
  EXPECT_TRUE(store.GetCollection("A").ok());
  EXPECT_FALSE(store.GetCollection("B").ok());
  ASSERT_TRUE(store.CreateCollection("B").ok());
  EXPECT_EQ(store.CollectionNames(),
            (std::vector<std::string>{"A", "B"}));
}

TEST_F(StorageFixture, PathStatisticsContents) {
  auto cs = stats_.Get("SDOC");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ((*cs)->document_count(), 4u);

  const auto& paths = (*cs)->paths();
  ASSERT_TRUE(paths.count("/Security/Symbol"));
  const PathStats& symbol = paths.at("/Security/Symbol");
  EXPECT_EQ(symbol.count, 4u);
  EXPECT_EQ(symbol.valued_count, 4u);
  EXPECT_EQ(symbol.distinct_values, 4u);
  EXPECT_EQ(symbol.numeric_count, 0u);
  EXPECT_EQ(symbol.min_string, "IBM");
  EXPECT_EQ(symbol.max_string, "XOM");

  const PathStats& yield = paths.at("/Security/Yield");
  EXPECT_EQ(yield.count, 4u);
  EXPECT_EQ(yield.valued_count, 3u);  // one empty
  EXPECT_EQ(yield.numeric_count, 3u);
  EXPECT_DOUBLE_EQ(yield.min_numeric, 2.1);
  EXPECT_DOUBLE_EQ(yield.max_numeric, 6.5);

  const PathStats& sector =
      paths.at("/Security/SecInfo/StockInformation/Sector");
  EXPECT_EQ(sector.count, 4u);
  EXPECT_EQ(sector.distinct_values, 2u);  // Energy, Tech
}

TEST_F(StorageFixture, DistinctCountExtrapolatesWhenSaturated) {
  // With a tiny distinct cap, RUNSTATS stops tracking exact distincts and
  // extrapolates from the valued count (sampling-style approximation).
  CollectionStatistics stats;
  CollectionStatistics::CollectOptions options;
  options.distinct_cap = 2;
  stats.Collect(*coll_, options);
  const PathStats& symbol = stats.paths().at("/Security/Symbol");
  EXPECT_GE(symbol.distinct_values, 2u);   // at least what it saw
  EXPECT_LE(symbol.distinct_values, symbol.valued_count);
}

TEST_F(StorageFixture, DeriveIndexStatsRespectsPatternAndType) {
  auto cs = stats_.Get("SDOC");
  ASSERT_TRUE(cs.ok());
  const CostConstants& cc = DefaultCostConstants();

  const IndexStats symbol =
      (*cs)->DeriveIndexStats(Pattern("/Security/Symbol"), cc);
  EXPECT_EQ(symbol.entry_count, 4u);
  EXPECT_EQ(symbol.distinct_keys, 4u);
  EXPECT_GT(symbol.size_bytes, 0u);

  const IndexStats yield = (*cs)->DeriveIndexStats(
      Pattern("/Security/Yield", xpath::ValueType::kNumeric), cc);
  EXPECT_EQ(yield.entry_count, 3u);  // empty value rejected
  EXPECT_DOUBLE_EQ(yield.min_numeric, 2.1);
  EXPECT_DOUBLE_EQ(yield.max_numeric, 6.5);

  // Wildcard pattern folds both matching concrete paths.
  const IndexStats sector =
      (*cs)->DeriveIndexStats(Pattern("/Security/SecInfo/*/Sector"), cc);
  EXPECT_EQ(sector.entry_count, 4u);

  // Universal pattern counts every valued node.
  const IndexStats universal = (*cs)->DeriveIndexStats(Pattern("//*"), cc);
  EXPECT_GT(universal.entry_count, sector.entry_count);
}

TEST_F(StorageFixture, DerivedStatsMatchActualIndex) {
  // The virtual-index statistics derivation must agree with a really built
  // index on entry counts (the quantity driving costs).
  for (const char* pattern_text :
       {"/Security/Symbol", "/Security/SecInfo/*/Sector", "//*"}) {
    const xpath::IndexPattern pattern = Pattern(pattern_text);
    PathValueIndex index("t", "SDOC", pattern);
    index.Build(*coll_);
    auto cs = stats_.Get("SDOC");
    ASSERT_TRUE(cs.ok());
    const IndexStats derived =
        (*cs)->DeriveIndexStats(pattern, DefaultCostConstants());
    EXPECT_EQ(derived.entry_count, index.entry_count()) << pattern_text;
  }
}

TEST_F(StorageFixture, EstimatePathCardinality) {
  auto cs = stats_.Get("SDOC");
  ASSERT_TRUE(cs.ok());
  EXPECT_DOUBLE_EQ((*cs)->EstimatePathCardinality(*xpath::ParsePattern(
                       "/Security/Symbol")),
                   4.0);
  EXPECT_DOUBLE_EQ(
      (*cs)->EstimatePathCardinality(*xpath::ParsePattern("/Security")), 4.0);
  EXPECT_DOUBLE_EQ(
      (*cs)->EstimatePathCardinality(*xpath::ParsePattern("/Nothing")), 0.0);
}

TEST_F(StorageFixture, IndexLookupEquality) {
  PathValueIndex index("sym", "SDOC", Pattern("/Security/Symbol"));
  index.Build(*coll_);
  EXPECT_EQ(index.entry_count(), 4u);
  auto hits = index.Lookup(xpath::CompareOp::kEq,
                           xpath::Literal::String("IBM"));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->rids.size(), 1u);
  EXPECT_EQ(hits->rids[0].doc, doc_ids_[0]);
  EXPECT_GE(hits->leaf_pages_touched, 1u);
}

TEST_F(StorageFixture, IndexLookupNumericRanges) {
  PathValueIndex index(
      "yield", "SDOC",
      Pattern("/Security/Yield", xpath::ValueType::kNumeric));
  index.Build(*coll_);
  EXPECT_EQ(index.entry_count(), 3u);  // NOVAL skipped

  auto gt = index.Lookup(xpath::CompareOp::kGt, xpath::Literal::Number(4.5));
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->rids.size(), 2u);  // 4.8, 6.5

  auto ge = index.Lookup(xpath::CompareOp::kGe, xpath::Literal::Number(4.8));
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->rids.size(), 2u);

  auto lt = index.Lookup(xpath::CompareOp::kLt, xpath::Literal::Number(4.8));
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->rids.size(), 1u);  // 2.1

  auto le = index.Lookup(xpath::CompareOp::kLe, xpath::Literal::Number(4.8));
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->rids.size(), 2u);

  auto eq = index.Lookup(xpath::CompareOp::kEq, xpath::Literal::Number(6.5));
  ASSERT_TRUE(eq.ok());
  ASSERT_EQ(eq->rids.size(), 1u);
  EXPECT_EQ(eq->rids[0].doc, doc_ids_[2]);
}

TEST_F(StorageFixture, IndexRejectsUnsupportedLookups) {
  PathValueIndex index("sym", "SDOC", Pattern("/Security/Symbol"));
  index.Build(*coll_);
  EXPECT_FALSE(
      index.Lookup(xpath::CompareOp::kNe, xpath::Literal::String("x")).ok());
  EXPECT_FALSE(
      index.Lookup(xpath::CompareOp::kEq, xpath::Literal::Number(1)).ok());
}

TEST_F(StorageFixture, IndexMaintenance) {
  PathValueIndex index("sym", "SDOC", Pattern("/Security/Symbol"));
  index.Build(*coll_);
  EXPECT_EQ(index.entry_count(), 4u);

  xml::Document doc = Doc("<Security><Symbol>NEW</Symbol></Security>");
  const xml::DocId id = coll_->Add(Doc("<Security><Symbol>NEW</Symbol></Security>"));
  index.OnInsert(id, coll_->Get(id));
  EXPECT_EQ(index.entry_count(), 5u);
  auto hits =
      index.Lookup(xpath::CompareOp::kEq, xpath::Literal::String("NEW"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->rids.size(), 1u);

  index.OnRemove(id, coll_->Get(id));
  EXPECT_EQ(index.entry_count(), 4u);
}

TEST_F(StorageFixture, UniversalIndexIndexesEverything) {
  PathValueIndex index("all", "SDOC", Pattern("//*"));
  index.Build(*coll_);
  // Every node with a non-empty value: 3 symbols + 3 yields + 4 sectors
  // + NOVAL symbol = 4 symbols, 3 yields, 4 sectors = 11.
  EXPECT_EQ(index.entry_count(), 11u);
}

TEST_F(StorageFixture, CatalogRealAndVirtual) {
  Catalog catalog(&store_, &stats_);
  auto real = catalog.CreateIndex("r1", "SDOC", Pattern("/Security/Symbol"));
  ASSERT_TRUE(real.ok()) << real.status();
  EXPECT_FALSE((*real)->is_virtual);
  EXPECT_EQ((*real)->stats.entry_count, 4u);

  auto virt = catalog.CreateVirtualIndex(
      "v1", "SDOC", Pattern("/Security/Yield", xpath::ValueType::kNumeric));
  ASSERT_TRUE(virt.ok()) << virt.status();
  EXPECT_TRUE((*virt)->is_virtual);
  EXPECT_EQ((*virt)->stats.entry_count, 3u);
  EXPECT_EQ((*virt)->physical, nullptr);

  EXPECT_FALSE(catalog.CreateIndex("r1", "SDOC", Pattern("//*")).ok());
  EXPECT_EQ(catalog.IndexesFor("SDOC").size(), 2u);
  EXPECT_TRUE(catalog.IndexesFor("OTHER").empty());

  EXPECT_TRUE(catalog.GetPhysical("r1").ok());
  EXPECT_FALSE(catalog.GetPhysical("v1").ok());

  catalog.DropAllVirtualIndexes();
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog.Get("r1").ok());
  EXPECT_FALSE(catalog.Get("v1").ok());
  EXPECT_TRUE(catalog.DropIndex("r1").ok());
  EXPECT_FALSE(catalog.DropIndex("r1").ok());
}

TEST_F(StorageFixture, CatalogNotifyMaintainsRealIndexes) {
  Catalog catalog(&store_, &stats_);
  ASSERT_TRUE(catalog.CreateIndex("r1", "SDOC",
                                  Pattern("/Security/Symbol")).ok());
  const xml::DocId id =
      coll_->Add(Doc("<Security><Symbol>ZZZ</Symbol></Security>"));
  catalog.NotifyInsert("SDOC", id, coll_->Get(id));
  auto physical = catalog.GetPhysical("r1");
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ((*physical)->entry_count(), 5u);
  catalog.NotifyRemove("SDOC", id, coll_->Get(id));
  EXPECT_EQ((*physical)->entry_count(), 4u);
}

TEST_F(StorageFixture, VirtualIndexRequiresStatistics) {
  StatisticsCatalog empty_stats;
  Catalog catalog(&store_, &empty_stats);
  EXPECT_FALSE(
      catalog.CreateVirtualIndex("v", "SDOC", Pattern("//*")).ok());
}

// ---- Bulk build fast paths ----

// A bigger mixed collection: varied values (duplicates, empties,
// non-numeric yields) plus deleted documents, so the bulk paths face
// tombstones and rejected keys, not just the happy path.
class BulkBuildFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    coll_ = *store_.CreateCollection("SDOC");
    for (int i = 0; i < 200; ++i) {
      const std::string sym = "S" + std::to_string(i % 37);
      const std::string yield = (i % 11 == 0)   ? ""
                                : (i % 13 == 0) ? "n/a"
                                                : std::to_string(i % 29) + ".5";
      AddSecurity(sym, yield, i % 2 ? "Energy" : "Tech");
    }
    // Tombstones in the middle of the id space.
    for (int i = 40; i < 60; i += 3) {
      ASSERT_TRUE(coll_->Remove(doc_ids_[static_cast<size_t>(i)]).ok());
    }
  }

  void AddSecurity(const std::string& symbol, const std::string& yield,
                   const std::string& sector) {
    std::string yield_el =
        yield.empty() ? "<Yield/>" : "<Yield>" + yield + "</Yield>";
    doc_ids_.push_back(coll_->Add(Doc(
        "<Security><Symbol>" + symbol + "</Symbol>" + yield_el +
        "<SecInfo><StockInformation><Sector>" + sector +
        "</Sector></StockInformation></SecInfo></Security>")));
  }

  std::vector<xpath::IndexPattern> Patterns() const {
    return {Pattern("/Security/Symbol"),
            Pattern("/Security/Yield", xpath::ValueType::kNumeric),
            Pattern("/Security/SecInfo/*/Sector")};
  }

  DocumentStore store_;
  Collection* coll_ = nullptr;
  std::vector<xml::DocId> doc_ids_;
};

TEST_F(BulkBuildFixture, BuildBulkManyMatchesPerIndexBuild) {
  const auto patterns = Patterns();
  std::vector<std::unique_ptr<PathValueIndex>> reference;
  std::vector<std::unique_ptr<PathValueIndex>> many;
  std::vector<PathValueIndex*> many_ptrs;
  for (size_t p = 0; p < patterns.size(); ++p) {
    reference.push_back(
        std::make_unique<PathValueIndex>("r", "SDOC", patterns[p]));
    reference.back()->Build(*coll_);
    many.push_back(std::make_unique<PathValueIndex>("m", "SDOC", patterns[p]));
    many_ptrs.push_back(many.back().get());
  }
  PathValueIndex::BuildBulkMany(*coll_, many_ptrs);
  const CostConstants cc = DefaultCostConstants();
  for (size_t p = 0; p < patterns.size(); ++p) {
    EXPECT_GT(many[p]->entry_count(), 0u) << p;
    EXPECT_EQ(many[p]->ContentDigest(), reference[p]->ContentDigest()) << p;
    // The derived statistics must match too — BulkLoadKeys rebuilds them
    // from the key run rather than maintaining them per insert.
    const IndexStats a = many[p]->ActualStats(cc);
    const IndexStats b = reference[p]->ActualStats(cc);
    EXPECT_EQ(a.entry_count, b.entry_count) << p;
    EXPECT_EQ(a.distinct_keys, b.distinct_keys) << p;
    EXPECT_DOUBLE_EQ(a.avg_key_length, b.avg_key_length) << p;
  }
}

TEST_F(BulkBuildFixture, BuildBulkManyPooledMatchesSerial) {
  const auto patterns = Patterns();
  std::vector<std::unique_ptr<PathValueIndex>> serial;
  std::vector<std::unique_ptr<PathValueIndex>> pooled;
  std::vector<PathValueIndex*> serial_ptrs;
  std::vector<PathValueIndex*> pooled_ptrs;
  for (size_t p = 0; p < patterns.size(); ++p) {
    serial.push_back(std::make_unique<PathValueIndex>("s", "SDOC", patterns[p]));
    serial_ptrs.push_back(serial.back().get());
    pooled.push_back(std::make_unique<PathValueIndex>("p", "SDOC", patterns[p]));
    pooled_ptrs.push_back(pooled.back().get());
  }
  PathValueIndex::BuildBulkMany(*coll_, serial_ptrs, /*pool=*/nullptr);
  util::ThreadPool pool(4);
  PathValueIndex::BuildBulkMany(*coll_, pooled_ptrs, &pool);
  for (size_t p = 0; p < patterns.size(); ++p) {
    EXPECT_EQ(pooled[p]->ContentDigest(), serial[p]->ContentDigest()) << p;
  }
}

TEST_F(BulkBuildFixture, BuildBulkManyNoIndexesIsANoop) {
  PathValueIndex::BuildBulkMany(*coll_, {});  // must not touch the store
  EXPECT_EQ(coll_->live_count(), 193u);
}

TEST_F(BulkBuildFixture, BulkIngestorMatchesIncrementalMaintenance) {
  const auto patterns = Patterns();

  // Reference: a second collection populated with Add + OnInsert per
  // document, the incremental maintenance path.
  DocumentStore ref_store;
  Collection* ref_coll = *ref_store.CreateCollection("SDOC");
  std::vector<std::unique_ptr<PathValueIndex>> incr;
  for (const auto& pattern : patterns) {
    incr.push_back(std::make_unique<PathValueIndex>("i", "SDOC", pattern));
  }

  DocumentStore fast_store;
  Collection* fast_coll = *fast_store.CreateCollection("SDOC");
  std::vector<std::unique_ptr<PathValueIndex>> bulk;
  std::vector<PathValueIndex*> bulk_ptrs;
  for (const auto& pattern : patterns) {
    bulk.push_back(std::make_unique<PathValueIndex>("b", "SDOC", pattern));
    bulk_ptrs.push_back(bulk.back().get());
  }
  BulkIngestor ingestor(fast_coll, bulk_ptrs);

  coll_->ForEach([&](xml::DocId, const xml::Document& doc) {
    xml::Document copy_a = doc;
    const xml::DocId ref_id = ref_coll->Add(std::move(copy_a));
    for (auto& index : incr) index->OnInsert(ref_id, ref_coll->Get(ref_id));
    xml::Document copy_b = doc;
    const xml::DocId fast_id = ingestor.Add(std::move(copy_b));
    EXPECT_EQ(fast_id, ref_id);
  });
  ingestor.Finish();

  for (size_t p = 0; p < patterns.size(); ++p) {
    EXPECT_GT(bulk[p]->entry_count(), 0u) << p;
    EXPECT_EQ(bulk[p]->ContentDigest(), incr[p]->ContentDigest()) << p;
  }
  EXPECT_EQ(fast_coll->live_count(), coll_->live_count());
  EXPECT_EQ(fast_coll->total_bytes(), coll_->total_bytes());

  // The ingested indexes serve lookups like incrementally built ones.
  auto hits = bulk[0]->Lookup(xpath::CompareOp::kEq,
                              xpath::Literal::String("S5"));
  ASSERT_TRUE(hits.ok());
  EXPECT_GT(hits->rids.size(), 0u);
}

TEST_F(BulkBuildFixture, BulkIngestorEmptyCollection) {
  DocumentStore store;
  Collection* coll = *store.CreateCollection("SDOC");
  auto index =
      std::make_unique<PathValueIndex>("e", "SDOC", Pattern("//*"));
  BulkIngestor ingestor(coll, {index.get()});
  ingestor.Finish();
  EXPECT_EQ(index->entry_count(), 0u);
  EXPECT_EQ(coll->live_count(), 0u);
}

}  // namespace
}  // namespace xia::storage
