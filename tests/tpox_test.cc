#include <gtest/gtest.h>

#include <set>

#include "engine/executor.h"
#include "engine/normalizer.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/synthetic.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xia::tpox {
namespace {

TEST(TpoxDataTest, SecurityDocumentShape) {
  Random rng(1);
  const xml::Document doc = GenerateSecurityDocument(17, &rng);
  // The running example's paths must exist.
  auto symbol =
      xpath::EvaluateLinear(doc, *xpath::ParsePattern("/Security/Symbol"));
  ASSERT_EQ(symbol.size(), 1u);
  EXPECT_EQ(doc.node(symbol[0]).value, "SYM000017");
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/Security/SecInfo/*/Sector"))
                .size(),
            1u);
  EXPECT_EQ(
      xpath::EvaluateLinear(doc, *xpath::ParsePattern("/Security/Yield"))
          .size(),
      1u);
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/Security/Price/LastTrade"))
                .size(),
            1u);
}

TEST(TpoxDataTest, SectorValuesComeFromDomain) {
  Random rng(2);
  const auto& sectors = TpoxDomains::Sectors();
  for (int i = 0; i < 50; ++i) {
    const xml::Document doc = GenerateSecurityDocument(i, &rng);
    auto nodes = xpath::EvaluateLinear(
        doc, *xpath::ParsePattern("/Security/SecInfo/*/Sector"));
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_NE(std::find(sectors.begin(), sectors.end(),
                        doc.node(nodes[0]).value),
              sectors.end());
  }
}

TEST(TpoxDataTest, WildcardLevelVariesByType) {
  Random rng(3);
  std::set<std::string> type_elements;
  for (int i = 0; i < 60; ++i) {
    const xml::Document doc = GenerateSecurityDocument(i, &rng);
    auto nodes = xpath::EvaluateLinear(
        doc, *xpath::ParsePattern("/Security/SecInfo/*"));
    ASSERT_FALSE(nodes.empty());
    type_elements.insert(doc.node(nodes[0]).label);
  }
  // Several distinct intermediate elements — the reason the wildcard
  // pattern is interesting.
  EXPECT_GE(type_elements.size(), 2u);
}

TEST(TpoxDataTest, OrderDocumentShape) {
  Random rng(4);
  const xml::Document doc = GenerateOrderDocument(42, 100, &rng);
  auto id = xpath::EvaluateLinear(doc,
                                  *xpath::ParsePattern("/FIXML/Order/@ID"));
  ASSERT_EQ(id.size(), 1u);
  EXPECT_EQ(doc.node(id[0]).value, "100042");
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/FIXML/Order/Instrmt/Sym"))
                .size(),
            1u);
  EXPECT_EQ(xpath::EvaluateLinear(
                doc, *xpath::ParsePattern("/FIXML/Order/OrdQty/@Qty"))
                .size(),
            1u);
}

TEST(TpoxDataTest, CustAccDocumentShape) {
  Random rng(5);
  const xml::Document doc = GenerateCustAccDocument(7, &rng);
  auto id = xpath::EvaluateLinear(doc, *xpath::ParsePattern("/Customer/Id"));
  ASSERT_EQ(id.size(), 1u);
  EXPECT_EQ(doc.node(id[0]).value, "1007");
  auto amounts = xpath::EvaluateLinear(
      doc, *xpath::ParsePattern(
               "/Customer/Accounts/Account/Balance/OnlineActualBal/Amount"));
  EXPECT_GE(amounts.size(), 1u);
  EXPECT_LE(amounts.size(), 4u);
}

TEST(TpoxDataTest, DeterministicForEqualSeeds) {
  Random a(9), b(9);
  const xml::Document d1 = GenerateSecurityDocument(3, &a);
  const xml::Document d2 = GenerateSecurityDocument(3, &b);
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.node(static_cast<xml::NodeIndex>(i)).value,
              d2.node(static_cast<xml::NodeIndex>(i)).value);
  }
}

TEST(TpoxDataTest, BuildDatabasePopulatesEverything) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 50;
  scale.order_docs = 80;
  scale.custacc_docs = 20;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());
  for (const auto& [name, count] :
       std::map<std::string, size_t>{{kSecurityCollection, 50},
                                     {kOrderCollection, 80},
                                     {kCustAccCollection, 20}}) {
    auto coll = store.GetCollection(name);
    ASSERT_TRUE(coll.ok()) << name;
    EXPECT_EQ((*coll)->live_count(), count) << name;
    EXPECT_TRUE(stats.Get(name).ok()) << name;
  }
}

// Every TPoX query must parse, normalize, and produce at least one result
// against the generated data — the literals reference generated values.
TEST(TpoxWorkloadTest, QueriesProduceResults) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 200;
  scale.order_docs = 300;
  scale.custacc_docs = 100;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());

  auto workload = TpoxQueries();
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 11u);

  size_t queries_with_results = 0;
  for (const auto& stmt : *workload) {
    ASSERT_TRUE(stmt.is_query()) << stmt.label;
    auto norm = engine::Normalize(stmt);
    ASSERT_TRUE(norm.ok()) << stmt.label << ": " << norm.status();
    auto coll = store.GetCollection(norm->collection);
    ASSERT_TRUE(coll.ok()) << stmt.label;
    size_t results = 0;
    (*coll)->ForEach([&](xml::DocId, const xml::Document& doc) {
      results += xpath::Evaluate(doc, norm->path).size();
    });
    if (results > 0) ++queries_with_results;
  }
  // Range predicates with fixed literals may occasionally select nothing
  // at tiny scale, but the vast majority must hit.
  EXPECT_GE(queries_with_results, 9u);
}

TEST(TpoxWorkloadTest, UpdatesParseAndTarget) {
  Random rng(11);
  auto updates = TpoxUpdates(3, 4, 100, &rng);
  ASSERT_TRUE(updates.ok()) << updates.status();
  ASSERT_EQ(updates->size(), 7u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*updates)[i].is_insert());
    EXPECT_EQ((*updates)[i].collection(), kOrderCollection);
  }
  for (size_t i = 3; i < 7; ++i) {
    EXPECT_TRUE((*updates)[i].is_delete());
  }
}

TEST(TpoxWorkloadTest, TransactionMixCoversAllKinds) {
  Random rng(13);
  auto mix = TpoxTransactionMix(2, 100, 100, 50, &rng);
  ASSERT_TRUE(mix.ok()) << mix.status();
  ASSERT_EQ(mix->size(), 10u);  // 5 kinds x 2
  size_t inserts = 0;
  size_t updates = 0;
  size_t deletes = 0;
  for (const auto& stmt : *mix) {
    EXPECT_TRUE(stmt.is_modification());
    if (stmt.is_insert()) ++inserts;
    if (stmt.is_update()) ++updates;
    if (stmt.is_delete()) ++deletes;
  }
  EXPECT_EQ(inserts, 2u);
  EXPECT_EQ(updates, 6u);
  EXPECT_EQ(deletes, 2u);
}

TEST(TpoxWorkloadTest, TransactionMixExecutes) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 80;
  scale.order_docs = 120;
  scale.custacc_docs = 40;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());
  Random rng(17);
  auto mix = TpoxTransactionMix(3, 80, 120, 40, &rng);
  ASSERT_TRUE(mix.ok());

  storage::Catalog catalog(&store, &stats);
  optimizer::Optimizer opt(&store, &catalog, &stats);
  engine::Executor executor(&store, &catalog);
  for (const auto& stmt : *mix) {
    auto plan = opt.Optimize(stmt);
    ASSERT_TRUE(plan.ok()) << stmt.label << ": " << plan.status();
    auto result = executor.Execute(stmt, *plan);
    ASSERT_TRUE(result.ok()) << stmt.label << ": " << result.status();
  }
  // Inserts added three orders, deletes removed up to three.
  auto orders = store.GetCollection(kOrderCollection);
  ASSERT_TRUE(orders.ok());
  EXPECT_GE((*orders)->live_count(), 120u + 3 - 3);
}

TEST(SyntheticTest, GeneratesRequestedCount) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 100;
  scale.order_docs = 100;
  scale.custacc_docs = 50;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());

  Random rng(3);
  auto workload = GenerateSyntheticWorkload(
      stats, {kSecurityCollection, kOrderCollection}, 25, &rng);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 25u);
  for (const auto& stmt : *workload) {
    ASSERT_TRUE(stmt.is_query());
    EXPECT_FALSE(stmt.query().binding.empty());
    // Exactly one comparison predicate on the last step.
    const auto& last = stmt.query().binding.steps().back();
    ASSERT_EQ(last.predicates.size(), 1u);
    EXPECT_TRUE(last.predicates[0].is_comparison());
  }
}

TEST(SyntheticTest, QueriesMatchDataPaths) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 120;
  scale.order_docs = 0;
  scale.custacc_docs = 0;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());

  Random rng(7);
  SyntheticOptions options;
  options.wildcard_probability = 0.3;
  options.descendant_probability = 0.3;
  auto workload = GenerateSyntheticWorkload(stats, {kSecurityCollection}, 30,
                                            &rng, options);
  ASSERT_TRUE(workload.ok());

  auto coll = store.GetCollection(kSecurityCollection);
  ASSERT_TRUE(coll.ok());
  // The binding *spine* (ignoring the value predicate) must match data in
  // at least one document: synthetic queries are over paths that occur in
  // the data.
  for (const auto& stmt : *workload) {
    const xpath::Path spine = stmt.query().binding.Spine();
    bool found = false;
    (*coll)->ForEach([&](xml::DocId, const xml::Document& doc) {
      if (!found && !xpath::EvaluateLinear(doc, spine).empty()) found = true;
    });
    EXPECT_TRUE(found) << spine.ToString();
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  TpoxScale scale;
  scale.security_docs = 60;
  scale.order_docs = 60;
  scale.custacc_docs = 30;
  ASSERT_TRUE(BuildTpoxDatabase(scale, &store, &stats).ok());
  Random r1(42), r2(42);
  auto w1 = GenerateSyntheticWorkload(stats, {kSecurityCollection}, 10, &r1);
  auto w2 = GenerateSyntheticWorkload(stats, {kSecurityCollection}, 10, &r2);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*w1)[i].text, (*w2)[i].text);
  }
}

}  // namespace
}  // namespace xia::tpox
