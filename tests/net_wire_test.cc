// Wire-format tests for xia::net: frame/payload roundtrips, incremental
// stream decoding, and the satellite robustness guarantee — flip or
// truncate ANY byte of a framed request and the reader must never yield
// a decoded frame (same discipline as the WAL's torn-frame tests).

#include "net/wire.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/status.h"

namespace xia::net {
namespace {

Frame MustPoll(FrameReader* reader) {
  Frame frame;
  std::string error;
  const FrameReader::Next next = reader->Poll(&frame, &error);
  EXPECT_EQ(next, FrameReader::Next::kFrame) << error;
  return frame;
}

TEST(NetWireTest, FrameRoundtrip) {
  const std::string encoded =
      EncodeFrame(MsgType::kQuery, 0xDEADBEEFCAFEull, "hello payload");
  ASSERT_GE(encoded.size(), kHeaderBytes);

  FrameReader reader;
  reader.Feed(encoded);
  const Frame frame = MustPoll(&reader);
  EXPECT_EQ(frame.type, MsgType::kQuery);
  EXPECT_EQ(frame.request_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(frame.payload, "hello payload");
  EXPECT_EQ(reader.buffered(), 0u);

  Frame next;
  std::string error;
  EXPECT_EQ(reader.Poll(&next, &error), FrameReader::Next::kNeedMore);
}

TEST(NetWireTest, EmptyPayloadFrame) {
  FrameReader reader;
  reader.Feed(EncodeFrame(MsgType::kPing, 7, ""));
  const Frame frame = MustPoll(&reader);
  EXPECT_EQ(frame.type, MsgType::kPing);
  EXPECT_EQ(frame.request_id, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetWireTest, IncrementalFeedByteByByte) {
  const std::string encoded = EncodeFrame(MsgType::kAdvise, 42, "abcdefgh");
  FrameReader reader;
  Frame frame;
  std::string error;
  for (size_t i = 0; i + 1 < encoded.size(); ++i) {
    reader.Feed(std::string_view(&encoded[i], 1));
    ASSERT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kNeedMore)
        << "yielded a frame after only " << (i + 1) << " bytes";
  }
  reader.Feed(std::string_view(&encoded[encoded.size() - 1], 1));
  ASSERT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kFrame) << error;
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, "abcdefgh");
}

TEST(NetWireTest, MultipleFramesInOneBuffer) {
  std::string stream;
  for (uint64_t id = 1; id <= 5; ++id) {
    stream += EncodeFrame(MsgType::kPing, id, std::string(id, 'x'));
  }
  FrameReader reader;
  reader.Feed(stream);
  for (uint64_t id = 1; id <= 5; ++id) {
    const Frame frame = MustPoll(&reader);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.payload.size(), id);
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

// The satellite guarantee: flipping a single bit at ANY offset of a
// framed request — header, request id, length, CRC, or payload — must
// never let the reader hand a frame to the dispatcher. The CRC is
// computed over the whole frame precisely for this (a payload-only CRC
// would let a flipped request_id through as a "valid" other request).
TEST(NetWireTest, ByteFlipAtEveryOffsetNeverYieldsFrame) {
  const std::string encoded =
      EncodeFrame(MsgType::kMutation, 99,
                  EncodeMutationRequest(MutationRequest{
                      "insert into C values <Doc><A>1</A></Doc>", 0}));
  for (size_t offset = 0; offset < encoded.size(); ++offset) {
    SCOPED_TRACE("offset " + std::to_string(offset));
    std::string corrupt = encoded;
    corrupt[offset] ^= 0x01;

    FrameReader reader;
    reader.Feed(corrupt);
    // Pad generously: a flip in payload_len can make the frame "longer",
    // so give the reader enough extra bytes to complete that bogus
    // length wherever it stays under the payload cap.
    reader.Feed(std::string(512, '\0'));

    Frame frame;
    std::string error;
    const FrameReader::Next next = reader.Poll(&frame, &error);
    ASSERT_NE(next, FrameReader::Next::kFrame)
        << "corrupt frame decoded as type " << static_cast<int>(frame.type);
  }
}

TEST(NetWireTest, TruncationAtEveryLengthNeverYieldsFrame) {
  const std::string encoded = EncodeFrame(
      MsgType::kQuery, 3,
      EncodeQueryRequest(QueryRequest{"for $x in c('C')/A return $x", true,
                                      10, 0}));
  for (size_t len = 0; len < encoded.size(); ++len) {
    SCOPED_TRACE("length " + std::to_string(len));
    FrameReader reader;
    reader.Feed(encoded.substr(0, len));
    Frame frame;
    std::string error;
    // A pure prefix is indistinguishable from a slow sender: the reader
    // must wait, not decode and not flag corruption.
    EXPECT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kNeedMore);
  }
}

TEST(NetWireTest, BadMagicVersionFlagsTypeAreSticky) {
  const std::string good = EncodeFrame(MsgType::kPing, 1, "p");

  const auto expect_bad = [&](size_t offset, char value,
                              const std::string& label) {
    SCOPED_TRACE(label);
    std::string corrupt = good;
    corrupt[offset] = value;
    FrameReader reader;
    reader.Feed(corrupt);
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kBad);
    EXPECT_FALSE(error.empty());
    // Sticky: even a pristine frame afterwards must not resynchronize.
    reader.Feed(good);
    EXPECT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kBad);
  };

  expect_bad(0, 'X', "magic");
  expect_bad(4, 0x7F, "version");
  expect_bad(5, 0x3F, "unknown type");
  expect_bad(6, 0x01, "nonzero flags");
}

TEST(NetWireTest, OversizedPayloadLengthIsBadNotAllocation) {
  std::string corrupt = EncodeFrame(MsgType::kPing, 1, "p");
  // payload_len lives at offset 16..19 (LE); claim ~4 GB.
  corrupt[16] = static_cast<char>(0xFF);
  corrupt[17] = static_cast<char>(0xFF);
  corrupt[18] = static_cast<char>(0xFF);
  corrupt[19] = static_cast<char>(0x7F);
  FrameReader reader;
  reader.Feed(corrupt);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.Poll(&frame, &error), FrameReader::Next::kBad);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(NetWireTest, QueryRequestRoundtrip) {
  QueryRequest req;
  req.statement = "for $s in c('SDOC')/Security return $s";
  req.materialize_rows = true;
  req.max_rows = 123;
  req.budget_ms = 1.5;
  const auto decoded = DecodeQueryRequest(EncodeQueryRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->statement, req.statement);
  EXPECT_TRUE(decoded->materialize_rows);
  EXPECT_EQ(decoded->max_rows, 123u);
  EXPECT_DOUBLE_EQ(decoded->budget_ms, 1.5);
}

TEST(NetWireTest, AdviseRequestRoundtrip) {
  AdviseRequest req;
  req.workload_text = "q1 | 2.0 | for $x in c('C')/A return $x\n";
  req.disk_budget_bytes = 5.5 * 1024 * 1024;
  req.algorithm = "topdown-lite";
  req.budget_ms = 250;
  req.threads = 4;
  const auto decoded = DecodeAdviseRequest(EncodeAdviseRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->workload_text, req.workload_text);
  EXPECT_DOUBLE_EQ(decoded->disk_budget_bytes, req.disk_budget_bytes);
  EXPECT_EQ(decoded->algorithm, "topdown-lite");
  EXPECT_DOUBLE_EQ(decoded->budget_ms, 250.0);
  EXPECT_EQ(decoded->threads, 4u);
}

TEST(NetWireTest, ExecReplyRoundtripWithRows) {
  ExecReply reply;
  reply.result_count = 7;
  reply.docs_examined = 1000;
  reply.index_entries_scanned = 64;
  reply.wall_seconds = 0.00123;
  reply.rows = {"<A>1</A>", "", std::string(1000, 'z')};
  const auto decoded = DecodeExecReply(EncodeExecReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->result_count, 7u);
  EXPECT_EQ(decoded->docs_examined, 1000u);
  EXPECT_EQ(decoded->index_entries_scanned, 64u);
  EXPECT_DOUBLE_EQ(decoded->wall_seconds, 0.00123);
  EXPECT_EQ(decoded->rows, reply.rows);
}

TEST(NetWireTest, AdviseReplyRoundtrip) {
  AdviseReply reply;
  reply.indexes.push_back(AdviseReplyIndex{"CREATE INDEX a ...", 4096, false});
  reply.indexes.push_back(AdviseReplyIndex{"CREATE INDEX b ...", 9999, true});
  reply.total_size_bytes = 14095;
  reply.est_speedup = 2.25;
  reply.optimizer_calls = 321;
  reply.partial = true;
  const auto decoded = DecodeAdviseReply(EncodeAdviseReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->indexes.size(), 2u);
  EXPECT_EQ(decoded->indexes[0].ddl, "CREATE INDEX a ...");
  EXPECT_EQ(decoded->indexes[1].size_bytes, 9999u);
  EXPECT_TRUE(decoded->indexes[1].is_general);
  EXPECT_DOUBLE_EQ(decoded->est_speedup, 2.25);
  EXPECT_EQ(decoded->optimizer_calls, 321u);
  EXPECT_TRUE(decoded->partial);
}

TEST(NetWireTest, ExplainMetricsTextRoundtrips) {
  ExplainRequest explain;
  explain.analyze = true;
  explain.statement = "delete from C where /A";
  explain.budget_ms = 9;
  const auto e = DecodeExplainRequest(EncodeExplainRequest(explain));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->analyze);
  EXPECT_EQ(e->statement, explain.statement);

  MetricsRequest metrics;
  metrics.format = MetricsFormat::kPrometheus;
  const auto m = DecodeMetricsRequest(EncodeMetricsRequest(metrics));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->format, MetricsFormat::kPrometheus);

  const auto t = DecodeTextReply(EncodeTextReply(TextReply{"plan text"}));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->text, "plan text");
}

TEST(NetWireTest, ErrorReplyCarriesStatus) {
  const ErrorReply reply{StatusCode::kDeadlineExceeded, "over budget"};
  const auto decoded = DecodeErrorReply(EncodeErrorReply(reply));
  ASSERT_TRUE(decoded.ok());
  const Status status = ErrorReplyToStatus(*decoded);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("over budget"), std::string::npos);

  // A kError frame claiming kOk is itself a protocol violation.
  EXPECT_EQ(ErrorReplyToStatus(ErrorReply{StatusCode::kOk, "?"}).code(),
            StatusCode::kInternal);
}

TEST(NetWireTest, MalformedPayloadsAreParseErrors) {
  // Truncate every decodable payload at every length: decoders must
  // return ParseError, never crash or accept.
  const std::string payloads[] = {
      EncodeQueryRequest(QueryRequest{"stmt", true, 5, 1}),
      EncodeMutationRequest(MutationRequest{"stmt", 2}),
      EncodeAdviseRequest(AdviseRequest{"w", 100, "greedy", 3, 1}),
      EncodeExplainRequest(ExplainRequest{true, "stmt", 4}),
      EncodeMetricsRequest(MetricsRequest{MetricsFormat::kTable}),
      EncodeExecReply(ExecReply{1, 2, 3, 0.5, {"r"}}),
      EncodeAdviseReply(AdviseReply{{{"d", 1, false}}, 1, 2, 3, false}),
      EncodeErrorReply(ErrorReply{StatusCode::kInternal, "m"}),
  };
  const auto try_all = [](std::string_view payload) {
    (void)DecodeQueryRequest(payload);
    (void)DecodeMutationRequest(payload);
    (void)DecodeAdviseRequest(payload);
    (void)DecodeExplainRequest(payload);
    (void)DecodeMetricsRequest(payload);
    (void)DecodeExecReply(payload);
    (void)DecodeAdviseReply(payload);
    (void)DecodeErrorReply(payload);
  };
  for (const std::string& payload : payloads) {
    for (size_t len = 0; len < payload.size(); ++len) {
      try_all(std::string_view(payload.data(), len));
    }
    // Trailing junk must be rejected too (strict AtEnd).
    const std::string extended = payload + "junk";
    EXPECT_FALSE(DecodeQueryRequest(extended).ok() &&
                 DecodeMutationRequest(extended).ok());
  }
  // Spot-check a truncated decode's code.
  const std::string query = EncodeQueryRequest(QueryRequest{"s", false, 1, 0});
  const auto truncated =
      DecodeQueryRequest(std::string_view(query.data(), query.size() - 1));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kParseError);
}

TEST(NetWireTest, ReplSubscribeRoundtrip) {
  ReplSubscribeRequest req;
  req.follower_id = "replica-7";
  req.start_lsn = 0x1234567890ABCDEFull;
  const auto decoded =
      DecodeReplSubscribeRequest(EncodeReplSubscribeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->follower_id, "replica-7");
  EXPECT_EQ(decoded->start_lsn, 0x1234567890ABCDEFull);
}

TEST(NetWireTest, ReplSnapshotRoundtrip) {
  ReplSnapshotPayload snap;
  snap.checkpoint_lsn = 42;
  snap.has_snapshot = true;
  snap.has_catalog = true;
  snap.snapshot_bytes = std::string(10000, '\x01') + "tail";
  snap.catalog_bytes = "CATALOG\x00\x7f bytes";
  const auto decoded =
      DecodeReplSnapshotPayload(EncodeReplSnapshotPayload(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->checkpoint_lsn, 42u);
  EXPECT_TRUE(decoded->has_snapshot);
  EXPECT_TRUE(decoded->has_catalog);
  EXPECT_EQ(decoded->snapshot_bytes, snap.snapshot_bytes);
  EXPECT_EQ(decoded->catalog_bytes, snap.catalog_bytes);
}

TEST(NetWireTest, ReplAckRoundtrip) {
  const auto decoded =
      DecodeReplAckPayload(EncodeReplAckPayload(ReplAckPayload{77}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->acked_lsn, 77u);
}

TEST(NetWireTest, ReplPayloadsRejectTruncationAndJunk) {
  // Each payload against its own decoder: every strict prefix and any
  // trailing junk must be a ParseError (a prefix of one payload can be a
  // structurally valid *other* payload, so no cross-decoder claims).
  const auto check = [](const std::string& payload, auto decode) {
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(decode(std::string_view(payload.data(), len)).ok())
          << "truncated to " << len;
    }
    EXPECT_FALSE(decode(payload + "x").ok()) << "trailing junk";
  };
  check(EncodeReplSubscribeRequest(ReplSubscribeRequest{"f", 9}),
        [](std::string_view p) { return DecodeReplSubscribeRequest(p); });
  check(EncodeReplSnapshotPayload(ReplSnapshotPayload{5, true, true, "s", "c"}),
        [](std::string_view p) { return DecodeReplSnapshotPayload(p); });
  check(EncodeReplAckPayload(ReplAckPayload{3}),
        [](std::string_view p) { return DecodeReplAckPayload(p); });
}

TEST(NetWireTest, ReplTypesAreKnownAndOnlySubscribeIsARequest) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MsgType::kReplSubscribe)));
  for (const MsgType type :
       {MsgType::kReplFrame, MsgType::kReplSnapshot, MsgType::kReplAck}) {
    EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(type)));
    // Known to the frame reader: a stream frame of this type parses.
    FrameReader reader;
    reader.Feed(EncodeFrame(type, 0, "record-bytes"));
    const Frame frame = MustPoll(&reader);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.request_id, 0u);
    EXPECT_EQ(frame.payload, "record-bytes");
  }
  EXPECT_STREQ(MsgTypeName(MsgType::kReplSubscribe), "repl_subscribe");
  EXPECT_STREQ(MsgTypeName(MsgType::kReplFrame), "repl_frame");
  EXPECT_STREQ(MsgTypeName(MsgType::kReplSnapshot), "repl_snapshot");
  EXPECT_STREQ(MsgTypeName(MsgType::kReplAck), "repl_ack");
}

TEST(NetWireTest, CreateIndexRoundtrip) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MsgType::kCreateIndex)));
  EXPECT_STREQ(MsgTypeName(MsgType::kCreateIndex), "create_index");

  CreateIndexRequest req;
  req.name = "sym";
  req.collection = "SDOC";
  req.pattern = "/Security/Symbol";
  req.value_type = 1;
  req.structural = true;
  req.is_virtual = false;
  req.online = true;
  const auto decoded = DecodeCreateIndexRequest(EncodeCreateIndexRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->name, "sym");
  EXPECT_EQ(decoded->collection, "SDOC");
  EXPECT_EQ(decoded->pattern, "/Security/Symbol");
  EXPECT_EQ(decoded->value_type, 1);
  EXPECT_TRUE(decoded->structural);
  EXPECT_FALSE(decoded->is_virtual);
  EXPECT_TRUE(decoded->online);

  CreateIndexReply reply;
  reply.entry_count = 123456;
  reply.size_bytes = 7890123;
  reply.online = true;
  reply.build_seconds = 1.25;
  reply.stall_seconds = 0.03125;
  reply.delta_ops = 42;
  const auto reply2 = DecodeCreateIndexReply(EncodeCreateIndexReply(reply));
  ASSERT_TRUE(reply2.ok()) << reply2.status();
  EXPECT_EQ(reply2->entry_count, 123456u);
  EXPECT_EQ(reply2->size_bytes, 7890123u);
  EXPECT_TRUE(reply2->online);
  EXPECT_DOUBLE_EQ(reply2->build_seconds, 1.25);
  EXPECT_DOUBLE_EQ(reply2->stall_seconds, 0.03125);
  EXPECT_EQ(reply2->delta_ops, 42u);
}

TEST(NetWireTest, CreateIndexRejectsMalformedPayloads) {
  CreateIndexRequest req;
  req.name = "sym";
  req.collection = "SDOC";
  req.pattern = "/Security/Symbol";
  const std::string good = EncodeCreateIndexRequest(req);
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(
        DecodeCreateIndexRequest(std::string_view(good.data(), len)).ok());
  }
  EXPECT_FALSE(DecodeCreateIndexRequest(good + "junk").ok());
  // Semantic rejects: empty fields, out-of-range enums/flags, and the
  // virtual+online combination (builds nothing to build online).
  CreateIndexRequest bad = req;
  bad.name.clear();
  EXPECT_FALSE(DecodeCreateIndexRequest(EncodeCreateIndexRequest(bad)).ok());
  bad = req;
  bad.value_type = 2;
  EXPECT_FALSE(DecodeCreateIndexRequest(EncodeCreateIndexRequest(bad)).ok());
  bad = req;
  bad.is_virtual = true;
  bad.online = true;
  EXPECT_FALSE(DecodeCreateIndexRequest(EncodeCreateIndexRequest(bad)).ok());

  const std::string reply = EncodeCreateIndexReply(CreateIndexReply{});
  for (size_t len = 0; len < reply.size(); ++len) {
    EXPECT_FALSE(
        DecodeCreateIndexReply(std::string_view(reply.data(), len)).ok());
  }
  EXPECT_FALSE(DecodeCreateIndexReply(reply + "x").ok());
}

}  // namespace
}  // namespace xia::net
