#include <gtest/gtest.h>

#include <algorithm>

#include "advisor/dag.h"
#include "advisor/generalize.h"
#include "util/random.h"
#include "xpath/containment.h"
#include "xpath/parser.h"

namespace xia::advisor {
namespace {

xpath::Path P(const char* text) {
  auto p = xpath::ParsePattern(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

std::vector<std::string> Strings(const std::vector<xpath::Path>& paths) {
  std::vector<std::string> out;
  for (const auto& p : paths) out.push_back(p.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RewriteWildcardRunsTest, PaperRuleZeroExamples) {
  // §V Rule 0: /a/*/b -> /a//b and /a/*/*/b -> /a//b.
  EXPECT_EQ(RewriteWildcardRuns(P("/a/*/b")).ToString(), "/a//b");
  EXPECT_EQ(RewriteWildcardRuns(P("/a/*/*/b")).ToString(), "/a//b");
}

TEST(RewriteWildcardRunsTest, KeepsTrailingWildcard) {
  EXPECT_EQ(RewriteWildcardRuns(P("/a/*")).ToString(), "/a/*");
  EXPECT_EQ(RewriteWildcardRuns(P("/a/*/*")).ToString(), "/a//*");
}

TEST(RewriteWildcardRunsTest, LeadingWildcard) {
  EXPECT_EQ(RewriteWildcardRuns(P("/*/a")).ToString(), "//a");
}

TEST(RewriteWildcardRunsTest, ResultCoversInput) {
  for (const char* text :
       {"/a/*/b", "/a/*/*/b", "/*/a", "/a/b", "//a/*/b", "/a/*//b/*"}) {
    const xpath::Path in = P(text);
    const xpath::Path out = RewriteWildcardRuns(in);
    EXPECT_TRUE(xpath::Covers(out, in))
        << out.ToString() << " should cover " << text;
  }
}

TEST(GeneralizePairTest, PaperTableOneExample) {
  // §V: /Security/Symbol + /Security/SecInfo/*/Sector => /Security//*.
  auto results =
      GeneralizePair(P("/Security/Symbol"), P("/Security/SecInfo/*/Sector"));
  EXPECT_EQ(Strings(results), (std::vector<std::string>{"/Security//*"}));
}

TEST(GeneralizePairTest, PaperReoccurrenceExample) {
  // §V Rule 4 narrative: /a/b/d + /a/d/b/d => {/a//d, /a//b/d}.
  auto results = GeneralizePair(P("/a/b/d"), P("/a/d/b/d"));
  const auto strings = Strings(results);
  EXPECT_NE(std::find(strings.begin(), strings.end(), "/a//d"),
            strings.end())
      << "missing /a//d";
  EXPECT_NE(std::find(strings.begin(), strings.end(), "/a//b/d"),
            strings.end())
      << "missing /a//b/d";
}

TEST(GeneralizePairTest, IdenticalInputsGeneralizeToSelf) {
  auto results = GeneralizePair(P("/a/b/c"), P("/a/b/c"));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].ToString(), "/a/b/c");
}

TEST(GeneralizePairTest, DisjointNamesWidenToWildcards) {
  auto results = GeneralizePair(P("/a/b"), P("/c/d"));
  ASSERT_FALSE(results.empty());
  // Everything widens: the only generalization is //*.
  EXPECT_EQ(results[0].ToString(), "//*");
}

TEST(GeneralizePairTest, DescendantAxisSurvives) {
  auto results = GeneralizePair(P("/a//b"), P("/a/b"));
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_TRUE(xpath::Covers(r, P("/a//b"))) << r.ToString();
  }
}

TEST(GeneralizePairTest, DifferentLengthsUseWildcardGap) {
  auto results = GeneralizePair(P("/a/b"), P("/a/x/y/b"));
  const auto strings = Strings(results);
  EXPECT_NE(std::find(strings.begin(), strings.end(), "/a//b"),
            strings.end())
      << "expected /a//b among: " << ::testing::PrintToString(strings);
}

TEST(GeneralizePairTest, EmptyInputRejected) {
  EXPECT_TRUE(GeneralizePair(xpath::Path(), P("/a")).empty());
}

// Fundamental soundness property (§V): every generalization covers both
// inputs.
class GeneralizeSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

xpath::Path RandomPattern(Random* rng) {
  const char* names[] = {"a", "b", "c", "d", "*"};
  std::vector<xpath::Step> steps;
  const size_t len = 1 + rng->Uniform(4);
  for (size_t i = 0; i < len; ++i) {
    steps.emplace_back(
        rng->Bernoulli(0.25) ? xpath::Axis::kDescendant
                             : xpath::Axis::kChild,
        names[rng->Uniform(5)]);
  }
  return xpath::Path(std::move(steps));
}

TEST_P(GeneralizeSoundnessTest, OutputsCoverBothInputs) {
  Random rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    const xpath::Path a = RandomPattern(&rng);
    const xpath::Path b = RandomPattern(&rng);
    for (const xpath::Path& g : GeneralizePair(a, b)) {
      EXPECT_TRUE(xpath::Covers(g, a))
          << g.ToString() << " !covers " << a.ToString() << " (from "
          << a.ToString() << " + " << b.ToString() << ")";
      EXPECT_TRUE(xpath::Covers(g, b))
          << g.ToString() << " !covers " << b.ToString() << " (from "
          << a.ToString() << " + " << b.ToString() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralizeSoundnessTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// -------------------------------------------------------------------------
// Candidate-set level generalization.

CandidateSet MakeBasicSet(
    const std::vector<std::pair<const char*, xpath::ValueType>>& patterns) {
  CandidateSet set;
  for (const auto& [text, type] : patterns) {
    Candidate c;
    c.id = static_cast<int>(set.candidates.size());
    c.collection = "SDOC";
    c.pattern = {P(text), type};
    c.covered_basics = {c.id};
    c.affected = {static_cast<size_t>(c.id)};
    set.candidates.push_back(std::move(c));
  }
  set.basic_count = set.candidates.size();
  return set;
}

TEST(GeneralizeCandidatesTest, PaperTableOne) {
  CandidateSet set = MakeBasicSet({
      {"/Security/Symbol", xpath::ValueType::kString},          // C1
      {"/Security/SecInfo/*/Sector", xpath::ValueType::kString},  // C2
      {"/Security/Yield", xpath::ValueType::kNumeric},          // C3
  });
  const GeneralizeStats stats = GeneralizeCandidates(&set);
  EXPECT_GE(stats.pairs_considered, 3u);
  // C4 = /Security//* (string); the numeric C3 cannot generalize with the
  // string candidates (§V: "Candidate C3 cannot be generalized with either
  // C1 or C2 because it is of a different data type").
  ASSERT_EQ(set.size(), 4u);
  const Candidate& c4 = set[3];
  EXPECT_TRUE(c4.is_general);
  EXPECT_EQ(c4.pattern.path.ToString(), "/Security//*");
  EXPECT_EQ(c4.pattern.type, xpath::ValueType::kString);
  // C4 covers C1 and C2, inheriting both affected sets.
  EXPECT_EQ(c4.covered_basics, (std::vector<int>{0, 1}));
  EXPECT_EQ(c4.affected, (std::vector<size_t>{0, 1}));
}

TEST(GeneralizeCandidatesTest, DifferentCollectionsNeverGeneralize) {
  CandidateSet set = MakeBasicSet({
      {"/a/b", xpath::ValueType::kString},
  });
  Candidate other;
  other.id = 1;
  other.collection = "OTHER";
  other.pattern = {P("/a/c"), xpath::ValueType::kString};
  other.covered_basics = {1};
  other.affected = {1};
  set.candidates.push_back(other);
  set.basic_count = 2;
  GeneralizeCandidates(&set);
  EXPECT_EQ(set.size(), 2u);  // nothing produced
}

TEST(GeneralizeCandidatesTest, FixpointAcrossRounds) {
  // Three chains whose pairwise generalizations can themselves combine.
  CandidateSet set = MakeBasicSet({
      {"/a/b/x", xpath::ValueType::kString},
      {"/a/c/x", xpath::ValueType::kString},
      {"/a/b/y", xpath::ValueType::kString},
  });
  GeneralizeCandidates(&set);
  // Expect at least /a//x, /a/b/*, and a most-general /a//*.
  EXPECT_GE(set.size(), 6u);
  bool found_most_general = false;
  for (const auto& c : set.candidates) {
    if (c.pattern.path.ToString() == "/a//*") found_most_general = true;
  }
  EXPECT_TRUE(found_most_general);
}

TEST(BuildDagTest, EdgesFollowStrictCoverage) {
  CandidateSet set = MakeBasicSet({
      {"/Security/Symbol", xpath::ValueType::kString},
      {"/Security/SecInfo/*/Sector", xpath::ValueType::kString},
      {"/Security/Yield", xpath::ValueType::kNumeric},
  });
  GeneralizeCandidates(&set);
  const std::vector<int> roots = BuildDag(&set);
  // Roots: /Security//* (string) and /Security/Yield (numeric).
  ASSERT_EQ(roots.size(), 2u);
  const Candidate& general = set[3];
  EXPECT_EQ(general.children.size(), 2u);
  EXPECT_TRUE(set[0].parents == std::vector<int>{3});
  EXPECT_TRUE(set[1].parents == std::vector<int>{3});
  EXPECT_TRUE(set[2].parents.empty());
  EXPECT_TRUE(set[2].children.empty());
}

TEST(BuildDagTest, TransitiveReduction) {
  CandidateSet set = MakeBasicSet({
      {"/a/b", xpath::ValueType::kString},
      {"/a/*", xpath::ValueType::kString},
      {"//*", xpath::ValueType::kString},
  });
  BuildDag(&set);
  // //* -> /a/* -> /a/b, with no shortcut //* -> /a/b.
  EXPECT_EQ(set[2].children, (std::vector<int>{1}));
  EXPECT_EQ(set[1].children, (std::vector<int>{0}));
  EXPECT_EQ(set[0].children.size(), 0u);
  EXPECT_EQ(set[0].parents, (std::vector<int>{1}));
}

TEST(BuildDagTest, EquivalentPatternsChainByIdOrder) {
  // /a//b and /a/*... two syntactically different but equivalent patterns
  // should not both become roots with no relation.
  CandidateSet set = MakeBasicSet({
      {"/a//b", xpath::ValueType::kString},
      {"//a//b", xpath::ValueType::kString},
  });
  // /a//b strictly contained in //a//b; plus an equivalent duplicate.
  Candidate dup;
  dup.id = 2;
  dup.collection = "SDOC";
  dup.pattern = {P("/a//b"), xpath::ValueType::kString};
  dup.covered_basics = {2};
  set.candidates.push_back(dup);
  set.basic_count = 3;
  const std::vector<int> roots = BuildDag(&set);
  EXPECT_EQ(roots.size(), 1u);  // only //a//b
  EXPECT_EQ(roots[0], 1);
}

}  // namespace
}  // namespace xia::advisor
