#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xia::obs {
namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetLastWins) {
  Gauge g;
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i counts observations <= bounds[i]; the last bucket is
  // overflow. Boundary values land in the bucket whose bound they equal.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0
  h.Observe(1.0);    // bucket 0 (inclusive upper bound)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.0);   // bucket 2
  h.Observe(100.5);  // overflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.5, 1e-9);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ConcurrentObserve) {
  Histogram h({1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket(0), h.count());
  EXPECT_NEAR(h.sum(), 0.5 * static_cast<double>(h.count()), 1e-6);
}

TEST(RegistryTest, StablePointersAndKinds) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c, registry.GetCounter("test.counter"));
  Gauge* g = registry.GetGauge("test.gauge");
  EXPECT_EQ(g, registry.GetGauge("test.gauge"));
  Histogram* h = registry.GetHistogram("test.histogram", {1.0, 2.0});
  EXPECT_EQ(h, registry.GetHistogram("test.histogram", {1.0, 2.0}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(RegistryTest, SnapshotAndResetIsolation) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("iso.counter");
  Gauge* g = registry.GetGauge("iso.gauge");
  Histogram* h = registry.GetHistogram("iso.histogram", {1.0});
  c->Add(7);
  g->Set(2.5);
  h->Observe(0.5);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  const MetricValue* cv = snap.Find("iso.counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->kind, MetricValue::Kind::kCounter);
  EXPECT_EQ(cv->counter, 7u);
  const MetricValue* gv = snap.Find("iso.gauge");
  ASSERT_NE(gv, nullptr);
  EXPECT_DOUBLE_EQ(gv->gauge, 2.5);
  const MetricValue* hv = snap.Find("iso.histogram");
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->buckets.size(), 2u);
  EXPECT_EQ(hv->buckets[0], 1u);
  EXPECT_EQ(hv->count, 1u);
  EXPECT_EQ(snap.Find("iso.absent"), nullptr);

  // The snapshot is a copy: later updates and resets don't touch it.
  c->Add(100);
  registry.ResetAll();
  EXPECT_EQ(snap.Find("iso.counter")->counter, 7u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Registrations (and pointers) survive the reset.
  EXPECT_EQ(c, registry.GetCounter("iso.counter"));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(RegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zzz.last");
  registry.GetGauge("aaa.first");
  registry.GetCounter("mmm.middle");
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aaa.first");
  EXPECT_EQ(snap.metrics[1].name, "mmm.middle");
  EXPECT_EQ(snap.metrics[2].name, "zzz.last");
}

TEST(ExporterTest, TableFormat) {
  MetricsRegistry registry;
  registry.GetCounter("fmt.counter")->Add(3);
  registry.GetGauge("fmt.gauge")->Set(1.5);
  const std::string table = registry.Snapshot().ToTable();
  EXPECT_NE(table.find("fmt.counter"), std::string::npos);
  EXPECT_NE(table.find("3"), std::string::npos);
  EXPECT_NE(table.find("fmt.gauge"), std::string::npos);
  EXPECT_NE(table.find("1.5"), std::string::npos);
}

TEST(ExporterTest, JsonFormat) {
  MetricsRegistry registry;
  registry.GetCounter("json.counter")->Add(5);
  registry.GetHistogram("json.histogram", {1.0})->Observe(0.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"json.histogram\""), std::string::npos);
  // Balanced braces and brackets (cheap structural validity check).
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExporterTest, PrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("prom.requests")->Add(9);
  Histogram* h = registry.GetHistogram("prom.latency", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);
  const std::string text = registry.Snapshot().ToPrometheus();
  // Dots become underscores; histograms expose cumulative buckets plus
  // +Inf, _sum, and _count.
  EXPECT_NE(text.find("prom_requests 9"), std::string::npos);
  EXPECT_NE(text.find("prom_latency_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("prom_latency_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("prom_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("prom_latency_count 3"), std::string::npos);
  EXPECT_NE(text.find("prom_latency_sum"), std::string::npos);
  EXPECT_EQ(text.find("prom.latency"), std::string::npos);
}

TEST(MacroTest, FeedGlobalRegistry) {
  Counter* c = MetricsRegistry::Global().GetCounter("macro.test.counter");
  const uint64_t before = c->value();
  XIA_OBS_COUNT("macro.test.counter", 2);
  XIA_OBS_GAUGE_SET("macro.test.gauge", 4.0);
  XIA_OBS_OBSERVE_LATENCY("macro.test.latency", 0.001);
  if (kObsEnabled) {
    EXPECT_EQ(c->value(), before + 2);
    EXPECT_DOUBLE_EQ(
        MetricsRegistry::Global().GetGauge("macro.test.gauge")->value(), 4.0);
    EXPECT_GE(MetricsRegistry::Global()
                  .GetHistogram("macro.test.latency", LatencyBuckets())
                  ->count(),
              1u);
  } else {
    EXPECT_EQ(c->value(), before);
  }
}

TEST(TracerTest, SpansNestAndSeal) {
  Tracer tracer;
  Counter calls;
  tracer.TrackCounter(&calls);
  {
    ScopedSpan outer(&tracer, "outer");
    calls.Add(3);
    {
      ScopedSpan inner(&tracer, "inner");
      calls.Add(2);
      inner.AnnotateItems(7);
    }
  }
  Trace trace = tracer.Finish();
  ASSERT_EQ(trace.spans.size(), 2u);
  const SpanRecord* outer = trace.Find("outer");
  const SpanRecord* inner = trace.Find("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->tracked_calls, 5u);  // includes the nested span's adds
  EXPECT_EQ(inner->tracked_calls, 2u);
  EXPECT_DOUBLE_EQ(inner->items, 7);
  EXPECT_GE(outer->seconds, inner->seconds);
  EXPECT_GE(inner->seconds, 0.0);
  // Only the outer span is depth 0.
  EXPECT_EQ(trace.PhaseTrackedCalls(), 5u);
  EXPECT_DOUBLE_EQ(trace.PhaseSeconds(), outer->seconds);
}

TEST(TracerTest, EndIsIdempotentAndNullTracerIsNoop) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "phase");
    span.End();
    span.End();  // second End must not double-seal
  }
  EXPECT_EQ(tracer.Finish().spans.size(), 1u);

  ScopedSpan null_span(nullptr, "ignored");
  null_span.AnnotateItems(3);
  null_span.End();  // must not crash
}

TEST(TraceTest, RenderFormats) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "enumerate");
    span.AnnotateItems(12);
  }
  Trace trace = tracer.Finish();
  const std::string text = trace.ToString();
  EXPECT_NE(text.find("enumerate"), std::string::npos);
  const std::string json = trace.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"enumerate\""), std::string::npos);
}

}  // namespace
}  // namespace xia::obs
