// End-to-end tests for xia::net::Server / Client over real loopback
// sockets: every request type, protocol corruption against a live
// server (no partial mutation), admission control, graceful drain,
// killed clients, WAL persistence across restarts, and the net fault
// points' own matrix (the advise-pipeline matrix in fault_matrix_test
// never crosses socket code).

#include "net/server.h"

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace xia::net {
namespace {

namespace fs = std::filesystem;

ServerOptions SmallTpoxOptions() {
  ServerOptions options;
  options.demo = "tpox";
  // Loopback-test scale: every code path, millisecond startup.
  options.demo_tpox_scale = tpox::TpoxScale{30, 40, 20, 42};
  return options;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/xia_net_" + name;
  fs::remove_all(dir);
  return dir;
}

constexpr const char* kPointQuery =
    "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000017\" return $s";
constexpr const char* kMarkerQuery =
    "for $s in c('SDOC')/Security[Yield = 9.9] return $s/Symbol";
constexpr const char* kMarkerMutation =
    "update SDOC set /Security/Yield = 9.9 "
    "where /Security[Symbol = \"SYM000017\"]";

Client MustConnect(const Server& server) {
  Client client;
  EXPECT_TRUE(client.Connect(server.host(), server.port()).ok());
  return client;
}

// Waits (generously — CI machines get starved) until the server has
// admitted at least `n` requests. A fixed pre-assert sleep flakes when a
// concurrent sanitizer build steals the CPU for hundreds of ms.
void WaitForInflight(const Server& server, size_t n) {
  for (int i = 0; i < 5000; ++i) {
    if (server.GetStats().inflight_requests >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "server never reached " << n << " in-flight requests";
}

uint64_t MarkerCount(Client* client) {
  QueryRequest request;
  request.statement = kMarkerQuery;
  const auto reply = client->Query(request);
  EXPECT_TRUE(reply.ok()) << reply.status();
  return reply.ok() ? reply->result_count : ~0ull;
}

TEST(NetServerTest, StartServesEveryRequestTypeAndStops) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  Client client = MustConnect(server);

  // ping
  const auto pong = client.Ping("token-123");
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(*pong, "token-123");

  // query (with rows)
  QueryRequest query;
  query.statement = kPointQuery;
  query.materialize_rows = true;
  const auto qreply = client.Query(query);
  ASSERT_TRUE(qreply.ok()) << qreply.status();
  EXPECT_EQ(qreply->result_count, 1u);
  ASSERT_EQ(qreply->rows.size(), 1u);
  EXPECT_NE(qreply->rows[0].find("SYM000017"), std::string::npos);

  // explain / explain analyze
  ExplainRequest explain;
  explain.statement = kPointQuery;
  const auto plan = client.Explain(explain);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->text.find("SCAN"), std::string::npos) << plan->text;
  explain.analyze = true;
  const auto analyzed = client.Explain(explain);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->text.find("actual"), std::string::npos)
      << analyzed->text;

  // mutation, observed by a follow-up query
  EXPECT_EQ(MarkerCount(&client), 0u);
  MutationRequest mutation;
  mutation.statement = kMarkerMutation;
  const auto mreply = client.Mutate(mutation);
  ASSERT_TRUE(mreply.ok()) << mreply.status();
  EXPECT_EQ(mreply->result_count, 1u);
  EXPECT_EQ(MarkerCount(&client), 1u);

  // advise over an explicit workload text
  AdviseRequest advise;
  advise.workload_text =
      std::string("@freq=20 @label=get_security\n") + kPointQuery + ";\n";
  advise.disk_budget_bytes = 1024 * 1024;
  advise.algorithm = "topdown-full";
  const auto rec = client.Advise(advise);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_FALSE(rec->indexes.empty());
  EXPECT_GT(rec->est_speedup, 1.0);

  // advise over the captured workload (the statements above)
  AdviseRequest captured;
  captured.disk_budget_bytes = 1024 * 1024;
  const auto rec2 = client.Advise(captured);
  ASSERT_TRUE(rec2.ok()) << rec2.status();
  EXPECT_FALSE(rec2->indexes.empty());

  // metrics
  const auto metrics = client.Metrics(MetricsFormat::kJson);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->text.find("xia.net.requests.query"), std::string::npos);

  const ServerStats stats = server.GetStats();
  EXPECT_EQ(stats.connections_total, 1u);
  EXPECT_GE(stats.requests_total, 9u);
  EXPECT_EQ(stats.protocol_errors, 0u);

  EXPECT_TRUE(server.Stop().ok());
  EXPECT_FALSE(server.running());
  // Idempotent.
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, RequestErrorsKeepSessionUsable) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);

  QueryRequest bad;
  bad.statement = "this is not XQuery";
  EXPECT_EQ(client.Query(bad).status().code(), StatusCode::kParseError);

  QueryRequest missing;
  missing.statement = "for $x in c('NOPE')/Y return $x";
  EXPECT_EQ(client.Query(missing).status().code(), StatusCode::kNotFound);

  // Mutations must be refused on the query path and vice versa.
  QueryRequest wrong_kind;
  wrong_kind.statement = kMarkerMutation;
  EXPECT_EQ(client.Query(wrong_kind).status().code(),
            StatusCode::kInvalidArgument);
  MutationRequest not_mutation;
  not_mutation.statement = kPointQuery;
  EXPECT_EQ(client.Mutate(not_mutation).status().code(),
            StatusCode::kInvalidArgument);

  // Request-level errors are answered, not fatal: same session works on.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(server.GetStats().protocol_errors, 0u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, PerRequestDeadlineBecomesDeadlineExceeded) {
  ServerOptions options = SmallTpoxOptions();
  options.default_budget_ms = 30;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server);

  // The sleep ping polls the request deadline — it must be cut off.
  const auto slept = client.Ping("sleep=2000");
  ASSERT_FALSE(slept.ok());
  EXPECT_EQ(slept.status().code(), StatusCode::kDeadlineExceeded);
  // And the session survives its own timed-out request.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(server.Stop().ok());
}

// Satellite 1 against a live server: flip one bit at EVERY offset of a
// framed mutation. The server must answer a clean error frame (or just
// drop the session), must never execute the mutation, and must keep
// serving other clients.
TEST(NetServerTest, ByteFlippedMutationNeverExecutes) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());

  const std::string frame =
      EncodeFrame(MsgType::kMutation, 7,
                  EncodeMutationRequest(MutationRequest{kMarkerMutation, 0}));

  for (size_t offset = 0; offset < frame.size(); ++offset) {
    SCOPED_TRACE("offset " + std::to_string(offset));
    std::string corrupt = frame;
    corrupt[offset] ^= 0x01;

    auto socket = ConnectTcp(server.host(), server.port());
    ASSERT_TRUE(socket.ok()) << socket.status();
    ASSERT_TRUE(socket->SendAll(corrupt).ok());
    // Half-close: flips that enlarge payload_len leave the server
    // waiting for bytes that never come; EOF resolves that to a clean
    // session drop instead of a hang.
    socket->ShutdownWrite();

    // Read to EOF; anything received must be a well-formed kError frame.
    FrameReader reader;
    char buf[4096];
    for (;;) {
      const auto got = socket->Recv(buf, sizeof(buf));
      if (!got.ok() || *got == 0) break;
      reader.Feed(std::string_view(buf, *got));
    }
    Frame response;
    std::string error;
    while (reader.Poll(&response, &error) == FrameReader::Next::kFrame) {
      EXPECT_EQ(response.type, MsgType::kError);
      const auto decoded = DecodeErrorReply(response.payload);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_NE(decoded->code, StatusCode::kOk);
    }
  }

  // No corrupted frame executed: the marker mutation never applied, and
  // the server still serves a fresh client.
  Client client = MustConnect(server);
  EXPECT_EQ(MarkerCount(&client), 0u);
  EXPECT_GT(server.GetStats().protocol_errors, 0u);

  // The pristine frame still works — the corruption loop proved
  // detection, not that the mutation itself was unexecutable.
  MutationRequest mutation;
  mutation.statement = kMarkerMutation;
  ASSERT_TRUE(client.Mutate(mutation).ok());
  EXPECT_EQ(MarkerCount(&client), 1u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, TruncatedMutationNeverExecutes) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());

  const std::string frame =
      EncodeFrame(MsgType::kMutation, 9,
                  EncodeMutationRequest(MutationRequest{kMarkerMutation, 0}));
  // Every strict prefix: connection dies mid-frame; the partial request
  // must never dispatch.
  for (size_t len = 0; len < frame.size(); ++len) {
    auto socket = ConnectTcp(server.host(), server.port());
    ASSERT_TRUE(socket.ok()) << socket.status();
    ASSERT_TRUE(socket->SendAll(std::string_view(frame.data(), len)).ok());
    socket->Close();
  }

  Client client = MustConnect(server);
  EXPECT_EQ(MarkerCount(&client), 0u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, ConcurrentClientsMixedWorkload) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kRequests = 20;
  std::vector<Status> failures(kThreads, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &failures, t] {
      Client client;
      Status status = client.Connect(server.host(), server.port());
      for (int r = 0; status.ok() && r < kRequests; ++r) {
        if (t % 4 == 0 && r % 5 == 0) {
          // Writers: exercise the exclusive-lock path under load.
          MutationRequest mutation;
          mutation.statement = kMarkerMutation;
          status = client.Mutate(mutation).status();
        } else if (r % 3 == 0) {
          status = client.Ping("t" + std::to_string(t)).status();
        } else {
          QueryRequest query;
          query.statement = kPointQuery;
          status = client.Query(query).status();
        }
      }
      failures[t] = status;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": " << failures[t];
  }
  const ServerStats stats = server.GetStats();
  EXPECT_EQ(stats.connections_total, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.requests_total,
            static_cast<uint64_t>(kThreads) * kRequests);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, AdmissionControlRejectsBeyondInflightCap) {
  ServerOptions options = SmallTpoxOptions();
  options.max_inflight_requests = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client slow = MustConnect(server);
  std::thread holder([&slow] {
    // Occupies the single admission slot for 1000 ms.
    const auto reply = slow.Ping("sleep=1000");
    EXPECT_TRUE(reply.ok()) << reply.status();
  });
  WaitForInflight(server, 1);

  Client fast = MustConnect(server);
  const auto rejected = fast.Ping();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  holder.join();

  // Slot free again: the same session is admitted now.
  EXPECT_TRUE(fast.Ping().ok());
  EXPECT_GE(server.GetStats().admission_rejects, 1u);
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, ConnectionCapRejectsExtraClients) {
  ServerOptions options = SmallTpoxOptions();
  options.max_connections = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client first = MustConnect(server);
  ASSERT_TRUE(first.Ping().ok());

  Client second;
  ASSERT_TRUE(second.Connect(server.host(), server.port()).ok());
  const auto rejected = second.Ping();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // The admitted session is unaffected.
  EXPECT_TRUE(first.Ping().ok());
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, GracefulDrainDeliversInFlightResponse) {
  ServerOptions options = SmallTpoxOptions();
  options.drain_timeout_s = 5;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(server);
  Result<std::string> slow = Status::Internal("not run");
  std::thread in_flight([&client, &slow] { slow = client.Ping("sleep=300"); });
  WaitForInflight(server, 1);

  // Stop while the request is executing: drain must let it finish and
  // deliver its response before the session closes.
  EXPECT_TRUE(server.Stop().ok());
  in_flight.join();
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(*slow, "sleep=300");
  EXPECT_FALSE(server.running());

  // And new connections are refused after Stop.
  Client late;
  EXPECT_FALSE(late.Connect(server.host(), server.port(), 0.5).ok());
}

TEST(NetServerTest, DrainTimeoutCancelsStragglers) {
  ServerOptions options = SmallTpoxOptions();
  options.drain_timeout_s = 0.05;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client client = MustConnect(server);
  Result<std::string> slow = Status::Internal("not run");
  std::thread in_flight([&client, &slow] { slow = client.Ping("sleep=5000"); });
  WaitForInflight(server, 1);

  const auto begin = std::chrono::steady_clock::now();
  EXPECT_TRUE(server.Stop().ok());
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  // Stop must not wait out the 5 s sleep — the cancel token cuts it.
  EXPECT_LT(stop_seconds, 3.0);

  in_flight.join();
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kCancelled);
}

TEST(NetServerTest, KilledClientMidRequestDoesNotWedgeServer) {
  Server server(SmallTpoxOptions());
  ASSERT_TRUE(server.Start().ok());

  {
    // Send a slow request and vanish without reading the response: the
    // server's response write must turn into EPIPE, not SIGPIPE/hang.
    auto socket = ConnectTcp(server.host(), server.port());
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(socket->SendAll(EncodeFrame(MsgType::kPing, 1, "sleep=200"))
                    .ok());
  }  // socket closed here, request still executing

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client client = MustConnect(server);
  EXPECT_TRUE(client.Ping().ok());

  const auto begin = std::chrono::steady_clock::now();
  EXPECT_TRUE(server.Stop().ok());
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          begin)
                .count(),
            3.0);
}

TEST(NetServerTest, MutationsPersistAcrossRestartViaWal) {
  const std::string dir = ScratchDir("persist");
  {
    ServerOptions options = SmallTpoxOptions();
    options.data_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server);
    MutationRequest mutation;
    mutation.statement = kMarkerMutation;
    ASSERT_TRUE(client.Mutate(mutation).ok());
    EXPECT_EQ(MarkerCount(&client), 1u);
    ASSERT_TRUE(server.Stop().ok());  // checkpoints
  }
  {
    // Recover without the demo: the data dir carries the database.
    ServerOptions options;
    options.data_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server);
    EXPECT_EQ(MarkerCount(&client), 1u);
    ASSERT_TRUE(server.Stop().ok());
  }
  fs::remove_all(dir);
}

TEST(NetServerTest, CreateIndexOverWireSurvivesRestart) {
  const std::string dir = ScratchDir("create_index");
  {
    ServerOptions options = SmallTpoxOptions();
    options.data_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server);

    CreateIndexRequest offline;
    offline.name = "sym";
    offline.collection = "SDOC";
    offline.pattern = "/Security/Symbol";
    const auto r1 = client.CreateIndex(offline);
    ASSERT_TRUE(r1.ok()) << r1.status();
    EXPECT_GT(r1->entry_count, 0u);
    EXPECT_FALSE(r1->online);

    CreateIndexRequest online;
    online.name = "yld";
    online.collection = "SDOC";
    online.pattern = "/Security/Yield";
    online.value_type = 1;  // numeric
    online.online = true;
    const auto r2 = client.CreateIndex(online);
    ASSERT_TRUE(r2.ok()) << r2.status();
    EXPECT_GT(r2->entry_count, 0u);
    EXPECT_TRUE(r2->online);
    EXPECT_LE(r2->stall_seconds, r2->build_seconds);

    // Duplicates are rejected whichever path built the original.
    EXPECT_EQ(client.CreateIndex(offline).status().code(),
              StatusCode::kAlreadyExists);
    EXPECT_EQ(client.CreateIndex(online).status().code(),
              StatusCode::kAlreadyExists);

    CreateIndexRequest virt;
    virt.name = "v1";
    virt.collection = "SDOC";
    virt.pattern = "/Security/SecInfo/*/Sector";
    virt.is_virtual = true;
    ASSERT_TRUE(client.CreateIndex(virt).ok());

    ASSERT_TRUE(server.Stop().ok());
  }
  {
    // Both real indexes were WAL-committed (the online one inside its
    // swap section), so recovery rebuilds them; the virtual one is
    // advisor scratch and is gone.
    ServerOptions options;
    options.data_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server);
    for (const char* name : {"sym", "yld"}) {
      CreateIndexRequest again;
      again.name = name;
      again.collection = "SDOC";
      again.pattern = "/Security/Symbol";
      EXPECT_EQ(client.CreateIndex(again).status().code(),
                StatusCode::kAlreadyExists)
          << name;
    }
    CreateIndexRequest virt;
    virt.name = "v1";
    virt.collection = "SDOC";
    virt.pattern = "/Security/SecInfo/*/Sector";
    virt.is_virtual = true;
    EXPECT_TRUE(client.CreateIndex(virt).ok());
    ASSERT_TRUE(server.Stop().ok());
  }
  fs::remove_all(dir);
}

TEST(NetServerTest, EphemeralPortsNeverCollide) {
  Server a{ServerOptions()};
  Server b{ServerOptions()};
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
  Client ca = MustConnect(a);
  Client cb = MustConnect(b);
  EXPECT_TRUE(ca.Ping().ok());
  EXPECT_TRUE(cb.Ping().ok());
  EXPECT_TRUE(a.Stop().ok());
  EXPECT_TRUE(b.Stop().ok());
}

// The net points' own fault matrix (fault_matrix_test skips them: its
// advise pipeline never crosses socket code). Client and server share
// this process's fault registry, so an armed point fires on whichever
// side hits it first — either way the failure must surface as a clean,
// attributable Status and the server must keep running.
TEST(NetServerTest, NetFaultPointAcceptIsSurvivable) {
  fault::ScopedFaultDisarm cleanup;
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  fault::FaultRegistry::Global().Arm(fault::points::kNetAccept,
                                     fault::FaultSpec::NthHit(1));
  // The acceptor absorbs the injected failure and keeps listening; the
  // queued connection is picked up on the next loop.
  Client client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  const auto st = fault::FaultRegistry::Global()
                      .GetPoint(fault::points::kNetAccept)
                      ->Snapshot();
  EXPECT_EQ(st.fired, 1u);
  EXPECT_TRUE(server.running());
  EXPECT_TRUE(server.Stop().ok());
}

TEST(NetServerTest, NetFaultPointsReadWriteFailCleanly) {
  for (const char* point :
       {fault::points::kNetRead, fault::points::kNetWrite}) {
    SCOPED_TRACE(point);
    Server server(ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server);
    ASSERT_TRUE(client.Ping().ok());

    {
      fault::ScopedFaultDisarm cleanup;
      fault::FaultRegistry::Global().Arm(point,
                                         fault::FaultSpec::Probability(1));
      const auto reply = client.Ping();
      ASSERT_FALSE(reply.ok());
      // Injected directly ("fault injected: ...") or observed as the
      // peer dropping the session — both are clean failures.
      EXPECT_TRUE(reply.status().code() == StatusCode::kInternal ||
                  reply.status().code() == StatusCode::kUnavailable)
          << reply.status();
    }

    // Disarmed again: the server still accepts fresh sessions.
    Client after = MustConnect(server);
    EXPECT_TRUE(after.Ping().ok());
    EXPECT_TRUE(server.Stop().ok());
  }
}

}  // namespace
}  // namespace xia::net
