#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace xia {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("index foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "index foo");
  EXPECT_EQ(s.ToString(), "not_found: index foo");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Doubler(Result<int> in) {
  XIA_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  Result<int> err = Doubler(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RandomTest, UniformCoversDomain) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ZipfStaysInRange) {
  Random rng(13);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.Zipf(100, 1.1), 100u);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(17);
  int head = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(1000, 1.2) < 10) ++head;
  }
  // With skew 1.2 the first ten ranks carry far more than 1% of the mass.
  EXPECT_GT(head, kDraws / 10);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StringUtilTest, SplitKeepsEmptyTokens) {
  EXPECT_EQ(Split("a/b//c", '/'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("4.5", &v));
  EXPECT_DOUBLE_EQ(v, 4.5);
  EXPECT_TRUE(ParseDouble("  -3 ", &v));
  EXPECT_DOUBLE_EQ(v, -3.0);
  EXPECT_FALSE(ParseDouble("4.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringUtilTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-1.5e3"));
  EXPECT_FALSE(LooksNumeric("SYM0001"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
}

}  // namespace
}  // namespace xia
