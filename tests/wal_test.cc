// xia::wal unit tests: record codec round-trips, torn-frame salvage
// (truncation at every byte offset, byte flips), duplicate-LSN replay
// idempotence, fsync policies, checkpoint round-trips and crash windows,
// fresh-dir initialization, commit ordering w.r.t. the capture sink, and
// Deadline-bounded recovery of a 10k-mutation log.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/deadline.h"
#include "fault/fault.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/crc32.h"
#include "wal/log_file.h"
#include "wal/manager.h"
#include "wal/record.h"
#include "wal/wire.h"
#include "wal/writer.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia::wal {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

/// Fresh per-test scratch directory.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/xia_wal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Store + catalog + statistics bundle used as a recovery target.
struct Db {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  storage::Catalog catalog{&store, &stats};
};

// ------------------------------------------------------------- records

TEST(WalRecordTest, RoundTripsEveryType) {
  const xpath::IndexPattern pattern{*xpath::ParsePattern("/a//b"),
                                    xpath::ValueType::kNumeric};
  std::vector<WalRecord> records = {
      WalRecord::CreateCollection("C"),
      WalRecord::Insert("C", "<a><b>1</b></a>"),
      WalRecord::Statement("delete from C where /a/b = 1"),
      WalRecord::CreateIndex("idx", "C", pattern),
      WalRecord::DropIndex("idx"),
      WalRecord::StatsRefresh("C"),
  };
  uint64_t lsn = 1;
  for (WalRecord& r : records) {
    r.lsn = lsn++;
    auto decoded = DecodeRecord(EncodeRecord(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->lsn, r.lsn);
    EXPECT_EQ(decoded->type, r.type);
    EXPECT_EQ(decoded->collection, r.collection);
    EXPECT_EQ(decoded->text, r.text);
    EXPECT_EQ(decoded->name, r.name);
    EXPECT_EQ(decoded->pattern_path.ToString(), r.pattern_path.ToString());
    EXPECT_EQ(decoded->value_type, r.value_type);
    EXPECT_EQ(decoded->structural, r.structural);
  }
}

TEST(WalRecordTest, MalformedPayloadsAreParseErrors) {
  // Truncated, unknown type, and trailing-garbage payloads must all be
  // kParseError: they passed a CRC, so this is corruption framing cannot
  // explain.
  EXPECT_EQ(DecodeRecord("").status().code(), StatusCode::kParseError);
  std::string unknown;
  PutU64(&unknown, 1);
  PutU8(&unknown, 99);
  EXPECT_EQ(DecodeRecord(unknown).status().code(), StatusCode::kParseError);
  std::string trailing = EncodeRecord(WalRecord::DropIndex("x"));
  trailing.push_back('!');
  EXPECT_EQ(DecodeRecord(trailing).status().code(), StatusCode::kParseError);
}

// ------------------------------------------------------- torn frames

std::string BuildLog(const std::vector<std::string>& payloads) {
  std::string data(kWalMagic, sizeof(kWalMagic));
  for (const std::string& p : payloads) AppendFrame(p, &data);
  return data;
}

TEST(WalLogFileTest, TruncationAtEveryOffsetSalvagesThePrefix) {
  const std::string dir = ScratchDir("truncate");
  const std::string path = dir + "/wal.log";
  const std::vector<std::string> payloads = {"alpha", "bb", "c3",
                                             std::string(100, 'z')};
  const std::string full = BuildLog(payloads);

  // Frame end offsets, so the expected salvage count is a table lookup.
  std::vector<size_t> frame_ends;
  size_t pos = sizeof(kWalMagic);
  for (const std::string& p : payloads) {
    pos += 8 + p.size();
    frame_ends.push_back(pos);
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    auto scanned = ScanLogFile(path);
    if (cut < sizeof(kWalMagic)) {
      // Even a torn magic is salvage (empty), not an error.
      ASSERT_TRUE(scanned.ok()) << "cut=" << cut << " " << scanned.status();
      EXPECT_TRUE(scanned->torn_tail);
      EXPECT_EQ(scanned->payloads.size(), 0u);
      continue;
    }
    ASSERT_TRUE(scanned.ok()) << "cut=" << cut << " " << scanned.status();
    size_t expected = 0;
    while (expected < frame_ends.size() && frame_ends[expected] <= cut) {
      ++expected;
    }
    EXPECT_EQ(scanned->payloads.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(scanned->payloads[i], payloads[i]);
    }
    const bool torn = cut != full.size() && cut != frame_ends.back();
    // A cut exactly on a frame boundary mid-file leaves a valid shorter
    // log (the remaining frames simply do not exist yet).
    const size_t boundary =
        expected > 0 ? frame_ends[expected - 1] : sizeof(kWalMagic);
    EXPECT_EQ(scanned->torn_tail, cut != boundary) << "cut=" << cut;
    EXPECT_EQ(scanned->valid_bytes, boundary) << "cut=" << cut;
    EXPECT_EQ(scanned->discarded_bytes, cut - boundary) << "cut=" << cut;
    (void)torn;
  }
}

TEST(WalLogFileTest, ByteFlipsNeverFlipBits) {
  const std::string dir = ScratchDir("flip");
  const std::string path = dir + "/wal.log";
  const std::vector<std::string> payloads = {"first-frame", "second-frame",
                                             "third-frame"};
  const std::string full = BuildLog(payloads);

  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    WriteFile(path, bad);
    auto scanned = ScanLogFile(path);
    if (i < sizeof(kWalMagic)) {
      // A flipped magic means "not a WAL file" — a hard error.
      EXPECT_EQ(scanned.status().code(), StatusCode::kParseError)
          << "flip at " << i;
      continue;
    }
    ASSERT_TRUE(scanned.ok()) << "flip at " << i << " " << scanned.status();
    // The flip lands in some frame; every earlier frame must survive
    // intact and everything from the damaged frame on is discarded.
    EXPECT_LT(scanned->payloads.size(), payloads.size()) << "flip at " << i;
    for (size_t k = 0; k < scanned->payloads.size(); ++k) {
      EXPECT_EQ(scanned->payloads[k], payloads[k]) << "flip at " << i;
    }
    EXPECT_TRUE(scanned->torn_tail) << "flip at " << i;
  }
}

TEST(WalLogFileTest, OversizedLengthFieldIsTailCorruptionNotAnAllocation) {
  const std::string dir = ScratchDir("oversize");
  const std::string path = dir + "/wal.log";
  std::string data(kWalMagic, sizeof(kWalMagic));
  PutU32(&data, kMaxFrameBytes + 1);
  PutU32(&data, 0);
  data += "whatever";
  WriteFile(path, data);
  auto scanned = ScanLogFile(path);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_EQ(scanned->payloads.size(), 0u);
  EXPECT_TRUE(scanned->torn_tail);
}

// ------------------------------------------------------------- writer

TEST(WalWriterTest, AppendCommitRoundTripsUnderEveryPolicy) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kInterval, FsyncPolicy::kOff}) {
    SCOPED_TRACE(FsyncPolicyName(policy));
    const std::string dir =
        ScratchDir(std::string("writer_") + FsyncPolicyName(policy));
    const std::string path = dir + "/wal.log";
    ASSERT_TRUE(InitLogFile(path).ok());
    WalWriterOptions options;
    options.policy = policy;
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(path, 1).ok());
    for (int i = 0; i < 10; ++i) {
      auto lsn = writer.Append(
          WalRecord::CreateCollection("C" + std::to_string(i)));
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
      ASSERT_TRUE(writer.Commit(*lsn).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.Close().ok());

    auto scanned = ScanLogFile(path);
    ASSERT_TRUE(scanned.ok());
    EXPECT_EQ(scanned->payloads.size(), 10u);
    EXPECT_FALSE(scanned->torn_tail);
  }
}

TEST(WalWriterTest, ParsePolicyNames) {
  EXPECT_EQ(*ParseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(*ParseFsyncPolicy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(*ParseFsyncPolicy("off"), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

// ------------------------------------------------------------ manager

Status RunInsert(WalManager* manager, Db* db, const std::string& coll,
                 const std::string& doc) {
  engine::Executor executor(&db->store, &db->catalog);
  executor.set_commit_log(manager);
  XIA_ASSIGN_OR_RETURN(engine::Statement st,
                       engine::ParseStatement("insert into " + coll + " " +
                                              doc));
  return executor.Execute(st, optimizer::Plan()).status();
}

/// Serialized store contents: collection -> serialized live docs.
std::string Digest(storage::DocumentStore* store) {
  std::string out;
  for (const std::string& name : store->CollectionNames()) {
    auto coll = store->GetCollection(name);
    if (!coll.ok()) continue;
    out += name + "{";
    (*coll)->ForEach([&](xml::DocId id, const xml::Document& doc) {
      out += std::to_string(id) + ":" + xml::Serialize(doc) + ";";
    });
    out += "}";
  }
  return out;
}

TEST(WalManagerTest, FreshDirInitializesEmptyDatabase) {
  const std::string dir = ScratchDir("fresh");
  WalManager manager(dir + "/data");  // does not exist yet
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->fresh_start);
  EXPECT_TRUE(db.store.CollectionNames().empty());
  EXPECT_TRUE(fs::exists(dir + "/data/MANIFEST"));
  EXPECT_TRUE(fs::exists(dir + "/data/wal.log"));
}

TEST(WalManagerTest, CommittedMutationsSurviveReopen) {
  const std::string dir = ScratchDir("reopen");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());
    const xpath::IndexPattern pattern{*xpath::ParsePattern("/a/b"),
                                      xpath::ValueType::kNumeric};
    ASSERT_TRUE(db.catalog.CreateIndex("ib", "C", pattern).ok());
    ASSERT_TRUE(manager.LogCreateIndex("ib", "C", pattern).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->fresh_start);
    EXPECT_EQ(report->records_replayed, 4u);
    EXPECT_EQ(Digest(&db.store), digest_before);
    // The physical index was rebuilt and is queryable.
    auto def = db.catalog.Get("ib");
    ASSERT_TRUE(def.ok());
    EXPECT_FALSE((*def)->is_virtual);
    EXPECT_EQ((*def)->stats.entry_count, 2u);
  }
}

TEST(WalManagerTest, DeleteAndUpdateReplayDeterministically) {
  const std::string dir = ScratchDir("dml");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(RunInsert(&manager, &db, "C",
                            "<a><b>" + std::to_string(i % 4) + "</b></a>")
                      .ok());
    }
    engine::Executor executor(&db.store, &db.catalog);
    executor.set_commit_log(&manager);
    auto del = engine::ParseStatement("delete from C where /a[b = 1]");
    ASSERT_TRUE(del.ok());
    ASSERT_TRUE(executor.Execute(*del, optimizer::Plan()).ok());
    auto upd =
        engine::ParseStatement("update C set /a/b = 9 where /a[b = 2]");
    ASSERT_TRUE(upd.ok());
    ASSERT_TRUE(executor.Execute(*upd, optimizer::Plan()).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, DuplicateLsnReplayIsIdempotent) {
  const std::string dir = ScratchDir("duplsn");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  // Duplicate both frames at the end of the log, as if a retried append
  // had double-written them.
  const std::string path = dir + "/wal.log";
  const std::string data = ReadFile(path);
  WriteFile(path, data + data.substr(sizeof(kWalMagic)));
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 2u);
    EXPECT_EQ(report->records_skipped, 2u);
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 1u);
  }
}

TEST(WalManagerTest, CheckpointTruncatesAndReopenSkipsReplay) {
  const std::string dir = ScratchDir("ckpt");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(RunInsert(&manager, &db, "C",
                            "<a><b>" + std::to_string(i) + "</b></a>")
                      .ok());
    }
    ASSERT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
    // Two more mutations after the checkpoint form the replay tail.
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>50</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>51</b></a>").ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->checkpoint_lsn, 6u);
    EXPECT_EQ(report->records_replayed, 2u);
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, StaleLogTailAfterManifestSwitchIsSkipped) {
  // Simulates a crash between the manifest write and the log reset: the
  // new manifest points at the new snapshot while the log still holds
  // every pre-checkpoint record. LSN filtering must skip them all.
  const std::string dir = ScratchDir("stale_tail");
  std::string digest_before;
  std::string log_before_reset;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    log_before_reset = ReadFile(dir + "/wal.log");
    ASSERT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  // Undo the reset: put the full pre-checkpoint log back.
  WriteFile(dir + "/wal.log", log_before_reset);
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 0u);
    EXPECT_EQ(report->records_skipped, 2u);
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, TornTailIsSalvagedAndTruncated) {
  const std::string dir = ScratchDir("torn");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  const std::string path = dir + "/wal.log";
  const std::string data = ReadFile(path);
  WriteFile(path, data.substr(0, data.size() - 5));
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->salvaged);
    EXPECT_EQ(report->records_replayed, 2u);  // last insert lost
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 1u);
    // The tail was truncated, so the next open is clean.
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->salvaged);
  }
}

TEST(WalManagerTest, CorruptManifestIsDataLoss) {
  const std::string dir = ScratchDir("badmanifest");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  std::string manifest = ReadFile(dir + "/MANIFEST");
  manifest.back() = static_cast<char>(manifest.back() ^ 0x01);
  WriteFile(dir + "/MANIFEST", manifest);
  WalManager manager(dir);
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
}

// ----------------------------------- fail-closed checkpoint recovery

/// Builds a dir whose MANIFEST references a real checkpoint (snapshot +
/// catalog files) plus a couple of post-checkpoint log records, and
/// returns the checkpoint LSN.
uint64_t BuildCheckpointedDir(const std::string& dir) {
  WalManager manager(dir);
  Db db;
  EXPECT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  EXPECT_TRUE(db.store.CreateCollection("C").ok());
  EXPECT_TRUE(manager.LogCreateCollection("C").ok());
  EXPECT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
  EXPECT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());
  EXPECT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
  EXPECT_TRUE(RunInsert(&manager, &db, "C", "<a><b>3</b></a>").ok());
  const uint64_t checkpoint_lsn = manager.checkpoint_lsn();
  EXPECT_TRUE(manager.Close().ok());
  return checkpoint_lsn;
}

TEST(WalManagerTest, ManifestReferencingMissingSnapshotIsDataLoss) {
  const std::string dir = ScratchDir("lost_snapshot");
  const uint64_t checkpoint_lsn = BuildCheckpointedDir(dir);

  WalManager manager(dir);
  fs::remove(manager.SnapshotPath(checkpoint_lsn));
  Db db;
  const auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  ASSERT_FALSE(report.ok());
  // Fail-closed: a referenced-but-missing checkpoint file is data loss
  // (exit 22 for CLI callers), never a silent fresh start — and the
  // stage-and-swap recovery must leave the target store untouched.
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(StatusExitCode(report.status()), 22);
  EXPECT_TRUE(db.store.CollectionNames().empty());
}

TEST(WalManagerTest, TruncatedSnapshotFileIsDataLoss) {
  const std::string dir = ScratchDir("torn_snapshot");
  const uint64_t checkpoint_lsn = BuildCheckpointedDir(dir);

  WalManager manager(dir);
  const std::string path = manager.SnapshotPath(checkpoint_lsn);
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 2u);
  WriteFile(path, bytes.substr(0, bytes.size() / 2));
  Db db;
  const auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(db.store.CollectionNames().empty());
}

// ------------------------------------------- replication primitives

TEST(WalManagerTest, ReadTailStreamsCommittedRecordsInOrder) {
  const std::string dir = ScratchDir("tail_order");
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(RunInsert(&manager, &db, "C",
                          "<a><b>" + std::to_string(i) + "</b></a>")
                    .ok());
  }

  TailCursor cursor;  // zero-initialized: self-snaps to the log head
  auto batch = manager.ReadTail(&cursor, 100, 0);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_FALSE(batch->need_checkpoint);
  ASSERT_EQ(batch->payloads.size(), 4u);
  uint64_t expected_lsn = 1;
  for (const std::string& payload : batch->payloads) {
    const auto record = DecodeRecord(payload);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->lsn, expected_lsn++);
  }

  // Caught up: a zero-wait poll returns an empty batch, not an error.
  auto empty = manager.ReadTail(&cursor, 100, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->payloads.empty());

  // New commits appear on the next read, resuming from the cursor.
  ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>9</b></a>").ok());
  auto more = manager.ReadTail(&cursor, 100, 0);
  ASSERT_TRUE(more.ok());
  ASSERT_EQ(more->payloads.size(), 1u);
  EXPECT_EQ(DecodeRecord(more->payloads[0])->lsn, 5u);
}

TEST(WalManagerTest, ReadTailHonorsMaxRecords) {
  const std::string dir = ScratchDir("tail_max");
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
  }
  TailCursor cursor;
  size_t total = 0;
  for (int reads = 0; reads < 10 && total < 6; ++reads) {
    auto batch = manager.ReadTail(&cursor, 2, 0);
    ASSERT_TRUE(batch.ok());
    EXPECT_LE(batch->payloads.size(), 2u);
    total += batch->payloads.size();
  }
  EXPECT_EQ(total, 6u);
}

TEST(WalManagerTest, ReadTailReportsCheckpointHorizon) {
  const std::string dir = ScratchDir("tail_horizon");
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());
  ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
  ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());

  // A reader starting before the horizon needs a checkpoint, not frames:
  // the checkpoint truncated those records out of the log.
  TailCursor stale;
  auto batch = manager.ReadTail(&stale, 100, 0);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->need_checkpoint);
  EXPECT_TRUE(batch->payloads.empty());

  // A reader resuming past the horizon streams the post-checkpoint tail.
  TailCursor fresh;
  fresh.next_lsn = manager.checkpoint_lsn() + 1;
  auto tail = manager.ReadTail(&fresh, 100, 0);
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail->need_checkpoint);
  ASSERT_EQ(tail->payloads.size(), 1u);
  EXPECT_EQ(DecodeRecord(tail->payloads[0])->lsn, 3u);
}

TEST(WalManagerTest, ReadTailBlocksUntilCommitArrives) {
  const std::string dir = ScratchDir("tail_block");
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());

  TailCursor cursor;
  ASSERT_EQ(manager.ReadTail(&cursor, 100, 0)->payloads.size(), 1u);

  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
  });
  // Blocks on the commit condition variable, not a poll timeout: the
  // 5-second budget is only a test safety net.
  auto batch = manager.ReadTail(&cursor, 100, 5.0);
  committer.join();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->payloads.size(), 1u);
  EXPECT_EQ(DecodeRecord(batch->payloads[0])->lsn, 2u);
}

TEST(WalManagerTest, CheckpointImageInstallRoundtrip) {
  const std::string leader_dir = ScratchDir("img_leader");
  const std::string follower_dir = ScratchDir("img_follower");

  WalManager leader(leader_dir);
  Db leader_db;
  ASSERT_TRUE(
      leader.Open(&leader_db.store, &leader_db.catalog, &leader_db.stats)
          .ok());
  ASSERT_TRUE(leader_db.store.CreateCollection("C").ok());
  ASSERT_TRUE(leader.LogCreateCollection("C").ok());
  ASSERT_TRUE(RunInsert(&leader, &leader_db, "C", "<a><b>1</b></a>").ok());
  ASSERT_TRUE(RunInsert(&leader, &leader_db, "C", "<a><b>2</b></a>").ok());
  const xpath::IndexPattern pattern{*xpath::ParsePattern("/a/b"),
                                    xpath::ValueType::kNumeric};
  ASSERT_TRUE(leader_db.catalog.CreateIndex("ib", "C", pattern).ok());
  ASSERT_TRUE(leader.LogCreateIndex("ib", "C", pattern).ok());
  ASSERT_TRUE(leader.Checkpoint(leader_db.store, leader_db.catalog).ok());

  const auto image = leader.ReadCheckpointImage();
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->checkpoint_lsn, leader.checkpoint_lsn());
  EXPECT_TRUE(image->has_snapshot);

  WalManager follower(follower_dir);
  Db follower_db;
  ASSERT_TRUE(follower
                  .Open(&follower_db.store, &follower_db.catalog,
                        &follower_db.stats)
                  .ok());
  ASSERT_TRUE(follower
                  .InstallCheckpoint(*image, &follower_db.store,
                                     &follower_db.catalog, &follower_db.stats)
                  .ok());
  EXPECT_EQ(Digest(&follower_db.store), Digest(&leader_db.store));
  // The catalog came along (rebuilt physical index included).
  const auto def = follower_db.catalog.Get("ib");
  ASSERT_TRUE(def.ok());
  EXPECT_FALSE((*def)->is_virtual);
  // The follower's log is rebased into the leader's LSN space.
  EXPECT_EQ(follower.GetStatus().next_lsn, image->checkpoint_lsn + 1);
  EXPECT_EQ(follower.checkpoint_lsn(), image->checkpoint_lsn);
  ASSERT_TRUE(follower.Close().ok());

  // The installed checkpoint is durable: a plain reopen recovers it.
  WalManager reopened(follower_dir);
  Db reopened_db;
  const auto report = reopened.Open(&reopened_db.store, &reopened_db.catalog,
                                    &reopened_db.stats);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->checkpoint_lsn, image->checkpoint_lsn);
  EXPECT_EQ(Digest(&reopened_db.store), Digest(&leader_db.store));
}

TEST(WalManagerTest, CorruptCheckpointImageIsRejectedUntouched) {
  const std::string leader_dir = ScratchDir("badimg_leader");
  const std::string follower_dir = ScratchDir("badimg_follower");
  BuildCheckpointedDir(leader_dir);
  WalManager leader(leader_dir);
  Db leader_db;
  ASSERT_TRUE(
      leader.Open(&leader_db.store, &leader_db.catalog, &leader_db.stats)
          .ok());
  auto image = leader.ReadCheckpointImage();
  ASSERT_TRUE(image.ok());
  // A flipped byte mid-snapshot models corruption in transfer that still
  // passed the net frame CRC (e.g. flipped before framing).
  image->snapshot_bytes[image->snapshot_bytes.size() / 2] ^= 0x20;

  WalManager follower(follower_dir);
  Db follower_db;
  ASSERT_TRUE(follower
                  .Open(&follower_db.store, &follower_db.catalog,
                        &follower_db.stats)
                  .ok());
  const Status installed = follower.InstallCheckpoint(
      *image, &follower_db.store, &follower_db.catalog, &follower_db.stats);
  EXPECT_EQ(installed.code(), StatusCode::kDataLoss);
  // Fail-closed: nothing installed, nothing referenced, LSN space
  // unchanged.
  EXPECT_TRUE(follower_db.store.CollectionNames().empty());
  EXPECT_EQ(follower.checkpoint_lsn(), 0u);
  EXPECT_EQ(follower.GetStatus().next_lsn, 1u);
}

TEST(WalManagerTest, AppendReplicatedIsContiguousAndDurable) {
  const std::string dir = ScratchDir("appendrepl");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());

    WalRecord create = WalRecord::CreateCollection("C");
    create.lsn = 1;
    ASSERT_TRUE(manager.AppendReplicated(create).ok());
    WalRecord insert = WalRecord::Insert("C", "<a><b>1</b></a>");
    insert.lsn = 2;
    ASSERT_TRUE(manager.AppendReplicated(insert).ok());

    // A gap must be refused before it hits the file: the follower's
    // stream validated contiguity, so a gap here is a programming error.
    WalRecord gap = WalRecord::Insert("C", "<a><b>9</b></a>");
    gap.lsn = 5;
    EXPECT_EQ(manager.AppendReplicated(gap).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(manager.GetStatus().next_lsn, 3u);

    // The accepted records are readable by a tail follower immediately.
    TailCursor cursor;
    auto batch = manager.ReadTail(&cursor, 100, 0);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->payloads.size(), 2u);
    ASSERT_TRUE(manager.Close().ok());
  }
  // Replicated appends recover exactly like local commits.
  WalManager manager(dir);
  Db db;
  const auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->records_replayed, 2u);
  auto coll = db.store.GetCollection("C");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->live_count(), 1u);
}

TEST(WalManagerTest, CommitFailureKeepsStatementOutOfTheSink) {
  // WAL ordering contract: the capture sink sees a mutation only after
  // its commit succeeded.
  struct CountingSink : engine::QuerySink {
    int calls = 0;
    void OnExecuted(const engine::Statement&,
                    const engine::ExecResult&) override {
      ++calls;
    }
  };
  const std::string dir = ScratchDir("sink_order");
  fault::ScopedFaultDisarm cleanup;
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());

  CountingSink sink;
  engine::Executor executor(&db.store, &db.catalog);
  executor.set_commit_log(&manager);
  executor.set_sink(&sink);
  auto ins = engine::ParseStatement("insert into C <a><b>1</b></a>");
  ASSERT_TRUE(ins.ok());

  fault::FaultRegistry::Global().Arm(fault::points::kWalAppend,
                                     fault::FaultSpec::Probability(1));
  const auto failed = executor.Execute(*ins, optimizer::Plan());
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(sink.calls, 0);

  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(executor.Execute(*ins, optimizer::Plan()).ok());
  EXPECT_EQ(sink.calls, 1);
}

TEST(WalManagerTest, TenThousandMutationRecoveryMeetsTheDeadline) {
  const std::string dir = ScratchDir("10k");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    engine::Executor executor(&db.store, &db.catalog);
    executor.set_commit_log(&manager);
    for (int i = 0; i < 10000; ++i) {
      auto st = engine::ParseStatement("insert into C <a><b>" +
                                       std::to_string(i) + "</b></a>");
      ASSERT_TRUE(st.ok());
      ASSERT_TRUE(executor.Execute(*st, optimizer::Plan()).ok()) << i;
    }
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats,
                               fault::Deadline::AfterSeconds(5));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 10001u);
    EXPECT_LT(report->seconds, 5.0);
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 10000u);
  }
}

TEST(WalManagerTest, ExpiredDeadlineAbortsRecovery) {
  const std::string dir = ScratchDir("deadline");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  WalManager manager(dir);
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats,
                             fault::Deadline::AfterMillis(-1));
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  // Stage-and-swap: the aborted recovery left the target store untouched.
  EXPECT_TRUE(db.store.CollectionNames().empty());
}

}  // namespace
}  // namespace xia::wal
