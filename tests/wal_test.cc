// xia::wal unit tests: record codec round-trips, torn-frame salvage
// (truncation at every byte offset, byte flips), duplicate-LSN replay
// idempotence, fsync policies, checkpoint round-trips and crash windows,
// fresh-dir initialization, commit ordering w.r.t. the capture sink, and
// Deadline-bounded recovery of a 10k-mutation log.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/query_parser.h"
#include "fault/deadline.h"
#include "fault/fault.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/crc32.h"
#include "wal/log_file.h"
#include "wal/manager.h"
#include "wal/record.h"
#include "wal/wire.h"
#include "wal/writer.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xia::wal {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

/// Fresh per-test scratch directory.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/xia_wal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Store + catalog + statistics bundle used as a recovery target.
struct Db {
  storage::DocumentStore store;
  storage::StatisticsCatalog stats;
  storage::Catalog catalog{&store, &stats};
};

// ------------------------------------------------------------- records

TEST(WalRecordTest, RoundTripsEveryType) {
  const xpath::IndexPattern pattern{*xpath::ParsePattern("/a//b"),
                                    xpath::ValueType::kNumeric};
  std::vector<WalRecord> records = {
      WalRecord::CreateCollection("C"),
      WalRecord::Insert("C", "<a><b>1</b></a>"),
      WalRecord::Statement("delete from C where /a/b = 1"),
      WalRecord::CreateIndex("idx", "C", pattern),
      WalRecord::DropIndex("idx"),
      WalRecord::StatsRefresh("C"),
  };
  uint64_t lsn = 1;
  for (WalRecord& r : records) {
    r.lsn = lsn++;
    auto decoded = DecodeRecord(EncodeRecord(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->lsn, r.lsn);
    EXPECT_EQ(decoded->type, r.type);
    EXPECT_EQ(decoded->collection, r.collection);
    EXPECT_EQ(decoded->text, r.text);
    EXPECT_EQ(decoded->name, r.name);
    EXPECT_EQ(decoded->pattern_path.ToString(), r.pattern_path.ToString());
    EXPECT_EQ(decoded->value_type, r.value_type);
    EXPECT_EQ(decoded->structural, r.structural);
  }
}

TEST(WalRecordTest, MalformedPayloadsAreParseErrors) {
  // Truncated, unknown type, and trailing-garbage payloads must all be
  // kParseError: they passed a CRC, so this is corruption framing cannot
  // explain.
  EXPECT_EQ(DecodeRecord("").status().code(), StatusCode::kParseError);
  std::string unknown;
  PutU64(&unknown, 1);
  PutU8(&unknown, 99);
  EXPECT_EQ(DecodeRecord(unknown).status().code(), StatusCode::kParseError);
  std::string trailing = EncodeRecord(WalRecord::DropIndex("x"));
  trailing.push_back('!');
  EXPECT_EQ(DecodeRecord(trailing).status().code(), StatusCode::kParseError);
}

// ------------------------------------------------------- torn frames

std::string BuildLog(const std::vector<std::string>& payloads) {
  std::string data(kWalMagic, sizeof(kWalMagic));
  for (const std::string& p : payloads) AppendFrame(p, &data);
  return data;
}

TEST(WalLogFileTest, TruncationAtEveryOffsetSalvagesThePrefix) {
  const std::string dir = ScratchDir("truncate");
  const std::string path = dir + "/wal.log";
  const std::vector<std::string> payloads = {"alpha", "bb", "c3",
                                             std::string(100, 'z')};
  const std::string full = BuildLog(payloads);

  // Frame end offsets, so the expected salvage count is a table lookup.
  std::vector<size_t> frame_ends;
  size_t pos = sizeof(kWalMagic);
  for (const std::string& p : payloads) {
    pos += 8 + p.size();
    frame_ends.push_back(pos);
  }

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    auto scanned = ScanLogFile(path);
    if (cut < sizeof(kWalMagic)) {
      // Even a torn magic is salvage (empty), not an error.
      ASSERT_TRUE(scanned.ok()) << "cut=" << cut << " " << scanned.status();
      EXPECT_TRUE(scanned->torn_tail);
      EXPECT_EQ(scanned->payloads.size(), 0u);
      continue;
    }
    ASSERT_TRUE(scanned.ok()) << "cut=" << cut << " " << scanned.status();
    size_t expected = 0;
    while (expected < frame_ends.size() && frame_ends[expected] <= cut) {
      ++expected;
    }
    EXPECT_EQ(scanned->payloads.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(scanned->payloads[i], payloads[i]);
    }
    const bool torn = cut != full.size() && cut != frame_ends.back();
    // A cut exactly on a frame boundary mid-file leaves a valid shorter
    // log (the remaining frames simply do not exist yet).
    const size_t boundary =
        expected > 0 ? frame_ends[expected - 1] : sizeof(kWalMagic);
    EXPECT_EQ(scanned->torn_tail, cut != boundary) << "cut=" << cut;
    EXPECT_EQ(scanned->valid_bytes, boundary) << "cut=" << cut;
    EXPECT_EQ(scanned->discarded_bytes, cut - boundary) << "cut=" << cut;
    (void)torn;
  }
}

TEST(WalLogFileTest, ByteFlipsNeverFlipBits) {
  const std::string dir = ScratchDir("flip");
  const std::string path = dir + "/wal.log";
  const std::vector<std::string> payloads = {"first-frame", "second-frame",
                                             "third-frame"};
  const std::string full = BuildLog(payloads);

  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    WriteFile(path, bad);
    auto scanned = ScanLogFile(path);
    if (i < sizeof(kWalMagic)) {
      // A flipped magic means "not a WAL file" — a hard error.
      EXPECT_EQ(scanned.status().code(), StatusCode::kParseError)
          << "flip at " << i;
      continue;
    }
    ASSERT_TRUE(scanned.ok()) << "flip at " << i << " " << scanned.status();
    // The flip lands in some frame; every earlier frame must survive
    // intact and everything from the damaged frame on is discarded.
    EXPECT_LT(scanned->payloads.size(), payloads.size()) << "flip at " << i;
    for (size_t k = 0; k < scanned->payloads.size(); ++k) {
      EXPECT_EQ(scanned->payloads[k], payloads[k]) << "flip at " << i;
    }
    EXPECT_TRUE(scanned->torn_tail) << "flip at " << i;
  }
}

TEST(WalLogFileTest, OversizedLengthFieldIsTailCorruptionNotAnAllocation) {
  const std::string dir = ScratchDir("oversize");
  const std::string path = dir + "/wal.log";
  std::string data(kWalMagic, sizeof(kWalMagic));
  PutU32(&data, kMaxFrameBytes + 1);
  PutU32(&data, 0);
  data += "whatever";
  WriteFile(path, data);
  auto scanned = ScanLogFile(path);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_EQ(scanned->payloads.size(), 0u);
  EXPECT_TRUE(scanned->torn_tail);
}

// ------------------------------------------------------------- writer

TEST(WalWriterTest, AppendCommitRoundTripsUnderEveryPolicy) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kInterval, FsyncPolicy::kOff}) {
    SCOPED_TRACE(FsyncPolicyName(policy));
    const std::string dir =
        ScratchDir(std::string("writer_") + FsyncPolicyName(policy));
    const std::string path = dir + "/wal.log";
    ASSERT_TRUE(InitLogFile(path).ok());
    WalWriterOptions options;
    options.policy = policy;
    WalWriter writer(options);
    ASSERT_TRUE(writer.Open(path, 1).ok());
    for (int i = 0; i < 10; ++i) {
      auto lsn = writer.Append(
          WalRecord::CreateCollection("C" + std::to_string(i)));
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
      ASSERT_TRUE(writer.Commit(*lsn).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.Close().ok());

    auto scanned = ScanLogFile(path);
    ASSERT_TRUE(scanned.ok());
    EXPECT_EQ(scanned->payloads.size(), 10u);
    EXPECT_FALSE(scanned->torn_tail);
  }
}

TEST(WalWriterTest, ParsePolicyNames) {
  EXPECT_EQ(*ParseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(*ParseFsyncPolicy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(*ParseFsyncPolicy("off"), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
}

// ------------------------------------------------------------ manager

Status RunInsert(WalManager* manager, Db* db, const std::string& coll,
                 const std::string& doc) {
  engine::Executor executor(&db->store, &db->catalog);
  executor.set_commit_log(manager);
  XIA_ASSIGN_OR_RETURN(engine::Statement st,
                       engine::ParseStatement("insert into " + coll + " " +
                                              doc));
  return executor.Execute(st, optimizer::Plan()).status();
}

/// Serialized store contents: collection -> serialized live docs.
std::string Digest(storage::DocumentStore* store) {
  std::string out;
  for (const std::string& name : store->CollectionNames()) {
    auto coll = store->GetCollection(name);
    if (!coll.ok()) continue;
    out += name + "{";
    (*coll)->ForEach([&](xml::DocId id, const xml::Document& doc) {
      out += std::to_string(id) + ":" + xml::Serialize(doc) + ";";
    });
    out += "}";
  }
  return out;
}

TEST(WalManagerTest, FreshDirInitializesEmptyDatabase) {
  const std::string dir = ScratchDir("fresh");
  WalManager manager(dir + "/data");  // does not exist yet
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->fresh_start);
  EXPECT_TRUE(db.store.CollectionNames().empty());
  EXPECT_TRUE(fs::exists(dir + "/data/MANIFEST"));
  EXPECT_TRUE(fs::exists(dir + "/data/wal.log"));
}

TEST(WalManagerTest, CommittedMutationsSurviveReopen) {
  const std::string dir = ScratchDir("reopen");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());
    const xpath::IndexPattern pattern{*xpath::ParsePattern("/a/b"),
                                      xpath::ValueType::kNumeric};
    ASSERT_TRUE(db.catalog.CreateIndex("ib", "C", pattern).ok());
    ASSERT_TRUE(manager.LogCreateIndex("ib", "C", pattern).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->fresh_start);
    EXPECT_EQ(report->records_replayed, 4u);
    EXPECT_EQ(Digest(&db.store), digest_before);
    // The physical index was rebuilt and is queryable.
    auto def = db.catalog.Get("ib");
    ASSERT_TRUE(def.ok());
    EXPECT_FALSE((*def)->is_virtual);
    EXPECT_EQ((*def)->stats.entry_count, 2u);
  }
}

TEST(WalManagerTest, DeleteAndUpdateReplayDeterministically) {
  const std::string dir = ScratchDir("dml");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(RunInsert(&manager, &db, "C",
                            "<a><b>" + std::to_string(i % 4) + "</b></a>")
                      .ok());
    }
    engine::Executor executor(&db.store, &db.catalog);
    executor.set_commit_log(&manager);
    auto del = engine::ParseStatement("delete from C where /a[b = 1]");
    ASSERT_TRUE(del.ok());
    ASSERT_TRUE(executor.Execute(*del, optimizer::Plan()).ok());
    auto upd =
        engine::ParseStatement("update C set /a/b = 9 where /a[b = 2]");
    ASSERT_TRUE(upd.ok());
    ASSERT_TRUE(executor.Execute(*upd, optimizer::Plan()).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, DuplicateLsnReplayIsIdempotent) {
  const std::string dir = ScratchDir("duplsn");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  // Duplicate both frames at the end of the log, as if a retried append
  // had double-written them.
  const std::string path = dir + "/wal.log";
  const std::string data = ReadFile(path);
  WriteFile(path, data + data.substr(sizeof(kWalMagic)));
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 2u);
    EXPECT_EQ(report->records_skipped, 2u);
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 1u);
  }
}

TEST(WalManagerTest, CheckpointTruncatesAndReopenSkipsReplay) {
  const std::string dir = ScratchDir("ckpt");
  std::string digest_before;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(RunInsert(&manager, &db, "C",
                            "<a><b>" + std::to_string(i) + "</b></a>")
                      .ok());
    }
    ASSERT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
    // Two more mutations after the checkpoint form the replay tail.
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>50</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>51</b></a>").ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->checkpoint_lsn, 6u);
    EXPECT_EQ(report->records_replayed, 2u);
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, StaleLogTailAfterManifestSwitchIsSkipped) {
  // Simulates a crash between the manifest write and the log reset: the
  // new manifest points at the new snapshot while the log still holds
  // every pre-checkpoint record. LSN filtering must skip them all.
  const std::string dir = ScratchDir("stale_tail");
  std::string digest_before;
  std::string log_before_reset;
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    log_before_reset = ReadFile(dir + "/wal.log");
    ASSERT_TRUE(manager.Checkpoint(db.store, db.catalog).ok());
    digest_before = Digest(&db.store);
    ASSERT_TRUE(manager.Close().ok());
  }
  // Undo the reset: put the full pre-checkpoint log back.
  WriteFile(dir + "/wal.log", log_before_reset);
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 0u);
    EXPECT_EQ(report->records_skipped, 2u);
    EXPECT_EQ(Digest(&db.store), digest_before);
  }
}

TEST(WalManagerTest, TornTailIsSalvagedAndTruncated) {
  const std::string dir = ScratchDir("torn");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>2</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  const std::string path = dir + "/wal.log";
  const std::string data = ReadFile(path);
  WriteFile(path, data.substr(0, data.size() - 5));
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->salvaged);
    EXPECT_EQ(report->records_replayed, 2u);  // last insert lost
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 1u);
    // The tail was truncated, so the next open is clean.
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->salvaged);
  }
}

TEST(WalManagerTest, CorruptManifestIsDataLoss) {
  const std::string dir = ScratchDir("badmanifest");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  std::string manifest = ReadFile(dir + "/MANIFEST");
  manifest.back() = static_cast<char>(manifest.back() ^ 0x01);
  WriteFile(dir + "/MANIFEST", manifest);
  WalManager manager(dir);
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats);
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
}

TEST(WalManagerTest, CommitFailureKeepsStatementOutOfTheSink) {
  // WAL ordering contract: the capture sink sees a mutation only after
  // its commit succeeded.
  struct CountingSink : engine::QuerySink {
    int calls = 0;
    void OnExecuted(const engine::Statement&,
                    const engine::ExecResult&) override {
      ++calls;
    }
  };
  const std::string dir = ScratchDir("sink_order");
  fault::ScopedFaultDisarm cleanup;
  WalManager manager(dir);
  Db db;
  ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
  ASSERT_TRUE(db.store.CreateCollection("C").ok());
  ASSERT_TRUE(manager.LogCreateCollection("C").ok());

  CountingSink sink;
  engine::Executor executor(&db.store, &db.catalog);
  executor.set_commit_log(&manager);
  executor.set_sink(&sink);
  auto ins = engine::ParseStatement("insert into C <a><b>1</b></a>");
  ASSERT_TRUE(ins.ok());

  fault::FaultRegistry::Global().Arm(fault::points::kWalAppend,
                                     fault::FaultSpec::Probability(1));
  const auto failed = executor.Execute(*ins, optimizer::Plan());
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(sink.calls, 0);

  fault::FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(executor.Execute(*ins, optimizer::Plan()).ok());
  EXPECT_EQ(sink.calls, 1);
}

TEST(WalManagerTest, TenThousandMutationRecoveryMeetsTheDeadline) {
  const std::string dir = ScratchDir("10k");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    engine::Executor executor(&db.store, &db.catalog);
    executor.set_commit_log(&manager);
    for (int i = 0; i < 10000; ++i) {
      auto st = engine::ParseStatement("insert into C <a><b>" +
                                       std::to_string(i) + "</b></a>");
      ASSERT_TRUE(st.ok());
      ASSERT_TRUE(executor.Execute(*st, optimizer::Plan()).ok()) << i;
    }
    ASSERT_TRUE(manager.Close().ok());
  }
  {
    WalManager manager(dir);
    Db db;
    auto report = manager.Open(&db.store, &db.catalog, &db.stats,
                               fault::Deadline::AfterSeconds(5));
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->records_replayed, 10001u);
    EXPECT_LT(report->seconds, 5.0);
    auto coll = db.store.GetCollection("C");
    ASSERT_TRUE(coll.ok());
    EXPECT_EQ((*coll)->live_count(), 10000u);
  }
}

TEST(WalManagerTest, ExpiredDeadlineAbortsRecovery) {
  const std::string dir = ScratchDir("deadline");
  {
    WalManager manager(dir);
    Db db;
    ASSERT_TRUE(manager.Open(&db.store, &db.catalog, &db.stats).ok());
    ASSERT_TRUE(db.store.CreateCollection("C").ok());
    ASSERT_TRUE(manager.LogCreateCollection("C").ok());
    ASSERT_TRUE(RunInsert(&manager, &db, "C", "<a><b>1</b></a>").ok());
    ASSERT_TRUE(manager.Close().ok());
  }
  WalManager manager(dir);
  Db db;
  auto report = manager.Open(&db.store, &db.catalog, &db.stats,
                             fault::Deadline::AfterMillis(-1));
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  // Stage-and-swap: the aborted recovery left the target store untouched.
  EXPECT_TRUE(db.store.CollectionNames().empty());
}

}  // namespace
}  // namespace xia::wal
