#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/normalizer.h"
#include "engine/query_parser.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xia::engine {
namespace {

Statement Parse(const std::string& text) {
  auto stmt = ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  return std::move(*stmt);
}

TEST(QueryParserTest, FlworBasics) {
  const Statement stmt = Parse(
      "for $sec in SECURITY('SDOC')/Security "
      "where $sec/Symbol = \"BCIIPRC\" return $sec");
  ASSERT_TRUE(stmt.is_query());
  const QuerySpec& q = stmt.query();
  EXPECT_EQ(q.collection, "SDOC");
  EXPECT_EQ(q.variable, "sec");
  EXPECT_EQ(q.binding.ToString(), "/Security");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].relative_steps[0].name_test, "Symbol");
  EXPECT_EQ(q.where[0].op, xpath::CompareOp::kEq);
  EXPECT_EQ(q.where[0].literal.string_value, "BCIIPRC");
  ASSERT_EQ(q.returns.size(), 1u);
  EXPECT_TRUE(q.returns[0].empty());  // bare $sec
}

TEST(QueryParserTest, PaperQ2) {
  const Statement stmt = Parse(
      "for $sec in SECURITY('SDOC')/Security[Yield>4.5] "
      "where $sec/SecInfo/*/Sector= \"Energy\" "
      "return <Security>{$sec/Name}</Security>");
  ASSERT_TRUE(stmt.is_query());
  const QuerySpec& q = stmt.query();
  EXPECT_EQ(q.binding.ToString(), "/Security[Yield > 4.5]");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].relative_steps.size(), 3u);
  ASSERT_EQ(q.returns.size(), 1u);
  ASSERT_EQ(q.returns[0].size(), 1u);
  EXPECT_EQ(q.returns[0][0].name_test, "Name");
}

TEST(QueryParserTest, MultipleWhereConjunctsAndReturns) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/PE > 25 and $s/SecurityType = \"Stock\" "
      "return $s/Symbol, $s/Name");
  const QuerySpec& q = stmt.query();
  EXPECT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].op, xpath::CompareOp::kGt);
  EXPECT_EQ(q.where[0].literal.type, xpath::ValueType::kNumeric);
  EXPECT_EQ(q.returns.size(), 2u);
}

TEST(QueryParserTest, AttributePaths) {
  const Statement stmt = Parse(
      "for $o in ORDER('ODOC')/FIXML/Order "
      "where $o/@ID = \"100123\" return $o/@ID");
  const QuerySpec& q = stmt.query();
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].relative_steps[0].name_test, "@ID");
  ASSERT_EQ(q.returns.size(), 1u);
  EXPECT_EQ(q.returns[0][0].name_test, "@ID");
}

TEST(QueryParserTest, InsertStatement) {
  const Statement stmt =
      Parse("insert into ODOC <FIXML><Order ID=\"1\"/></FIXML>");
  ASSERT_TRUE(stmt.is_insert());
  EXPECT_EQ(stmt.insert_spec().collection, "ODOC");
  EXPECT_EQ(stmt.insert_spec().document_text,
            "<FIXML><Order ID=\"1\"/></FIXML>");
}

TEST(QueryParserTest, DeleteStatement) {
  const Statement stmt =
      Parse("delete from ODOC where /FIXML/Order[@ID = \"100042\"]");
  ASSERT_TRUE(stmt.is_delete());
  EXPECT_EQ(stmt.delete_spec().collection, "ODOC");
  EXPECT_EQ(stmt.delete_spec().match.ToString(),
            "/FIXML/Order[@ID = \"100042\"]");
}

TEST(QueryParserTest, UpdateStatement) {
  const Statement stmt = Parse(
      "update SDOC set /Security/Yield = 5.5 "
      "where /Security[Symbol = \"SYM3\"]");
  ASSERT_TRUE(stmt.is_update());
  EXPECT_TRUE(stmt.is_modification());
  const UpdateSpec& u = stmt.update_spec();
  EXPECT_EQ(u.collection, "SDOC");
  EXPECT_EQ(u.target.ToString(), "/Security/Yield");
  EXPECT_EQ(u.new_value.type, xpath::ValueType::kNumeric);
  EXPECT_DOUBLE_EQ(u.new_value.numeric_value, 5.5);
  EXPECT_EQ(u.match.ToString(), "/Security[Symbol = \"SYM3\"]");
}

TEST(QueryParserTest, UpdateStringValue) {
  const Statement stmt = Parse(
      "update SDOC set /Security/SecInfo/*/Sector = \"Utilities\" "
      "where /Security[Yield > 9]");
  ASSERT_TRUE(stmt.is_update());
  EXPECT_EQ(stmt.update_spec().new_value.string_value, "Utilities");
}

TEST(QueryParserTest, UpdateErrors) {
  EXPECT_FALSE(ParseStatement("update SDOC").ok());
  EXPECT_FALSE(ParseStatement("update SDOC set /a/b").ok());
  EXPECT_FALSE(ParseStatement("update SDOC set /a/b = 1").ok());
  EXPECT_FALSE(
      ParseStatement("update SDOC set /a[b=1] = 2 where /a").ok());
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("select * from t").ok());
  EXPECT_FALSE(ParseStatement("for $x in SDOC/Security return $x").ok());
  EXPECT_FALSE(
      ParseStatement("for $x in c('S')/a where $y/b = 1 return $x").ok());
  EXPECT_FALSE(ParseStatement("insert into ODOC").ok());
  EXPECT_FALSE(ParseStatement("delete from ODOC").ok());
  EXPECT_FALSE(
      ParseStatement("for $x in c('S')/a where $x/b = 1").ok());
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  const Statement stmt = Parse(
      "FOR $x IN collection('SDOC')/Security WHERE $x/PE > 1 RETURN $x");
  EXPECT_TRUE(stmt.is_query());
}

TEST(NormalizerTest, MergesWhereIntoPathPredicates) {
  const Statement stmt = Parse(
      "for $sec in SECURITY('SDOC')/Security[Yield>4.5] "
      "where $sec/SecInfo/*/Sector = \"Energy\" return $sec/Name");
  auto norm = Normalize(stmt);
  ASSERT_TRUE(norm.ok()) << norm.status();
  EXPECT_EQ(norm->collection, "SDOC");
  // The where conjunct is now a predicate on the last binding step.
  EXPECT_EQ(norm->path.ToString(),
            "/Security[Yield > 4.5][SecInfo/*/Sector = \"Energy\"]");
  ASSERT_EQ(norm->returns.size(), 1u);
}

TEST(NormalizerTest, RejectsNonQueries) {
  EXPECT_FALSE(Normalize(Parse("insert into X <a/>")).ok());
  EXPECT_FALSE(
      NormalizeDeleteMatch(Parse("for $x in c('S')/a return $x")).ok());
  EXPECT_TRUE(
      NormalizeDeleteMatch(Parse("delete from S where /a[b = 1]")).ok());
}

TEST(StatementTest, ToTextRoundTripsThroughParser) {
  for (const char* text :
       {"for $s in collection('SDOC')/Security where $s/Symbol = \"X\" "
        "return $s",
        "for $s in collection('SDOC')/Security[Yield > 4.5] return $s/Name",
        "delete from ODOC where /FIXML/Order[@ID = \"1\"]"}) {
    Statement stmt = Parse(text);
    stmt.text.clear();  // force regeneration
    const std::string regenerated = ToText(stmt);
    auto reparsed = ParseStatement(regenerated);
    ASSERT_TRUE(reparsed.ok()) << regenerated << ": " << reparsed.status();
  }
}

TEST(WorkloadTextTest, ParsesAnnotatedStatements) {
  const char* text = R"(
# comment line
@freq=20 @label=hot
for $s in collection('SDOC')/Security
  where $s/Symbol = "A#B" return $s;

for $s in collection('SDOC')/Security[Yield > 1] return $s;
@freq=2
delete from ODOC where /FIXML/Order[@ID = "1"];
)";
  auto workload = ParseWorkloadText(text);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 3u);
  EXPECT_DOUBLE_EQ((*workload)[0].frequency, 20.0);
  EXPECT_EQ((*workload)[0].label, "hot");
  // '#' inside a string literal is not a comment.
  EXPECT_EQ((*workload)[0].query().where[0].literal.string_value, "A#B");
  EXPECT_DOUBLE_EQ((*workload)[1].frequency, 1.0);
  EXPECT_EQ((*workload)[1].label, "stmt-2");
  EXPECT_TRUE((*workload)[2].is_delete());
  EXPECT_DOUBLE_EQ((*workload)[2].frequency, 2.0);
}

TEST(WorkloadTextTest, TrailingStatementWithoutSemicolon) {
  auto workload = ParseWorkloadText(
      "for $s in collection('S')/a[b > 1] return $s");
  ASSERT_TRUE(workload.ok()) << workload.status();
  EXPECT_EQ(workload->size(), 1u);
}

TEST(WorkloadTextTest, Errors) {
  EXPECT_FALSE(ParseWorkloadText("").ok());
  EXPECT_FALSE(ParseWorkloadText("# only comments\n").ok());
  EXPECT_FALSE(ParseWorkloadText("@freq=bad\nfor $s in c('S')/a return $s").ok());
  EXPECT_FALSE(ParseWorkloadText("@nope=1\nfor $s in c('S')/a return $s").ok());
  EXPECT_FALSE(ParseWorkloadText("not a statement;").ok());
}

TEST(CompactWorkloadTest, MergesDuplicatesSummingFrequency) {
  Workload w;
  w.push_back(Parse("for $s in c('S')/a[b = 1] return $s"));
  w.push_back(Parse("for $s in c('S')/a[b = 2] return $s"));
  w.push_back(Parse("for $s in c('S')/a[b = 1] return $s"));
  w[0].frequency = 3;
  w[2].frequency = 4;
  const Workload compact = CompactWorkload(w);
  ASSERT_EQ(compact.size(), 2u);
  EXPECT_DOUBLE_EQ(compact[0].frequency, 7.0);
  EXPECT_DOUBLE_EQ(compact[1].frequency, 1.0);
}

TEST(CompactWorkloadTest, DistinguishesKindsAndLiterals) {
  Workload w;
  w.push_back(Parse("delete from S where /a[b = 1]"));
  w.push_back(Parse("update S set /a/b = 1 where /a[b = 1]"));
  w.push_back(Parse("insert into S <a/>"));
  w.push_back(Parse("insert into S <a/>"));
  w.push_back(Parse("insert into S <b/>"));
  const Workload compact = CompactWorkload(w);
  EXPECT_EQ(compact.size(), 4u);
}

TEST(CompactWorkloadTest, LabelsDoNotAffectIdentity) {
  auto a = ParseStatement("for $s in c('S')/a[b = 1] return $s", 1, "x");
  auto b = ParseStatement("for $s in c('S')/a[b = 1] return $s", 1, "y");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameStatementBody(*a, *b));
  EXPECT_EQ(CompactWorkload({*a, *b}).size(), 1u);
}

// -------------------------------------------------------------------------
// Executor tests.

class ExecutorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto coll = store_.CreateCollection("SDOC");
    ASSERT_TRUE(coll.ok());
    for (int i = 0; i < 200; ++i) {
      const std::string sector = (i % 4 == 0) ? "Energy" : "Tech";
      const std::string doc =
          "<Security><Symbol>SYM" + std::to_string(i) + "</Symbol><Yield>" +
          std::to_string(i % 10) +
          "</Yield><SecInfo><StockInformation><Sector>" + sector +
          "</Sector></StockInformation></SecInfo><Name>N" +
          std::to_string(i) + "</Name></Security>";
      auto parsed = xml::Parse(doc);
      ASSERT_TRUE(parsed.ok());
      (*coll)->Add(std::move(*parsed));
    }
    stats_.RunStats(**coll);
    catalog_ = std::make_unique<storage::Catalog>(&store_, &stats_);
    optimizer_ = std::make_unique<optimizer::Optimizer>(&store_,
                                                        catalog_.get(),
                                                        &stats_);
    executor_ = std::make_unique<Executor>(&store_, catalog_.get());
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<optimizer::Optimizer> optimizer_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorFixture, CollectionScanQuery) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security where $s/Symbol = \"SYM7\" "
      "return $s");
  auto plan = optimizer_->OptimizeWithoutIndexes(stmt);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->kind, optimizer::Plan::Kind::kCollectionScan);
  auto result = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);
  EXPECT_EQ(result->docs_examined, 200u);
}

TEST_F(ExecutorFixture, IndexScanMatchesScanResults) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security where $s/Symbol = \"SYM7\" "
      "return $s");
  auto plan = optimizer_->Optimize(stmt);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->kind, optimizer::Plan::Kind::kIndexScan);
  auto result = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);
  EXPECT_EQ(result->docs_examined, 1u);  // index pinpointed the document
  EXPECT_GE(result->index_entries_scanned, 1u);
}

TEST_F(ExecutorFixture, ReturnExpressionsCounted) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security[Yield > 8] "
      "return $s/Name, $s/Symbol");
  auto plan = optimizer_->OptimizeWithoutIndexes(stmt);
  ASSERT_TRUE(plan.ok());
  auto result = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(result.ok());
  // Yield==9 for i % 10 == 9: twenty docs x two return paths.
  EXPECT_EQ(result->result_count, 40u);
}

TEST_F(ExecutorFixture, WildcardPredicateQuery) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security "
      "where $s/SecInfo/*/Sector = \"Energy\" return $s");
  auto plan = optimizer_->OptimizeWithoutIndexes(stmt);
  ASSERT_TRUE(plan.ok());
  auto result = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_count, 50u);  // i % 4 == 0
}

TEST_F(ExecutorFixture, InsertThenQuery) {
  const Statement ins = Parse(
      "insert into SDOC <Security><Symbol>FRESH</Symbol></Security>");
  auto plan = optimizer_->Optimize(ins);
  ASSERT_TRUE(plan.ok());
  auto result = executor_->Execute(ins, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);

  const Statement query = Parse(
      "for $s in collection('SDOC')/Security where $s/Symbol = \"FRESH\" "
      "return $s");
  auto qplan = optimizer_->OptimizeWithoutIndexes(query);
  ASSERT_TRUE(qplan.ok());
  auto qresult = executor_->Execute(query, *qplan);
  ASSERT_TRUE(qresult.ok());
  EXPECT_EQ(qresult->result_count, 1u);
}

TEST_F(ExecutorFixture, InsertMaintainsIndexes) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const Statement ins = Parse(
      "insert into SDOC <Security><Symbol>FRESH</Symbol></Security>");
  auto plan = optimizer_->Optimize(ins);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(executor_->Execute(ins, *plan).ok());
  auto physical = catalog_->GetPhysical("sym");
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ((*physical)->entry_count(), 201u);
}

TEST_F(ExecutorFixture, DeleteRemovesAndMaintains) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const Statement del =
      Parse("delete from SDOC where /Security[Symbol = \"SYM3\"]");
  auto plan = optimizer_->Optimize(del);
  ASSERT_TRUE(plan.ok());
  auto result = executor_->Execute(del, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);

  auto coll = store_.GetCollection("SDOC");
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ((*coll)->live_count(), 199u);
  auto physical = catalog_->GetPhysical("sym");
  ASSERT_TRUE(physical.ok());
  EXPECT_EQ((*physical)->entry_count(), 199u);
}

TEST_F(ExecutorFixture, VirtualIndexPlansAreNotExecutable) {
  ASSERT_TRUE(catalog_->CreateVirtualIndex(
                          "vsym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security where $s/Symbol = \"SYM7\" "
      "return $s");
  auto plan = optimizer_->Optimize(stmt);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->uses_virtual_index);
  auto result = executor_->Execute(stmt, *plan);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExecutorFixture, IndexAndIntersectsDocuments) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sector", "SDOC",
                          {*xpath::ParsePattern("/Security/SecInfo/*/Sector"),
                           xpath::ValueType::kString})
                  .ok());
  ASSERT_TRUE(catalog_->CreateIndex(
                          "yield", "SDOC",
                          {*xpath::ParsePattern("/Security/Yield"),
                           xpath::ValueType::kNumeric})
                  .ok());
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security[Yield >= 8] "
      "where $s/SecInfo/*/Sector = \"Energy\" return $s");
  // Force an AND plan by construction.
  auto norm = Normalize(stmt);
  ASSERT_TRUE(norm.ok());
  auto preds = optimizer::ExtractIndexablePredicates(*norm);
  ASSERT_EQ(preds.size(), 2u);
  optimizer::Plan plan;
  plan.kind = optimizer::Plan::Kind::kIndexAnd;
  for (const auto& pred : preds) {
    optimizer::PlanLeg leg;
    leg.index_name =
        pred.type == xpath::ValueType::kNumeric ? "yield" : "sector";
    leg.predicate = pred;
    plan.legs.push_back(leg);
  }
  auto result = executor_->Execute(stmt, plan);
  ASSERT_TRUE(result.ok()) << result.status();
  // Energy: i % 4 == 0; Yield >= 8: i % 10 in {8, 9}. Intersection:
  // i % 20 == 8, i.e. 10 of 200 documents.
  EXPECT_EQ(result->result_count, 10u);
}

TEST_F(ExecutorFixture, UpdateChangesValuesAndMaintainsIndexes) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "yield", "SDOC",
                          {*xpath::ParsePattern("/Security/Yield"),
                           xpath::ValueType::kNumeric})
                  .ok());
  const Statement upd = Parse(
      "update SDOC set /Security/Yield = 42 "
      "where /Security[Symbol = \"SYM7\"]");
  auto plan = optimizer_->Optimize(upd);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->kind, optimizer::Plan::Kind::kUpdate);
  auto result = executor_->Execute(upd, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);  // one Yield node modified

  // The new value is queryable, and through the maintained index.
  const Statement probe = Parse(
      "for $s in collection('SDOC')/Security[Yield = 42] return $s/Symbol");
  auto probe_plan = optimizer_->Optimize(probe);
  ASSERT_TRUE(probe_plan.ok());
  auto probe_result = executor_->Execute(probe, *probe_plan);
  ASSERT_TRUE(probe_result.ok());
  EXPECT_EQ(probe_result->result_count, 1u);

  auto physical = catalog_->GetPhysical("yield");
  ASSERT_TRUE(physical.ok());
  auto hits = (*physical)->Lookup(xpath::CompareOp::kEq,
                                  xpath::Literal::Number(42));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->rids.size(), 1u);
  EXPECT_EQ((*physical)->entry_count(), 200u);  // still one entry per doc
}

TEST_F(ExecutorFixture, UpdateViaIndexPlan) {
  ASSERT_TRUE(catalog_->CreateIndex(
                          "sym", "SDOC",
                          {*xpath::ParsePattern("/Security/Symbol"),
                           xpath::ValueType::kString})
                  .ok());
  const Statement upd = Parse(
      "update SDOC set /Security/Name = \"Renamed\" "
      "where /Security[Symbol = \"SYM9\"]");
  auto plan = optimizer_->Optimize(upd);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->legs.empty());  // match found through the index
  auto result = executor_->Execute(upd, *plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->result_count, 1u);
  EXPECT_LE(result->docs_examined, 2u);
}

TEST_F(ExecutorFixture, UpdateOfNoMatchingDocumentIsNoop) {
  const Statement upd = Parse(
      "update SDOC set /Security/Name = \"X\" "
      "where /Security[Symbol = \"NOPE\"]");
  auto plan = optimizer_->OptimizeWithoutIndexes(upd);
  ASSERT_TRUE(plan.ok());
  auto result = executor_->Execute(upd, *plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->result_count, 0u);
}

TEST_F(ExecutorFixture, MaterializedRows) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security[Yield > 8] "
      "return $s/Symbol");
  auto plan = optimizer_->OptimizeWithoutIndexes(stmt);
  ASSERT_TRUE(plan.ok());

  // Counting-only execution materializes nothing.
  auto counted = executor_->Execute(stmt, *plan);
  ASSERT_TRUE(counted.ok());
  EXPECT_TRUE(counted->rows.empty());
  EXPECT_EQ(counted->result_count, 20u);  // i % 10 == 9

  ExecOptions options;
  options.materialize_rows = true;
  options.max_rows = 5;
  auto rows = executor_->Execute(stmt, *plan, options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->result_count, 20u);  // counting continues past the cap
  ASSERT_EQ(rows->rows.size(), 5u);
  EXPECT_EQ(rows->rows[0], "Symbol=SYM9");
}

TEST_F(ExecutorFixture, MaterializedSubtreeRowsAreXml) {
  const Statement stmt = Parse(
      "for $s in collection('SDOC')/Security where $s/Symbol = \"SYM7\" "
      "return $s");
  auto plan = optimizer_->OptimizeWithoutIndexes(stmt);
  ASSERT_TRUE(plan.ok());
  ExecOptions options;
  options.materialize_rows = true;
  auto result = executor_->Execute(stmt, *plan, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_NE(result->rows[0].find("<Security>"), std::string::npos);
  EXPECT_NE(result->rows[0].find("<Symbol>SYM7</Symbol>"),
            std::string::npos);
}

}  // namespace
}  // namespace xia::engine
