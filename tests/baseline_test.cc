// Tests for the decoupled (XIST-like) baseline advisor and the §II claims
// the comparison rests on.

#include <gtest/gtest.h>

#include <set>

#include "advisor/baseline.h"
#include "engine/query_parser.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "tpox/tpox_data.h"
#include "tpox/tpox_workload.h"
#include "util/string_util.h"

namespace xia::advisor {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpox::TpoxScale scale;
    scale.security_docs = 400;
    scale.order_docs = 500;
    scale.custacc_docs = 150;
    ASSERT_TRUE(tpox::BuildTpoxDatabase(scale, &store_, &stats_).ok());
    auto workload = tpox::TpoxQueries();
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
    baseline_ = std::make_unique<DecoupledAdvisor>(&store_, &stats_);
    tight_ = std::make_unique<IndexAdvisor>(&store_, &stats_);
  }

  // Fraction of `rec`'s indexes used in some best plan, and the estimated
  // speedup, judged by the real optimizer.
  std::pair<double, double> Judge(const Recommendation& rec) {
    storage::Catalog catalog(&store_, &stats_);
    int i = 0;
    for (const auto& ri : rec.indexes) {
      EXPECT_TRUE(catalog
                      .CreateVirtualIndex(StringPrintf("j%d", i++),
                                          ri.collection, ri.pattern)
                      .ok());
    }
    optimizer::Optimizer opt(&store_, &catalog, &stats_);
    double base = 0;
    double with = 0;
    std::set<std::string> used;
    for (const auto& stmt : workload_) {
      auto b = opt.OptimizeWithoutIndexes(stmt);
      auto w = opt.Optimize(stmt);
      EXPECT_TRUE(b.ok());
      EXPECT_TRUE(w.ok());
      base += b->est_cost;
      with += w->est_cost;
      for (const auto& leg : w->legs) used.insert(leg.index_name);
    }
    const double usage =
        rec.indexes.empty() ? 0
                            : static_cast<double>(used.size()) /
                                  static_cast<double>(rec.indexes.size());
    return {base / with, usage};
  }

  storage::DocumentStore store_;
  storage::StatisticsCatalog stats_;
  engine::Workload workload_;
  std::unique_ptr<DecoupledAdvisor> baseline_;
  std::unique_ptr<IndexAdvisor> tight_;
};

TEST_F(BaselineTest, CandidateExplosion) {
  // §II: the data-driven enumeration considers far more candidates than
  // the optimizer-coupled one needs.
  DecoupledOptions options;
  auto baseline_count = baseline_->CountCandidates(workload_, options);
  ASSERT_TRUE(baseline_count.ok());
  auto tight_set = tight_->BuildCandidates(workload_, /*generalize=*/true);
  ASSERT_TRUE(tight_set.ok());
  EXPECT_GT(*baseline_count, tight_set->size());
}

TEST_F(BaselineTest, RecommendationsFitBudget) {
  for (double budget : {50e3, 200e3, 1e6}) {
    DecoupledOptions options;
    options.disk_budget_bytes = budget;
    auto rec = baseline_->Recommend(workload_, options);
    ASSERT_TRUE(rec.ok());
    EXPECT_LE(rec->total_size_bytes, budget);
    double sum = 0;
    for (const auto& ri : rec->indexes) {
      sum += static_cast<double>(ri.size_bytes);
    }
    EXPECT_NEAR(sum, rec->total_size_bytes, 1.0);
  }
}

TEST_F(BaselineTest, DeterministicOutput) {
  DecoupledOptions options;
  options.disk_budget_bytes = 300e3;
  auto a = baseline_->Recommend(workload_, options);
  auto b = baseline_->Recommend(workload_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->indexes.size(), b->indexes.size());
  for (size_t i = 0; i < a->indexes.size(); ++i) {
    EXPECT_TRUE(a->indexes[i].pattern == b->indexes[i].pattern);
  }
}

TEST_F(BaselineTest, TightCouplingWinsOnUsageAndSpeedup) {
  // The quantified §II claim, asserted (not just printed by the bench).
  const double budget = 200e3;

  AdvisorOptions tight_options;
  tight_options.algorithm = SearchAlgorithm::kGreedyWithHeuristics;
  tight_options.disk_budget_bytes = budget;
  auto tight_rec = tight_->Recommend(workload_, tight_options);
  ASSERT_TRUE(tight_rec.ok());
  const auto [tight_speedup, tight_usage] = Judge(*tight_rec);

  DecoupledOptions baseline_options;
  baseline_options.disk_budget_bytes = budget;
  auto base_rec = baseline_->Recommend(workload_, baseline_options);
  ASSERT_TRUE(base_rec.ok());
  ASSERT_FALSE(base_rec->indexes.empty());
  const auto [base_speedup, base_usage] = Judge(*base_rec);

  // Every tight-advisor index is used by the optimizer (that is the whole
  // point of enumerating through it).
  EXPECT_DOUBLE_EQ(tight_usage, 1.0);
  // The baseline leaves indexes unused and delivers less speedup.
  EXPECT_LT(base_usage, 1.0);
  EXPECT_GT(tight_speedup, base_speedup);
}

}  // namespace
}  // namespace xia::advisor
