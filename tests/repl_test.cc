// Two-node replication tests over real loopback sockets.
//
// Two layers:
//   * real leader/follower Server pairs — snapshot join, log catch-up,
//     digest convergence, read-only enforcement, follower reads,
//     follower restart rejoin, leader-side ack tracking;
//   * a FakeLeader (raw Listener speaking the repl wire protocol) —
//     byte-level adversarial cases the real leader never produces:
//     duplicate LSNs, corrupt record payloads, flipped frame bytes,
//     truncated streams. Each must never partially apply and must
//     resubscribe from exactly last-good + 1.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "repl/hub.h"
#include "util/status.h"
#include "wal/record.h"

namespace xia::net {
namespace {

namespace fs = std::filesystem;

ServerOptions LeaderOptions(const std::string& data_dir) {
  ServerOptions options;
  options.demo = "tpox";
  options.demo_tpox_scale = tpox::TpoxScale{30, 40, 20, 42};
  options.data_dir = data_dir;
  return options;
}

ServerOptions FollowerOptions(const std::string& data_dir,
                              uint16_t leader_port,
                              const std::string& id = "f1") {
  ServerOptions options;
  options.data_dir = data_dir;
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  options.follower_id = id;
  return options;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/xia_repl_" + name;
  fs::remove_all(dir);
  return dir;
}

constexpr const char* kMarkerQuery =
    "for $s in c('SDOC')/Security[Yield = 9.9] return $s/Symbol";
constexpr const char* kMarkerMutation =
    "update SDOC set /Security/Yield = 9.9 "
    "where /Security[Symbol = \"SYM000017\"]";
constexpr const char* kPointQuery =
    "for $s in c('SDOC')/Security where $s/Symbol = \"SYM000017\" return $s";

void MutateOk(const Server& server, const std::string& statement) {
  Client client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  MutationRequest request;
  request.statement = statement;
  const auto reply = client.Mutate(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
}

// Polls (generously — sanitizer builds get starved) until `pred` holds.
template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

bool WaitForApplied(const Server& follower, uint64_t lsn,
                    double timeout_s = 30.0) {
  return WaitFor(
      [&] { return follower.GetReplStatus().applier.applied_lsn >= lsn; },
      timeout_s);
}

std::string MustDigest(Server* server) {
  auto digest = server->StoreDigest();
  EXPECT_TRUE(digest.ok()) << digest.status();
  return digest.ok() ? *digest : std::string();
}

// ---------------------------------------------------------------------
// Real leader / follower pairs.
// ---------------------------------------------------------------------

TEST(ReplTest, FollowerJoinsViaSnapshotAndConverges) {
  Server leader(LeaderOptions(ScratchDir("conv_leader")));
  ASSERT_TRUE(leader.Start().ok());
  MutateOk(leader, kMarkerMutation);
  // Move the checkpoint horizon past the demo seed so the join must take
  // the snapshot-transfer path, then keep mutating so log catch-up runs
  // too.
  ASSERT_TRUE(leader.CheckpointNow().ok());
  MutateOk(leader,
           "insert into SDOC "
           "<Security><Symbol>RPLX1</Symbol><Yield>1.0</Yield></Security>");

  Server follower(FollowerOptions(ScratchDir("conv_follower"), leader.port()));
  ASSERT_TRUE(follower.Start().ok());

  const uint64_t target = leader.GetReplStatus().durable_lsn;
  ASSERT_GT(target, 0u);
  ASSERT_TRUE(WaitForApplied(follower, target))
      << "applied=" << follower.GetReplStatus().applier.applied_lsn
      << " want=" << target
      << " err=" << follower.GetReplStatus().applier.last_error;

  const auto stats = follower.GetReplStatus();
  EXPECT_TRUE(stats.is_follower);
  EXPECT_GE(stats.applier.snapshots_installed, 1u);
  EXPECT_TRUE(stats.applier.sticky_error.empty())
      << stats.applier.sticky_error;
  EXPECT_EQ(MustDigest(&leader), MustDigest(&follower));

  // Leader-side view: the follower is streaming and its acks catch up to
  // the durable LSN.
  ASSERT_TRUE(WaitFor([&] {
    const auto repl = leader.GetReplStatus();
    return repl.followers.size() == 1 &&
           repl.followers[0].acked_lsn >= target;
  })) << "acks never reached " << target;
  const auto leader_view = leader.GetReplStatus();
  EXPECT_EQ(leader_view.followers[0].follower_id, "f1");
  EXPECT_TRUE(leader_view.followers[0].streaming);

  follower.Stop();
  leader.Stop();
}

TEST(ReplTest, FollowerStreamsLiveMutations) {
  Server leader(LeaderOptions(ScratchDir("live_leader")));
  ASSERT_TRUE(leader.Start().ok());
  Server follower(FollowerOptions(ScratchDir("live_follower"), leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitForApplied(follower, leader.GetReplStatus().durable_lsn));

  // Mutations issued after the follower attached arrive via the live
  // stream (no snapshot in between).
  const uint64_t snapshots_before =
      follower.GetReplStatus().applier.snapshots_installed;
  MutateOk(leader, kMarkerMutation);
  ASSERT_TRUE(WaitForApplied(follower, leader.GetReplStatus().durable_lsn));
  EXPECT_EQ(follower.GetReplStatus().applier.snapshots_installed,
            snapshots_before);

  Client reader;
  ASSERT_TRUE(reader.Connect(follower.host(), follower.port()).ok());
  QueryRequest query;
  query.statement = kMarkerQuery;
  const auto reply = reader.Query(query);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->result_count, 1u);
  EXPECT_EQ(MustDigest(&leader), MustDigest(&follower));

  follower.Stop();
  leader.Stop();
}

TEST(ReplTest, FollowerRejectsMutationsButServesReads) {
  Server leader(LeaderOptions(ScratchDir("ro_leader")));
  ASSERT_TRUE(leader.Start().ok());
  Server follower(FollowerOptions(ScratchDir("ro_follower"), leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitForApplied(follower, leader.GetReplStatus().durable_lsn));

  Client client;
  ASSERT_TRUE(client.Connect(follower.host(), follower.port()).ok());

  // Mutations: rejected with kReadOnly, and nothing applied.
  MutationRequest mutation;
  mutation.statement = kMarkerMutation;
  const auto mreply = client.Mutate(mutation);
  ASSERT_FALSE(mreply.ok());
  EXPECT_EQ(mreply.status().code(), StatusCode::kReadOnly)
      << mreply.status();
  EXPECT_EQ(StatusExitCode(mreply.status()), 24);

  // EXPLAIN ANALYZE executes the statement, so a mutation must be
  // rejected there too; plain EXPLAIN of a query is fine.
  ExplainRequest explain;
  explain.statement = kMarkerMutation;
  explain.analyze = true;
  const auto analyzed = client.Explain(explain);
  ASSERT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kReadOnly);
  explain.statement = kPointQuery;
  explain.analyze = false;
  const auto plan = client.Explain(explain);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->text.find("SCAN"), std::string::npos) << plan->text;

  // Reads and what-if advising still work on the replica.
  QueryRequest query;
  query.statement = kPointQuery;
  const auto qreply = client.Query(query);
  ASSERT_TRUE(qreply.ok()) << qreply.status();
  EXPECT_EQ(qreply->result_count, 1u);

  AdviseRequest advise;
  advise.workload_text =
      std::string("@freq=20 @label=get_security\n") + kPointQuery + ";\n";
  advise.disk_budget_bytes = 1024 * 1024;
  const auto rec = client.Advise(advise);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_FALSE(rec->indexes.empty());

  // The marker mutation never leaked into the replica.
  QueryRequest marker;
  marker.statement = kMarkerQuery;
  const auto mcount = client.Query(marker);
  ASSERT_TRUE(mcount.ok()) << mcount.status();
  EXPECT_EQ(mcount->result_count, 0u);

  follower.Stop();
  leader.Stop();
}

TEST(ReplTest, FollowerRestartRejoinsFromLocalWal) {
  Server leader(LeaderOptions(ScratchDir("rejoin_leader")));
  ASSERT_TRUE(leader.Start().ok());
  const std::string follower_dir = ScratchDir("rejoin_follower");
  {
    Server follower(FollowerOptions(follower_dir, leader.port()));
    ASSERT_TRUE(follower.Start().ok());
    ASSERT_TRUE(WaitForApplied(follower, leader.GetReplStatus().durable_lsn));
    follower.Stop();
  }

  // Progress while the follower is down.
  MutateOk(leader, kMarkerMutation);
  MutateOk(leader,
           "insert into SDOC "
           "<Security><Symbol>RPLX2</Symbol><Yield>2.0</Yield></Security>");

  // Same data dir: recover the local WAL, resubscribe, catch up.
  Server follower(FollowerOptions(follower_dir, leader.port()));
  ASSERT_TRUE(follower.Start().ok());
  const uint64_t target = leader.GetReplStatus().durable_lsn;
  ASSERT_TRUE(WaitForApplied(follower, target))
      << follower.GetReplStatus().applier.last_error;
  EXPECT_EQ(MustDigest(&leader), MustDigest(&follower));
  EXPECT_TRUE(follower.GetReplStatus().applier.sticky_error.empty());

  follower.Stop();
  leader.Stop();
}

// ---------------------------------------------------------------------
// FakeLeader: byte-level adversarial streams.
// ---------------------------------------------------------------------

// A raw Listener that accepts follower connections, records each
// kReplSubscribe it sees, and hands the accepted socket to the test for
// scripted (possibly malformed) frames.
class FakeLeader {
 public:
  FakeLeader() {
    auto status = listener_.Listen("127.0.0.1", 0);
    EXPECT_TRUE(status.ok()) << status;
  }
  ~FakeLeader() { listener_.Close(); }

  uint16_t port() const { return listener_.port(); }

  // Blocks until the next follower connection arrives and its subscribe
  // request is read. Returns false on accept/read failure.
  bool AcceptSubscriber(Socket* out, ReplSubscribeRequest* subscribe) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return false;
    *out = std::move(*accepted);
    FrameReader reader;
    char buf[4096];
    for (;;) {
      Frame frame;
      std::string error;
      const auto next = reader.Poll(&frame, &error);
      if (next == FrameReader::Next::kBad) return false;
      if (next == FrameReader::Next::kFrame) {
        if (frame.type != MsgType::kReplSubscribe) return false;
        auto decoded = DecodeReplSubscribeRequest(frame.payload);
        if (!decoded.ok()) return false;
        *subscribe = std::move(*decoded);
        return true;
      }
      const auto readable = out->WaitReadable(10.0);
      if (!readable.ok() || !*readable) return false;
      const auto n = out->Recv(buf, sizeof(buf));
      if (!n.ok() || *n == 0) return false;
      reader.Feed(std::string_view(buf, *n));
    }
  }

  static std::string RecordFrame(const wal::WalRecord& record) {
    return EncodeFrame(MsgType::kReplFrame, 0, wal::EncodeRecord(record));
  }

 private:
  Listener listener_;
};

wal::WalRecord RecordAt(uint64_t lsn, wal::WalRecord record) {
  record.lsn = lsn;
  return record;
}

TEST(ReplTest, DuplicateLsnFramesAreSkippedIdempotently) {
  FakeLeader fake;
  Server follower(
      FollowerOptions(ScratchDir("dup_follower"), fake.port(), "dup"));
  ASSERT_TRUE(follower.Start().ok());

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  EXPECT_EQ(subscribe.follower_id, "dup");
  EXPECT_EQ(subscribe.start_lsn, 1u);

  const auto create = RecordAt(1, wal::WalRecord::CreateCollection("C"));
  const auto insert =
      RecordAt(2, wal::WalRecord::Insert("C", "<a><b>one</b></a>"));
  const auto insert2 =
      RecordAt(3, wal::WalRecord::Insert("C", "<a><b>two</b></a>"));
  ASSERT_TRUE(stream.SendAll(FakeLeader::RecordFrame(create)).ok());
  ASSERT_TRUE(stream.SendAll(FakeLeader::RecordFrame(insert)).ok());
  // Replay LSN 2 — a retransmit after an ack loss. Must be a no-op.
  ASSERT_TRUE(stream.SendAll(FakeLeader::RecordFrame(insert)).ok());
  ASSERT_TRUE(stream.SendAll(FakeLeader::RecordFrame(insert2)).ok());
  // Stats so the query below can plan against C.
  ASSERT_TRUE(
      stream
          .SendAll(FakeLeader::RecordFrame(
              RecordAt(4, wal::WalRecord::StatsRefresh("C"))))
          .ok());

  ASSERT_TRUE(WaitForApplied(follower, 4));
  const auto stats = follower.GetReplStatus().applier;
  EXPECT_EQ(stats.records_applied, 4u);
  EXPECT_GE(stats.duplicates_skipped, 1u);
  EXPECT_TRUE(stats.sticky_error.empty()) << stats.sticky_error;

  // Exactly one copy of each document landed.
  Client client;
  ASSERT_TRUE(client.Connect(follower.host(), follower.port()).ok());
  QueryRequest query;
  query.statement = "for $x in c('C')/a return $x/b";
  const auto reply = client.Query(query);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->result_count, 2u);

  stream.Close();
  follower.Stop();
}

TEST(ReplTest, CorruptRecordPayloadNeverAppliesAndResubscribes) {
  FakeLeader fake;
  Server follower(
      FollowerOptions(ScratchDir("corrupt_follower"), fake.port(), "cr"));
  ASSERT_TRUE(follower.Start().ok());

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  ASSERT_TRUE(
      stream
          .SendAll(FakeLeader::RecordFrame(
              RecordAt(1, wal::WalRecord::CreateCollection("C"))))
          .ok());
  ASSERT_TRUE(WaitForApplied(follower, 1));

  // A structurally valid net frame whose payload is not a WAL record:
  // the frame CRC passes, DecodeRecord must not, and nothing applies.
  ASSERT_TRUE(stream
                  .SendAll(EncodeFrame(MsgType::kReplFrame, 0,
                                       "these bytes are not a wal record"))
                  .ok());

  // The follower drops the stream and resubscribes from last-good + 1.
  Socket stream2;
  ReplSubscribeRequest resubscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream2, &resubscribe));
  EXPECT_EQ(resubscribe.start_lsn, 2u);
  const auto stats = follower.GetReplStatus().applier;
  EXPECT_EQ(stats.applied_lsn, 1u);
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_GE(stats.resubscribes, 1u);
  EXPECT_TRUE(stats.sticky_error.empty()) << stats.sticky_error;

  // The retried stream completes the apply — full recovery.
  ASSERT_TRUE(stream2
                  .SendAll(FakeLeader::RecordFrame(
                      RecordAt(2, wal::WalRecord::Insert("C", "<a/>"))))
                  .ok());
  ASSERT_TRUE(WaitForApplied(follower, 2));

  stream.Close();
  stream2.Close();
  follower.Stop();
}

TEST(ReplTest, FlippedFrameByteNeverAppliesAndResubscribes) {
  FakeLeader fake;
  Server follower(
      FollowerOptions(ScratchDir("flip_follower"), fake.port(), "fl"));
  ASSERT_TRUE(follower.Start().ok());

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  ASSERT_TRUE(
      stream
          .SendAll(FakeLeader::RecordFrame(
              RecordAt(1, wal::WalRecord::CreateCollection("C"))))
          .ok());
  ASSERT_TRUE(WaitForApplied(follower, 1));

  // Flip one byte mid-frame: the frame CRC catches it, the reader goes
  // sticky-bad, and the record inside must never apply.
  std::string frame = FakeLeader::RecordFrame(
      RecordAt(2, wal::WalRecord::Insert("C", "<a><b>bitrot</b></a>")));
  frame[frame.size() / 2] ^= 0x40;
  ASSERT_TRUE(stream.SendAll(frame).ok());

  Socket stream2;
  ReplSubscribeRequest resubscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream2, &resubscribe));
  EXPECT_EQ(resubscribe.start_lsn, 2u);
  EXPECT_EQ(follower.GetReplStatus().applier.applied_lsn, 1u);
  EXPECT_TRUE(follower.GetReplStatus().applier.sticky_error.empty());

  ASSERT_TRUE(stream2
                  .SendAll(FakeLeader::RecordFrame(RecordAt(
                      2, wal::WalRecord::Insert("C", "<a><b>ok</b></a>"))))
                  .ok());
  ASSERT_TRUE(WaitForApplied(follower, 2));
  EXPECT_EQ(follower.GetReplStatus().applier.records_applied, 2u);

  stream.Close();
  stream2.Close();
  follower.Stop();
}

TEST(ReplTest, TruncatedStreamNeverAppliesAndResubscribes) {
  FakeLeader fake;
  Server follower(
      FollowerOptions(ScratchDir("trunc_follower"), fake.port(), "tr"));
  ASSERT_TRUE(follower.Start().ok());

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  ASSERT_TRUE(
      stream
          .SendAll(FakeLeader::RecordFrame(
              RecordAt(1, wal::WalRecord::CreateCollection("C"))))
          .ok());
  ASSERT_TRUE(WaitForApplied(follower, 1));

  // Half a frame, then the connection dies — a partition mid-send.
  const std::string frame = FakeLeader::RecordFrame(
      RecordAt(2, wal::WalRecord::Insert("C", "<a><b>cut</b></a>")));
  ASSERT_TRUE(
      stream.SendAll(std::string_view(frame).substr(0, frame.size() / 2))
          .ok());
  stream.Close();

  Socket stream2;
  ReplSubscribeRequest resubscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream2, &resubscribe));
  EXPECT_EQ(resubscribe.start_lsn, 2u);
  EXPECT_EQ(follower.GetReplStatus().applier.applied_lsn, 1u);
  EXPECT_TRUE(follower.GetReplStatus().applier.sticky_error.empty());

  ASSERT_TRUE(stream2.SendAll(frame).ok());
  ASSERT_TRUE(WaitForApplied(follower, 2));

  stream2.Close();
  follower.Stop();
}

// ---------------------------------------------------------------------
// Snapshot transfer must fail closed (DESIGN §15).
// ---------------------------------------------------------------------

bool DirHasTmpFiles(const std::string& dir) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") return true;
  }
  return false;
}

ReplSnapshotPayload BigSnapshotPayload() {
  ReplSnapshotPayload snap;
  snap.checkpoint_lsn = 7;
  snap.has_snapshot = true;
  snap.has_catalog = true;
  snap.snapshot_bytes = std::string(64 * 1024, 'x');
  snap.catalog_bytes = "these bytes are not a catalog image";
  return snap;
}

TEST(ReplTest, TruncatedSnapshotTransferFailsClosed) {
  // The leader dies (restart, crash, partition) halfway through sending
  // a kReplSnapshot frame. The partial image must be discarded whole:
  // nothing staged on disk, store untouched, and the follower
  // resubscribes from exactly where it was.
  FakeLeader fake;
  const std::string dir = ScratchDir("snapcut_follower");
  Server follower(FollowerOptions(dir, fake.port(), "sc"));
  ASSERT_TRUE(follower.Start().ok());
  const std::string empty_digest = MustDigest(&follower);

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  EXPECT_EQ(subscribe.start_lsn, 1u);

  const std::string frame = EncodeFrame(
      MsgType::kReplSnapshot, 0, EncodeReplSnapshotPayload(
                                     BigSnapshotPayload()));
  ASSERT_TRUE(
      stream.SendAll(std::string_view(frame).substr(0, frame.size() / 2))
          .ok());
  stream.Close();  // the "restart": connection dies mid-transfer

  Socket stream2;
  ReplSubscribeRequest resubscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream2, &resubscribe));
  EXPECT_EQ(resubscribe.start_lsn, 1u);

  const auto stats = follower.GetReplStatus();
  EXPECT_EQ(stats.applier.snapshots_installed, 0u);
  EXPECT_EQ(stats.applier.applied_lsn, 0u);
  EXPECT_EQ(stats.checkpoint_lsn, 0u);
  EXPECT_TRUE(stats.applier.sticky_error.empty())
      << stats.applier.sticky_error;
  EXPECT_FALSE(DirHasTmpFiles(dir));
  EXPECT_EQ(MustDigest(&follower), empty_digest);

  // The retried stream works normally — the partial image left no scars.
  ASSERT_TRUE(
      stream2
          .SendAll(FakeLeader::RecordFrame(
              RecordAt(1, wal::WalRecord::CreateCollection("C"))))
          .ok());
  ASSERT_TRUE(WaitForApplied(follower, 1));

  stream2.Close();
  follower.Stop();
}

TEST(ReplTest, CorruptSnapshotImageFailsClosedAndResubscribes) {
  // A complete frame whose snapshot bytes are garbage: the installer
  // must reject it in staging (kDataLoss) with the live store, the
  // files, and the manifest untouched.
  FakeLeader fake;
  const std::string dir = ScratchDir("snapbad_follower");
  Server follower(FollowerOptions(dir, fake.port(), "sb"));
  ASSERT_TRUE(follower.Start().ok());
  const std::string empty_digest = MustDigest(&follower);

  Socket stream;
  ReplSubscribeRequest subscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream, &subscribe));
  ASSERT_TRUE(stream
                  .SendAll(EncodeFrame(
                      MsgType::kReplSnapshot, 0,
                      EncodeReplSnapshotPayload(BigSnapshotPayload())))
                  .ok());

  Socket stream2;
  ReplSubscribeRequest resubscribe;
  ASSERT_TRUE(fake.AcceptSubscriber(&stream2, &resubscribe));
  EXPECT_EQ(resubscribe.start_lsn, 1u);
  const auto stats = follower.GetReplStatus();
  EXPECT_EQ(stats.applier.snapshots_installed, 0u);
  EXPECT_EQ(stats.checkpoint_lsn, 0u);
  EXPECT_TRUE(stats.applier.sticky_error.empty())
      << stats.applier.sticky_error;
  EXPECT_FALSE(DirHasTmpFiles(dir));
  EXPECT_EQ(MustDigest(&follower), empty_digest);

  stream.Close();
  stream2.Close();
  follower.Stop();
}

// ---------------------------------------------------------------------
// ReplHub quorum bookkeeping (DESIGN §15).
// ---------------------------------------------------------------------

TEST(ReplHubTest, QuorumOfZeroIsImmediate) {
  repl::ReplHub hub;
  EXPECT_TRUE(hub.WaitForQuorum(100, 0, 0.0));
}

TEST(ReplHubTest, QuorumTimesOutWithoutEnoughAcks) {
  repl::ReplHub hub;
  EXPECT_FALSE(hub.WaitForQuorum(1, 1, 0.02));
  // One follower acked, but the quorum wants two distinct ones: the
  // same follower acking again must not count twice.
  hub.OnSubscribe("f1", 1);
  hub.OnAck("f1", 5);
  hub.OnAck("f1", 6);
  EXPECT_TRUE(hub.WaitForQuorum(5, 1, 0.0));
  EXPECT_FALSE(hub.WaitForQuorum(5, 2, 0.02));
  EXPECT_EQ(hub.CountAcked(5), 1u);
  // A stale ack (lower than what f1 already reported) is ignored.
  hub.OnAck("f1", 2);
  EXPECT_TRUE(hub.WaitForQuorum(6, 1, 0.0));
}

TEST(ReplHubTest, AckFromSecondFollowerWakesWaiter) {
  repl::ReplHub hub;
  hub.OnSubscribe("f1", 1);
  hub.OnAck("f1", 10);
  std::thread acker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    hub.OnSubscribe("f2", 1);
    hub.OnAck("f2", 10);
  });
  // Blocks until f2's ack arrives; generous timeout for starved CI.
  EXPECT_TRUE(hub.WaitForQuorum(10, 2, 30.0));
  acker.join();
  EXPECT_EQ(hub.CountAcked(10), 2u);
}

TEST(ReplHubTest, DisconnectedFollowersPruneAfterTtl) {
  repl::ReplHub hub(/*disconnected_ttl_s=*/0.05);
  hub.OnSubscribe("gone", 1);
  hub.OnAck("gone", 3);
  hub.OnDisconnect("gone");
  ASSERT_TRUE(WaitFor([&] { return hub.Snapshot().empty(); }, 10.0));
  // Its acks no longer satisfy quorums: the follower is forgotten.
  EXPECT_EQ(hub.CountAcked(3), 0u);

  // TTL 0 keeps disconnected entries forever (the PR-7 behavior).
  repl::ReplHub keeper(/*disconnected_ttl_s=*/0);
  keeper.OnSubscribe("gone", 1);
  keeper.OnDisconnect("gone");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_EQ(keeper.Snapshot().size(), 1u);
  EXPECT_FALSE(keeper.Snapshot()[0].streaming);
}

// ---------------------------------------------------------------------
// Quorum-acknowledged commit and epoch fencing, end to end.
// ---------------------------------------------------------------------

TEST(ReplTest, QuorumMutationFailsWithoutFollowersThenSucceeds) {
  ServerOptions options = LeaderOptions(ScratchDir("quorum_leader"));
  options.sync_replicas = 1;
  options.quorum_timeout_ms = 200;  // fail fast while no follower exists
  Server leader(options);
  ASSERT_TRUE(leader.Start().ok());

  // No follower: the mutation commits locally but the quorum promise
  // cannot be met — loud kUnavailable, never a silent async downgrade.
  Client client;
  ASSERT_TRUE(client.Connect(leader.host(), leader.port()).ok());
  MutationRequest mutation;
  mutation.statement =
      "insert into SDOC "
      "<Security><Symbol>QRM1</Symbol><Yield>1.0</Yield></Security>";
  const auto rejected = client.Mutate(mutation);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable)
      << rejected.status();
  EXPECT_NE(rejected.status().ToString().find("committed locally"),
            std::string::npos)
      << rejected.status();

  // The write IS durable locally — a quorum timeout is about the
  // replication promise, not a rollback.
  Client reader;
  ASSERT_TRUE(reader.Connect(leader.host(), leader.port()).ok());
  QueryRequest query;
  query.statement =
      "for $s in c('SDOC')/Security where $s/Symbol = \"QRM1\" return $s";
  const auto count = reader.Query(query);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count->result_count, 1u);

  // With a follower attached and caught up, the same quorum is met.
  Server follower(
      FollowerOptions(ScratchDir("quorum_follower"), leader.port(), "q1"));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    const auto repl = leader.GetReplStatus();
    return repl.followers.size() == 1 &&
           repl.followers[0].acked_lsn >= leader.GetReplStatus().durable_lsn;
  }));
  mutation.statement =
      "insert into SDOC "
      "<Security><Symbol>QRM2</Symbol><Yield>2.0</Yield></Security>";
  const auto accepted = client.Mutate(mutation);
  ASSERT_TRUE(accepted.ok()) << accepted.status();

  follower.Stop();
  leader.Stop();
}

TEST(ReplTest, PromoteBumpsEpochAndFencesStaleWrites) {
  Server leader(LeaderOptions(ScratchDir("promo_leader")));
  ASSERT_TRUE(leader.Start().ok());
  Server follower(
      FollowerOptions(ScratchDir("promo_follower"), leader.port(), "pr"));
  ASSERT_TRUE(follower.Start().ok());
  ASSERT_TRUE(WaitForApplied(follower, leader.GetReplStatus().durable_lsn));

  // Promote the follower: epoch bump plus a fencing barrier in its WAL.
  uint64_t epoch = 0;
  uint64_t barrier = 0;
  ASSERT_TRUE(follower.Promote(&epoch, &barrier).ok());
  EXPECT_EQ(epoch, 2u);
  EXPECT_GT(barrier, 0u);
  EXPECT_FALSE(follower.GetReplStatus().is_follower);

  // A retried promote is idempotent: same epoch, no second bump.
  uint64_t epoch2 = 0;
  uint64_t barrier2 = 0;
  ASSERT_TRUE(follower.Promote(&epoch2, &barrier2).ok());
  EXPECT_EQ(epoch2, epoch);
  EXPECT_EQ(barrier2, barrier);

  Client client;
  ASSERT_TRUE(client.Connect(follower.host(), follower.port()).ok());

  // A client still fencing to the old epoch is rejected with kFenced
  // and told where the leader is; the current epoch (and epoch 0 =
  // "any") pass.
  MutationRequest mutation;
  mutation.statement =
      "insert into SDOC "
      "<Security><Symbol>EPO1</Symbol><Yield>1.0</Yield></Security>";
  mutation.expected_epoch = 1;
  const auto fenced = client.Mutate(mutation);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), StatusCode::kFenced) << fenced.status();

  mutation.expected_epoch = epoch;
  const auto current = client.Mutate(mutation);
  ASSERT_TRUE(current.ok()) << current.status();

  mutation.statement =
      "insert into SDOC "
      "<Security><Symbol>EPO2</Symbol><Yield>2.0</Yield></Security>";
  mutation.expected_epoch = 0;
  const auto any_epoch = client.Mutate(mutation);
  ASSERT_TRUE(any_epoch.ok()) << any_epoch.status();

  const auto status = follower.GetReplStatus();
  EXPECT_EQ(status.repl_epoch, 2u);
  EXPECT_EQ(status.epoch_start_lsn, barrier);

  follower.Stop();
  leader.Stop();
}

}  // namespace
}  // namespace xia::net
