#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xia::xpath {
namespace {

xml::Document Doc(const char* text) {
  auto doc = xml::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(*doc);
}

const char* kSecurity = R"(
<Security>
  <Symbol>IBM</Symbol>
  <Yield>4.8</Yield>
  <SecInfo>
    <StockInformation>
      <Sector>Energy</Sector>
      <Industry>Oil</Industry>
    </StockInformation>
  </SecInfo>
  <Price><LastTrade>95.5</LastTrade><Open>94.0</Open></Price>
</Security>)";

TEST(EvaluateLinearTest, ChildPath) {
  auto doc = Doc(kSecurity);
  auto nodes = EvaluateLinear(doc, *ParsePattern("/Security/Symbol"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc.node(nodes[0]).value, "IBM");
}

TEST(EvaluateLinearTest, WildcardStep) {
  auto doc = Doc(kSecurity);
  auto nodes =
      EvaluateLinear(doc, *ParsePattern("/Security/SecInfo/*/Sector"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc.node(nodes[0]).value, "Energy");
}

TEST(EvaluateLinearTest, DescendantAxis) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(EvaluateLinear(doc, *ParsePattern("//Sector")).size(), 1u);
  EXPECT_EQ(EvaluateLinear(doc, *ParsePattern("/Security//Sector")).size(),
            1u);
  // Root itself reachable by //Security.
  auto roots = EvaluateLinear(doc, *ParsePattern("//Security"));
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], doc.root());
}

TEST(EvaluateLinearTest, UniversalSelectsAllElements) {
  auto doc = Doc("<a><b>1</b><c><d>2</d></c></a>");
  EXPECT_EQ(EvaluateLinear(doc, *ParsePattern("//*")).size(), doc.size());
}

TEST(EvaluateLinearTest, NoMatch) {
  auto doc = Doc(kSecurity);
  EXPECT_TRUE(EvaluateLinear(doc, *ParsePattern("/Security/Missing")).empty());
  EXPECT_TRUE(EvaluateLinear(doc, *ParsePattern("/Wrong/Symbol")).empty());
}

TEST(EvaluateLinearTest, NoDuplicatesFromOverlappingDescendants) {
  auto doc = Doc("<a><a><a><b>x</b></a></a></a>");
  auto nodes = EvaluateLinear(doc, *ParsePattern("//a//b"));
  ASSERT_EQ(nodes.size(), 1u);
}

TEST(EvaluateLinearTest, AttributeSelection) {
  auto doc = Doc("<FIXML><Order ID=\"103\" Side=\"1\"/></FIXML>");
  auto nodes = EvaluateLinear(doc, *ParsePattern("/FIXML/Order/@ID"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc.node(nodes[0]).value, "103");
  // Wildcard does not match attributes? In this model '@ID' is a label and
  // '*' matches any label, attributes included.
  auto all = EvaluateLinear(doc, *ParsePattern("/FIXML/Order/*"));
  EXPECT_EQ(all.size(), 2u);
}

TEST(CompareValueTest, NumericComparisons) {
  const Literal four_five = Literal::Number(4.5);
  EXPECT_TRUE(CompareValue("4.8", CompareOp::kGt, four_five));
  EXPECT_FALSE(CompareValue("4.2", CompareOp::kGt, four_five));
  EXPECT_TRUE(CompareValue("4.5", CompareOp::kGe, four_five));
  EXPECT_TRUE(CompareValue("4.5", CompareOp::kEq, four_five));
  EXPECT_TRUE(CompareValue("4.4", CompareOp::kNe, four_five));
  EXPECT_TRUE(CompareValue("4.4", CompareOp::kLt, four_five));
  EXPECT_TRUE(CompareValue("4.5", CompareOp::kLe, four_five));
}

TEST(CompareValueTest, NonNumericNodeNeverSatisfiesNumeric) {
  const Literal lit = Literal::Number(4.5);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(CompareValue("IBM", op, lit));
  }
}

TEST(CompareValueTest, StringComparisons) {
  const Literal energy = Literal::String("Energy");
  EXPECT_TRUE(CompareValue("Energy", CompareOp::kEq, energy));
  EXPECT_FALSE(CompareValue("Tech", CompareOp::kEq, energy));
  EXPECT_TRUE(CompareValue("Tech", CompareOp::kNe, energy));
  EXPECT_TRUE(CompareValue("Alpha", CompareOp::kLt, energy));
  EXPECT_TRUE(CompareValue("Tech", CompareOp::kGt, energy));
}

TEST(EvaluateTest, InlinePredicate) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(Evaluate(doc, *ParseQuery("/Security[Yield > 4.5]")).size(), 1u);
  EXPECT_TRUE(Evaluate(doc, *ParseQuery("/Security[Yield > 5.0]")).empty());
}

TEST(EvaluateTest, RelativePathPredicate) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(
      Evaluate(doc, *ParseQuery("/Security[SecInfo/*/Sector = \"Energy\"]"))
          .size(),
      1u);
  EXPECT_TRUE(
      Evaluate(doc, *ParseQuery("/Security[SecInfo/*/Sector = \"Tech\"]"))
          .empty());
}

TEST(EvaluateTest, PredicateAtInnerStep) {
  auto doc = Doc(kSecurity);
  auto nodes =
      Evaluate(doc, *ParseQuery("/Security[Symbol = \"IBM\"]/Price/Open"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc.node(nodes[0]).value, "94.0");
  EXPECT_TRUE(
      Evaluate(doc, *ParseQuery("/Security[Symbol = \"MSFT\"]/Price/Open"))
          .empty());
}

TEST(EvaluateTest, ExistencePredicate) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(Evaluate(doc, *ParseQuery("/Security[Price]")).size(), 1u);
  EXPECT_TRUE(Evaluate(doc, *ParseQuery("/Security[Dividend]")).empty());
}

TEST(EvaluateTest, ExistentialSemanticsOverMultipleNodes) {
  auto doc = Doc(
      "<r><item><price>5</price></item><item><price>50</price></item></r>");
  // The r node qualifies if ANY price > 20.
  EXPECT_EQ(Evaluate(doc, *ParseQuery("/r[item/price > 20]")).size(), 1u);
  EXPECT_TRUE(Evaluate(doc, *ParseQuery("/r[item/price > 100]")).empty());
  // Per-item filtering distinguishes the two.
  EXPECT_EQ(Evaluate(doc, *ParseQuery("/r/item[price > 20]")).size(), 1u);
}

TEST(EvaluateTest, DescendantPredicatePath) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(Evaluate(doc, *ParseQuery("/Security[.//Sector = \"Energy\"]"))
                .size(),
            1u);
}

TEST(EvaluateTest, SelfValuePredicate) {
  auto doc = Doc(kSecurity);
  auto nodes = Evaluate(doc, *ParseQuery("/Security/Yield[. >= 4.8]"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(Evaluate(doc, *ParseQuery("/Security/Yield[. > 4.8]")).empty());
}

TEST(EvaluateTest, MultiplePredicatesAreConjunctive) {
  auto doc = Doc(kSecurity);
  EXPECT_EQ(
      Evaluate(doc,
               *ParseQuery("/Security[Yield > 4][Symbol = \"IBM\"]")).size(),
      1u);
  EXPECT_TRUE(
      Evaluate(doc, *ParseQuery("/Security[Yield > 4][Symbol = \"X\"]"))
          .empty());
}

TEST(ExistsTest, Basic) {
  auto doc = Doc(kSecurity);
  EXPECT_TRUE(Exists(doc, *ParseQuery("//Sector")));
  EXPECT_FALSE(Exists(doc, *ParseQuery("//Dividend")));
}

TEST(EvaluateTest, EmptyDocument) {
  xml::Document doc;
  EXPECT_TRUE(Evaluate(doc, *ParseQuery("/a")).empty());
  EXPECT_TRUE(EvaluateLinear(doc, *ParsePattern("//*")).empty());
}

}  // namespace
}  // namespace xia::xpath
