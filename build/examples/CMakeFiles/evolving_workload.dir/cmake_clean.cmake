file(REMOVE_RECURSE
  "CMakeFiles/evolving_workload.dir/evolving_workload.cpp.o"
  "CMakeFiles/evolving_workload.dir/evolving_workload.cpp.o.d"
  "evolving_workload"
  "evolving_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
