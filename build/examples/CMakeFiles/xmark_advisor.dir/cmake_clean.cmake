file(REMOVE_RECURSE
  "CMakeFiles/xmark_advisor.dir/xmark_advisor.cpp.o"
  "CMakeFiles/xmark_advisor.dir/xmark_advisor.cpp.o.d"
  "xmark_advisor"
  "xmark_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
