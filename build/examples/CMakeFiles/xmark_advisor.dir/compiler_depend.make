# Empty compiler generated dependencies file for xmark_advisor.
# This may be replaced when dependencies are built.
