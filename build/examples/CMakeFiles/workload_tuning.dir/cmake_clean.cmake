file(REMOVE_RECURSE
  "CMakeFiles/workload_tuning.dir/workload_tuning.cpp.o"
  "CMakeFiles/workload_tuning.dir/workload_tuning.cpp.o.d"
  "workload_tuning"
  "workload_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
