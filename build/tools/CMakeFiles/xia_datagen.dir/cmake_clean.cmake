file(REMOVE_RECURSE
  "CMakeFiles/xia_datagen.dir/xia_datagen.cpp.o"
  "CMakeFiles/xia_datagen.dir/xia_datagen.cpp.o.d"
  "xia_datagen"
  "xia_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xia_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
