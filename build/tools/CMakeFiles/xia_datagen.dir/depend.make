# Empty dependencies file for xia_datagen.
# This may be replaced when dependencies are built.
