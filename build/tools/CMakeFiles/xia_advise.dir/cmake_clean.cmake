file(REMOVE_RECURSE
  "CMakeFiles/xia_advise.dir/xia_advise.cpp.o"
  "CMakeFiles/xia_advise.dir/xia_advise.cpp.o.d"
  "xia_advise"
  "xia_advise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xia_advise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
