# Empty dependencies file for xia_advise.
# This may be replaced when dependencies are built.
