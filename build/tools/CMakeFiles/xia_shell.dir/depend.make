# Empty dependencies file for xia_shell.
# This may be replaced when dependencies are built.
