file(REMOVE_RECURSE
  "CMakeFiles/xia_shell.dir/xia_shell.cpp.o"
  "CMakeFiles/xia_shell.dir/xia_shell.cpp.o.d"
  "xia_shell"
  "xia_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xia_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
