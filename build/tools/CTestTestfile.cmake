# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(xia_shell_e2e "/root/repo/build/tools/xia_shell" "--script" "/root/repo/tools/testdata/shell_session.txt")
set_tests_properties(xia_shell_e2e PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(xia_shell_restore_e2e "/root/repo/build/tools/xia_shell" "--script" "/root/repo/tools/testdata/shell_restore_session.txt")
set_tests_properties(xia_shell_restore_e2e PROPERTIES  DEPENDS "xia_shell_e2e" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
