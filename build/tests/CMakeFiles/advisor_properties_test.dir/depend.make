# Empty dependencies file for advisor_properties_test.
# This may be replaced when dependencies are built.
