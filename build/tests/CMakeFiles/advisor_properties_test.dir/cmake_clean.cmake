file(REMOVE_RECURSE
  "CMakeFiles/advisor_properties_test.dir/advisor_properties_test.cc.o"
  "CMakeFiles/advisor_properties_test.dir/advisor_properties_test.cc.o.d"
  "advisor_properties_test"
  "advisor_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
