# Empty compiler generated dependencies file for executor_equivalence_test.
# This may be replaced when dependencies are built.
