file(REMOVE_RECURSE
  "CMakeFiles/executor_equivalence_test.dir/executor_equivalence_test.cc.o"
  "CMakeFiles/executor_equivalence_test.dir/executor_equivalence_test.cc.o.d"
  "executor_equivalence_test"
  "executor_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
