file(REMOVE_RECURSE
  "CMakeFiles/advisor_generalize_test.dir/advisor_generalize_test.cc.o"
  "CMakeFiles/advisor_generalize_test.dir/advisor_generalize_test.cc.o.d"
  "advisor_generalize_test"
  "advisor_generalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_generalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
