# Empty dependencies file for advisor_generalize_test.
# This may be replaced when dependencies are built.
