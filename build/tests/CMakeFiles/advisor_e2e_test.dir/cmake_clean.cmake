file(REMOVE_RECURSE
  "CMakeFiles/advisor_e2e_test.dir/advisor_e2e_test.cc.o"
  "CMakeFiles/advisor_e2e_test.dir/advisor_e2e_test.cc.o.d"
  "advisor_e2e_test"
  "advisor_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
