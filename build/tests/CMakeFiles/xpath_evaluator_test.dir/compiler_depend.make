# Empty compiler generated dependencies file for xpath_evaluator_test.
# This may be replaced when dependencies are built.
