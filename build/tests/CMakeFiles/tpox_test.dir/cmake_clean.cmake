file(REMOVE_RECURSE
  "CMakeFiles/tpox_test.dir/tpox_test.cc.o"
  "CMakeFiles/tpox_test.dir/tpox_test.cc.o.d"
  "tpox_test"
  "tpox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
