# Empty dependencies file for tpox_test.
# This may be replaced when dependencies are built.
