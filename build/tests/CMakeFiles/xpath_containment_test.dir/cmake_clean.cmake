file(REMOVE_RECURSE
  "CMakeFiles/xpath_containment_test.dir/xpath_containment_test.cc.o"
  "CMakeFiles/xpath_containment_test.dir/xpath_containment_test.cc.o.d"
  "xpath_containment_test"
  "xpath_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
