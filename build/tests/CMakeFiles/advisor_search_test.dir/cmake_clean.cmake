file(REMOVE_RECURSE
  "CMakeFiles/advisor_search_test.dir/advisor_search_test.cc.o"
  "CMakeFiles/advisor_search_test.dir/advisor_search_test.cc.o.d"
  "advisor_search_test"
  "advisor_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
