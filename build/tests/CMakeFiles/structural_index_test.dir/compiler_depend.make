# Empty compiler generated dependencies file for structural_index_test.
# This may be replaced when dependencies are built.
