file(REMOVE_RECURSE
  "CMakeFiles/structural_index_test.dir/structural_index_test.cc.o"
  "CMakeFiles/structural_index_test.dir/structural_index_test.cc.o.d"
  "structural_index_test"
  "structural_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
