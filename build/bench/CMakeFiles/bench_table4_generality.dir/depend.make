# Empty dependencies file for bench_table4_generality.
# This may be replaced when dependencies are built.
