# Empty dependencies file for bench_table3_candidates.
# This may be replaced when dependencies are built.
