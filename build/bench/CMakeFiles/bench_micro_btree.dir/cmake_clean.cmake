file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_btree.dir/bench_micro_btree.cpp.o"
  "CMakeFiles/bench_micro_btree.dir/bench_micro_btree.cpp.o.d"
  "bench_micro_btree"
  "bench_micro_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
