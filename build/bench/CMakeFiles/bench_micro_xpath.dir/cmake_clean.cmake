file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_xpath.dir/bench_micro_xpath.cpp.o"
  "CMakeFiles/bench_micro_xpath.dir/bench_micro_xpath.cpp.o.d"
  "bench_micro_xpath"
  "bench_micro_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
