# Empty compiler generated dependencies file for bench_micro_xpath.
# This may be replaced when dependencies are built.
