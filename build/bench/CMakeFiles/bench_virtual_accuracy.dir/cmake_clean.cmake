file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_accuracy.dir/bench_virtual_accuracy.cpp.o"
  "CMakeFiles/bench_virtual_accuracy.dir/bench_virtual_accuracy.cpp.o.d"
  "bench_virtual_accuracy"
  "bench_virtual_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
