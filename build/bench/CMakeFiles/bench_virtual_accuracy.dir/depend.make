# Empty dependencies file for bench_virtual_accuracy.
# This may be replaced when dependencies are built.
