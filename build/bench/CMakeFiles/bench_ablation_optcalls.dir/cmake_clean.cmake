file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optcalls.dir/bench_ablation_optcalls.cpp.o"
  "CMakeFiles/bench_ablation_optcalls.dir/bench_ablation_optcalls.cpp.o.d"
  "bench_ablation_optcalls"
  "bench_ablation_optcalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optcalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
