# Empty dependencies file for bench_ablation_optcalls.
# This may be replaced when dependencies are built.
