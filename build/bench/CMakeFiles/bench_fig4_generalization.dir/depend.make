# Empty dependencies file for bench_fig4_generalization.
# This may be replaced when dependencies are built.
