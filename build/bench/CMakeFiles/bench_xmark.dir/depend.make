# Empty dependencies file for bench_xmark.
# This may be replaced when dependencies are built.
