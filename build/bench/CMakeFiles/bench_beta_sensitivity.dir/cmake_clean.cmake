file(REMOVE_RECURSE
  "CMakeFiles/bench_beta_sensitivity.dir/bench_beta_sensitivity.cpp.o"
  "CMakeFiles/bench_beta_sensitivity.dir/bench_beta_sensitivity.cpp.o.d"
  "bench_beta_sensitivity"
  "bench_beta_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beta_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
