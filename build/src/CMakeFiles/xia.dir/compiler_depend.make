# Empty compiler generated dependencies file for xia.
# This may be replaced when dependencies are built.
