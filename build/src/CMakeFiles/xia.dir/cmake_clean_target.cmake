file(REMOVE_RECURSE
  "libxia.a"
)
