
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/advisor.cc" "src/CMakeFiles/xia.dir/advisor/advisor.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/advisor.cc.o.d"
  "/root/repo/src/advisor/baseline.cc" "src/CMakeFiles/xia.dir/advisor/baseline.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/baseline.cc.o.d"
  "/root/repo/src/advisor/benefit.cc" "src/CMakeFiles/xia.dir/advisor/benefit.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/benefit.cc.o.d"
  "/root/repo/src/advisor/candidates.cc" "src/CMakeFiles/xia.dir/advisor/candidates.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/candidates.cc.o.d"
  "/root/repo/src/advisor/dag.cc" "src/CMakeFiles/xia.dir/advisor/dag.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/dag.cc.o.d"
  "/root/repo/src/advisor/generalize.cc" "src/CMakeFiles/xia.dir/advisor/generalize.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/generalize.cc.o.d"
  "/root/repo/src/advisor/report.cc" "src/CMakeFiles/xia.dir/advisor/report.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/report.cc.o.d"
  "/root/repo/src/advisor/search.cc" "src/CMakeFiles/xia.dir/advisor/search.cc.o" "gcc" "src/CMakeFiles/xia.dir/advisor/search.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/xia.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/xia.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/normalizer.cc" "src/CMakeFiles/xia.dir/engine/normalizer.cc.o" "gcc" "src/CMakeFiles/xia.dir/engine/normalizer.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/CMakeFiles/xia.dir/engine/query.cc.o" "gcc" "src/CMakeFiles/xia.dir/engine/query.cc.o.d"
  "/root/repo/src/engine/query_parser.cc" "src/CMakeFiles/xia.dir/engine/query_parser.cc.o" "gcc" "src/CMakeFiles/xia.dir/engine/query_parser.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/xia.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/xia.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/xia.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/xia.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/xia.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/xia.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/CMakeFiles/xia.dir/optimizer/selectivity.cc.o" "gcc" "src/CMakeFiles/xia.dir/optimizer/selectivity.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/xia.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/xia.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/cost_constants.cc" "src/CMakeFiles/xia.dir/storage/cost_constants.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/cost_constants.cc.o.d"
  "/root/repo/src/storage/document_store.cc" "src/CMakeFiles/xia.dir/storage/document_store.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/document_store.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/xia.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/CMakeFiles/xia.dir/storage/snapshot.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/snapshot.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/CMakeFiles/xia.dir/storage/statistics.cc.o" "gcc" "src/CMakeFiles/xia.dir/storage/statistics.cc.o.d"
  "/root/repo/src/tpox/synthetic.cc" "src/CMakeFiles/xia.dir/tpox/synthetic.cc.o" "gcc" "src/CMakeFiles/xia.dir/tpox/synthetic.cc.o.d"
  "/root/repo/src/tpox/tpox_data.cc" "src/CMakeFiles/xia.dir/tpox/tpox_data.cc.o" "gcc" "src/CMakeFiles/xia.dir/tpox/tpox_data.cc.o.d"
  "/root/repo/src/tpox/tpox_workload.cc" "src/CMakeFiles/xia.dir/tpox/tpox_workload.cc.o" "gcc" "src/CMakeFiles/xia.dir/tpox/tpox_workload.cc.o.d"
  "/root/repo/src/tpox/xmark.cc" "src/CMakeFiles/xia.dir/tpox/xmark.cc.o" "gcc" "src/CMakeFiles/xia.dir/tpox/xmark.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/xia.dir/util/random.cc.o" "gcc" "src/CMakeFiles/xia.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xia.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xia.dir/util/status.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/xia.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/xia.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/xia.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/xia.dir/util/string_util.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xia.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xia.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xia.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xia.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xia.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xia.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xia.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xia.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xpath/containment.cc" "src/CMakeFiles/xia.dir/xpath/containment.cc.o" "gcc" "src/CMakeFiles/xia.dir/xpath/containment.cc.o.d"
  "/root/repo/src/xpath/evaluator.cc" "src/CMakeFiles/xia.dir/xpath/evaluator.cc.o" "gcc" "src/CMakeFiles/xia.dir/xpath/evaluator.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/CMakeFiles/xia.dir/xpath/parser.cc.o" "gcc" "src/CMakeFiles/xia.dir/xpath/parser.cc.o.d"
  "/root/repo/src/xpath/path.cc" "src/CMakeFiles/xia.dir/xpath/path.cc.o" "gcc" "src/CMakeFiles/xia.dir/xpath/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
