// Tree-walking evaluation of path queries over xml::Document.
//
// This is the "ground truth" evaluator: the execution engine uses it for
// collection scans and residual predicate checking, tests use it as the
// reference against index-based plans, and the statistics collector uses
// the linear fast path.

#ifndef XIA_XPATH_EVALUATOR_H_
#define XIA_XPATH_EVALUATOR_H_

#include <string>
#include <vector>

#include "xml/document.h"
#include "xpath/path.h"

namespace xia::xpath {

/// Nodes of `doc` selected by the linear pattern `path`, in document order.
std::vector<xml::NodeIndex> EvaluateLinear(const xml::Document& doc,
                                           const Path& path);

/// As EvaluateLinear, but clears and fills `*out` instead of returning a
/// fresh vector. Bulk callers (index key extraction over whole
/// collections) reuse one scratch buffer across documents to avoid a
/// heap allocation per document.
void EvaluateLinearInto(const xml::Document& doc, const Path& path,
                        std::vector<xml::NodeIndex>* out);

/// Nodes of `doc` selected by `query`, predicates included, in document
/// order. Comparison predicates use XPath existential semantics: a step
/// node qualifies if at least one node reached by the predicate's relative
/// path satisfies the comparison.
std::vector<xml::NodeIndex> Evaluate(const xml::Document& doc,
                                     const PathQuery& query);

/// True if `doc` has at least one node selected by `query`.
bool Exists(const xml::Document& doc, const PathQuery& query);

/// Evaluates a single comparison between a node's text value and a literal.
/// Numeric comparisons coerce the node value; non-numeric node values never
/// satisfy a numeric comparison. String comparisons are lexicographic.
bool CompareValue(const std::string& node_value, CompareOp op,
                  const Literal& literal);

}  // namespace xia::xpath

#endif  // XIA_XPATH_EVALUATOR_H_
