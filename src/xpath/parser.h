// Parser for the XPath fragment used throughout XIA.
//
// Grammar (absolute paths only):
//
//   PathQuery  := ( '/' | '//' ) Step ( ( '/' | '//' ) Step )*
//   Step       := NameTest Predicate*
//   NameTest   := Name | '*' | '@' Name
//   Predicate  := '[' RelPath ( CmpOp Literal )? ']'
//   RelPath    := '.' | ( './/' )? NameTest ( ( '/' | '//' ) NameTest )*
//   CmpOp      := '=' | '!=' | '<' | '<=' | '>' | '>='
//   Literal    := '"' chars '"' | "'" chars "'" | Number
//
// ParsePattern accepts the same syntax but rejects predicates: index
// patterns are linear paths (§III).

#ifndef XIA_XPATH_PARSER_H_
#define XIA_XPATH_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xpath/path.h"

namespace xia::xpath {

/// Parses a full path query (predicates allowed at any step).
Result<PathQuery> ParseQuery(std::string_view text);

/// Parses a linear index pattern (no predicates allowed).
Result<Path> ParsePattern(std::string_view text);

}  // namespace xia::xpath

#endif  // XIA_XPATH_PARSER_H_
