// Containment and matching of linear XPath patterns.
//
// A linear pattern P over axes {/, //} and name tests {label, *} denotes a
// language L(P) of root-to-node label sequences. Two questions recur:
//
//  * Matching: does P match a concrete label path (used when building an
//    index over the data, and when deriving virtual index statistics)?
//
//  * Coverage (containment): is L(Q) a subset of L(P)? The optimizer uses
//    this as its index-matching test — an index with pattern P can answer
//    a query pattern Q exactly when every node Q can reach is in P's index.
//    The advisor uses it to decide which basic candidates a generalized
//    candidate subsumes (§V, §VI).
//
// For this fragment, coverage is decidable in polynomial time by simulating
// the subset construction of P's (linear) NFA over the symbolic input
// described by Q: concrete labels step the automaton directly; Q wildcards
// branch over P's alphabet plus a fresh symbol; Q descendant gaps close the
// reachable-state family under arbitrary-symbol transitions to a fixpoint.

#ifndef XIA_XPATH_CONTAINMENT_H_
#define XIA_XPATH_CONTAINMENT_H_

#include <string>
#include <vector>

#include "xpath/path.h"

namespace xia::xpath {

/// True if pattern `p` matches the concrete root-to-node label sequence.
bool MatchesLabelPath(const Path& p, const std::vector<std::string>& labels);

/// True if every label path matched by `query` is also matched by `index`,
/// i.e. L(query) ⊆ L(index). Reflexive and transitive.
bool Covers(const Path& index, const Path& query);

/// True if the two patterns denote the same language.
inline bool Equivalent(const Path& a, const Path& b) {
  return Covers(a, b) && Covers(b, a);
}

/// True if `a` strictly covers `b` (covers it and is not equivalent).
inline bool StrictlyCovers(const Path& a, const Path& b) {
  return Covers(a, b) && !Covers(b, a);
}

}  // namespace xia::xpath

#endif  // XIA_XPATH_CONTAINMENT_H_
