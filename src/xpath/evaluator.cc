#include "xpath/evaluator.h"

#include <algorithm>

#include "util/string_util.h"

namespace xia::xpath {

namespace {

// Collects nodes reachable from `start` (exclusive) by the steps
// [step_index..end). `descend_first` handles a pending descendant axis:
// when true the step may match at any depth below `start`.
void EvalSteps(const xml::Document& doc, xml::NodeIndex start,
               const std::vector<Step>& steps, size_t step_index,
               std::vector<xml::NodeIndex>* out);

// Advances from node `n` over one step (already positioned at a candidate
// child/descendant). Recurses for descendant axes.
void EvalStepFromChildren(const xml::Document& doc, xml::NodeIndex parent,
                          const std::vector<Step>& steps, size_t step_index,
                          bool descend, std::vector<xml::NodeIndex>* out) {
  const Step& step = steps[step_index];
  for (xml::NodeIndex c : doc.children(parent)) {
    const xml::Node& child = doc.node(c);
    if (step.MatchesLabel(child.label)) {
      if (step_index + 1 == steps.size()) {
        out->push_back(c);
      } else {
        EvalSteps(doc, c, steps, step_index + 1, out);
      }
    }
    // Descendant axis: also look deeper, regardless of a match here.
    // Attributes have no element children, so recursing is harmless but
    // pointless; skip them.
    if (descend && child.is_element()) {
      EvalStepFromChildren(doc, c, steps, step_index, /*descend=*/true, out);
    }
  }
}

void EvalSteps(const xml::Document& doc, xml::NodeIndex start,
               const std::vector<Step>& steps, size_t step_index,
               std::vector<xml::NodeIndex>* out) {
  const Step& step = steps[step_index];
  const bool descend = step.axis == Axis::kDescendant;
  EvalStepFromChildren(doc, start, steps, step_index, descend, out);
}

// Evaluating an absolute path: the first step tests the root element itself
// (the document node is the implicit origin).
void EvalAbsolute(const xml::Document& doc, const std::vector<Step>& steps,
                  std::vector<xml::NodeIndex>* out) {
  if (doc.empty() || steps.empty()) return;
  const Step& first = steps[0];
  const xml::NodeIndex root = doc.root();
  // Child axis from the document node: only the root element.
  if (first.MatchesLabel(doc.node(root).label)) {
    if (steps.size() == 1) {
      out->push_back(root);
    } else {
      EvalSteps(doc, root, steps, 1, out);
    }
  }
  if (first.axis == Axis::kDescendant) {
    // '//' from the document node also reaches any deeper node.
    EvalStepFromChildren(doc, root, steps, 0, /*descend=*/true, out);
  }
}

void SortUnique(std::vector<xml::NodeIndex>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace

bool CompareValue(const std::string& node_value, CompareOp op,
                  const Literal& literal) {
  if (literal.type == ValueType::kNumeric) {
    double v = 0;
    if (!ParseDouble(node_value, &v)) return false;
    switch (op) {
      case CompareOp::kEq:
        return v == literal.numeric_value;
      case CompareOp::kNe:
        return v != literal.numeric_value;
      case CompareOp::kLt:
        return v < literal.numeric_value;
      case CompareOp::kLe:
        return v <= literal.numeric_value;
      case CompareOp::kGt:
        return v > literal.numeric_value;
      case CompareOp::kGe:
        return v >= literal.numeric_value;
    }
    return false;
  }
  const int cmp = node_value.compare(literal.string_value);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

std::vector<xml::NodeIndex> EvaluateLinear(const xml::Document& doc,
                                           const Path& path) {
  std::vector<xml::NodeIndex> out;
  EvaluateLinearInto(doc, path, &out);
  return out;
}

void EvaluateLinearInto(const xml::Document& doc, const Path& path,
                        std::vector<xml::NodeIndex>* out) {
  out->clear();
  EvalAbsolute(doc, path.steps(), out);
  SortUnique(out);
}

namespace {

// True if node `n` satisfies predicate `pred`.
bool PredicateHolds(const xml::Document& doc, xml::NodeIndex n,
                    const Predicate& pred) {
  std::vector<xml::NodeIndex> targets;
  if (pred.relative_steps.empty()) {
    targets.push_back(n);
  } else {
    EvalSteps(doc, n, pred.relative_steps, 0, &targets);
  }
  if (!pred.is_comparison()) return !targets.empty();
  for (xml::NodeIndex t : targets) {
    if (CompareValue(doc.node(t).value, *pred.op, pred.literal)) return true;
  }
  return false;
}

}  // namespace

std::vector<xml::NodeIndex> Evaluate(const xml::Document& doc,
                                     const PathQuery& query) {
  // Evaluate the spine one step at a time, filtering by predicates after
  // each step.
  std::vector<xml::NodeIndex> current;
  if (doc.empty() || query.empty()) return current;

  for (size_t i = 0; i < query.size(); ++i) {
    const QueryStep& qs = query.steps()[i];
    std::vector<xml::NodeIndex> next;
    const std::vector<Step> single = {qs.step};
    if (i == 0) {
      EvalAbsolute(doc, single, &next);
    } else {
      for (xml::NodeIndex n : current) {
        EvalSteps(doc, n, single, 0, &next);
      }
    }
    SortUnique(&next);
    // Apply this step's predicates.
    if (!qs.predicates.empty()) {
      std::vector<xml::NodeIndex> filtered;
      for (xml::NodeIndex n : next) {
        bool ok = true;
        for (const auto& pred : qs.predicates) {
          if (!PredicateHolds(doc, n, pred)) {
            ok = false;
            break;
          }
        }
        if (ok) filtered.push_back(n);
      }
      next = std::move(filtered);
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

bool Exists(const xml::Document& doc, const PathQuery& query) {
  return !Evaluate(doc, query).empty();
}

}  // namespace xia::xpath
