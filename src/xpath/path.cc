#include "xpath/path.h"

#include "util/string_util.h"

namespace xia::xpath {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kString:
      return "string";
    case ValueType::kNumeric:
      return "numeric";
  }
  return "?";
}

std::string Path::ToString() const {
  std::string out;
  for (const auto& s : steps_) {
    out += (s.axis == Axis::kChild) ? "/" : "//";
    out += s.name_test;
  }
  return out;
}

int Path::GeneralityScore() const {
  int score = 0;
  for (const auto& s : steps_) {
    if (s.is_wildcard()) ++score;
    if (s.axis == Axis::kDescendant) score += 2;
  }
  return score;
}

bool Path::IsConcrete() const {
  for (const auto& s : steps_) {
    if (s.is_wildcard() || s.axis == Axis::kDescendant) return false;
  }
  return true;
}

bool Path::operator<(const Path& o) const {
  const size_t n = std::min(steps_.size(), o.steps_.size());
  for (size_t i = 0; i < n; ++i) {
    if (steps_[i].axis != o.steps_[i].axis) {
      return steps_[i].axis < o.steps_[i].axis;
    }
    if (steps_[i].name_test != o.steps_[i].name_test) {
      return steps_[i].name_test < o.steps_[i].name_test;
    }
  }
  return steps_.size() < o.steps_.size();
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Literal::ToString() const {
  if (type == ValueType::kNumeric) {
    // Trim trailing zeros for readability.
    std::string s = StringPrintf("%.6g", numeric_value);
    return s;
  }
  return "\"" + string_value + "\"";
}

bool Literal::operator==(const Literal& o) const {
  if (type != o.type) return false;
  return type == ValueType::kNumeric ? numeric_value == o.numeric_value
                                     : string_value == o.string_value;
}

std::string Predicate::ToString() const {
  std::string out = "[";
  if (relative_steps.empty()) {
    out += ".";
  } else {
    for (size_t i = 0; i < relative_steps.size(); ++i) {
      const Step& s = relative_steps[i];
      if (i == 0) {
        // [a ...] for child axis, [.//a ...] for descendant axis.
        if (s.axis == Axis::kDescendant) out += ".//";
      } else {
        out += (s.axis == Axis::kChild) ? "/" : "//";
      }
      out += s.name_test;
    }
  }
  if (op.has_value()) {
    out += " ";
    out += CompareOpToString(*op);
    out += " ";
    out += literal.ToString();
  }
  out += "]";
  return out;
}

bool Predicate::operator==(const Predicate& o) const {
  return relative_steps == o.relative_steps && op == o.op &&
         (!op.has_value() || literal == o.literal);
}

bool QueryStep::operator==(const QueryStep& o) const {
  return step == o.step && predicates == o.predicates;
}

Path PathQuery::Spine() const {
  std::vector<Step> steps;
  steps.reserve(steps_.size());
  for (const auto& qs : steps_) steps.push_back(qs.step);
  return Path(std::move(steps));
}

bool PathQuery::IsLinear() const {
  for (const auto& qs : steps_) {
    if (!qs.predicates.empty()) return false;
  }
  return true;
}

std::string PathQuery::ToString() const {
  std::string out;
  for (const auto& qs : steps_) {
    out += (qs.step.axis == Axis::kChild) ? "/" : "//";
    out += qs.step.name_test;
    for (const auto& p : qs.predicates) out += p.ToString();
  }
  return out;
}

std::string IndexPattern::ToString() const {
  return path.ToString() + " (" +
         (structural ? "structural" : ValueTypeToString(type)) + ")";
}

}  // namespace xia::xpath
