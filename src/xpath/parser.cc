#include "xpath/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace xia::xpath {

namespace {

class PathParser {
 public:
  explicit PathParser(std::string_view text) : text_(text) {}

  Result<PathQuery> ParseQueryTop() {
    PathQuery query;
    XIA_RETURN_IF_ERROR(ParseSteps(&query));
    if (pos_ != text_.size()) return Error("trailing characters");
    if (query.empty()) return Error("empty path");
    return query;
  }

 private:
  Status Error(const std::string& why) const {
    return Status::ParseError(StringPrintf(
        "xpath parse error at offset %zu in \"%.*s\": %s", pos_,
        static_cast<int>(text_.size()), text_.data(), why.c_str()));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void SkipSpace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseNameTest() {
    if (Consume('*')) return std::string("*");
    std::string prefix;
    if (Consume('@')) prefix = "@";
    if (Eof() || !(std::isalpha(static_cast<unsigned char>(Peek())) ||
                   Peek() == '_')) {
      return Error("expected name test");
    }
    const size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return prefix + std::string(text_.substr(start, pos_ - start));
  }

  // Parses the axis marker. Returns true on success and sets *axis.
  bool ParseAxis(Axis* axis) {
    if (!Consume('/')) return false;
    *axis = Consume('/') ? Axis::kDescendant : Axis::kChild;
    return true;
  }

  Status ParseSteps(PathQuery* query) {
    Axis axis;
    if (!ParseAxis(&axis)) return Error("path must start with '/' or '//'");
    for (;;) {
      auto name = ParseNameTest();
      if (!name.ok()) return name.status();
      QueryStep qs;
      qs.step = Step(axis, *name);
      while (!Eof() && Peek() == '[') {
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        qs.predicates.push_back(std::move(*pred));
      }
      query->Append(std::move(qs));
      if (Eof()) return Status::OK();
      if (!ParseAxis(&axis)) return Status::OK();
    }
  }

  Result<Predicate> ParsePredicate() {
    if (!Consume('[')) return Error("expected '['");
    SkipSpace();
    Predicate pred;
    // Relative path: '.', './/a/b', 'a/b', './a'.
    if (Consume('.')) {
      if (Consume('/')) {
        const Axis first = Consume('/') ? Axis::kDescendant : Axis::kChild;
        XIA_RETURN_IF_ERROR(ParseRelSteps(first, &pred.relative_steps));
      }
      // bare '.' => empty relative path (the step's own value).
    } else {
      XIA_RETURN_IF_ERROR(ParseRelSteps(Axis::kChild, &pred.relative_steps));
    }
    SkipSpace();
    if (Consume(']')) return pred;  // existence predicate
    // Comparison operator.
    CompareOp op;
    if (Consume('=')) {
      op = CompareOp::kEq;
    } else if (Consume('!')) {
      if (!Consume('=')) return Error("expected '!='");
      op = CompareOp::kNe;
    } else if (Consume('<')) {
      op = Consume('=') ? CompareOp::kLe : CompareOp::kLt;
    } else if (Consume('>')) {
      op = Consume('=') ? CompareOp::kGe : CompareOp::kGt;
    } else {
      return Error("expected comparison operator or ']'");
    }
    pred.op = op;
    SkipSpace();
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    pred.literal = std::move(*lit);
    SkipSpace();
    if (!Consume(']')) return Error("expected ']'");
    return pred;
  }

  Status ParseRelSteps(Axis first_axis, std::vector<Step>* out) {
    Axis axis = first_axis;
    for (;;) {
      auto name = ParseNameTest();
      if (!name.ok()) return name.status();
      out->emplace_back(axis, *name);
      if (Eof() || Peek() != '/') return Status::OK();
      ++pos_;
      axis = Consume('/') ? Axis::kDescendant : Axis::kChild;
    }
  }

  Result<Literal> ParseLiteral() {
    if (Eof()) return Error("expected literal");
    const char c = Peek();
    if (c == '"' || c == '\'') {
      ++pos_;
      const size_t start = pos_;
      while (!Eof() && Peek() != c) ++pos_;
      if (Eof()) return Error("unterminated string literal");
      std::string s(text_.substr(start, pos_ - start));
      ++pos_;
      return Literal::String(std::move(s));
    }
    // Number: [-]?digits[.digits]
    const size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    bool any = false;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.')) {
      ++pos_;
      any = true;
    }
    if (!any) return Error("expected numeric or string literal");
    double v = 0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &v)) {
      return Error("malformed number");
    }
    return Literal::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathQuery> ParseQuery(std::string_view text) {
  return PathParser(text).ParseQueryTop();
}

Result<Path> ParsePattern(std::string_view text) {
  auto query = ParseQuery(text);
  if (!query.ok()) return query.status();
  if (!query->IsLinear()) {
    return Status::InvalidArgument(
        "index patterns must be linear (predicate-free) paths: " +
        std::string(text));
  }
  return query->Spine();
}

}  // namespace xia::xpath
