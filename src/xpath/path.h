// Linear XPath path expressions and predicate-bearing path queries.
//
// Two levels of path language appear in the paper and therefore here:
//
//  * Path — a *linear* XPath expression with child (/) and descendant (//)
//    axes and name tests that may be wildcards (*), and no predicates.
//    Index patterns are Paths ("indexes that are represented by index
//    patterns expressed as linear XPath path expressions that do not
//    include predicates", §III).
//
//  * PathQuery — a location path whose steps may carry comparison or
//    existence predicates at arbitrary locations; workload queries use
//    these ("the XPath expressions in our query workload can contain
//    predicates at arbitrary locations", §III).

#ifndef XIA_XPATH_PATH_H_
#define XIA_XPATH_PATH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/tag.h"

namespace xia::xpath {

/// Navigation axis of a step.
enum class Axis : uint8_t {
  kChild = 0,       ///< "/"
  kDescendant = 1,  ///< "//" (descendant-or-self::node()/child:: shorthand)
};

/// One step of a linear path: an axis plus a name test.
///
/// The name test is fixed at construction (no call site mutates it), so
/// the wildcard bit and the interned form of the name are computed once
/// here; label matching against interned xml::Tag labels — the evaluator's
/// innermost operation — is then a pointer compare instead of a string
/// compare.
struct Step {
  Axis axis = Axis::kChild;
  /// Element tag, "@name" for attributes, or "*" for the wildcard test.
  std::string name_test;

  Step() = default;
  Step(Axis a, std::string name)
      : axis(a),
        name_test(std::move(name)),
        wildcard_(name_test == "*"),
        name_tag_(name_test) {}

  bool is_wildcard() const { return wildcard_; }
  /// True if this step's name test accepts `label`. The Tag overload is
  /// the hot one (pointer compare via the intern pool); the string forms
  /// serve statistics paths that carry plain label strings.
  bool MatchesLabel(const xml::Tag& label) const {
    return wildcard_ || name_tag_ == label;
  }
  bool MatchesLabel(const std::string& label) const {
    return wildcard_ || name_test == label;
  }
  bool MatchesLabel(std::string_view label) const {
    return wildcard_ || name_test == label;
  }
  bool MatchesLabel(const char* label) const {
    return MatchesLabel(std::string_view(label));
  }

  bool operator==(const Step& o) const {
    return axis == o.axis && name_test == o.name_test;
  }

 private:
  bool wildcard_ = false;
  xml::Tag name_tag_;  // interned name_test; empty for default-constructed
};

/// Data type of the values an index stores; mirrors DB2's
/// "AS SQL VARCHAR / AS SQL DOUBLE" index type clause. Candidates of
/// different types never generalize together (§V).
enum class ValueType : uint8_t {
  kString = 0,
  kNumeric = 1,
};

const char* ValueTypeToString(ValueType t);

/// A linear, predicate-free path expression. Always absolute (anchored at
/// the document root).
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<Step> steps) : steps_(std::move(steps)) {}

  const std::vector<Step>& steps() const { return steps_; }
  std::vector<Step>& steps() { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const Step& step(size_t i) const { return steps_[i]; }
  const Step& last() const { return steps_.back(); }

  void Append(Axis axis, std::string_view name) {
    steps_.emplace_back(axis, std::string(name));
  }

  /// Renders "/Security//*" style text.
  std::string ToString() const;

  /// True if this is the universal pattern "//*".
  bool IsUniversal() const {
    return steps_.size() == 1 && steps_[0].axis == Axis::kDescendant &&
           steps_[0].is_wildcard();
  }

  /// Number of wildcard steps plus descendant axes — a crude generality
  /// measure used for tie-breaking and reporting.
  int GeneralityScore() const;

  /// True if the path contains no wildcard and no descendant axis, i.e. it
  /// denotes exactly one label path.
  bool IsConcrete() const;

  bool operator==(const Path& o) const { return steps_ == o.steps_; }
  bool operator<(const Path& o) const;

 private:
  std::vector<Step> steps_;
};

/// Comparison operators usable in predicates.
enum class CompareOp : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpToString(CompareOp op);

/// A typed literal value appearing in a predicate.
struct Literal {
  ValueType type = ValueType::kString;
  std::string string_value;
  double numeric_value = 0.0;

  static Literal String(std::string s) {
    Literal l;
    l.type = ValueType::kString;
    l.string_value = std::move(s);
    return l;
  }
  static Literal Number(double d) {
    Literal l;
    l.type = ValueType::kNumeric;
    l.numeric_value = d;
    return l;
  }

  std::string ToString() const;
  bool operator==(const Literal& o) const;
};

/// A predicate attached to a step: either an existence test
/// [rel/path] or a comparison [rel/path op literal]. The relative path may
/// be empty, meaning the predicate applies to the step's own value
/// (e.g. /Security/Symbol[. = "BCIIPRC"]).
struct Predicate {
  /// Steps relative to the step the predicate is attached to. The first
  /// step's axis distinguishes [a/b ...] from [.//b ...].
  std::vector<Step> relative_steps;
  /// nullopt => pure existence predicate.
  std::optional<CompareOp> op;
  Literal literal;

  bool is_comparison() const { return op.has_value(); }
  std::string ToString() const;
  bool operator==(const Predicate& o) const;
};

/// One step of a PathQuery: a Step plus attached predicates.
struct QueryStep {
  Step step;
  std::vector<Predicate> predicates;

  bool operator==(const QueryStep& o) const;
};

/// An absolute location path with optional predicates at arbitrary steps.
class PathQuery {
 public:
  PathQuery() = default;
  explicit PathQuery(std::vector<QueryStep> steps) : steps_(std::move(steps)) {}

  const std::vector<QueryStep>& steps() const { return steps_; }
  std::vector<QueryStep>& steps() { return steps_; }
  size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  void Append(QueryStep s) { steps_.push_back(std::move(s)); }

  /// The predicate-free linear spine of this query path.
  Path Spine() const;

  /// True if no step carries a predicate.
  bool IsLinear() const;

  std::string ToString() const;

  bool operator==(const PathQuery& o) const { return steps_ == o.steps_; }

 private:
  std::vector<QueryStep> steps_;
};

/// An index pattern: a linear path plus the value type it indexes. This is
/// the unit the advisor reasons about ("candidate index").
///
/// A *structural* pattern indexes node reachability only (no values): it
/// contains one entry per node reachable by the path, valued or not, and
/// serves existence predicates (§III's structural index category). The
/// value type of a structural pattern is ignored.
struct IndexPattern {
  Path path;
  ValueType type = ValueType::kString;
  bool structural = false;

  std::string ToString() const;
  bool operator==(const IndexPattern& o) const {
    return structural == o.structural && path == o.path &&
           (structural || type == o.type);
  }
  bool operator<(const IndexPattern& o) const {
    if (structural != o.structural) return structural < o.structural;
    if (!structural && type != o.type) return type < o.type;
    return path < o.path;
  }
};

}  // namespace xia::xpath

#endif  // XIA_XPATH_PATH_H_
