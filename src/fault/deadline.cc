#include "fault/deadline.h"

#include <limits>

namespace xia::fault {

Deadline Deadline::AfterMillis(double ms) {
  Deadline d;
  d.enabled_ = true;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(ms));
  return d;
}

Deadline Deadline::AfterSeconds(double seconds) {
  return AfterMillis(seconds * 1000.0);
}

double Deadline::remaining_seconds() const {
  if (!enabled_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
      .count();
}

Status CheckInterrupt(const Deadline& deadline, const CancelToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("work cancelled");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

}  // namespace xia::fault
