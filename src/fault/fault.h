// xia::fault — deterministic fault injection for the whole stack.
//
// A FaultPoint is a named site in production code where an artificial
// error can be injected. Sites are declared with XIA_FAULT_INJECT(name)
// inside any function returning Status or Result<T>; when the point
// fires, the function returns an injected kInternal Status whose message
// starts with "fault injected:". Points are *disarmed* by default and
// cost exactly one relaxed atomic load per hit in that state, so they can
// live on hot paths (optimizer entry, executor scans, index probes).
//
// Arming:
//   * probability mode  — fires on each hit with probability p, driven by
//     a seeded xoshiro PRNG (util/random), so equal seeds replay equal
//     fault schedules;
//   * nth-hit mode      — fires exactly once, on the Nth hit after arming
//     (hit counting starts at 1), for precise "the 3rd B-tree allocation
//     fails" scenarios.
//
// Configuration sources:
//   * programmatic: FaultRegistry::Global().Arm("xia.fault.snapshot.read",
//     FaultSpec::Probability(0.01));
//   * spec strings / environment: XIA_FAULTS="name=p0.5,name2=n3"
//     (XIA_FAULTS_SEED seeds the PRNGs), parsed by ConfigureFromSpec /
//     ConfigureFromEnv — both CLI tools call ConfigureFromEnv at startup.
//
// Every armed point reports through xia::obs: `<name>.hits` counts hits
// while armed, `<name>.fired` counts injections, and the process-wide
// `xia.fault.fired` totals them. Disarmed hits are deliberately not
// counted — the disarmed path must stay a single atomic load.
//
// The canonical injection-point catalog lives in fault::points below and
// is mirrored in DESIGN.md §10; the fault-matrix test arms every entry in
// turn and proves the advise pipeline fails cleanly under each.

#ifndef XIA_FAULT_FAULT_H_
#define XIA_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace xia::fault {

/// Canonical injection-point names. Registered lazily on first hit or
/// arm; listed here so tests and tools can enumerate the catalog without
/// having executed every code path first.
namespace points {
inline constexpr const char* kSnapshotRead = "xia.fault.snapshot.read";
inline constexpr const char* kSnapshotWrite = "xia.fault.snapshot.write";
inline constexpr const char* kWorkloadRead = "xia.fault.workload.read";
inline constexpr const char* kWorkloadWrite = "xia.fault.workload.write";
inline constexpr const char* kIndexBuild = "xia.fault.index.build";
inline constexpr const char* kIndexBuildSwap = "xia.fault.index.build_swap";
inline constexpr const char* kBtreeAlloc = "xia.fault.btree.alloc";
inline constexpr const char* kIndexLookup = "xia.fault.index.lookup";
inline constexpr const char* kOptimizerPlan = "xia.fault.optimizer.plan";
inline constexpr const char* kExecutorScan = "xia.fault.executor.scan";
inline constexpr const char* kAdvisorEnumerate = "xia.fault.advisor.enumerate";
inline constexpr const char* kAdvisorBenefit = "xia.fault.advisor.benefit";
inline constexpr const char* kAdvisorSearch = "xia.fault.advisor.search";
inline constexpr const char* kOnlineAdvise = "xia.fault.online.advise";
inline constexpr const char* kWalAppend = "xia.fault.wal.append";
inline constexpr const char* kWalFsync = "xia.fault.wal.fsync";
inline constexpr const char* kWalReplay = "xia.fault.wal.replay";
inline constexpr const char* kPoolSubmit = "xia.fault.pool.submit";
inline constexpr const char* kNetAccept = "xia.fault.net.accept";
inline constexpr const char* kNetRead = "xia.fault.net.read";
inline constexpr const char* kNetWrite = "xia.fault.net.write";
inline constexpr const char* kReplSend = "xia.fault.repl.send";
inline constexpr const char* kReplRecv = "xia.fault.repl.recv";
inline constexpr const char* kReplApply = "xia.fault.repl.apply";
inline constexpr const char* kReplSnapshotXfer = "xia.fault.repl.snapshot_xfer";
inline constexpr const char* kReplQuorumWait = "xia.fault.repl.quorum_wait";
inline constexpr const char* kReplPromote = "xia.fault.repl.promote";
}  // namespace points

/// Every canonical point, for matrix-style iteration.
inline constexpr const char* kAllPoints[] = {
    points::kSnapshotRead,     points::kSnapshotWrite,
    points::kWorkloadRead,     points::kWorkloadWrite,
    points::kIndexBuild,       points::kIndexBuildSwap,
    points::kBtreeAlloc,
    points::kIndexLookup,      points::kOptimizerPlan,
    points::kExecutorScan,     points::kAdvisorEnumerate,
    points::kAdvisorBenefit,   points::kAdvisorSearch,
    points::kOnlineAdvise,     points::kWalAppend,
    points::kWalFsync,         points::kWalReplay,
    points::kPoolSubmit,       points::kNetAccept,
    points::kNetRead,          points::kNetWrite,
    points::kReplSend,         points::kReplRecv,
    points::kReplApply,        points::kReplSnapshotXfer,
    points::kReplQuorumWait,   points::kReplPromote,
};

/// How an armed point decides to fire.
struct FaultSpec {
  enum class Mode { kDisarmed, kProbability, kNthHit };

  Mode mode = Mode::kDisarmed;
  double probability = 0;  ///< kProbability: chance per hit, clamped [0,1]
  uint64_t nth = 0;        ///< kNthHit: 1-based hit index that fires once

  static FaultSpec Probability(double p) {
    FaultSpec s;
    s.mode = Mode::kProbability;
    s.probability = p;
    return s;
  }
  static FaultSpec NthHit(uint64_t n) {
    FaultSpec s;
    s.mode = Mode::kNthHit;
    s.nth = n;
    return s;
  }

  /// Parses "p0.5" / "n3". Returns InvalidArgument on anything else.
  static Result<FaultSpec> Parse(const std::string& text);
  /// "off", "p0.5", "n3".
  std::string ToString() const;
};

/// Point-in-time view of one point (for `faults` listings and tests).
struct FaultPointStatus {
  std::string name;
  FaultSpec spec;
  uint64_t hits = 0;   ///< hits while armed
  uint64_t fired = 0;  ///< injections
};

/// One named injection site. Created and owned by the FaultRegistry;
/// pointers are stable for the registry's lifetime, so call sites cache
/// them in function-local statics.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name);

  const std::string& name() const { return name_; }

  /// One relaxed atomic load when disarmed; evaluates the armed spec
  /// (under the point's mutex) otherwise.
  bool ShouldFire() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return EvalArmed();
  }

  /// The Status an injection returns. Message is
  /// "fault injected: <name>" so failures are attributable in logs.
  Status InjectedStatus() const;

  void Arm(const FaultSpec& spec, uint64_t seed);
  void Disarm();

  FaultPointStatus Snapshot() const;

 private:
  bool EvalArmed();

  const std::string name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FaultSpec spec_;
  Random rng_;
  uint64_t hits_ = 0;
  uint64_t fired_ = 0;
};

/// Process-wide registry of fault points.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Finds or creates the named point. Stable pointer.
  FaultPoint* GetPoint(const std::string& name);

  /// Arms `name` (creating it if needed). The point's PRNG is seeded from
  /// the registry seed and the point name, so schedules are deterministic
  /// per (seed, name) and independent across points.
  void Arm(const std::string& name, const FaultSpec& spec);
  /// Disarms one point / every point.
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Seed for subsequently armed points (existing arms are unaffected).
  void set_seed(uint64_t seed);
  uint64_t seed() const;

  /// Parses and applies "name=p0.5,name2=n3" (';' also accepted as a
  /// separator; empty entries ignored). Unknown names are fine — points
  /// are created on demand. Any malformed entry fails the whole call with
  /// InvalidArgument and applies nothing.
  Status ConfigureFromSpec(const std::string& spec);

  /// Reads XIA_FAULTS (spec) and XIA_FAULTS_SEED (uint64) from the
  /// environment. Missing variables are simply ignored.
  Status ConfigureFromEnv();

  /// Status of every registered point, sorted by name.
  std::vector<FaultPointStatus> Snapshot() const;

 private:
  mutable std::mutex mu_;
  uint64_t seed_ = 42;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
};

/// RAII: disarms every fault point on destruction. Tests arm points
/// inside a scope so a failing assertion cannot leak an armed fault into
/// later tests.
class ScopedFaultDisarm {
 public:
  ScopedFaultDisarm() = default;
  ~ScopedFaultDisarm() { FaultRegistry::Global().DisarmAll(); }
  ScopedFaultDisarm(const ScopedFaultDisarm&) = delete;
  ScopedFaultDisarm& operator=(const ScopedFaultDisarm&) = delete;
};

}  // namespace xia::fault

/// Declares an injection site. When the point fires, returns an injected
/// Status (or Result<T> via implicit conversion) from the enclosing
/// function. Disarmed cost: one relaxed atomic load.
#define XIA_FAULT_INJECT(point_name)                                    \
  do {                                                                  \
    static ::xia::fault::FaultPoint* xia_fault_point_ =                 \
        ::xia::fault::FaultRegistry::Global().GetPoint(point_name);     \
    if (xia_fault_point_->ShouldFire())                                 \
      return xia_fault_point_->InjectedStatus();                        \
  } while (0)

#endif  // XIA_FAULT_FAULT_H_
