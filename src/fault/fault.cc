#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace xia::fault {

namespace {

// FNV-1a, mixed with the registry seed so each point gets an independent
// deterministic PRNG stream.
uint64_t SeedFor(uint64_t registry_seed, const std::string& name) {
  uint64_t h = 1469598103934665603ull ^ registry_seed;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  if (text.size() < 2) {
    return Status::InvalidArgument("bad fault spec '" + text +
                                   "' (want pPROB or nCOUNT)");
  }
  const std::string value = text.substr(1);
  if (text[0] == 'p') {
    double p = 0;
    if (!ParseDouble(value, &p) || p < 0 || p > 1) {
      return Status::InvalidArgument("bad fault probability '" + text + "'");
    }
    return Probability(p);
  }
  if (text[0] == 'n') {
    double n = 0;
    if (!ParseDouble(value, &n) || n < 1 || n != std::floor(n)) {
      return Status::InvalidArgument("bad fault hit count '" + text + "'");
    }
    return NthHit(static_cast<uint64_t>(n));
  }
  return Status::InvalidArgument("bad fault spec '" + text +
                                 "' (want pPROB or nCOUNT)");
}

std::string FaultSpec::ToString() const {
  switch (mode) {
    case Mode::kDisarmed:
      return "off";
    case Mode::kProbability:
      return StringPrintf("p%g", probability);
    case Mode::kNthHit:
      return StringPrintf("n%llu", static_cast<unsigned long long>(nth));
  }
  return "?";
}

FaultPoint::FaultPoint(std::string name) : name_(std::move(name)) {}

Status FaultPoint::InjectedStatus() const {
  return Status::Internal("fault injected: " + name_);
}

bool FaultPoint::EvalArmed() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.mode == FaultSpec::Mode::kDisarmed) return false;
  ++hits_;
  bool fire = false;
  if (spec_.mode == FaultSpec::Mode::kProbability) {
    fire = rng_.Bernoulli(spec_.probability);
  } else {
    fire = hits_ == spec_.nth;  // fires exactly once, on the Nth hit
  }
  if (fire) {
    ++fired_;
    // Direct registry calls (not the XIA_OBS_* macros) so firing stays
    // observable even in an XIA_OBS_OFF build of the instrumented tree.
    obs::MetricsRegistry::Global().GetCounter("xia.fault.fired")->Add(1);
    obs::MetricsRegistry::Global().GetCounter(name_ + ".fired")->Add(1);
  }
  obs::MetricsRegistry::Global().GetCounter(name_ + ".hits")->Add(1);
  return fire;
}

void FaultPoint::Arm(const FaultSpec& spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  rng_ = Random(SeedFor(seed, name_));
  hits_ = 0;
  fired_ = 0;
  armed_.store(spec.mode != FaultSpec::Mode::kDisarmed,
               std::memory_order_relaxed);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = FaultSpec();
  armed_.store(false, std::memory_order_relaxed);
}

FaultPointStatus FaultPoint::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultPointStatus status;
  status.name = name_;
  status.spec = spec_;
  status.hits = hits_;
  status.fired = fired_;
  return status;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultPoint* FaultRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
  }
  return it->second.get();
}

void FaultRegistry::Arm(const std::string& name, const FaultSpec& spec) {
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed = seed_;
  }
  GetPoint(name)->Arm(spec, seed);
}

void FaultRegistry::Disarm(const std::string& name) {
  GetPoint(name)->Disarm();
}

void FaultRegistry::DisarmAll() {
  std::vector<FaultPoint*> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.reserve(points_.size());
    for (auto& [_, point] : points_) points.push_back(point.get());
  }
  for (FaultPoint* point : points) point->Disarm();
}

void FaultRegistry::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

uint64_t FaultRegistry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

Status FaultRegistry::ConfigureFromSpec(const std::string& spec) {
  // Parse everything first so a malformed entry applies nothing.
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string& raw : Split(normalized, ',')) {
    const std::string entry(Trim(raw));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad fault entry '" + entry +
                                     "' (want name=pPROB or name=nCOUNT)");
    }
    const std::string name(Trim(entry.substr(0, eq)));
    XIA_ASSIGN_OR_RETURN(const FaultSpec fs,
                         FaultSpec::Parse(std::string(
                             Trim(entry.substr(eq + 1)))));
    parsed.emplace_back(name, fs);
  }
  for (const auto& [name, fs] : parsed) Arm(name, fs);
  return Status::OK();
}

Status FaultRegistry::ConfigureFromEnv() {
  if (const char* seed_text = std::getenv("XIA_FAULTS_SEED")) {
    double seed = 0;
    if (!ParseDouble(seed_text, &seed) || seed < 0 ||
        seed != std::floor(seed)) {
      return Status::InvalidArgument(std::string("bad XIA_FAULTS_SEED '") +
                                     seed_text + "'");
    }
    set_seed(static_cast<uint64_t>(seed));
  }
  if (const char* spec = std::getenv("XIA_FAULTS")) {
    return ConfigureFromSpec(spec);
  }
  return Status::OK();
}

std::vector<FaultPointStatus> FaultRegistry::Snapshot() const {
  std::vector<FaultPointStatus> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(points_.size());
    for (const auto& [_, point] : points_) out.push_back(point->Snapshot());
  }
  return out;  // map iteration is already name-sorted
}

}  // namespace xia::fault
