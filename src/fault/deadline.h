// Deadlines and cooperative cancellation for long-running XIA work:
// advisor search, optimizer enumeration, and executor scans all accept a
// Deadline (and optionally a CancelToken) and degrade to best-so-far
// partial results instead of running unbounded.
//
// A default-constructed Deadline is infinite and costs one branch per
// expired() check — no clock read — so plumbing deadlines through hot
// loops is free when no budget is set. Checks are cooperative: loops poll
// at iteration granularity, so a deadline can overrun by at most one unit
// of work (e.g. one configuration evaluation in the advisor).

#ifndef XIA_FAULT_DEADLINE_H_
#define XIA_FAULT_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace xia::fault {

/// A wall-clock budget based on std::chrono::steady_clock.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  /// Expires `ms` milliseconds from now. ms <= 0 is already expired.
  static Deadline AfterMillis(double ms);
  /// Expires `seconds` seconds from now.
  static Deadline AfterSeconds(double seconds);

  bool infinite() const { return !enabled_; }

  /// True once the budget is spent. One branch when infinite.
  bool expired() const {
    if (!enabled_) return false;
    return std::chrono::steady_clock::now() >= at_;
  }

  /// Seconds until expiry; negative once expired; +inf when infinite.
  double remaining_seconds() const;

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Cooperative cancellation flag, shareable across threads. The owner
/// calls Cancel(); workers poll cancelled() between units of work.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// OK while work may continue; Cancelled if the token (may be null) was
/// cancelled; DeadlineExceeded once the deadline expired. Cancellation is
/// checked first — it is the more deliberate signal.
Status CheckInterrupt(const Deadline& deadline,
                      const CancelToken* cancel = nullptr);

}  // namespace xia::fault

#endif  // XIA_FAULT_DEADLINE_H_
