// Configuration benefit evaluation with the §VI-C optimizer-call
// reductions.
//
// Benefit(x1..xn; W) = sum_s freq_s * (s_old - s_new)
//                    - sum_s sum_i freq_s * mc(x_i, s)            (§III)
//
// s_old is each statement's cost with no indexes; s_new its cost with the
// configuration's indexes created virtually. Two optimizations cut the
// number of Evaluate-mode optimizer calls:
//
//  1. affected-set pruning — only statements in the union of the
//     configuration's affected sets can change cost; everything else keeps
//     s_old and contributes zero benefit;
//  2. sub-configuration decomposition + cache — the configuration is split
//     into groups of indexes with overlapping affected sets; each group is
//     costed independently and memoized, so search steps that revisit a
//     group (greedy and top-down do constantly) pay nothing.
//
// Both can be disabled to reproduce the naive evaluator for the ablation
// benchmark.

#ifndef XIA_ADVISOR_BENEFIT_H_
#define XIA_ADVISOR_BENEFIT_H_

#include <map>
#include <string>
#include <vector>

#include "advisor/candidates.h"
#include "engine/query.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace xia::advisor {

/// Evaluates configuration benefits against a scratch what-if catalog.
class BenefitEvaluator {
 public:
  /// Behavioural switches (ablations).
  struct Options {
    /// §VI-C sub-configuration decomposition and caching.
    bool use_subconfigurations = true;
    /// §VI-C affected-set pruning.
    bool use_affected_sets = true;
    /// Charge index maintenance costs for update statements (§III).
    bool charge_maintenance = true;
  };

  /// `catalog` must be a scratch catalog reserved for the evaluator: its
  /// virtual indexes are created and dropped freely. `set` provides the
  /// candidate definitions configurations refer to by id.
  BenefitEvaluator(const engine::Workload* workload, const CandidateSet* set,
                   storage::Catalog* catalog,
                   const storage::StatisticsCatalog* statistics,
                   const storage::DocumentStore* store, Options options);

  /// Computes base (no-index) statement costs. Must be called once before
  /// any benefit query.
  Status Initialize();

  /// Total workload cost with no indexes: sum_s freq_s * s_old.
  double base_workload_cost() const { return base_workload_cost_; }

  /// Benefit of a configuration of candidate ids (§III formula).
  Result<double> ConfigurationBenefit(const std::vector<int>& config);

  /// Workload cost under the configuration
  /// (= base_workload_cost - ConfigurationBenefit).
  Result<double> ConfigurationCost(const std::vector<int>& config);

  /// Estimated speedup of the configuration on this workload.
  Result<double> ConfigurationSpeedup(const std::vector<int>& config);

  /// Evaluate-mode optimizer calls issued so far (for Fig. 3 / §VI-C
  /// accounting).
  uint64_t optimizer_calls() const { return optimizer_.optimize_calls(); }

  /// Cache statistics.
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }

 private:
  /// Query-side benefit of one sub-configuration (no maintenance).
  Result<double> SubConfigurationQueryBenefit(const std::vector<int>& sub);

  /// Splits a configuration into sub-configurations whose affected sets
  /// overlap (union-find, §VI-C).
  std::vector<std::vector<int>> Decompose(const std::vector<int>& config) const;

  /// Maintenance charge of the whole configuration.
  double MaintenanceCharge(const std::vector<int>& config) const;

  const engine::Workload* workload_;
  const CandidateSet* set_;
  storage::Catalog* catalog_;
  optimizer::Optimizer optimizer_;
  Options options_;

  std::vector<double> base_costs_;  // per statement, unweighted
  double base_workload_cost_ = 0;
  bool initialized_ = false;

  std::map<std::vector<int>, double> cache_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
};

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_BENEFIT_H_
