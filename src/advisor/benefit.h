// Configuration benefit evaluation with the §VI-C optimizer-call
// reductions.
//
// Benefit(x1..xn; W) = sum_s freq_s * (s_old - s_new)
//                    - sum_s sum_i freq_s * mc(x_i, s)            (§III)
//
// s_old is each statement's cost with no indexes; s_new its cost with the
// configuration's indexes created virtually. Two optimizations cut the
// number of Evaluate-mode optimizer calls:
//
//  1. affected-set pruning — only statements in the union of the
//     configuration's affected sets can change cost; everything else keeps
//     s_old and contributes zero benefit;
//  2. sub-configuration decomposition + cache — the configuration is split
//     into groups of indexes with overlapping affected sets; each group is
//     costed independently and memoized, so search steps that revisit a
//     group (greedy and top-down do constantly) pay nothing.
//
// Both can be disabled to reproduce the naive evaluator for the ablation
// benchmark.
//
// Parallel mode (DESIGN §12). With Options::pool set the evaluator shards
// the independent pieces of its work across the pool: Initialize() costs
// base statements concurrently, and ConfigurationBenefit farms the
// sub-configurations of a decomposition (disjoint by construction) out as
// pool items. Each in-flight evaluation leases a scratch context — its own
// what-if Catalog plus Optimizer — so no two threads ever touch the same
// catalog. Determinism: workers write into pre-sized slots and every
// reduction runs serially in index order, each sub-configuration's benefit
// is a pure function of (sub, store, statistics) regardless of which
// thread computes it, and the cache's in-flight dedup keeps the set of
// cache misses — hence the optimizer-call count — identical to a serial
// run. Parallel results are bit-identical to serial ones.

#ifndef XIA_ADVISOR_BENEFIT_H_
#define XIA_ADVISOR_BENEFIT_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "advisor/candidates.h"
#include "engine/query.h"
#include "fault/deadline.h"
#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xia::advisor {

/// Sharded memo cache for sub-configuration benefits with in-flight
/// dedup: concurrent requests for the same key block until the first
/// requester's computation finishes, so each key is computed exactly once
/// no matter how many threads race for it — the miss count (and with it
/// the what-if optimizer-call count) stays identical to serial execution.
/// A failed computation is never cached; waiters retry and may become the
/// computer themselves. Used in serial mode too, so hit/miss accounting
/// has a single implementation.
class BenefitCache {
 public:
  /// Returns the cached value for `key`, or runs `compute` (outside any
  /// shard lock) and caches its result. Counts one hit or one miss per
  /// call; a call that waited on another thread's computation counts as a
  /// hit once the value is ready.
  Result<double> GetOrCompute(const std::vector<int>& key,
                              const std::function<Result<double>()>& compute);

  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    enum class State { kComputing, kReady, kFailed };
    State state = State::kComputing;
    double value = 0;
  };
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::vector<int>, std::shared_ptr<Entry>> entries;
  };

  static constexpr size_t kShardCount = 16;

  Shard& ShardFor(const std::vector<int>& key);

  std::array<Shard, kShardCount> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

/// Evaluates configuration benefits against a scratch what-if catalog.
class BenefitEvaluator {
 public:
  /// Behavioural switches (ablations) and execution mode.
  struct Options {
    /// §VI-C sub-configuration decomposition and caching.
    bool use_subconfigurations = true;
    /// §VI-C affected-set pruning.
    bool use_affected_sets = true;
    /// Charge index maintenance costs for update statements (§III).
    bool charge_maintenance = true;
    /// Worker pool for parallel what-if evaluation (not owned; may be
    /// null). With more than one pool thread the evaluator runs in
    /// parallel mode — see the header comment; results are bit-identical
    /// to serial. In parallel mode ConfigurationBenefit may also be
    /// called from multiple threads concurrently (the search layer batches
    /// probes onto the same pool).
    util::ThreadPool* pool = nullptr;
  };

  /// `catalog` must be a scratch catalog reserved for the evaluator: its
  /// virtual indexes are created and dropped freely. `set` provides the
  /// candidate definitions configurations refer to by id.
  BenefitEvaluator(const engine::Workload* workload, const CandidateSet* set,
                   storage::Catalog* catalog,
                   const storage::StatisticsCatalog* statistics,
                   const storage::DocumentStore* store, Options options);

  /// Computes base (no-index) statement costs. Must be called once before
  /// any benefit query.
  Status Initialize();

  /// Total workload cost with no indexes: sum_s freq_s * s_old.
  double base_workload_cost() const { return base_workload_cost_; }

  /// Benefit of a configuration of candidate ids (§III formula). The ids
  /// are canonicalized (sorted, deduplicated) before the cache lookup, so
  /// permuted or duplicated ids cannot cause spurious misses or duplicate
  /// what-if calls.
  Result<double> ConfigurationBenefit(const std::vector<int>& config);

  /// Deadline/cancel-aware variant: the interrupt is polled per statement
  /// *inside* each sub-configuration evaluation, so an expiry stops an
  /// in-flight evaluation promptly. Returns kDeadlineExceeded/kCancelled
  /// on a trip; the interrupted sub-configuration is not cached (a later
  /// deadline-free call recomputes it cleanly).
  Result<double> ConfigurationBenefit(const std::vector<int>& config,
                                      const fault::Deadline& deadline,
                                      const fault::CancelToken* cancel);

  /// Workload cost under the configuration
  /// (= base_workload_cost - ConfigurationBenefit).
  Result<double> ConfigurationCost(const std::vector<int>& config);

  /// Estimated speedup of the configuration on this workload.
  Result<double> ConfigurationSpeedup(const std::vector<int>& config);

  /// Evaluate-mode optimizer calls issued so far, summed over the main
  /// optimizer and every scratch-context optimizer (each counter is an
  /// atomic, so the sum is exact once parallel work has been joined).
  uint64_t optimizer_calls() const;

  /// Cache statistics.
  size_t cache_hits() const { return cache_.hits(); }
  size_t cache_misses() const { return cache_.misses(); }

 private:
  /// A leased what-if planning context: one scratch catalog + optimizer
  /// per concurrently in-flight evaluation, so parallel probes never
  /// share a catalog.
  struct WorkerContext {
    WorkerContext(storage::DocumentStore* store,
                  const storage::StatisticsCatalog* statistics,
                  const storage::CostConstants& cc)
        : catalog(store, statistics, cc),
          optimizer(store, &catalog, statistics) {}
    storage::Catalog catalog;
    optimizer::Optimizer optimizer;
  };
  class ContextLease;

  bool parallel() const {
    return options_.pool != nullptr && options_.pool->thread_count() > 1;
  }

  WorkerContext* AcquireContext();
  void ReleaseContext(WorkerContext* context);

  /// Query-side benefit of one sub-configuration (no maintenance),
  /// memoized through cache_.
  Result<double> SubConfigurationQueryBenefit(const std::vector<int>& sub,
                                              const fault::Deadline& deadline,
                                              const fault::CancelToken* cancel);

  /// The actual what-if evaluation against `catalog`/`optimizer` (either
  /// the evaluator's own or a leased worker context's).
  Result<double> ComputeSubConfigurationBenefit(
      const std::vector<int>& sub, storage::Catalog* catalog,
      const optimizer::Optimizer& optimizer, const fault::Deadline& deadline,
      const fault::CancelToken* cancel);

  /// Splits a configuration into sub-configurations whose affected sets
  /// overlap (union-find, §VI-C).
  std::vector<std::vector<int>> Decompose(const std::vector<int>& config) const;

  /// Maintenance charge of the whole configuration.
  double MaintenanceCharge(const std::vector<int>& config) const;

  const engine::Workload* workload_;
  const CandidateSet* set_;
  storage::Catalog* catalog_;
  optimizer::Optimizer optimizer_;
  Options options_;

  std::vector<double> base_costs_;  // per statement, unweighted
  double base_workload_cost_ = 0;
  bool initialized_ = false;

  BenefitCache cache_;

  // Scratch contexts (parallel mode only): created up front, leased
  // through a mutex-guarded freelist. contexts_ itself is immutable after
  // construction so optimizer_calls() can walk it lock-free.
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  std::mutex contexts_mu_;
  std::condition_variable contexts_cv_;
  std::vector<WorkerContext*> free_contexts_;
};

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_BENEFIT_H_
