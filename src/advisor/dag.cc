#include "advisor/dag.h"

#include <algorithm>

#include "xpath/containment.h"

namespace xia::advisor {

std::vector<int> BuildDag(CandidateSet* set) {
  const size_t n = set->candidates.size();
  for (Candidate& c : set->candidates) {
    c.children.clear();
    c.parents.clear();
  }

  // strict[i][j]: candidate i strictly covers candidate j.
  std::vector<std::vector<bool>> strict(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const Candidate& a = (*set)[i];
      const Candidate& b = (*set)[j];
      if (a.collection != b.collection) continue;
      if (a.pattern.structural != b.pattern.structural) continue;
      if (!a.pattern.structural && a.pattern.type != b.pattern.type) {
        continue;
      }
      const bool ab = xpath::Covers(a.pattern.path, b.pattern.path);
      const bool ba = xpath::Covers(b.pattern.path, a.pattern.path);
      if (ab && !ba) {
        strict[i][j] = true;
      } else if (ab && ba && i < j) {
        // Equivalent patterns: treat the smaller id as the representative
        // covering the other, so the pair still forms a chain rather than
        // disappearing from the DAG.
        strict[i][j] = true;
      }
    }
  }

  // Transitive reduction: keep edge i->j only if no k with i>k>j.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!strict[i][j]) continue;
      bool immediate = true;
      for (size_t k = 0; k < n && immediate; ++k) {
        if (k == i || k == j) continue;
        if (strict[i][k] && strict[k][j]) immediate = false;
      }
      if (immediate) {
        (*set)[i].children.push_back(static_cast<int>(j));
        (*set)[j].parents.push_back(static_cast<int>(i));
      }
    }
  }

  std::vector<int> roots;
  for (const Candidate& c : set->candidates) {
    if (c.parents.empty()) roots.push_back(c.id);
  }
  return roots;
}

}  // namespace xia::advisor
