// The XML Index Advisor: public facade.
//
// Pipeline (Fig. 1 of the paper): enumerate basic candidates through the
// optimizer's Enumerate Indexes mode -> generalize (§V) -> search the
// configuration space under the disk budget (§VI) -> report the
// recommended index patterns with size and estimated-speedup accounting.

#ifndef XIA_ADVISOR_ADVISOR_H_
#define XIA_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "advisor/benefit.h"
#include "advisor/candidates.h"
#include "advisor/search.h"
#include "engine/query.h"
#include "fault/deadline.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace xia::advisor {

/// Advisor invocation options.
struct AdvisorOptions {
  /// Disk budget for the recommended configuration, in bytes.
  double disk_budget_bytes = 100.0 * 1024 * 1024;
  SearchAlgorithm algorithm = SearchAlgorithm::kTopDownFull;
  /// Size-expansion threshold of the greedy heuristics (§VI-A).
  double beta = 0.10;
  /// Run the generalization step (§V). Disabling restricts the advisor to
  /// basic candidates.
  bool generalize = true;
  /// §VI-C optimizations (disable for ablation).
  bool use_subconfigurations = true;
  bool use_affected_sets = true;
  /// Charge index-maintenance cost against update statements (§III).
  bool charge_maintenance = true;
  /// Wall-clock budget for the whole advise run, in milliseconds. 0 (the
  /// default) means unbounded. On expiry the pipeline degrades to a
  /// best-so-far recommendation with Recommendation::partial set — it
  /// never fails with kDeadlineExceeded.
  double budget_ms = 0;
  /// Cooperative cancellation, polled alongside the budget. Not owned.
  const fault::CancelToken* cancel = nullptr;
  /// Worker threads for the what-if phases (base costing, candidate
  /// enumeration, benefit probes, search-step batches). 1 (the default)
  /// runs serially; 0 resolves to one thread per hardware thread; ignored
  /// when `pool` is set. Parallel runs produce bit-identical
  /// recommendations — same indexes, benefit, and optimizer-call counts
  /// (DESIGN §12).
  size_t threads = 1;
  /// External worker pool shared across runs (e.g. the OnlineAdvisor's).
  /// Not owned; overrides `threads`. Null = spin up a run-local pool when
  /// `threads` asks for one.
  util::ThreadPool* pool = nullptr;
};

/// One recommended index.
struct RecommendedIndex {
  std::string collection;
  xpath::IndexPattern pattern;
  bool is_general = false;
  uint64_t size_bytes = 0;
  /// DB2-flavoured DDL for the recommendation.
  std::string ddl;
};

/// Advisor output.
struct Recommendation {
  std::vector<RecommendedIndex> indexes;
  double total_size_bytes = 0;
  /// Estimated workload cost with no indexes.
  double base_cost = 0;
  /// Estimated benefit (§III) of the configuration.
  double benefit = 0;
  /// base_cost / (base_cost - benefit).
  double est_speedup = 1.0;
  /// Candidate accounting (Table III).
  size_t basic_candidates = 0;
  size_t total_candidates = 0;
  /// General/specific split (Table IV).
  int general_count = 0;
  int specific_count = 0;
  /// Optimizer calls consumed (enumeration probes + what-if evaluations).
  uint64_t optimizer_calls = 0;
  /// Advisor wall-clock seconds (Fig. 3).
  double advisor_seconds = 0;
  /// Per-phase pipeline trace; depth-0 spans tile the run, so their
  /// durations sum to (nearly) advisor_seconds and their tracked-call
  /// deltas to optimizer_calls.
  obs::Trace trace;
  /// True when the run hit AdvisorOptions::budget_ms (or was cancelled)
  /// and the recommendation is the best configuration found in time.
  bool partial = false;
};

/// The advisor. Holds references to the database's store and statistics; a
/// private scratch catalog isolates its virtual indexes from the system
/// catalog.
class IndexAdvisor {
 public:
  IndexAdvisor(storage::DocumentStore* store,
               const storage::StatisticsCatalog* statistics,
               const storage::CostConstants& cc =
                   storage::DefaultCostConstants())
      : store_(store), statistics_(statistics), cc_(cc) {}

  /// Recommends an index configuration for the workload under the options.
  Result<Recommendation> Recommend(const engine::Workload& workload,
                                   const AdvisorOptions& options);

  /// Enumerates (and optionally generalizes) candidates without searching.
  /// Exposed for experiments (Table III) and tests. With a tracer, records
  /// the enumerate/generalize/statistics phases as spans. On deadline
  /// expiry the set built so far is returned with `partial` set. With a
  /// pool of more than one thread, enumeration probes statements in
  /// parallel (deterministic merge — same set either way).
  Result<CandidateSet> BuildCandidates(
      const engine::Workload& workload, bool generalize,
      obs::Tracer* tracer = nullptr,
      const fault::Deadline& deadline = fault::Deadline(),
      util::ThreadPool* pool = nullptr);

  /// The "All Index" configuration (§VII-B): every basic candidate,
  /// unconstrained by budget. Useful as the best-possible reference.
  Result<Recommendation> AllIndexConfiguration(
      const engine::Workload& workload);

  /// Creates the recommendation's indexes physically in `catalog`.
  Status Materialize(const Recommendation& recommendation,
                     storage::Catalog* catalog,
                     const std::string& name_prefix = "rec") const;

 private:
  Result<Recommendation> RecommendImpl(const engine::Workload& workload,
                                       const AdvisorOptions& options,
                                       bool all_index);

  storage::DocumentStore* store_;
  const storage::StatisticsCatalog* statistics_;
  storage::CostConstants cc_;
};

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_ADVISOR_H_
