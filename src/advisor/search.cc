#include "advisor/search.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <set>

#include "fault/fault.h"
#include "util/string_util.h"

namespace xia::advisor {

namespace {

constexpr double kEps = 1e-9;

// Deadline/cancel poll shared by every algorithm's evaluation loops.
bool Interrupted(const SearchOptions& options) {
  if (options.cancel != nullptr && options.cancel->cancelled()) return true;
  return options.deadline.expired();
}

bool IsInterrupt(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

// Evaluates a batch of independent configurations, farming them to the
// pool when SearchOptions carries one. Deadline/cancel trips — whether
// between probes or, via the evaluator's granular polling, inside one —
// set *partial and leave the affected slots at zero, matching the serial
// best-so-far contract; real errors propagate. Each probe is memoized
// independently by the evaluator, so parallel and serial batches produce
// identical values and identical cache-miss sets.
Result<std::vector<double>> BatchBenefits(
    const std::vector<std::vector<int>>& configs, BenefitEvaluator* evaluator,
    const SearchOptions& options, bool* partial) {
  std::vector<double> values(configs.size(), 0.0);
  if (options.pool != nullptr && options.pool->thread_count() > 1 &&
      configs.size() > 1) {
    std::atomic<bool> tripped{false};
    bool skipped = false;
    XIA_RETURN_IF_ERROR(options.pool->ParallelFor(
        configs.size(),
        [&](size_t i) -> Status {
          auto benefit = evaluator->ConfigurationBenefit(
              configs[i], options.deadline, options.cancel);
          if (!benefit.ok()) {
            if (IsInterrupt(benefit.status())) {
              tripped.store(true, std::memory_order_relaxed);
              return Status::OK();
            }
            return benefit.status();
          }
          values[i] = *benefit;
          return Status::OK();
        },
        options.deadline, options.cancel, &skipped));
    if (tripped.load(std::memory_order_relaxed) || skipped) *partial = true;
    return values;
  }
  for (size_t i = 0; i < configs.size(); ++i) {
    if (Interrupted(options)) {
      *partial = true;
      break;
    }
    auto benefit = evaluator->ConfigurationBenefit(configs[i],
                                                   options.deadline,
                                                   options.cancel);
    if (!benefit.ok()) {
      if (IsInterrupt(benefit.status())) {
        *partial = true;
        break;
      }
      return benefit.status();
    }
    values[i] = *benefit;
  }
  return values;
}

double TotalSize(const CandidateSet& set, const std::vector<int>& config) {
  double total = 0;
  for (int id : config) {
    total += static_cast<double>(set[static_cast<size_t>(id)].size_bytes());
  }
  return total;
}

Result<SearchOutcome> Finalize(const CandidateSet& set,
                               std::vector<int> selected,
                               BenefitEvaluator* evaluator,
                               bool partial = false) {
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  SearchOutcome out;
  out.partial = partial;
  out.total_size_bytes = TotalSize(set, selected);
  // Deliberately evaluated even past a deadline: a partial outcome must
  // still report a true benefit for what it selected.
  XIA_ASSIGN_OR_RETURN(out.benefit, evaluator->ConfigurationBenefit(selected));
  for (int id : selected) {
    if (set[static_cast<size_t>(id)].is_general) {
      ++out.general_count;
    } else {
      ++out.specific_count;
    }
  }
  out.selected = std::move(selected);
  return out;
}

// Standalone benefit of every candidate (one evaluator probe each,
// batched onto the pool when present). On interrupt, the remaining
// candidates keep a benefit of zero and *partial is set — callers still
// get a usable (if conservative) value vector.
Result<std::vector<double>> StandaloneBenefits(const CandidateSet& set,
                                               BenefitEvaluator* evaluator,
                                               const SearchOptions& options,
                                               bool* partial) {
  std::vector<std::vector<int>> configs(set.size());
  for (size_t i = 0; i < set.size(); ++i) {
    configs[i] = {static_cast<int>(i)};
  }
  return BatchBenefits(configs, evaluator, options, partial);
}

// Greedy knapsack on precomputed per-candidate values.
std::vector<int> GreedyByDensity(const CandidateSet& set,
                                 const std::vector<double>& values,
                                 const std::vector<int>& pool,
                                 double budget) {
  std::vector<int> order = pool;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double da = values[static_cast<size_t>(a)] /
                      std::max<double>(1.0, static_cast<double>(
                                                set[static_cast<size_t>(a)]
                                                    .size_bytes()));
    const double db = values[static_cast<size_t>(b)] /
                      std::max<double>(1.0, static_cast<double>(
                                                set[static_cast<size_t>(b)]
                                                    .size_bytes()));
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<int> picked;
  double used = 0;
  for (int id : order) {
    if (values[static_cast<size_t>(id)] <= 0) continue;
    const double size =
        static_cast<double>(set[static_cast<size_t>(id)].size_bytes());
    if (used + size <= budget + kEps) {
      picked.push_back(id);
      used += size;
    }
  }
  return picked;
}

Result<SearchOutcome> RunGreedy(const CandidateSet& set,
                                BenefitEvaluator* evaluator,
                                const SearchOptions& options) {
  bool partial = false;
  XIA_ASSIGN_OR_RETURN(const std::vector<double> benefits,
                       StandaloneBenefits(set, evaluator, options, &partial));
  std::vector<int> pool(set.size());
  for (size_t i = 0; i < set.size(); ++i) pool[i] = static_cast<int>(i);
  return Finalize(
      set, GreedyByDensity(set, benefits, pool, options.disk_budget_bytes),
      evaluator, partial);
}

Result<SearchOutcome> RunGreedyWithHeuristics(const CandidateSet& set,
                                              BenefitEvaluator* evaluator,
                                              const SearchOptions& options) {
  std::vector<int> config;
  std::set<int> covered;  // basic candidate ids covered by the config
  double used = 0;
  double current_benefit = 0;
  bool partial = false;

  // One extension probe surviving the cheap admission filters; its costly
  // whole-configuration benefits live at value_index (and, for general
  // candidates, children_index) in the batch below.
  struct Probe {
    int id = -1;
    bool general = false;
    size_t value_index = 0;
    size_t children_index = 0;
  };

  for (;;) {
    if (Interrupted(options)) {
      partial = true;
      break;
    }

    // First pass (serial, cheap): admission filters that need no
    // optimizer call decide which extension probes are worth costing.
    std::vector<Probe> probes;
    std::vector<std::vector<int>> probe_configs;
    for (size_t i = 0; i < set.size(); ++i) {
      const Candidate& cand = set[i];
      const int id = static_cast<int>(i);
      if (std::find(config.begin(), config.end(), id) != config.end()) {
        continue;
      }
      const double size = static_cast<double>(cand.size_bytes());
      if (used + size > options.disk_budget_bytes + kEps) continue;

      if (cand.is_general) {
        // Redundancy: the coverage bitmap (§VI-A). If every workload
        // pattern this general index serves already has an index in the
        // configuration, it would replicate them.
        bool redundant = !cand.covered_basics.empty();
        for (int b : cand.covered_basics) {
          if (covered.count(b) == 0) {
            redundant = false;
            break;
          }
        }
        if (redundant) continue;

        // Size admission: Size(x_g) <= (1 + beta) * sum Size(x_i).
        double children_size = 0;
        for (int b : cand.covered_basics) {
          children_size +=
              static_cast<double>(set[static_cast<size_t>(b)].size_bytes());
        }
        if (size > (1.0 + options.beta) * children_size) continue;

        Probe probe;
        probe.id = id;
        probe.general = true;
        std::vector<int> with_general = config;
        with_general.push_back(id);
        probe.value_index = probe_configs.size();
        probe_configs.push_back(std::move(with_general));
        std::vector<int> with_children = config;
        for (int b : cand.covered_basics) with_children.push_back(b);
        probe.children_index = probe_configs.size();
        probe_configs.push_back(std::move(with_children));
        probes.push_back(probe);
      } else {
        Probe probe;
        probe.id = id;
        std::vector<int> with_candidate = config;
        with_candidate.push_back(id);
        probe.value_index = probe_configs.size();
        probe_configs.push_back(std::move(with_candidate));
        probes.push_back(probe);
      }
    }
    if (probes.empty()) break;

    // Second pass: cost every surviving probe (batched onto the pool).
    XIA_ASSIGN_OR_RETURN(
        const std::vector<double> values,
        BatchBenefits(probe_configs, evaluator, options, &partial));
    // An interrupted sweep is discarded wholesale, exactly as the serial
    // loop abandons its current sweep on a mid-sweep deadline.
    if (partial) break;

    // Third pass (serial, deterministic): benefit admission and density
    // selection over the precomputed values, in candidate order.
    int best_id = -1;
    double best_benefit = current_benefit;
    double best_density = 0;
    for (const Probe& probe : probes) {
      const double size =
          static_cast<double>(set[static_cast<size_t>(probe.id)].size_bytes());
      if (probe.general) {
        // Benefit admission: IB(x_g) >= IB(x_1..x_n).
        const double ib_general = values[probe.value_index];
        const double ib_children = values[probe.children_index];
        if (ib_general + kEps < ib_children) continue;
        const double density = (ib_general - current_benefit) / size;
        if (ib_general > current_benefit + kEps && density > best_density) {
          best_id = probe.id;
          best_benefit = ib_general;
          best_density = density;
        }
      } else {
        const double ib = values[probe.value_index];
        const double density = (ib - current_benefit) / std::max(1.0, size);
        if (ib > current_benefit + kEps && density > best_density) {
          best_id = probe.id;
          best_benefit = ib;
          best_density = density;
        }
      }
    }

    if (best_id < 0) break;
    config.push_back(best_id);
    used += static_cast<double>(set[static_cast<size_t>(best_id)].size_bytes());
    current_benefit = best_benefit;
    for (int b : set[static_cast<size_t>(best_id)].covered_basics) {
      covered.insert(b);
    }
  }
  return Finalize(set, std::move(config), evaluator, partial);
}

// Starting points of the top-down descent: maximal candidates (by the DAG)
// whose standalone benefit is positive; an ineligible node is transparently
// replaced by its children (§VI-B preprocessing).
void CollectStartingSet(const CandidateSet& set, const std::vector<int>& roots,
                        const std::vector<double>& benefits,
                        std::set<int>* out) {
  std::vector<int> stack = roots;
  std::set<int> visited;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    if (benefits[static_cast<size_t>(id)] > 0) {
      out->insert(id);
    } else {
      for (int c : set[static_cast<size_t>(id)].children) {
        stack.push_back(c);
      }
    }
  }
}

Result<SearchOutcome> RunTopDown(const CandidateSet& set,
                                 const std::vector<int>& roots,
                                 BenefitEvaluator* evaluator,
                                 const SearchOptions& options,
                                 bool full_interaction) {
  bool partial = false;
  XIA_ASSIGN_OR_RETURN(const std::vector<double> benefits,
                       StandaloneBenefits(set, evaluator, options, &partial));
  std::set<int> config_set;
  CollectStartingSet(set, roots, benefits, &config_set);

  auto total_size = [&]() {
    double t = 0;
    for (int id : config_set) {
      t += static_cast<double>(set[static_cast<size_t>(id)].size_bytes());
    }
    return t;
  };

  while (total_size() > options.disk_budget_bytes + kEps) {
    if (partial || Interrupted(options)) {
      // Out of time mid-descent: the working set may still be over
      // budget, so trim it greedily before reporting best-so-far.
      partial = true;
      std::vector<int> pool(config_set.begin(), config_set.end());
      std::vector<int> picked =
          GreedyByDensity(set, benefits, pool, options.disk_budget_bytes);
      return Finalize(set, std::move(picked), evaluator, partial);
    }
    // Choose the replaceable general index with the smallest dB/dC.
    // First pass (serial, cheap): the size screen; it also collects the
    // costly dB probes of the full-interaction mode for one batch.
    struct Replacement {
      int id = -1;
      double dc = 0;
      std::vector<int> incoming;
      size_t with_g_index = 0;
      size_t with_children_index = 0;
    };
    std::vector<Replacement> replacements;
    std::vector<std::vector<int>> probe_configs;
    for (int id : config_set) {
      const Candidate& cand = set[static_cast<size_t>(id)];
      if (cand.children.empty()) continue;
      // Children that would newly enter the configuration.
      std::vector<int> incoming;
      double children_size = 0;
      for (int c : cand.children) {
        if (benefits[static_cast<size_t>(c)] <= 0) continue;
        if (config_set.count(c) != 0) continue;
        incoming.push_back(c);
        children_size +=
            static_cast<double>(set[static_cast<size_t>(c)].size_bytes());
      }
      const double dc =
          static_cast<double>(cand.size_bytes()) - children_size;
      if (dc <= 0) continue;  // replacement must shrink the configuration

      Replacement repl;
      repl.id = id;
      repl.dc = dc;
      if (full_interaction) {
        // dB = Benefit(base + g) - Benefit(base + children).
        std::vector<int> base(config_set.begin(), config_set.end());
        base.erase(std::remove(base.begin(), base.end(), id), base.end());
        std::vector<int> with_g = base;
        with_g.push_back(id);
        repl.with_g_index = probe_configs.size();
        probe_configs.push_back(std::move(with_g));
        std::vector<int> with_children = base;
        with_children.insert(with_children.end(), incoming.begin(),
                             incoming.end());
        repl.with_children_index = probe_configs.size();
        probe_configs.push_back(std::move(with_children));
      }
      repl.incoming = std::move(incoming);
      replacements.push_back(std::move(repl));
    }

    // Second pass: cost the dB probes (batched onto the pool). On an
    // interrupt the step is abandoned; the while-top then trims the
    // working set greedily and reports best-so-far.
    std::vector<double> probe_values;
    if (full_interaction && !replacements.empty()) {
      XIA_ASSIGN_OR_RETURN(
          probe_values,
          BatchBenefits(probe_configs, evaluator, options, &partial));
      if (partial) continue;
    }

    // Third pass (serial, deterministic): smallest dB/dC over the
    // precomputed values, in config_set (ascending id) order.
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_dc = -1;
    std::vector<int> best_children;
    for (const Replacement& repl : replacements) {
      double db = 0;
      if (full_interaction) {
        db = probe_values[repl.with_g_index] -
             probe_values[repl.with_children_index];
      } else {
        double children_benefit = 0;
        for (int c : repl.incoming) {
          children_benefit += benefits[static_cast<size_t>(c)];
        }
        db = benefits[static_cast<size_t>(repl.id)] - children_benefit;
      }
      const double ratio = db / repl.dc;
      if (ratio < best_ratio - kEps ||
          (std::abs(ratio - best_ratio) <= kEps && repl.dc > best_dc)) {
        best = repl.id;
        best_ratio = ratio;
        best_dc = repl.dc;
        best_children = repl.incoming;
      }
    }

    if (best < 0) {
      // No general candidate left to replace: fall back to greedy over the
      // current members (§VI-B: "If we run out of general candidates to
      // replace and do not yet meet the disk space budget, we use greedy
      // search").
      std::vector<int> pool(config_set.begin(), config_set.end());
      std::vector<int> picked =
          GreedyByDensity(set, benefits, pool, options.disk_budget_bytes);
      return Finalize(set, std::move(picked), evaluator, partial);
    }

    config_set.erase(best);
    for (int c : best_children) config_set.insert(c);
  }

  return Finalize(set,
                  std::vector<int>(config_set.begin(), config_set.end()),
                  evaluator, partial);
}

Result<SearchOutcome> RunDynamicProgramming(const CandidateSet& set,
                                            BenefitEvaluator* evaluator,
                                            const SearchOptions& options) {
  bool partial = false;
  XIA_ASSIGN_OR_RETURN(const std::vector<double> benefits,
                       StandaloneBenefits(set, evaluator, options, &partial));
  // Knapsack over discretized sizes.
  const double unit = std::max(options.dp_granularity_bytes,
                               options.disk_budget_bytes / 4000.0);
  const size_t capacity = static_cast<size_t>(
      std::floor(options.disk_budget_bytes / std::max(1.0, unit)));
  const size_t n = set.size();

  auto weight_of = [&](size_t i) {
    return static_cast<size_t>(std::ceil(
        static_cast<double>(set[i].size_bytes()) / std::max(1.0, unit)));
  };

  // Full 2D table so the traceback is exact.
  std::vector<std::vector<double>> dp(
      n + 1, std::vector<double>(capacity + 1, 0.0));
  for (size_t i = 0; i < n; ++i) {
    const double value = benefits[i];
    const size_t weight = weight_of(i);
    for (size_t w = 0; w <= capacity; ++w) {
      dp[i + 1][w] = dp[i][w];
      if (value > 0 && weight <= w &&
          dp[i][w - weight] + value > dp[i + 1][w]) {
        dp[i + 1][w] = dp[i][w - weight] + value;
      }
    }
  }
  std::vector<int> selected;
  size_t w = capacity;
  for (size_t i = n; i-- > 0;) {
    if (dp[i + 1][w] != dp[i][w]) {
      selected.push_back(static_cast<int>(i));
      w -= weight_of(i);
    }
  }
  // The table fill itself is pure arithmetic — only the benefit probes
  // above are deadline-polled, so a partial run is DP over the benefits
  // computed in time (zeros elsewhere).
  return Finalize(set, std::move(selected), evaluator, partial);
}

Result<SearchOutcome> RunExhaustive(const CandidateSet& set,
                                    BenefitEvaluator* evaluator,
                                    const SearchOptions& options) {
  const size_t n = set.size();
  if (n > options.exhaustive_limit) {
    return Status::InvalidArgument(StringPrintf(
        "exhaustive search refused: %zu candidates exceeds the limit of "
        "%zu (2^n configurations)",
        n, options.exhaustive_limit));
  }
  // Enumerate the affordable subsets first (pure arithmetic), then cost
  // them as one batch. The best pick scans the values in mask order with
  // a strict comparison, so it matches the serial mask loop exactly; a
  // subset the deadline cut off keeps a value of zero and can never
  // displace an evaluated best.
  std::vector<std::vector<int>> configs;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<int> config;
    double size = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        config.push_back(static_cast<int>(i));
        size += static_cast<double>(set[i].size_bytes());
      }
    }
    if (size > options.disk_budget_bytes + kEps) continue;
    configs.push_back(std::move(config));
  }
  bool partial = false;
  XIA_ASSIGN_OR_RETURN(const std::vector<double> values,
                       BatchBenefits(configs, evaluator, options, &partial));
  std::vector<int> best_config;
  double best_benefit = 0;
  for (size_t i = 0; i < configs.size(); ++i) {
    if (values[i] > best_benefit + kEps) {
      best_benefit = values[i];
      best_config = configs[i];
    }
  }
  return Finalize(set, std::move(best_config), evaluator, partial);
}

}  // namespace

const char* SearchAlgorithmName(SearchAlgorithm a) {
  switch (a) {
    case SearchAlgorithm::kGreedy:
      return "greedy";
    case SearchAlgorithm::kGreedyWithHeuristics:
      return "greedy+heuristics";
    case SearchAlgorithm::kTopDownLite:
      return "top-down lite";
    case SearchAlgorithm::kTopDownFull:
      return "top-down full";
    case SearchAlgorithm::kDynamicProgramming:
      return "dynamic programming";
    case SearchAlgorithm::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

Result<SearchOutcome> RunSearch(SearchAlgorithm algorithm,
                                const CandidateSet& set,
                                const std::vector<int>& roots,
                                BenefitEvaluator* evaluator,
                                const SearchOptions& options) {
  XIA_FAULT_INJECT(fault::points::kAdvisorSearch);
  switch (algorithm) {
    case SearchAlgorithm::kGreedy:
      return RunGreedy(set, evaluator, options);
    case SearchAlgorithm::kGreedyWithHeuristics:
      return RunGreedyWithHeuristics(set, evaluator, options);
    case SearchAlgorithm::kTopDownLite:
      return RunTopDown(set, roots, evaluator, options,
                        /*full_interaction=*/false);
    case SearchAlgorithm::kTopDownFull:
      return RunTopDown(set, roots, evaluator, options,
                        /*full_interaction=*/true);
    case SearchAlgorithm::kDynamicProgramming:
      return RunDynamicProgramming(set, evaluator, options);
    case SearchAlgorithm::kExhaustive:
      return RunExhaustive(set, evaluator, options);
  }
  return Status::InvalidArgument("unknown search algorithm");
}

}  // namespace xia::advisor
