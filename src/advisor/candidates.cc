#include "advisor/candidates.h"

#include <algorithm>

#include "fault/fault.h"

namespace xia::advisor {

std::string Candidate::ToString() const {
  std::string out = pattern.ToString() + " on " + collection;
  if (is_general) out += " [general]";
  return out;
}

int CandidateSet::Find(const std::string& collection,
                       const xpath::IndexPattern& pattern) const {
  for (const Candidate& c : candidates) {
    if (c.collection == collection && c.pattern == pattern) return c.id;
  }
  return -1;
}

Result<CandidateSet> EnumerateBasicCandidates(
    const engine::Workload& workload, const optimizer::Optimizer& optimizer,
    const fault::Deadline& deadline) {
  XIA_FAULT_INJECT(fault::points::kAdvisorEnumerate);
  CandidateSet set;
  for (size_t s = 0; s < workload.size(); ++s) {
    if (deadline.expired()) {
      set.partial = true;
      break;
    }
    auto patterns = optimizer.EnumerateIndexes(workload[s]);
    if (!patterns.ok()) return patterns.status();
    const std::string& collection = workload[s].collection();
    for (const xpath::IndexPattern& pattern : *patterns) {
      int id = set.Find(collection, pattern);
      if (id < 0) {
        Candidate c;
        c.id = static_cast<int>(set.candidates.size());
        c.collection = collection;
        c.pattern = pattern;
        c.is_general = false;
        c.covered_basics = {c.id};
        set.candidates.push_back(std::move(c));
        id = set.candidates.back().id;
      }
      auto& affected = set.candidates[static_cast<size_t>(id)].affected;
      if (std::find(affected.begin(), affected.end(), s) == affected.end()) {
        affected.push_back(s);
      }
    }
  }
  set.basic_count = set.candidates.size();
  return set;
}

Status PopulateStatistics(CandidateSet* set,
                          const storage::StatisticsCatalog& statistics,
                          const storage::CostConstants& cc) {
  for (Candidate& c : set->candidates) {
    auto data = statistics.Get(c.collection);
    if (!data.ok()) return data.status();
    c.stats = (*data)->DeriveIndexStats(c.pattern, cc);
  }
  return Status::OK();
}

}  // namespace xia::advisor
