#include "advisor/candidates.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/fault.h"
#include "storage/catalog.h"

namespace xia::advisor {

namespace {

// Folds one statement's enumerated patterns into the set: dedup by
// (collection, pattern), then record the statement in the affected set.
// Shared by the serial and parallel enumerations so both produce the same
// ids for the same per-statement pattern lists.
void MergeStatementPatterns(const std::string& collection, size_t statement,
                            const std::vector<xpath::IndexPattern>& patterns,
                            CandidateSet* set) {
  for (const xpath::IndexPattern& pattern : patterns) {
    int id = set->Find(collection, pattern);
    if (id < 0) {
      Candidate c;
      c.id = static_cast<int>(set->candidates.size());
      c.collection = collection;
      c.pattern = pattern;
      c.is_general = false;
      c.covered_basics = {c.id};
      set->candidates.push_back(std::move(c));
      id = set->candidates.back().id;
    }
    auto& affected = set->candidates[static_cast<size_t>(id)].affected;
    if (std::find(affected.begin(), affected.end(), statement) ==
        affected.end()) {
      affected.push_back(statement);
    }
  }
}

}  // namespace

std::string Candidate::ToString() const {
  std::string out = pattern.ToString() + " on " + collection;
  if (is_general) out += " [general]";
  return out;
}

int CandidateSet::Find(const std::string& collection,
                       const xpath::IndexPattern& pattern) const {
  for (const Candidate& c : candidates) {
    if (c.collection == collection && c.pattern == pattern) return c.id;
  }
  return -1;
}

Result<CandidateSet> EnumerateBasicCandidates(
    const engine::Workload& workload, const optimizer::Optimizer& optimizer,
    const fault::Deadline& deadline) {
  XIA_FAULT_INJECT(fault::points::kAdvisorEnumerate);
  CandidateSet set;
  for (size_t s = 0; s < workload.size(); ++s) {
    if (deadline.expired()) {
      set.partial = true;
      break;
    }
    auto patterns = optimizer.EnumerateIndexes(workload[s]);
    if (!patterns.ok()) return patterns.status();
    MergeStatementPatterns(workload[s].collection(), s, *patterns, &set);
  }
  set.basic_count = set.candidates.size();
  return set;
}

Result<CandidateSet> EnumerateBasicCandidates(
    const engine::Workload& workload, storage::DocumentStore* store,
    const storage::StatisticsCatalog* statistics,
    const storage::CostConstants& cc, util::ThreadPool* pool,
    const fault::Deadline& deadline) {
  XIA_FAULT_INJECT(fault::points::kAdvisorEnumerate);
  const size_t n = workload.size();

  // One scratch planning context per pool thread, leased per probe. The
  // probes only read the store/statistics (EnumerateIndexes never mutates
  // its catalog), but each still gets a private catalog + optimizer so the
  // per-instance call counters stay exact.
  struct Context {
    Context(storage::DocumentStore* store,
            const storage::StatisticsCatalog* statistics,
            const storage::CostConstants& cc)
        : catalog(store, statistics, cc),
          optimizer(store, &catalog, statistics) {}
    storage::Catalog catalog;
    optimizer::Optimizer optimizer;
  };
  std::vector<std::unique_ptr<Context>> contexts;
  std::vector<Context*> free_contexts;
  for (size_t i = 0; i < pool->thread_count() + 1; ++i) {
    contexts.push_back(std::make_unique<Context>(store, statistics, cc));
    free_contexts.push_back(contexts.back().get());
  }
  std::mutex free_mu;

  std::vector<std::vector<xpath::IndexPattern>> per_statement(n);
  std::vector<char> probed(n, 0);
  bool interrupted = false;
  XIA_RETURN_IF_ERROR(pool->ParallelFor(
      n,
      [&](size_t s) -> Status {
        Context* context;
        {
          std::lock_guard<std::mutex> lock(free_mu);
          context = free_contexts.back();
          free_contexts.pop_back();
        }
        auto patterns = context->optimizer.EnumerateIndexes(workload[s]);
        {
          std::lock_guard<std::mutex> lock(free_mu);
          free_contexts.push_back(context);
        }
        if (!patterns.ok()) return patterns.status();
        per_statement[s] = std::move(*patterns);
        probed[s] = 1;
        return Status::OK();
      },
      deadline, /*cancel=*/nullptr, &interrupted));

  // Serial merge in statement order: ids and affected sets come out
  // exactly as the serial enumeration would produce them.
  CandidateSet set;
  set.partial = interrupted;
  for (size_t s = 0; s < n; ++s) {
    if (!probed[s]) {
      set.partial = true;
      continue;
    }
    MergeStatementPatterns(workload[s].collection(), s, per_statement[s],
                           &set);
  }
  set.basic_count = set.candidates.size();
  for (const auto& context : contexts) {
    set.enumeration_optimizer_calls += context->optimizer.optimize_calls();
  }
  return set;
}

Status PopulateStatistics(CandidateSet* set,
                          const storage::StatisticsCatalog& statistics,
                          const storage::CostConstants& cc) {
  for (Candidate& c : set->candidates) {
    auto data = statistics.Get(c.collection);
    if (!data.ok()) return data.status();
    c.stats = (*data)->DeriveIndexStats(c.pattern, cc);
  }
  return Status::OK();
}

}  // namespace xia::advisor
