#include "advisor/baseline.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace xia::advisor {

namespace {

// How often the path's last label appears (as a whole step name) in the
// workload text — the baseline's optimizer-free notion of "this path
// matters to the workload". Deliberately shallow: it cannot tell a
// predicate from a return expression, which is one of the failure modes
// the paper attributes to decoupled advisors.
double TextAffinity(const std::vector<std::string>& labels,
                    const engine::Workload& workload) {
  if (labels.empty()) return 0;
  const std::string& last = labels.back();
  double affinity = 0;
  for (const auto& stmt : workload) {
    const std::string text = engine::ToText(stmt);
    size_t pos = 0;
    while ((pos = text.find(last, pos)) != std::string::npos) {
      affinity += stmt.frequency;
      pos += last.size();
    }
  }
  return affinity;
}

}  // namespace

Result<std::vector<DecoupledAdvisor::BaselineCandidate>>
DecoupledAdvisor::EnumerateCandidates(const engine::Workload& workload,
                                      const DecoupledOptions& options) const {
  // Collections mentioned by the workload.
  std::vector<std::string> collections;
  for (const auto& stmt : workload) {
    if (std::find(collections.begin(), collections.end(),
                  stmt.collection()) == collections.end()) {
      collections.push_back(stmt.collection());
    }
  }

  std::vector<BaselineCandidate> candidates;
  for (const std::string& collection : collections) {
    XIA_ASSIGN_OR_RETURN(const storage::CollectionStatistics* data,
                         statistics_->Get(collection));
    for (const auto& [path_string, stats] : data->paths()) {
      if (stats.labels.size() > options.max_path_depth) continue;
      if (stats.valued_count == 0) continue;
      // One candidate per concrete data path (paths that occur in the
      // data), typed by the dominant value kind.
      BaselineCandidate c;
      c.collection = collection;
      std::vector<xpath::Step> steps;
      for (const auto& label : stats.labels) {
        steps.emplace_back(xpath::Axis::kChild, label);
      }
      c.pattern.path = xpath::Path(std::move(steps));
      c.pattern.type = (stats.numeric_count * 2 >= stats.valued_count)
                           ? xpath::ValueType::kNumeric
                           : xpath::ValueType::kString;
      const storage::IndexStats derived =
          data->DeriveIndexStats(c.pattern, cc_);
      c.size_bytes = derived.size_bytes;
      // Optimizer-free benefit heuristic: workload text affinity scaled by
      // how much data the index would cover. Bigger looks better — the
      // opposite of what a cost-based what-if would conclude for
      // unselective paths.
      c.heuristic_benefit =
          TextAffinity(stats.labels, workload) *
          std::log2(2.0 + static_cast<double>(stats.count));
      candidates.push_back(std::move(c));
    }
  }
  return candidates;
}

Result<size_t> DecoupledAdvisor::CountCandidates(
    const engine::Workload& workload, const DecoupledOptions& options) const {
  XIA_ASSIGN_OR_RETURN(auto candidates,
                       EnumerateCandidates(workload, options));
  return candidates.size();
}

Result<Recommendation> DecoupledAdvisor::Recommend(
    const engine::Workload& workload, const DecoupledOptions& options) const {
  XIA_ASSIGN_OR_RETURN(std::vector<BaselineCandidate> candidates,
                       EnumerateCandidates(workload, options));

  // Greedy knapsack on the heuristic benefit density.
  std::sort(candidates.begin(), candidates.end(),
            [](const BaselineCandidate& a, const BaselineCandidate& b) {
              const double da =
                  a.heuristic_benefit /
                  std::max<double>(1.0, static_cast<double>(a.size_bytes));
              const double db =
                  b.heuristic_benefit /
                  std::max<double>(1.0, static_cast<double>(b.size_bytes));
              if (da != db) return da > db;
              return a.pattern.path.ToString() < b.pattern.path.ToString();
            });

  Recommendation rec;
  rec.basic_candidates = candidates.size();
  rec.total_candidates = candidates.size();
  double used = 0;
  for (const BaselineCandidate& c : candidates) {
    if (c.heuristic_benefit <= 0) continue;
    const double size = static_cast<double>(c.size_bytes);
    if (used + size > options.disk_budget_bytes) continue;
    used += size;
    RecommendedIndex ri;
    ri.collection = c.collection;
    ri.pattern = c.pattern;
    ri.size_bytes = c.size_bytes;
    ri.ddl = StringPrintf(
        "CREATE INDEX idx ON %s(xmlcol) GENERATE KEY USING XMLPATTERN '%s' "
        "AS SQL %s",
        c.collection.c_str(), c.pattern.path.ToString().c_str(),
        c.pattern.type == xpath::ValueType::kNumeric ? "DOUBLE"
                                                     : "VARCHAR(64)");
    rec.indexes.push_back(std::move(ri));
  }
  rec.total_size_bytes = used;
  // No optimizer coupling: the baseline cannot report benefit/speedup
  // numbers of its own that mean anything; harnesses evaluate its output
  // with the real optimizer.
  rec.benefit = 0;
  rec.est_speedup = 0;
  rec.optimizer_calls = 0;
  return rec;
}

}  // namespace xia::advisor
