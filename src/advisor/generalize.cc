#include "advisor/generalize.h"

#include <algorithm>
#include <set>
#include <string>

#include "xpath/containment.h"

namespace xia::advisor {

namespace {

using xpath::Axis;
using xpath::Path;
using xpath::Step;

// Recursion state for Algorithm 1: positions i, j into the step lists of
// the two patterns being generalized.
struct Generalizer {
  const std::vector<Step>& a;
  const std::vector<Step>& b;
  std::set<std::string> seen;   // dedup by rendered path
  std::vector<Path> results;
  // The recursion tree is small for realistic patterns, but Rule 4 branches
  // three ways; cap defensively.
  int budget = 4096;

  bool IsLastA(size_t i) const { return i + 1 == a.size(); }
  bool IsLastB(size_t j) const { return j + 1 == b.size(); }

  static Axis GenAxis(Axis x, Axis y) {
    return (x == Axis::kDescendant || y == Axis::kDescendant)
               ? Axis::kDescendant
               : Axis::kChild;
  }

  void Emit(const Path& gen) {
    const Path rewritten = RewriteWildcardRuns(gen);
    const std::string key = rewritten.ToString();
    if (seen.insert(key).second) results.push_back(rewritten);
  }

  // Appends the generalization of steps a[i] and b[j] to `gen`.
  static void AppendGeneralized(Path* gen, const Step& x, const Step& y) {
    const std::string name = (x.name_test == y.name_test) ? x.name_test : "*";
    gen->Append(GenAxis(x.axis, y.axis), name);
  }

  // Algorithm 1: generalize current nodes, then advance.
  void GeneralizeStep(Path gen, size_t i, size_t j) {
    if (--budget < 0) return;
    if (IsLastA(i) != IsLastB(j)) {
      AdvanceStep(std::move(gen), i, j);
      return;
    }
    AppendGeneralized(&gen, a[i], b[j]);
    AdvanceStep(std::move(gen), i, j);
  }

  // Table II.
  void AdvanceStep(Path gen, size_t i, size_t j) {
    if (--budget < 0) return;
    const bool la = IsLastA(i);
    const bool lb = IsLastB(j);
    if (la && lb) {  // Rule 1
      Emit(gen);
      return;
    }
    if (la && !lb) {  // Rule 2: skip b's middle, land on its last step.
      Path g = gen;
      g.Append(Axis::kChild, "*");
      GeneralizeStep(std::move(g), i, b.size() - 1);
      return;
    }
    if (!la && lb) {  // Rule 3: symmetric.
      Path g = gen;
      g.Append(Axis::kChild, "*");
      GeneralizeStep(std::move(g), a.size() - 1, j);
      return;
    }
    // Rule 4: both middle steps; a[i] and b[j] are already generalized
    // into genXPath, so the branches operate on the next unconsumed nodes.
    // (1) advance both.
    GeneralizeStep(gen, i + 1, j + 1);
    // (2) look for b[j+1]'s name beyond a[i+1]; aligning them records a's
    // skipped steps as a wildcard gap (widened to '//' by Rule 0).
    for (size_t k = i + 2; k < a.size(); ++k) {
      if (a[k].name_test == b[j + 1].name_test) {
        Path g = gen;
        g.Append(Axis::kChild, "*");
        GeneralizeStep(std::move(g), k, j + 1);
        break;
      }
    }
    // (3) symmetric: a[i+1]'s name further in b.
    for (size_t k = j + 2; k < b.size(); ++k) {
      if (b[k].name_test == a[i + 1].name_test) {
        Path g = gen;
        g.Append(Axis::kChild, "*");
        GeneralizeStep(std::move(g), i + 1, k);
        break;
      }
    }
  }
};

}  // namespace

xpath::Path RewriteWildcardRuns(const xpath::Path& path) {
  const auto& steps = path.steps();
  std::vector<Step> out;
  bool pending_descendant = false;
  for (size_t i = 0; i < steps.size(); ++i) {
    const bool last = (i + 1 == steps.size());
    if (!last && steps[i].is_wildcard()) {
      // Drop the interior wildcard; the next kept step becomes descendant.
      pending_descendant = true;
      continue;
    }
    Step s = steps[i];
    if (pending_descendant) {
      s.axis = Axis::kDescendant;
      pending_descendant = false;
    }
    out.push_back(std::move(s));
  }
  return Path(std::move(out));
}

std::vector<xpath::Path> GeneralizePair(const xpath::Path& a,
                                        const xpath::Path& b) {
  if (a.empty() || b.empty()) return {};
  Generalizer g{a.steps(), b.steps(), {}, {}, 4096};
  g.GeneralizeStep(Path(), 0, 0);
  return std::move(g.results);
}

GeneralizeStats GeneralizeCandidates(CandidateSet* set) {
  GeneralizeStats stats;
  // Pairs already processed, by candidate ids.
  std::set<std::pair<int, int>> done;

  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.rounds;
    const size_t n = set->candidates.size();
    for (size_t x = 0; x < n; ++x) {
      for (size_t y = x + 1; y < n; ++y) {
        // Copy the pair's fields: appending generalized candidates below
        // reallocates the vector, so references into it must not be held
        // across the push_back.
        const std::string collection = (*set)[x].collection;
        const xpath::IndexPattern pattern_x = (*set)[x].pattern;
        const xpath::IndexPattern pattern_y = (*set)[y].pattern;
        const int id_x = (*set)[x].id;
        const int id_y = (*set)[y].id;
        if (collection != (*set)[y].collection) continue;
        if (pattern_x.structural != pattern_y.structural) continue;
        if (!pattern_x.structural && pattern_x.type != pattern_y.type) {
          continue;
        }
        if (!done.insert({id_x, id_y}).second) continue;
        ++stats.pairs_considered;

        for (const xpath::Path& gen :
             GeneralizePair(pattern_x.path, pattern_y.path)) {
          const xpath::IndexPattern pattern{gen, pattern_x.type,
                                            pattern_x.structural};
          if (set->Find(collection, pattern) >= 0) continue;
          // Skip generalizations equivalent to an input (e.g. generalizing
          // a pattern with a pattern it already covers).
          if (xpath::Equivalent(gen, pattern_x.path) ||
              xpath::Equivalent(gen, pattern_y.path)) {
            continue;
          }
          Candidate c;
          c.id = static_cast<int>(set->candidates.size());
          c.collection = collection;
          c.pattern = pattern;
          c.is_general = true;
          // Coverage and affected sets from the basic candidates.
          for (size_t b = 0; b < set->basic_count; ++b) {
            const Candidate& basic = (*set)[b];
            if (basic.collection != c.collection) continue;
            if (basic.pattern.structural != c.pattern.structural) continue;
            if (!basic.pattern.structural &&
                basic.pattern.type != c.pattern.type) {
              continue;
            }
            if (xpath::Covers(c.pattern.path, basic.pattern.path)) {
              c.covered_basics.push_back(basic.id);
              for (size_t s : basic.affected) {
                if (std::find(c.affected.begin(), c.affected.end(), s) ==
                    c.affected.end()) {
                  c.affected.push_back(s);
                }
              }
            }
          }
          std::sort(c.affected.begin(), c.affected.end());
          set->candidates.push_back(std::move(c));
          ++stats.generated;
          changed = true;
        }
      }
    }
  }
  return stats;
}

}  // namespace xia::advisor
