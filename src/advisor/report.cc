#include "advisor/report.h"

#include "optimizer/optimizer.h"
#include "storage/catalog.h"
#include "util/string_util.h"

namespace xia::advisor {

namespace {

const char* PlanKindName(optimizer::Plan::Kind kind) {
  switch (kind) {
    case optimizer::Plan::Kind::kCollectionScan:
      return "SCAN";
    case optimizer::Plan::Kind::kIndexScan:
      return "INDEX";
    case optimizer::Plan::Kind::kIndexAnd:
      return "IXAND";
    case optimizer::Plan::Kind::kInsert:
      return "INSERT";
    case optimizer::Plan::Kind::kDelete:
      return "DELETE";
    case optimizer::Plan::Kind::kUpdate:
      return "UPDATE";
  }
  return "?";
}

}  // namespace

Result<std::string> RenderReport(const engine::Workload& workload,
                                 const Recommendation& recommendation,
                                 storage::DocumentStore* store,
                                 const storage::StatisticsCatalog* statistics,
                                 const ReportOptions& options) {
  std::string out;
  out += "=== XML Index Advisor report ===\n";
  out += StringPrintf(
      "workload: %zu statements | candidates: %zu basic, %zu total\n",
      workload.size(), recommendation.basic_candidates,
      recommendation.total_candidates);
  out += StringPrintf(
      "recommended: %zu indexes, %s | est. workload speedup %.2fx\n",
      recommendation.indexes.size(),
      HumanBytes(recommendation.total_size_bytes).c_str(),
      recommendation.est_speedup);
  out += StringPrintf(
      "advisor work: %llu optimizer calls in %.3fs\n",
      static_cast<unsigned long long>(recommendation.optimizer_calls),
      recommendation.advisor_seconds);
  if (recommendation.partial) {
    out +=
        "partial: true (time budget hit; best configuration found so far)\n";
  }

  if (!recommendation.trace.empty()) {
    out += "\n--- pipeline phases ---\n";
    out += recommendation.trace.ToString();
    out += StringPrintf(
        "phase total: %.3fs of %.3fs advisor wall time\n",
        recommendation.trace.PhaseSeconds(), recommendation.advisor_seconds);
  }

  if (options.show_ddl) {
    out += "\n--- recommended DDL ---\n";
    if (recommendation.indexes.empty()) {
      out += "(no indexes pay off under this budget)\n";
    }
    for (const RecommendedIndex& ri : recommendation.indexes) {
      out += StringPrintf("%s;  -- %s%s\n", ri.ddl.c_str(),
                          HumanBytes(static_cast<double>(ri.size_bytes))
                              .c_str(),
                          ri.is_general ? ", general" : "");
    }
  }

  if (options.per_statement) {
    // Re-optimize with the configuration virtual.
    storage::Catalog catalog(store, statistics);
    int i = 0;
    for (const RecommendedIndex& ri : recommendation.indexes) {
      auto created = catalog.CreateVirtualIndex(
          StringPrintf("report_%d", i++), ri.collection, ri.pattern);
      if (!created.ok()) return created.status();
    }
    optimizer::Optimizer opt(store, &catalog, statistics);

    out += "\n--- per-statement impact ---\n";
    out += StringPrintf("%-26s %6s %12s %12s %9s  %s\n", "statement", "freq",
                        "cost before", "cost after", "gain", "plan");
    for (const engine::Statement& stmt : workload) {
      XIA_ASSIGN_OR_RETURN(const optimizer::Plan before,
                           opt.OptimizeWithoutIndexes(stmt));
      XIA_ASSIGN_OR_RETURN(const optimizer::Plan after, opt.Optimize(stmt));
      const double gain =
          before.est_cost <= 0
              ? 0
              : 100.0 * (before.est_cost - after.est_cost) / before.est_cost;
      std::string plan_text = PlanKindName(after.kind);
      for (const auto& leg : after.legs) {
        plan_text += " " + leg.index_pattern.path.ToString();
      }
      out += StringPrintf("%-26.26s %6g %12.1f %12.1f %8.1f%%  %s\n",
                          (stmt.label.empty() ? engine::ToText(stmt)
                                              : stmt.label)
                              .c_str(),
                          stmt.frequency, before.est_cost, after.est_cost,
                          gain, plan_text.c_str());
    }
  }
  return out;
}

}  // namespace xia::advisor
