// Candidate generalization (§V, Algorithm 1 and Table II).
//
// Pairs of candidate index patterns of the same value type are generalized
// into patterns that cover both, by walking the two step lists in parallel:
// equal name tests are kept, differing ones widen to '*', axes widen to
// '//' if either input uses '//', and skipped steps become wildcard gaps.
// Rule 0 then rewrites interior '/*' runs into a descendant axis on the
// following step ("/a/*/b" -> "/a//b" — a deliberate widening).
//
// Note on fidelity: the paper's printed Rule 4 advances the pointer
// arguments in a way that contradicts its own worked examples (pairing the
// found reoccurrence with the *next* node would never emit the matched
// label, yet the paper derives /a//b/d from {/a/b/d, /a/d/b/d}). We
// implement the variant that reproduces the paper's example outputs:
// branches (2)/(3) align the reoccurrence with the other expression's
// current node and generalize them together.

#ifndef XIA_ADVISOR_GENERALIZE_H_
#define XIA_ADVISOR_GENERALIZE_H_

#include <vector>

#include "advisor/candidates.h"
#include "xpath/path.h"

namespace xia::advisor {

/// Table II Rule 0: every interior wildcard step is removed and the next
/// step's axis becomes descendant. The result covers the input.
xpath::Path RewriteWildcardRuns(const xpath::Path& path);

/// Generalizes one pair of linear patterns. Returns the (deduplicated)
/// generalized patterns, each covering both inputs. Inputs of length 0 are
/// rejected with an empty result.
std::vector<xpath::Path> GeneralizePair(const xpath::Path& a,
                                        const xpath::Path& b);

/// Statistics of a generalization run.
struct GeneralizeStats {
  size_t pairs_considered = 0;
  size_t generated = 0;
  size_t rounds = 0;
};

/// Expands `set` with generalized candidates: applies GeneralizePair to
/// every compatible pair (same collection, same value type) including newly
/// generated candidates, to a fixpoint (§V). New candidates get
/// covered_basics and affected sets derived by containment over the basic
/// candidates. DAG edges are left to BuildDag.
GeneralizeStats GeneralizeCandidates(CandidateSet* set);

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_GENERALIZE_H_
