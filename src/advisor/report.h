// Human-readable advisor reports.
//
// Renders a Recommendation the way commercial design advisors do: the
// recommended DDL, configuration totals, and a per-statement breakdown of
// estimated cost before/after (with the plan and the indexes each
// statement would use), computed by re-optimizing the workload against
// the recommended configuration created virtually.

#ifndef XIA_ADVISOR_REPORT_H_
#define XIA_ADVISOR_REPORT_H_

#include <string>

#include "advisor/advisor.h"
#include "engine/query.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"

namespace xia::advisor {

/// Report rendering options.
struct ReportOptions {
  /// Include the per-statement before/after table.
  bool per_statement = true;
  /// Include the DDL block.
  bool show_ddl = true;
};

/// Renders a text report for `recommendation` over `workload`. The store
/// and statistics must be the ones the recommendation was computed
/// against.
Result<std::string> RenderReport(const engine::Workload& workload,
                                 const Recommendation& recommendation,
                                 storage::DocumentStore* store,
                                 const storage::StatisticsCatalog* statistics,
                                 const ReportOptions& options = {});

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_REPORT_H_
