// Configuration search (§VI): five algorithms over the candidate set.
//
//  * kGreedy              — greedy 0/1 knapsack on standalone benefits,
//                           ignores index interaction and redundancy.
//  * kGreedyWithHeuristics— greedy on whole-configuration benefit with the
//                           coverage bitmap and the general-index admission
//                           conditions IB(x_g) >= IB(x_1..x_n) and
//                           Size(x_g) <= (1+beta) * sum Size(x_i)  (§VI-A).
//  * kTopDownLite         — DAG descent choosing the general index with the
//                           smallest dB/dC to replace by its children,
//                           benefits additive (no interaction)     (§VI-B).
//  * kTopDownFull         — same descent, but dB evaluated on whole
//                           configurations via the BenefitEvaluator.
//  * kDynamicProgramming  — exact 0/1 knapsack on standalone benefits
//                           (optimal modulo index interaction).

#ifndef XIA_ADVISOR_SEARCH_H_
#define XIA_ADVISOR_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/benefit.h"
#include "advisor/candidates.h"
#include "fault/deadline.h"
#include "util/status.h"

namespace xia::advisor {

enum class SearchAlgorithm {
  kGreedy = 0,
  kGreedyWithHeuristics,
  kTopDownLite,
  kTopDownFull,
  kDynamicProgramming,
  /// Interaction-aware exhaustive enumeration of every subset. The true
  /// optimum, exponential in the candidate count — refused beyond
  /// SearchOptions::exhaustive_limit candidates. The paper cites
  /// exhaustive search as the (too slow) alternative in [21]; here it
  /// serves as the oracle that bounds the other algorithms in tests.
  kExhaustive,
};

const char* SearchAlgorithmName(SearchAlgorithm a);

/// Search tuning knobs.
struct SearchOptions {
  /// Disk budget in bytes.
  double disk_budget_bytes = 0;
  /// beta of the size heuristic (§VI-A); 0.10 per the paper.
  double beta = 0.10;
  /// Knapsack size granularity for dynamic programming, in bytes.
  double dp_granularity_bytes = 4096;
  /// Candidate-count cap for kExhaustive (2^n subsets are evaluated).
  size_t exhaustive_limit = 16;
  /// Time budget. Polled between configuration evaluations; on expiry the
  /// search stops and returns its best configuration so far with
  /// SearchOutcome::partial set — never an error. The overrun is bounded
  /// by one benefit evaluation (the final Finalize pass is always
  /// allowed, so even a partial outcome carries a real benefit figure).
  fault::Deadline deadline;
  /// Cooperative cancellation, polled alongside the deadline. Not owned.
  const fault::CancelToken* cancel = nullptr;
  /// Worker pool for batch-evaluating the independent candidate-extension
  /// probes of a search step (not owned; may be null = serial). Selection
  /// runs serially over the precomputed values in candidate order, so
  /// parallel and serial searches pick identical configurations.
  util::ThreadPool* pool = nullptr;
};

/// Outcome of a search.
struct SearchOutcome {
  std::vector<int> selected;  ///< candidate ids, sorted
  double total_size_bytes = 0;
  double benefit = 0;  ///< configuration benefit (§III) of `selected`
  int general_count = 0;
  int specific_count = 0;
  /// True when the search stopped on a deadline or cancellation and
  /// `selected` is the best configuration found so far.
  bool partial = false;
};

/// Runs `algorithm` over the candidates. `roots` are the DAG roots from
/// BuildDag (required by the top-down algorithms, ignored otherwise).
Result<SearchOutcome> RunSearch(SearchAlgorithm algorithm,
                                const CandidateSet& set,
                                const std::vector<int>& roots,
                                BenefitEvaluator* evaluator,
                                const SearchOptions& options);

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_SEARCH_H_
