#include "advisor/advisor.h"

#include <algorithm>
#include <memory>

#include "advisor/dag.h"
#include "advisor/generalize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace xia::advisor {

namespace {

std::string MakeDdl(const RecommendedIndex& index) {
  if (index.pattern.structural) {
    return StringPrintf(
        "CREATE STRUCTURAL INDEX %s ON %s(xmlcol) USING XMLPATTERN '%s'",
        "idx", index.collection.c_str(),
        index.pattern.path.ToString().c_str());
  }
  return StringPrintf(
      "CREATE INDEX %s ON %s(xmlcol) GENERATE KEY USING XMLPATTERN '%s' AS "
      "SQL %s",
      "idx", index.collection.c_str(), index.pattern.path.ToString().c_str(),
      index.pattern.type == xpath::ValueType::kNumeric ? "DOUBLE"
                                                       : "VARCHAR(64)");
}

}  // namespace

Result<CandidateSet> IndexAdvisor::BuildCandidates(
    const engine::Workload& workload, bool generalize, obs::Tracer* tracer,
    const fault::Deadline& deadline, util::ThreadPool* pool) {
  obs::ScopedSpan enumerate_span(tracer, "enumerate");
  CandidateSet set;
  if (pool != nullptr && pool->thread_count() > 1 && workload.size() > 1) {
    enumerate_span.AnnotateThreads(static_cast<int>(pool->thread_count()));
    XIA_ASSIGN_OR_RETURN(
        set, EnumerateBasicCandidates(workload, store_, statistics_, cc_,
                                      pool, deadline));
  } else {
    storage::Catalog scratch(store_, statistics_, cc_);
    optimizer::Optimizer opt(store_, &scratch, statistics_);
    XIA_ASSIGN_OR_RETURN(set,
                         EnumerateBasicCandidates(workload, opt, deadline));
    set.enumeration_optimizer_calls = opt.optimize_calls();
  }
  enumerate_span.AnnotateItems(static_cast<double>(set.basic_count));
  enumerate_span.End();

  obs::ScopedSpan generalize_span(tracer, "generalize");
  if (generalize) GeneralizeCandidates(&set);
  generalize_span.AnnotateItems(
      static_cast<double>(set.size() - set.basic_count));
  generalize_span.End();

  obs::ScopedSpan statistics_span(tracer, "statistics");
  XIA_RETURN_IF_ERROR(PopulateStatistics(&set, *statistics_, cc_));
  statistics_span.AnnotateItems(static_cast<double>(set.size()));
  statistics_span.End();

  XIA_OBS_GAUGE_SET("xia.advisor.basic_candidates",
                    static_cast<double>(set.basic_count));
  XIA_OBS_GAUGE_SET("xia.advisor.total_candidates",
                    static_cast<double>(set.size()));
  return set;
}

Result<Recommendation> IndexAdvisor::RecommendImpl(
    const engine::Workload& input_workload, const AdvisorOptions& options,
    bool all_index) {
  Stopwatch timer;
  XIA_OBS_COUNT("xia.advisor.runs", 1);
  // One deadline covers the whole pipeline: enumeration and search both
  // poll it and degrade to best-so-far instead of erroring out.
  const fault::Deadline deadline = options.budget_ms > 0
                                       ? fault::Deadline::AfterMillis(
                                             options.budget_ms)
                                       : fault::Deadline::Infinite();
  // The tracer records each pipeline phase as a depth-0 span, annotated
  // with the delta of the process-wide optimizer-call counter — every
  // optimizer the pipeline touches feeds it, so phase deltas tile the
  // run's total call count.
  obs::Tracer tracer;
  tracer.TrackCounter(obs::MetricsRegistry::Global().GetCounter(
      "xia.optimizer.optimize_calls"));

  // Resolve the worker pool: an explicit pool wins; otherwise `threads`
  // spins up a run-local one (0 = one per hardware thread). A one-thread
  // pool is just serial with overhead, so it degrades to no pool at all.
  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr) {
    const size_t threads = options.threads == 0
                               ? util::ThreadPool::DefaultThreadCount()
                               : options.threads;
    if (threads > 1) {
      local_pool = std::make_unique<util::ThreadPool>(threads);
      pool = local_pool.get();
    }
  }
  if (pool != nullptr && pool->thread_count() <= 1) pool = nullptr;
  const int effective_threads =
      pool == nullptr ? 1 : static_cast<int>(pool->thread_count());
  XIA_OBS_GAUGE_SET("xia.advisor.threads",
                    static_cast<double>(effective_threads));

  // Duplicate statements fold into one probe with a summed frequency
  // (§III weights each unique statement by its frequency).
  obs::ScopedSpan compact_span(&tracer, "compact");
  const engine::Workload workload = engine::CompactWorkload(input_workload);
  compact_span.AnnotateItems(static_cast<double>(workload.size()));
  compact_span.End();

  XIA_ASSIGN_OR_RETURN(
      CandidateSet set,
      BuildCandidates(workload, options.generalize, &tracer, deadline, pool));

  obs::ScopedSpan dag_span(&tracer, "dag");
  const std::vector<int> roots = BuildDag(&set);
  dag_span.AnnotateItems(static_cast<double>(roots.size()));
  dag_span.End();

  obs::ScopedSpan init_span(&tracer, "initialize");
  init_span.AnnotateThreads(effective_threads);
  storage::Catalog whatif_catalog(store_, statistics_, cc_);
  BenefitEvaluator::Options eval_options;
  eval_options.use_subconfigurations = options.use_subconfigurations;
  eval_options.use_affected_sets = options.use_affected_sets;
  eval_options.charge_maintenance = options.charge_maintenance;
  eval_options.pool = pool;
  BenefitEvaluator evaluator(&workload, &set, &whatif_catalog, statistics_,
                             store_, eval_options);
  XIA_RETURN_IF_ERROR(evaluator.Initialize());
  init_span.End();

  obs::ScopedSpan search_span(&tracer, "search");
  search_span.AnnotateThreads(effective_threads);
  SearchOutcome outcome;
  if (all_index) {
    // Every basic candidate, no budget constraint.
    std::vector<int> selected;
    for (size_t i = 0; i < set.basic_count; ++i) {
      selected.push_back(static_cast<int>(i));
    }
    outcome.selected = selected;
    for (int id : selected) {
      outcome.total_size_bytes +=
          static_cast<double>(set[static_cast<size_t>(id)].size_bytes());
      ++outcome.specific_count;
    }
    XIA_ASSIGN_OR_RETURN(outcome.benefit,
                         evaluator.ConfigurationBenefit(selected));
  } else {
    SearchOptions search_options;
    search_options.disk_budget_bytes = options.disk_budget_bytes;
    search_options.beta = options.beta;
    search_options.deadline = deadline;
    search_options.cancel = options.cancel;
    search_options.pool = pool;
    XIA_ASSIGN_OR_RETURN(
        outcome,
        RunSearch(options.algorithm, set, roots, &evaluator, search_options));
  }
  search_span.AnnotateItems(static_cast<double>(outcome.selected.size()));
  search_span.End();

  obs::ScopedSpan finalize_span(&tracer, "finalize");
  Recommendation rec;
  for (int id : outcome.selected) {
    const Candidate& c = set[static_cast<size_t>(id)];
    RecommendedIndex ri;
    ri.collection = c.collection;
    ri.pattern = c.pattern;
    ri.is_general = c.is_general;
    ri.size_bytes = c.size_bytes();
    ri.ddl = MakeDdl(ri);
    rec.indexes.push_back(std::move(ri));
  }
  rec.total_size_bytes = outcome.total_size_bytes;
  rec.base_cost = evaluator.base_workload_cost();
  rec.benefit = outcome.benefit;
  const double with_config = rec.base_cost - rec.benefit;
  rec.est_speedup = with_config <= 0 ? 1e12 : rec.base_cost / with_config;
  rec.basic_candidates = set.basic_count;
  rec.total_candidates = set.size();
  rec.general_count = outcome.general_count;
  rec.specific_count = outcome.specific_count;
  rec.partial = set.partial || outcome.partial;
  if (rec.partial) XIA_OBS_COUNT("xia.advisor.partial_runs", 1);
  // Enumeration probes ran on a short-lived optimizer inside
  // BuildCandidates; count them too, not just the evaluator's what-ifs.
  rec.optimizer_calls =
      set.enumeration_optimizer_calls + evaluator.optimizer_calls();
  finalize_span.AnnotateItems(static_cast<double>(rec.indexes.size()));
  finalize_span.End();

  rec.trace = tracer.Finish();
  for (const obs::SpanRecord& span : rec.trace.spans) {
    if (span.depth == 0) {
      XIA_OBS_OBSERVE_LATENCY("xia.advisor.phase.seconds", span.seconds);
    }
  }
  XIA_OBS_GAUGE_SET("xia.advisor.selected_indexes",
                    static_cast<double>(rec.indexes.size()));
  rec.advisor_seconds = timer.ElapsedSeconds();
  XIA_OBS_OBSERVE_LATENCY("xia.advisor.recommend.seconds",
                          rec.advisor_seconds);
  return rec;
}

Result<Recommendation> IndexAdvisor::Recommend(const engine::Workload& workload,
                                               const AdvisorOptions& options) {
  return RecommendImpl(workload, options, /*all_index=*/false);
}

Result<Recommendation> IndexAdvisor::AllIndexConfiguration(
    const engine::Workload& workload) {
  AdvisorOptions options;
  options.generalize = false;
  return RecommendImpl(workload, options, /*all_index=*/true);
}

Status IndexAdvisor::Materialize(const Recommendation& recommendation,
                                 storage::Catalog* catalog,
                                 const std::string& name_prefix) const {
  int i = 0;
  for (const RecommendedIndex& ri : recommendation.indexes) {
    auto created = catalog->CreateIndex(
        StringPrintf("%s_%d", name_prefix.c_str(), i++), ri.collection,
        ri.pattern);
    if (!created.ok()) return created.status();
  }
  return Status::OK();
}

}  // namespace xia::advisor
