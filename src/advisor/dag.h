// The candidate DAG used by top-down search (§VI-B).
//
// Nodes are candidates; an edge g -> c means g is an *immediate*
// generalization of c (g strictly covers c with no third candidate strictly
// between them). Roots are the most general candidates obtainable from the
// workload; top-down search starts from the roots and repeatedly replaces a
// general index by its children until the configuration fits the budget.

#ifndef XIA_ADVISOR_DAG_H_
#define XIA_ADVISOR_DAG_H_

#include <vector>

#include "advisor/candidates.h"

namespace xia::advisor {

/// Populates Candidate::children / Candidate::parents with the transitive
/// reduction of the strict-coverage relation (per collection and type), and
/// returns the root candidate ids (no parents). Candidates equivalent to
/// one another are collapsed by keeping edges only through the one with the
/// smallest id.
std::vector<int> BuildDag(CandidateSet* set);

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_DAG_H_
