// A *decoupled* baseline advisor, modeled on the systems the paper
// criticizes in §II ([19] Hammerschmidt et al., [20] XIST):
//
//  * candidate generation is data-driven — every concrete rooted path with
//    values becomes a candidate ("the candidate indexes used in [20] are
//    the paths that occur in the data"), which the paper calls "an
//    uncontrolled explosion of the space";
//  * the cost model is independent of the query optimizer — a heuristic
//    over path statistics and shallow workload text matching, so there is
//    "no guarantee that the optimizer will use the recommended indexes and
//    no guarantee that the benefits ... are estimated with any accuracy";
//  * configuration selection is a plain greedy knapsack.
//
// The bench_baseline_comparison harness evaluates its recommendations with
// the *real* optimizer to quantify exactly those two failure modes against
// the tightly-coupled advisor.

#ifndef XIA_ADVISOR_BASELINE_H_
#define XIA_ADVISOR_BASELINE_H_

#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "engine/query.h"
#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"

namespace xia::advisor {

/// Options for the decoupled baseline.
struct DecoupledOptions {
  double disk_budget_bytes = 100.0 * 1024 * 1024;
  /// Paths deeper than this are not considered (the baseline's only guard
  /// against its own candidate explosion).
  size_t max_path_depth = 8;
};

/// The decoupled advisor. Produces the same Recommendation shape as
/// IndexAdvisor so harnesses can evaluate both identically.
class DecoupledAdvisor {
 public:
  DecoupledAdvisor(const storage::DocumentStore* store,
                   const storage::StatisticsCatalog* statistics,
                   const storage::CostConstants& cc =
                       storage::DefaultCostConstants())
      : store_(store), statistics_(statistics), cc_(cc) {}

  /// Recommends a configuration using only data statistics and workload
  /// text — never consulting the optimizer.
  Result<Recommendation> Recommend(const engine::Workload& workload,
                                   const DecoupledOptions& options) const;

  /// Number of candidates the data-driven enumeration produces (Table-III
  /// style accounting of the §II "explosion" critique).
  Result<size_t> CountCandidates(const engine::Workload& workload,
                                 const DecoupledOptions& options) const;

 private:
  struct BaselineCandidate {
    std::string collection;
    xpath::IndexPattern pattern;
    double heuristic_benefit = 0;
    uint64_t size_bytes = 0;
  };

  Result<std::vector<BaselineCandidate>> EnumerateCandidates(
      const engine::Workload& workload,
      const DecoupledOptions& options) const;

  const storage::DocumentStore* store_;
  const storage::StatisticsCatalog* statistics_;
  storage::CostConstants cc_;
};

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_BASELINE_H_
