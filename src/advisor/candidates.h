// Candidate indexes and the basic candidate set (§IV).
//
// Basic candidates come straight from the optimizer's Enumerate Indexes
// mode, one probe per workload statement; each candidate remembers which
// statements produced it — its *affected set* (§VI-C) — and is later
// annotated with derived statistics (size, levels) from the collection's
// data statistics.

#ifndef XIA_ADVISOR_CANDIDATES_H_
#define XIA_ADVISOR_CANDIDATES_H_

#include <string>
#include <vector>

#include "engine/query.h"
#include "fault/deadline.h"
#include "optimizer/optimizer.h"
#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xpath/path.h"

namespace xia::advisor {

/// One candidate index.
struct Candidate {
  /// Position in CandidateSet::candidates.
  int id = -1;
  std::string collection;
  xpath::IndexPattern pattern;
  /// True when produced by the generalization step (§V).
  bool is_general = false;
  /// DAG edges: immediate more-specific candidates this one covers.
  std::vector<int> children;
  /// DAG edges: immediate generalizations of this candidate.
  std::vector<int> parents;
  /// Ids of the *basic* candidates whose patterns this candidate covers
  /// (for a basic candidate: itself).
  std::vector<int> covered_basics;
  /// Workload statement indices that can benefit from this index (§VI-C).
  std::vector<size_t> affected;
  /// Statistics derived from data statistics (the virtual-index stats).
  storage::IndexStats stats;

  uint64_t size_bytes() const { return stats.size_bytes; }
  std::string ToString() const;
};

/// The candidate set: basic candidates first, generalized ones appended.
struct CandidateSet {
  std::vector<Candidate> candidates;
  /// candidates[0 .. basic_count) are the basic set.
  size_t basic_count = 0;
  /// Optimizer calls consumed by the Enumerate Indexes probes that built
  /// the basic set. These come from a short-lived enumeration optimizer, so
  /// the advisor must add them to its evaluator's count — dropping them
  /// (the old behaviour) understated Recommendation::optimizer_calls.
  uint64_t enumeration_optimizer_calls = 0;
  /// True when enumeration stopped early on a deadline: candidates from
  /// the statements probed so far are present, later statements were never
  /// probed.
  bool partial = false;

  /// Index of the candidate with this collection and pattern, or -1.
  int Find(const std::string& collection,
           const xpath::IndexPattern& pattern) const;

  size_t size() const { return candidates.size(); }
  const Candidate& operator[](size_t i) const { return candidates[i]; }
  Candidate& operator[](size_t i) { return candidates[i]; }
};

/// Runs the optimizer in Enumerate Indexes mode on every statement and
/// collects the deduplicated basic candidate set with affected sets.
/// The deadline is polled between statements: on expiry the set built so
/// far is returned with `partial` set, rather than an error — a partial
/// candidate set still supports a best-so-far recommendation.
Result<CandidateSet> EnumerateBasicCandidates(
    const engine::Workload& workload, const optimizer::Optimizer& optimizer,
    const fault::Deadline& deadline = fault::Deadline());

/// Parallel enumeration: probes statements concurrently on `pool`, each
/// probe planning through a leased scratch catalog + optimizer, then
/// merges the per-statement pattern lists serially in statement order —
/// candidate ids, affected sets, and the dedup outcome are identical to
/// the serial enumeration. Statements the deadline cut off are skipped
/// (their patterns never merge) and `partial` is set.
/// CandidateSet::enumeration_optimizer_calls is filled in from the scratch
/// optimizers before returning.
Result<CandidateSet> EnumerateBasicCandidates(
    const engine::Workload& workload, storage::DocumentStore* store,
    const storage::StatisticsCatalog* statistics,
    const storage::CostConstants& cc, util::ThreadPool* pool,
    const fault::Deadline& deadline = fault::Deadline());

/// Fills Candidate::stats for every candidate from data statistics.
Status PopulateStatistics(CandidateSet* set,
                          const storage::StatisticsCatalog& statistics,
                          const storage::CostConstants& cc);

}  // namespace xia::advisor

#endif  // XIA_ADVISOR_CANDIDATES_H_
