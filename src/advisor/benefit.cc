#include "advisor/benefit.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace xia::advisor {

BenefitCache::Shard& BenefitCache::ShardFor(const std::vector<int>& key) {
  // FNV-1a over the ids; the key is canonical (sorted) by the time it
  // reaches the cache, so equal configurations always land on one shard.
  uint64_t h = 1469598103934665603ull;
  for (int id : key) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
    h *= 1099511628211ull;
  }
  return shards_[h % kShardCount];
}

Result<double> BenefitCache::GetOrCompute(
    const std::vector<int>& key,
    const std::function<Result<double>()>& compute) {
  Shard& shard = ShardFor(key);
  for (;;) {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      // First requester: publish a computing entry, evaluate outside the
      // lock, then flip it to ready (or erase it on failure so waiters
      // retry — a failure must not poison the key).
      auto entry = std::make_shared<Entry>();
      shard.entries.emplace(key, entry);
      lock.unlock();
      misses_.fetch_add(1, std::memory_order_relaxed);
      XIA_OBS_COUNT("xia.advisor.benefit.cache_misses", 1);
      Result<double> result = compute();
      lock.lock();
      if (result.ok()) {
        entry->state = Entry::State::kReady;
        entry->value = *result;
      } else {
        entry->state = Entry::State::kFailed;
        shard.entries.erase(key);
      }
      lock.unlock();
      shard.cv.notify_all();
      return result;
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->state == Entry::State::kComputing) {
      shard.cv.wait(lock, [&] {
        return entry->state != Entry::State::kComputing;
      });
    }
    if (entry->state == Entry::State::kReady) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      XIA_OBS_COUNT("xia.advisor.benefit.cache_hits", 1);
      return entry->value;
    }
    // The computation we waited on failed and its entry is gone: loop —
    // this thread may become the computer on the next pass.
  }
}

// RAII lease of a scratch context from the evaluator's freelist.
class BenefitEvaluator::ContextLease {
 public:
  explicit ContextLease(BenefitEvaluator* evaluator)
      : evaluator_(evaluator), context_(evaluator->AcquireContext()) {}
  ~ContextLease() { evaluator_->ReleaseContext(context_); }
  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

  WorkerContext* get() const { return context_; }

 private:
  BenefitEvaluator* evaluator_;
  WorkerContext* context_;
};

BenefitEvaluator::BenefitEvaluator(const engine::Workload* workload,
                                   const CandidateSet* set,
                                   storage::Catalog* catalog,
                                   const storage::StatisticsCatalog* statistics,
                                   const storage::DocumentStore* store,
                                   Options options)
    : workload_(workload),
      set_(set),
      catalog_(catalog),
      optimizer_(store, catalog, statistics),
      options_(options) {
  if (parallel()) {
    // One context per pool worker plus one for the calling thread, so a
    // lease never blocks while a batch is in flight.
    const size_t count = options_.pool->thread_count() + 1;
    contexts_.reserve(count);
    free_contexts_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      contexts_.push_back(std::make_unique<WorkerContext>(
          catalog_->store(), catalog_->statistics(),
          catalog_->cost_constants()));
      free_contexts_.push_back(contexts_.back().get());
    }
  }
}

BenefitEvaluator::WorkerContext* BenefitEvaluator::AcquireContext() {
  std::unique_lock<std::mutex> lock(contexts_mu_);
  contexts_cv_.wait(lock, [&] { return !free_contexts_.empty(); });
  WorkerContext* context = free_contexts_.back();
  free_contexts_.pop_back();
  return context;
}

void BenefitEvaluator::ReleaseContext(WorkerContext* context) {
  {
    std::lock_guard<std::mutex> lock(contexts_mu_);
    free_contexts_.push_back(context);
  }
  contexts_cv_.notify_one();
}

uint64_t BenefitEvaluator::optimizer_calls() const {
  uint64_t total = optimizer_.optimize_calls();
  for (const auto& context : contexts_) {
    total += context->optimizer.optimize_calls();
  }
  return total;
}

Status BenefitEvaluator::Initialize() {
  const size_t n = workload_->size();
  base_costs_.assign(n, 0.0);
  base_workload_cost_ = 0;
  if (parallel() && n > 1) {
    XIA_RETURN_IF_ERROR(
        options_.pool->ParallelFor(n, [&](size_t s) -> Status {
          ContextLease lease(this);
          auto plan =
              lease.get()->optimizer.OptimizeWithoutIndexes((*workload_)[s]);
          if (!plan.ok()) return plan.status();
          base_costs_[s] = plan->est_cost;
          return Status::OK();
        }));
  } else {
    for (size_t s = 0; s < n; ++s) {
      auto plan = optimizer_.OptimizeWithoutIndexes((*workload_)[s]);
      if (!plan.ok()) return plan.status();
      base_costs_[s] = plan->est_cost;
    }
  }
  // Reduced serially in statement order, so the total is bit-identical no
  // matter how the probes were scheduled.
  for (size_t s = 0; s < n; ++s) {
    base_workload_cost_ += (*workload_)[s].frequency * base_costs_[s];
  }
  initialized_ = true;
  return Status::OK();
}

std::vector<std::vector<int>> BenefitEvaluator::Decompose(
    const std::vector<int>& config) const {
  if (!options_.use_subconfigurations) return {config};
  // Union-find over configuration members; union when affected sets
  // overlap.
  const size_t n = config.size();
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto overlap = [&](int a, int b) {
    const auto& sa = (*set_)[static_cast<size_t>(a)].affected;
    const auto& sb = (*set_)[static_cast<size_t>(b)].affected;
    for (size_t x : sa) {
      if (std::find(sb.begin(), sb.end(), x) != sb.end()) return true;
    }
    return false;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (overlap(config[i], config[j])) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::map<size_t, std::vector<int>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(config[i]);
  std::vector<std::vector<int>> out;
  out.reserve(groups.size());
  for (auto& [_, group] : groups) {
    std::sort(group.begin(), group.end());
    out.push_back(std::move(group));
  }
  return out;
}

Result<double> BenefitEvaluator::ComputeSubConfigurationBenefit(
    const std::vector<int>& sub, storage::Catalog* catalog,
    const optimizer::Optimizer& optimizer, const fault::Deadline& deadline,
    const fault::CancelToken* cancel) {
  // Create the sub-configuration's indexes virtually.
  catalog->DropAllVirtualIndexes();
  for (int id : sub) {
    const Candidate& c = (*set_)[static_cast<size_t>(id)];
    auto created = catalog->CreateVirtualIndex(
        StringPrintf("whatif_cand_%d", id), c.collection, c.pattern);
    if (!created.ok()) return created.status();
  }

  // Statements worth re-optimizing: union of affected sets (or everything
  // when the pruning is disabled).
  std::set<size_t> statements;
  if (options_.use_affected_sets) {
    for (int id : sub) {
      const Candidate& c = (*set_)[static_cast<size_t>(id)];
      statements.insert(c.affected.begin(), c.affected.end());
    }
  } else {
    for (size_t s = 0; s < workload_->size(); ++s) statements.insert(s);
  }

  // Iterated in ascending statement order (std::set), so the accumulation
  // order — and hence the floating-point result — is thread-independent.
  double benefit = 0;
  for (size_t s : statements) {
    XIA_RETURN_IF_ERROR(fault::CheckInterrupt(deadline, cancel));
    auto plan = optimizer.Optimize((*workload_)[s]);
    if (!plan.ok()) return plan.status();
    benefit +=
        (*workload_)[s].frequency * (base_costs_[s] - plan->est_cost);
  }
  catalog->DropAllVirtualIndexes();
  return benefit;
}

Result<double> BenefitEvaluator::SubConfigurationQueryBenefit(
    const std::vector<int>& sub, const fault::Deadline& deadline,
    const fault::CancelToken* cancel) {
  return cache_.GetOrCompute(sub, [&]() -> Result<double> {
    if (parallel()) {
      ContextLease lease(this);
      return ComputeSubConfigurationBenefit(sub, &lease.get()->catalog,
                                            lease.get()->optimizer, deadline,
                                            cancel);
    }
    return ComputeSubConfigurationBenefit(sub, catalog_, optimizer_, deadline,
                                          cancel);
  });
}

double BenefitEvaluator::MaintenanceCharge(
    const std::vector<int>& config) const {
  if (!options_.charge_maintenance) return 0;
  double charge = 0;
  for (size_t s = 0; s < workload_->size(); ++s) {
    const engine::Statement& stmt = (*workload_)[s];
    if (stmt.is_query()) continue;
    for (int id : config) {
      const Candidate& c = (*set_)[static_cast<size_t>(id)];
      if (c.collection != stmt.collection()) continue;
      charge += stmt.frequency *
                optimizer_.MaintenanceCost(stmt, c.pattern, c.stats);
    }
  }
  return charge;
}

Result<double> BenefitEvaluator::ConfigurationBenefit(
    const std::vector<int>& config) {
  return ConfigurationBenefit(config, fault::Deadline::Infinite(), nullptr);
}

Result<double> BenefitEvaluator::ConfigurationBenefit(
    const std::vector<int>& config, const fault::Deadline& deadline,
    const fault::CancelToken* cancel) {
  XIA_FAULT_INJECT(fault::points::kAdvisorBenefit);
  if (!initialized_) {
    return Status::FailedPrecondition("BenefitEvaluator not initialized");
  }
  // Canonicalize: callers pass ids in whatever order their search step
  // produced, but a configuration is a set — sorting and deduplicating
  // here keeps permuted configs on one cache key and stops duplicated ids
  // from double-charging maintenance or colliding on what-if index names.
  std::vector<int> canonical = config;
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  if (canonical.empty()) return 0.0;

  const std::vector<std::vector<int>> subs = Decompose(canonical);
  double benefit = 0;
  if (parallel() && subs.size() > 1) {
    // Disjoint groups (§VI-C) evaluate independently: farm them out,
    // then reduce serially in decomposition order for bit-identical sums.
    std::vector<double> sub_benefits(subs.size(), 0.0);
    XIA_RETURN_IF_ERROR(
        options_.pool->ParallelFor(subs.size(), [&](size_t i) -> Status {
          XIA_ASSIGN_OR_RETURN(
              sub_benefits[i],
              SubConfigurationQueryBenefit(subs[i], deadline, cancel));
          return Status::OK();
        }));
    for (double sub_benefit : sub_benefits) benefit += sub_benefit;
  } else {
    for (const std::vector<int>& sub : subs) {
      XIA_ASSIGN_OR_RETURN(
          const double sub_benefit,
          SubConfigurationQueryBenefit(sub, deadline, cancel));
      benefit += sub_benefit;
    }
  }
  return benefit - MaintenanceCharge(canonical);
}

Result<double> BenefitEvaluator::ConfigurationCost(
    const std::vector<int>& config) {
  XIA_ASSIGN_OR_RETURN(const double benefit, ConfigurationBenefit(config));
  return base_workload_cost_ - benefit;
}

Result<double> BenefitEvaluator::ConfigurationSpeedup(
    const std::vector<int>& config) {
  XIA_ASSIGN_OR_RETURN(const double cost, ConfigurationCost(config));
  if (cost <= 0) return 1e12;  // degenerate: configuration removed all cost
  return base_workload_cost_ / cost;
}

}  // namespace xia::advisor
