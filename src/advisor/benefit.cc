#include "advisor/benefit.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace xia::advisor {

BenefitEvaluator::BenefitEvaluator(const engine::Workload* workload,
                                   const CandidateSet* set,
                                   storage::Catalog* catalog,
                                   const storage::StatisticsCatalog* statistics,
                                   const storage::DocumentStore* store,
                                   Options options)
    : workload_(workload),
      set_(set),
      catalog_(catalog),
      optimizer_(store, catalog, statistics),
      options_(options) {}

Status BenefitEvaluator::Initialize() {
  base_costs_.assign(workload_->size(), 0.0);
  base_workload_cost_ = 0;
  for (size_t s = 0; s < workload_->size(); ++s) {
    auto plan = optimizer_.OptimizeWithoutIndexes((*workload_)[s]);
    if (!plan.ok()) return plan.status();
    base_costs_[s] = plan->est_cost;
    base_workload_cost_ += (*workload_)[s].frequency * plan->est_cost;
  }
  initialized_ = true;
  return Status::OK();
}

std::vector<std::vector<int>> BenefitEvaluator::Decompose(
    const std::vector<int>& config) const {
  if (!options_.use_subconfigurations) return {config};
  // Union-find over configuration members; union when affected sets
  // overlap.
  const size_t n = config.size();
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto overlap = [&](int a, int b) {
    const auto& sa = (*set_)[static_cast<size_t>(a)].affected;
    const auto& sb = (*set_)[static_cast<size_t>(b)].affected;
    for (size_t x : sa) {
      if (std::find(sb.begin(), sb.end(), x) != sb.end()) return true;
    }
    return false;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (overlap(config[i], config[j])) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::map<size_t, std::vector<int>> groups;
  for (size_t i = 0; i < n; ++i) groups[find(i)].push_back(config[i]);
  std::vector<std::vector<int>> out;
  out.reserve(groups.size());
  for (auto& [_, group] : groups) {
    std::sort(group.begin(), group.end());
    out.push_back(std::move(group));
  }
  return out;
}

Result<double> BenefitEvaluator::SubConfigurationQueryBenefit(
    const std::vector<int>& sub) {
  auto it = cache_.find(sub);
  if (it != cache_.end()) {
    ++cache_hits_;
    XIA_OBS_COUNT("xia.advisor.benefit.cache_hits", 1);
    return it->second;
  }
  ++cache_misses_;
  XIA_OBS_COUNT("xia.advisor.benefit.cache_misses", 1);

  // Create the sub-configuration's indexes virtually.
  catalog_->DropAllVirtualIndexes();
  for (int id : sub) {
    const Candidate& c = (*set_)[static_cast<size_t>(id)];
    auto created = catalog_->CreateVirtualIndex(
        StringPrintf("whatif_cand_%d", id), c.collection, c.pattern);
    if (!created.ok()) return created.status();
  }

  // Statements worth re-optimizing: union of affected sets (or everything
  // when the pruning is disabled).
  std::set<size_t> statements;
  if (options_.use_affected_sets) {
    for (int id : sub) {
      const Candidate& c = (*set_)[static_cast<size_t>(id)];
      statements.insert(c.affected.begin(), c.affected.end());
    }
  } else {
    for (size_t s = 0; s < workload_->size(); ++s) statements.insert(s);
  }

  double benefit = 0;
  for (size_t s : statements) {
    auto plan = optimizer_.Optimize((*workload_)[s]);
    if (!plan.ok()) return plan.status();
    benefit +=
        (*workload_)[s].frequency * (base_costs_[s] - plan->est_cost);
  }
  catalog_->DropAllVirtualIndexes();
  cache_.emplace(sub, benefit);
  return benefit;
}

double BenefitEvaluator::MaintenanceCharge(
    const std::vector<int>& config) const {
  if (!options_.charge_maintenance) return 0;
  double charge = 0;
  for (size_t s = 0; s < workload_->size(); ++s) {
    const engine::Statement& stmt = (*workload_)[s];
    if (stmt.is_query()) continue;
    for (int id : config) {
      const Candidate& c = (*set_)[static_cast<size_t>(id)];
      if (c.collection != stmt.collection()) continue;
      charge += stmt.frequency *
                optimizer_.MaintenanceCost(stmt, c.pattern, c.stats);
    }
  }
  return charge;
}

Result<double> BenefitEvaluator::ConfigurationBenefit(
    const std::vector<int>& config) {
  XIA_FAULT_INJECT(fault::points::kAdvisorBenefit);
  if (!initialized_) {
    return Status::FailedPrecondition("BenefitEvaluator not initialized");
  }
  if (config.empty()) return 0.0;
  double benefit = 0;
  for (const std::vector<int>& sub : Decompose(config)) {
    XIA_ASSIGN_OR_RETURN(const double sub_benefit,
                         SubConfigurationQueryBenefit(sub));
    benefit += sub_benefit;
  }
  return benefit - MaintenanceCharge(config);
}

Result<double> BenefitEvaluator::ConfigurationCost(
    const std::vector<int>& config) {
  XIA_ASSIGN_OR_RETURN(const double benefit, ConfigurationBenefit(config));
  return base_workload_cost_ - benefit;
}

Result<double> BenefitEvaluator::ConfigurationSpeedup(
    const std::vector<int>& config) {
  XIA_ASSIGN_OR_RETURN(const double cost, ConfigurationCost(config));
  if (cost <= 0) return 1e12;  // degenerate: configuration removed all cost
  return base_workload_cost_ / cost;
}

}  // namespace xia::advisor
