#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace xia {

namespace {

namespace fs = std::filesystem;

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync failed for " + what + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status FsyncParentDirectory(const std::string& path) {
  fs::path dir = fs::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // best-effort
  // Some filesystems refuse fsync on directories; that is not a failure
  // the caller can act on.
  (void)::fsync(fd);
  ::close(fd);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open " + tmp + " for writing: " +
                            std::strerror(errno));
  }
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::Internal("write failed for " + tmp + ": " +
                                        std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<size_t>(n);
  }
  if (Status s = FsyncFd(fd, tmp); !s.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + " failed: " +
                            ec.message());
  }
  return FsyncParentDirectory(path);
}

}  // namespace xia
