// Small string helpers shared across XIA modules.

#ifndef XIA_UTIL_STRING_UTIL_H_
#define XIA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xia {

/// Splits `input` on `delim`, keeping empty tokens.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Returns true if the whole string parses as a (possibly signed,
/// possibly fractional) numeric literal.
bool LooksNumeric(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "12.3 MB".
std::string HumanBytes(double bytes);

}  // namespace xia

#endif  // XIA_UTIL_STRING_UTIL_H_
