#include "util/random.h"

#include <cassert>
#include <cmath>

namespace xia {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the full state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF by linear scan is too slow for large n; use the rejection
  // method of Devroye for s != 1 approximated via the standard
  // "rejection-inversion" technique.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (x <= static_cast<double>(n) && v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(x) - 1;
    }
  }
}

std::string Random::NextString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + Uniform(26));
  return out;
}

}  // namespace xia
