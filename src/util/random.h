// Deterministic pseudo-random number generation for workload and data
// generators. All XIA generators take an explicit seed so experiments are
// reproducible run-to-run.

#ifndef XIA_UTIL_RANDOM_H_
#define XIA_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xia {

/// xoshiro256** generator. Small, fast, and good enough statistically for
/// synthetic data generation; deterministic across platforms (unlike
/// std::default_random_engine distributions).
class Random {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Random(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. lo <= hi required.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with skew parameter s (s=0 uniform).
  /// Used to model skewed value distributions in generated documents.
  uint64_t Zipf(uint64_t n, double s);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Picks one element of `items` uniformly. items must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[Uniform(i + 1)]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace xia

#endif  // XIA_UTIL_RANDOM_H_
