#include "util/crc32.h"

#include <array>

namespace xia {

namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, generated once.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace xia
