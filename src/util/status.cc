#include "util/status.h"

namespace xia {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kReadOnly:
      return "read_only";
    case StatusCode::kFenced:
      return "fenced";
  }
  return "unknown";
}

int StatusExitCode(const Status& status) {
  if (status.ok()) return 0;
  return 10 + static_cast<int>(status.code());
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xia
