// Wall-clock stopwatch used by the advisor-runtime experiments (Fig. 3)
// and the actual-speedup experiments (Fig. 5).

#ifndef XIA_UTIL_STOPWATCH_H_
#define XIA_UTIL_STOPWATCH_H_

#include <chrono>

namespace xia {

/// Monotonic stopwatch. Starts running at construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xia

#endif  // XIA_UTIL_STOPWATCH_H_
