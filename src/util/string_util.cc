#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace xia {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool LooksNumeric(std::string_view s) {
  double ignored;
  return ParseDouble(s, &ignored);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", bytes, units[u]);
}

}  // namespace xia
