// Status / Result error handling for XIA.
//
// Public XIA APIs report recoverable errors through Status (or Result<T>,
// which couples a Status with a value). Exceptions are not thrown across
// library boundaries, per the project style.

#ifndef XIA_UTIL_STATUS_H_
#define XIA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace xia {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
  kDataLoss,
  kUnavailable,
  kReadOnly,
  kFenced,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid_argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the success path (no
/// allocation); error statuses carry a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code must
  /// not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk || message_.empty());
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Process exit code for a Status: 0 for OK, a distinct small non-zero
/// code per StatusCode otherwise (10 + the enum value, so codes never
/// collide with the conventional 1 "generic failure" and 2 "usage").
/// Used by the CLI tools so scripted callers can branch on the failure
/// class.
int StatusExitCode(const Status& status);

/// A value-or-error outcome. Dereferencing a non-OK Result is a programming
/// error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "use Result(T) for success");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define XIA_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::xia::Status _xia_status = (expr);          \
    if (!_xia_status.ok()) return _xia_status;   \
  } while (0)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define XIA_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto XIA_CONCAT_(_xia_result, __LINE__) = (rexpr);  \
  if (!XIA_CONCAT_(_xia_result, __LINE__).ok())       \
    return XIA_CONCAT_(_xia_result, __LINE__).status(); \
  lhs = std::move(XIA_CONCAT_(_xia_result, __LINE__)).value()

#define XIA_CONCAT_INNER_(a, b) a##b
#define XIA_CONCAT_(a, b) XIA_CONCAT_INNER_(a, b)

}  // namespace xia

#endif  // XIA_UTIL_STATUS_H_
