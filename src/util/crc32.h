// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for corruption
// detection in XIA's persistence formats. Software table-driven — fast
// enough for snapshot/workload framing, dependency-free, and bit-exact
// across platforms, which is what makes the checksums portable between
// machines.

#ifndef XIA_UTIL_CRC32_H_
#define XIA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xia {

/// CRC-32 of `data`, with the conventional init/final XOR (so
/// Crc32("123456789") == 0xCBF43926 and Crc32("") == 0).
uint32_t Crc32(const void* data, size_t size);
uint32_t Crc32(std::string_view data);

/// Incremental form: feed `crc` the running value (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace xia

#endif  // XIA_UTIL_CRC32_H_
