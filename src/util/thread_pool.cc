#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace xia::util {

namespace {
thread_local bool tls_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  const size_t count = std::max<size_t>(1, threads);
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
  XIA_OBS_GAUGE_SET("xia.util.pool.threads", static_cast<double>(count));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    XIA_OBS_COUNT("xia.util.pool.tasks_completed", 1);
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  XIA_FAULT_INJECT(fault::points::kPoolSubmit);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("ThreadPool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  XIA_OBS_COUNT("xia.util.pool.tasks_submitted", 1);
  return Status::OK();
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& body) {
  return ParallelFor(n, body, fault::Deadline::Infinite(), nullptr, nullptr);
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& body,
                               const fault::Deadline& deadline,
                               const fault::CancelToken* cancel,
                               bool* interrupted) {
  if (interrupted != nullptr) *interrupted = false;
  if (n == 0) return Status::OK();
  if (thread_count() <= 1 || n < 2 || OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) {
      if (!fault::CheckInterrupt(deadline, cancel).ok()) {
        if (interrupted != nullptr) *interrupted = true;
        return Status::OK();
      }
      XIA_RETURN_IF_ERROR(body(i));
    }
    return Status::OK();
  }

  // Shared by the runner tasks. Items are handed out through `next` in
  // ascending order, so when a body fails, every smaller index has been
  // dispatched too; waiting for in-flight items then makes the recorded
  // smallest-index error the one a serial loop would have hit.
  struct Batch {
    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    std::atomic<bool> cut{false};  // deadline/cancel tripped
    std::mutex mu;
    std::condition_variable done;
    size_t active = 0;
    Status error = Status::OK();
    size_t error_index = std::numeric_limits<size_t>::max();
  };
  auto batch = std::make_shared<Batch>();

  auto runner = [batch, &body, n, deadline, cancel] {
    for (;;) {
      if (batch->abort.load(std::memory_order_relaxed)) break;
      if (!fault::CheckInterrupt(deadline, cancel).ok()) {
        batch->cut.store(true, std::memory_order_relaxed);
        break;
      }
      const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      Status s = body(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(batch->mu);
        if (i < batch->error_index) {
          batch->error = std::move(s);
          batch->error_index = i;
        }
        batch->abort.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> lock(batch->mu);
    if (--batch->active == 0) batch->done.notify_all();
  };

  const size_t runners = std::min(thread_count(), n);
  Status submit_error = Status::OK();
  for (size_t r = 0; r < runners; ++r) {
    {
      std::lock_guard<std::mutex> lock(batch->mu);
      ++batch->active;
    }
    Status s = Submit(runner);
    if (!s.ok()) {
      // Dispatch failed: stop the runners already queued, surface the
      // submit failure once they drained (no partially-reported batch).
      {
        std::lock_guard<std::mutex> lock(batch->mu);
        --batch->active;
      }
      batch->abort.store(true, std::memory_order_relaxed);
      submit_error = std::move(s);
      break;
    }
  }

  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done.wait(lock, [&] { return batch->active == 0; });
  }
  if (!batch->error.ok()) return batch->error;
  if (!submit_error.ok()) return submit_error;
  if (batch->cut.load(std::memory_order_relaxed) ||
      batch->next.load(std::memory_order_relaxed) < n) {
    if (interrupted != nullptr) *interrupted = true;
  }
  return Status::OK();
}

}  // namespace xia::util
