// xia::util::ThreadPool — a fixed-size worker pool for the parallel
// what-if advising path (DESIGN §12).
//
// The pool owns `threads` std::threads pulling std::function tasks off a
// single queue. Two entry points:
//
//  * Submit(task)      — fire-and-forget enqueue. Carries the
//    xia.fault.pool.submit injection point so the fault matrix can prove
//    a failed dispatch surfaces as a clean Status.
//  * ParallelFor(n, body) — runs body(0..n-1) across the workers and
//    blocks until every dispatched item finished. Items are handed out
//    through an atomic counter in ascending index order; on a body error
//    the batch stops pulling new items and the error with the smallest
//    index is returned (matching what a serial in-order loop would have
//    reported). The deadline-aware overload stops dispatching the moment
//    the deadline/cancel trips and reports the cut through *interrupted
//    instead of an error, so callers can degrade to best-so-far.
//
// Nested use is safe by construction: ParallelFor called from inside a
// pool worker (OnWorkerThread()) runs the body inline and serially —
// submitting from a worker and waiting would deadlock a fixed-size pool.
// Callers that need deterministic results keep the rule used throughout
// the advisor: workers write into disjoint, pre-sized slots and the
// caller reduces serially in index order afterwards.

#ifndef XIA_UTIL_THREAD_POOL_H_
#define XIA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/deadline.h"
#include "util/status.h"

namespace xia::util {

class ThreadPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit ThreadPool(size_t threads);
  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  /// One worker per hardware thread (>= 1 even when the runtime cannot
  /// tell). What `--threads 0` resolves to in the CLI tools.
  static size_t DefaultThreadCount();

  /// True on a thread owned by any ThreadPool. Used to run nested
  /// parallel sections inline instead of deadlocking on the queue.
  static bool OnWorkerThread();

  /// Enqueues a task. Fails only on injected faults or shutdown.
  Status Submit(std::function<void()> task);

  /// Runs body(0..n-1) to completion; see the header comment for error
  /// and ordering semantics. Runs inline (serially, in index order) when
  /// the pool has one thread, n < 2, or the caller is a pool worker.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& body);

  /// Deadline/cancel-aware variant: the interrupt is polled before every
  /// item dispatch, skipped items are reported through *interrupted
  /// (never an error), and `body` is not called for them.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& body,
                     const fault::Deadline& deadline,
                     const fault::CancelToken* cancel, bool* interrupted);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace xia::util

#endif  // XIA_UTIL_THREAD_POOL_H_
