// Crash-safe file replacement: write-to-temp, fsync, rename.
//
// Every XIA persistence format (snapshot, workload save, WAL manifest and
// checkpoint files) replaces files through this helper so a crash mid-save
// can never clobber the previous good copy: the new bytes land in a
// sibling ".tmp" file first, are fsynced, and only then renamed over the
// target (rename(2) is atomic within a filesystem). The containing
// directory is fsynced after the rename so the new directory entry is
// itself durable.

#ifndef XIA_UTIL_ATOMIC_FILE_H_
#define XIA_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace xia {

/// Atomically replaces `path` with `contents`. The temp file is
/// `path + ".tmp"`; a stale temp from an earlier crash is overwritten.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// fsyncs the directory containing `path` (making a rename durable).
/// Best-effort: filesystems that reject directory fsync are ignored.
Status FsyncParentDirectory(const std::string& path);

}  // namespace xia

#endif  // XIA_UTIL_ATOMIC_FILE_H_
