#include "wal/replay.h"

#include "engine/executor.h"
#include "engine/query_parser.h"
#include "optimizer/plan.h"

namespace xia::wal {

Status ApplyRecord(const WalRecord& record, storage::DocumentStore* store,
                   storage::Catalog* catalog,
                   storage::StatisticsCatalog* statistics,
                   const fault::Deadline& deadline) {
  engine::Executor replayer(store, catalog);
  const optimizer::Plan scan_plan;  // collection scan: no optimizer,
                                    // no statistics dependence
  engine::ExecOptions exec_options;
  exec_options.deadline = deadline;
  switch (record.type) {
    case RecordType::kCreateCollection:
      return store->CreateCollection(record.collection).status();
    case RecordType::kInsert: {
      engine::Statement st;
      st.body = engine::InsertSpec{record.collection, record.text};
      return replayer.Execute(st, scan_plan, exec_options).status();
    }
    case RecordType::kStatement: {
      XIA_ASSIGN_OR_RETURN(const engine::Statement st,
                           engine::ParseStatement(record.text));
      return replayer.Execute(st, scan_plan, exec_options).status();
    }
    case RecordType::kCreateIndex: {
      xpath::IndexPattern pattern;
      pattern.path = record.pattern_path;
      pattern.type = record.value_type;
      pattern.structural = record.structural;
      return catalog->CreateIndex(record.name, record.collection, pattern)
          .status();
    }
    case RecordType::kDropIndex:
      return catalog->DropIndex(record.name);
    case RecordType::kStatsRefresh: {
      auto coll = store->GetCollection(record.collection);
      XIA_RETURN_IF_ERROR(coll.status());
      statistics->RunStats(**coll);
      return Status::OK();
    }
    case RecordType::kEpochBarrier:
      // Pure replication metadata: the WalManager picks the epoch up
      // from the record during recovery/AppendReplicated; the store is
      // untouched.
      return Status::OK();
  }
  return Status::ParseError("unknown WAL record type " +
                            std::to_string(static_cast<int>(record.type)));
}

}  // namespace xia::wal
