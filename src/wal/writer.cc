#include "wal/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "wal/log_file.h"

namespace xia::wal {

namespace {

void ObserveBatchSize(uint64_t records) {
#ifndef XIA_OBS_OFF
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "xia.wal.commit.batch", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  histogram->Observe(static_cast<double>(records));
#else
  (void)records;
#endif
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(name) +
                                 "' (want always|interval|off)");
}

WalWriter::WalWriter(WalWriterOptions options)
    : options_(std::move(options)),
      last_sync_time_(std::chrono::steady_clock::now()) {}

WalWriter::~WalWriter() { (void)Close(); }

Status WalWriter::Open(const std::string& path, uint64_t next_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::FailedPrecondition("WAL writer already open");
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::Internal("cannot open WAL " + path + " for append: " +
                            std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  fd_ = fd;
  file_bytes_ = size < 0 ? 0 : static_cast<uint64_t>(size);
  next_lsn_ = next_lsn;
  last_appended_lsn_ = next_lsn - 1;
  written_lsn_ = next_lsn - 1;
  durable_lsn_ = next_lsn - 1;
  poison_ = Status::OK();
  return Status::OK();
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  Status s = Status::OK();
  if (!pending_.empty() && poison_.ok()) {
    s = FlushLocked(lock, options_.policy != FsyncPolicy::kOff);
  }
  ::close(fd_);
  fd_ = -1;
  return s;
}

Result<uint64_t> WalWriter::Append(WalRecord record) {
  XIA_FAULT_INJECT(fault::points::kWalAppend);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!poison_.ok()) return poison_;
  record.lsn = next_lsn_++;
  encode_scratch_.clear();
  EncodeRecordTo(record, &encode_scratch_);
  AppendFrame(encode_scratch_, &pending_);
  ++pending_records_;
  ++appended_records_;
  last_appended_lsn_ = record.lsn;
  XIA_OBS_COUNT("xia.wal.appends", 1);
  return record.lsn;
}

Status WalWriter::AppendWithLsn(const WalRecord& record) {
  XIA_FAULT_INJECT(fault::points::kWalAppend);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!poison_.ok()) return poison_;
  if (record.lsn != next_lsn_) {
    return Status::FailedPrecondition(
        "replicated append lsn " + std::to_string(record.lsn) +
        " does not continue the log (next lsn " + std::to_string(next_lsn_) +
        ")");
  }
  next_lsn_ = record.lsn + 1;
  encode_scratch_.clear();
  EncodeRecordTo(record, &encode_scratch_);
  AppendFrame(encode_scratch_, &pending_);
  ++pending_records_;
  ++appended_records_;
  last_appended_lsn_ = record.lsn;
  XIA_OBS_COUNT("xia.wal.appends", 1);
  return Status::OK();
}

bool WalWriter::CoveredLocked(uint64_t lsn) const {
  if (options_.policy == FsyncPolicy::kAlways) return durable_lsn_ >= lsn;
  // kInterval/kOff acknowledge as soon as the record is staged: one
  // bounded-loss window on a crash, zero syscalls on the commit path.
  return last_appended_lsn_ >= lsn;
}

bool WalWriter::FlushDueLocked() const {
  if (pending_.empty()) return false;
  if (pending_.size() >= options_.max_pending_bytes) return true;
  if (options_.policy == FsyncPolicy::kInterval) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         last_sync_time_)
               .count() >= options_.fsync_interval_seconds;
  }
  return false;
}

Status WalWriter::Commit(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (CoveredLocked(lsn)) {
      // kInterval/kOff: the commit itself is already acknowledged, but
      // piggyback the deferred write-out when a trigger fires (buffer
      // over max_pending_bytes, or the fsync interval elapsed). A flush
      // failure poisons the writer for *later* commits; this one keeps
      // its staged-only guarantee either way.
      if (!flushing_ && FlushDueLocked()) {
        (void)FlushLocked(lock, /*force_sync=*/false);
      }
      XIA_OBS_COUNT("xia.wal.commits", 1);
      return Status::OK();
    }
    if (!flushing_) break;
    cv_.wait(lock);
  }
  Status s = FlushLocked(lock, /*force_sync=*/false);
  if (!s.ok()) return s;
  if (!CoveredLocked(lsn)) {
    // Covers the kAlways + injected-fsync-fault case: the bytes were
    // written but the sync did not happen, so the commit is not durable.
    return Status::Internal("WAL commit of lsn " + std::to_string(lsn) +
                            " not durable (fsync skipped)");
  }
  XIA_OBS_COUNT("xia.wal.commits", 1);
  return Status::OK();
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (pending_.empty() &&
        (options_.policy == FsyncPolicy::kOff || durable_lsn_ == written_lsn_))
      return Status::OK();
    if (!flushing_) break;
    cv_.wait(lock);
  }
  return FlushLocked(lock, /*force_sync=*/true);
}

Status WalWriter::FlushLocked(std::unique_lock<std::mutex>& lock,
                              bool force_sync) {
  flushing_ = true;
  std::string batch;
  batch.swap(pending_);
  const uint64_t batch_records = pending_records_;
  pending_records_ = 0;
  const uint64_t batch_last_lsn = last_appended_lsn_;
  const auto now = std::chrono::steady_clock::now();
  bool want_sync = force_sync;
  switch (options_.policy) {
    case FsyncPolicy::kAlways:
      want_sync = true;
      break;
    case FsyncPolicy::kInterval:
      if (std::chrono::duration<double>(now - last_sync_time_).count() >=
          options_.fsync_interval_seconds) {
        want_sync = true;
      }
      break;
    case FsyncPolicy::kOff:
      want_sync = false;
      break;
  }
  lock.unlock();

  Status write_status = Status::OK();
  if (!batch.empty()) write_status = WriteRaw(batch);

  Status sync_status = Status::OK();
  bool synced = false;
  bool sync_poisons = false;
  if (write_status.ok() && want_sync) {
    // Manual fault check (XIA_FAULT_INJECT would return with flushing_
    // still set): an injected fsync fault leaves the bytes written but
    // not durable and does NOT poison — a retry can succeed.
    static fault::FaultPoint* fsync_point =
        fault::FaultRegistry::Global().GetPoint(fault::points::kWalFsync);
    if (fsync_point->ShouldFire()) {
      sync_status = fsync_point->InjectedStatus();
    } else {
      if (options_.test_hook) options_.test_hook("wal.append.before_fsync");
      sync_status = SyncRaw();
      sync_poisons = !sync_status.ok();
      synced = sync_status.ok();
    }
  }

  lock.lock();
  flushing_ = false;
  if (!write_status.ok()) {
    // The file tail is in an unknown state; no later commit may claim
    // durability past it.
    poison_ = write_status;
  } else {
    written_lsn_ = batch_last_lsn;
    file_bytes_ += batch.size();
    XIA_OBS_COUNT("xia.wal.bytes_appended", batch.size());
    if (synced) {
      durable_lsn_ = written_lsn_;
      last_sync_time_ = now;
      ++fsyncs_;
      XIA_OBS_COUNT("xia.wal.fsyncs", 1);
      ObserveBatchSize(batch_records == 0 ? 1 : batch_records);
    } else if (sync_poisons) {
      poison_ = sync_status;
    }
  }
  cv_.notify_all();
  if (!write_status.ok()) return write_status;
  return sync_status;
}

Status WalWriter::WriteRaw(std::string_view bytes) {
  size_t written = 0;
  const size_t half = bytes.size() / 2;
  bool hook_fired = false;
  while (written < bytes.size()) {
    // The crash harness kills the process mid-batch here, leaving a torn
    // frame for recovery to salvage.
    if (options_.test_hook && !hook_fired && written >= half && half > 0) {
      hook_fired = true;
      options_.test_hook("wal.append.mid_write");
    }
    size_t chunk = bytes.size() - written;
    if (options_.test_hook && !hook_fired) chunk = std::min(chunk, half);
    if (chunk == 0) chunk = bytes.size() - written;
    const ssize_t n = ::write(fd_, bytes.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL write failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::SyncRaw() {
  if (::fsync(fd_) != 0) {
    return Status::Internal(std::string("WAL fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status WalWriter::ResetFile(const std::string& path, uint64_t next_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!pending_.empty()) {
    return Status::FailedPrecondition(
        "WAL reset with staged records pending; Sync() first");
  }
  ::close(fd_);
  fd_ = -1;
  XIA_RETURN_IF_ERROR(InitLogFile(path));
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::Internal("cannot reopen WAL " + path + ": " +
                            std::strerror(errno));
  }
  fd_ = fd;
  file_bytes_ = sizeof(kWalMagic);
  if (next_lsn != 0) {
    next_lsn_ = next_lsn;
    last_appended_lsn_ = next_lsn - 1;
    written_lsn_ = next_lsn - 1;
    durable_lsn_ = next_lsn - 1;
  }
  return Status::OK();
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WalWriter::last_appended_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_appended_lsn_;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

uint64_t WalWriter::appended_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_records_;
}

uint64_t WalWriter::file_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_bytes_;
}

uint64_t WalWriter::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

}  // namespace xia::wal
