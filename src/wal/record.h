// WAL record model: one logical redo record per committed mutation.
//
// XIA logs *logically* (statement-level redo), not physically: the store
// is an in-memory structure whose only on-disk form is the checkpoint
// snapshot, so there are no pages to undo and replaying whole statements
// in LSN order from the checkpoint state reproduces the exact store
// (statement execution is deterministic). Record kinds:
//
//   kCreateCollection  collection name
//   kInsert            collection + verbatim document text (ToText is
//                      lossy for inserts, so inserts get a dedicated
//                      record instead of statement text)
//   kStatement         delete/update in query-language text, re-parsed by
//                      engine::ParseStatement at replay (validated to
//                      round-trip at log time, so replay cannot hit a
//                      parse error on a frame that passed its CRC)
//   kCreateIndex       name + collection + pattern path/type/structural
//   kDropIndex         name
//   kStatsRefresh      collection name (RunStats)
//   kEpochBarrier      replication epoch (u64). Written by promotion:
//                      marks the first LSN owned by the new epoch's
//                      leader. Replaying it is a store no-op, but
//                      recovery and followers adopt the epoch, and a
//                      deposed leader truncates everything at or past
//                      the barrier LSN before rejoining (DESIGN §15).
//
// Payload layout: u64 lsn, u8 type, then the type's fields (wire.h
// conventions). Framing (length + CRC) is the log file's job.

#ifndef XIA_WAL_RECORD_H_
#define XIA_WAL_RECORD_H_

#include <cstdint>
#include <string>

#include "util/status.h"
#include "xpath/path.h"

namespace xia::wal {

enum class RecordType : uint8_t {
  kCreateCollection = 1,
  kInsert = 2,
  kStatement = 3,
  kCreateIndex = 4,
  kDropIndex = 5,
  kStatsRefresh = 6,
  kEpochBarrier = 7,
};

/// Returns the lower-case name of a record type ("insert", ...).
const char* RecordTypeName(RecordType type);

/// One decoded WAL record. Which fields are meaningful depends on `type`;
/// unused fields stay empty.
struct WalRecord {
  uint64_t lsn = 0;
  RecordType type = RecordType::kStatement;
  /// kCreateCollection / kInsert / kStatsRefresh / kCreateIndex.
  std::string collection;
  /// kInsert: document text. kStatement: statement text.
  std::string text;
  /// kCreateIndex / kDropIndex: index name.
  std::string name;
  /// kCreateIndex: the indexed pattern.
  xpath::Path pattern_path;
  xpath::ValueType value_type = xpath::ValueType::kString;
  bool structural = false;
  /// kEpochBarrier: the replication epoch that starts at this LSN.
  uint64_t epoch = 0;

  static WalRecord CreateCollection(std::string collection);
  static WalRecord Insert(std::string collection, std::string document_text);
  static WalRecord Statement(std::string statement_text);
  static WalRecord CreateIndex(std::string name, std::string collection,
                               const xpath::IndexPattern& pattern);
  static WalRecord DropIndex(std::string name);
  static WalRecord StatsRefresh(std::string collection);
  static WalRecord EpochBarrier(uint64_t epoch);
};

struct WireReader;

/// Path sub-codec (u32 step count, then u8 axis + string name test per
/// step), shared with the checkpoint catalog file.
void PutPath(std::string* out, const xpath::Path& path);
bool GetPath(WireReader* reader, xpath::Path* path);

/// Renders the record payload (lsn + type + fields).
std::string EncodeRecord(const WalRecord& record);

/// Appends the payload to `out` without clearing it — lets the writer
/// reuse one scratch buffer across appends instead of allocating per
/// record.
void EncodeRecordTo(const WalRecord& record, std::string* out);

/// Parses a record payload. kParseError on malformed input (a payload
/// that passed its frame CRC but does not decode is corruption beyond
/// what framing can explain, not a torn tail).
Result<WalRecord> DecodeRecord(std::string_view payload);

}  // namespace xia::wal

#endif  // XIA_WAL_RECORD_H_
